//! `Fab` — a dense scalar field on a single box (AMReX `FArrayBox`).

use crate::boxes::Box3;
use crate::ivec::IntVect;

/// A dense, cell-centered `f64` field on one [`Box3`], stored x-fastest.
#[derive(Debug, Clone, PartialEq)]
pub struct Fab {
    bx: Box3,
    data: Vec<f64>,
}

impl Fab {
    /// Zero-filled fab on `bx`.
    pub fn zeros(bx: Box3) -> Self {
        Fab {
            data: vec![0.0; bx.num_cells()],
            bx,
        }
    }

    /// Constant-filled fab on `bx`.
    pub fn constant(bx: Box3, v: f64) -> Self {
        Fab {
            data: vec![v; bx.num_cells()],
            bx,
        }
    }

    /// Fab taking ownership of an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != bx.num_cells()`.
    pub fn from_vec(bx: Box3, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), bx.num_cells(), "fab buffer size mismatch");
        Fab { bx, data }
    }

    /// Fills the fab by evaluating `f` at every cell index.
    pub fn from_fn(bx: Box3, mut f: impl FnMut(IntVect) -> f64) -> Self {
        let mut data = Vec::with_capacity(bx.num_cells());
        for cell in bx.cells() {
            data.push(f(cell));
        }
        Fab { bx, data }
    }

    #[inline]
    pub fn box3(&self) -> Box3 {
        self.bx
    }

    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    #[inline]
    pub fn get(&self, iv: IntVect) -> f64 {
        self.data[self.bx.offset(iv)]
    }

    #[inline]
    pub fn set(&mut self, iv: IntVect, v: f64) {
        let off = self.bx.offset(iv);
        self.data[off] = v;
    }

    /// Value if the cell lies inside the fab's box.
    #[inline]
    pub fn try_get(&self, iv: IntVect) -> Option<f64> {
        self.bx.contains(iv).then(|| self.get(iv))
    }

    /// Iterates `(cell, value)` in x-fastest order.
    pub fn iter(&self) -> impl Iterator<Item = (IntVect, f64)> + '_ {
        self.bx.cells().zip(self.data.iter().copied())
    }

    /// Minimum value (NaNs propagate as in `f64::min`).
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Copies the overlap region from `src` into `self`. Returns the number
    /// of cells copied (0 when the boxes do not overlap).
    pub fn copy_from(&mut self, src: &Fab) -> usize {
        let Some(overlap) = self.bx.intersect(&src.bx) else {
            return 0;
        };
        let (dst_bx, src_bx) = (self.bx, src.bx);
        let [onx, ony, onz] = overlap.size();
        let dlo = overlap.lo() - dst_bx.lo();
        let slo = overlap.lo() - src_bx.lo();
        let [dnx, dny, _] = dst_bx.size();
        let [snx, sny, _] = src_bx.size();
        for kk in 0..onz {
            for jj in 0..ony {
                let drow = (dlo[0] as usize)
                    + dnx * ((dlo[1] as usize + jj) + dny * (dlo[2] as usize + kk));
                let srow = (slo[0] as usize)
                    + snx * ((slo[1] as usize + jj) + sny * (slo[2] as usize + kk));
                self.data[drow..drow + onx].copy_from_slice(&src.data[srow..srow + onx]);
            }
        }
        onx * ony * onz
    }

    /// Applies `f` to every value in place.
    pub fn apply(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Extracts a sub-fab over `region` (must be contained in the fab box).
    pub fn subfab(&self, region: Box3) -> Fab {
        assert!(self.bx.contains_box(&region), "subfab region outside fab");
        let mut out = Fab::zeros(region);
        out.copy_from(self);
        out
    }

    /// Copies the values of `region` (which must be contained in the fab's
    /// box) into `out`, x-fastest — the allocation-free counterpart of
    /// [`Fab::subfab`] for callers that own a reusable buffer.
    ///
    /// # Panics
    /// Panics if `region` is not contained in the fab's box or if
    /// `out.len() != region.num_cells()`.
    pub fn read_region_into(&self, region: Box3, out: &mut [f64]) {
        assert!(self.bx.contains_box(&region), "read region outside fab");
        assert_eq!(out.len(), region.num_cells(), "region buffer size mismatch");
        let [onx, ony, onz] = region.size();
        let slo = region.lo() - self.bx.lo();
        let [snx, sny, _] = self.bx.size();
        for kk in 0..onz {
            for jj in 0..ony {
                let drow = onx * (jj + ony * kk);
                let srow = (slo[0] as usize)
                    + snx * ((slo[1] as usize + jj) + sny * (slo[2] as usize + kk));
                out[drow..drow + onx].copy_from_slice(&self.data[srow..srow + onx]);
            }
        }
    }

    /// Writes a `region`-shaped, x-fastest buffer into the fab — the inverse
    /// of [`Fab::read_region_into`], replacing the build-a-`Fab`-then-
    /// `copy_from` dance when the source data already lives in a flat slice.
    ///
    /// # Panics
    /// Panics if `region` is not contained in the fab's box or if
    /// `src.len() != region.num_cells()`.
    pub fn write_region_from(&mut self, region: Box3, src: &[f64]) {
        assert!(self.bx.contains_box(&region), "write region outside fab");
        assert_eq!(src.len(), region.num_cells(), "region buffer size mismatch");
        let [onx, ony, onz] = region.size();
        let dlo = region.lo() - self.bx.lo();
        let [dnx, dny, _] = self.bx.size();
        for kk in 0..onz {
            for jj in 0..ony {
                let srow = onx * (jj + ony * kk);
                let drow = (dlo[0] as usize)
                    + dnx * ((dlo[1] as usize + jj) + dny * (dlo[2] as usize + kk));
                self.data[drow..drow + onx].copy_from_slice(&src[srow..srow + onx]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: [i64; 3], hi: [i64; 3]) -> Box3 {
        Box3::new(IntVect(lo), IntVect(hi))
    }

    #[test]
    fn from_fn_and_get() {
        let bx = b([1, 1, 1], [3, 3, 3]);
        let fab = Fab::from_fn(bx, |iv| (iv[0] * 100 + iv[1] * 10 + iv[2]) as f64);
        assert_eq!(fab.get(IntVect::new(2, 3, 1)), 231.0);
        assert_eq!(fab.try_get(IntVect::new(0, 0, 0)), None);
        assert_eq!(fab.min(), 111.0);
        assert_eq!(fab.max(), 333.0);
    }

    #[test]
    fn copy_from_overlap_only() {
        let mut dst = Fab::constant(b([0, 0, 0], [3, 3, 3]), -1.0);
        let src = Fab::from_fn(b([2, 2, 2], [5, 5, 5]), |iv| iv.sum() as f64);
        let n = dst.copy_from(&src);
        assert_eq!(n, 8); // 2×2×2 overlap
        assert_eq!(dst.get(IntVect::new(3, 3, 3)), 9.0);
        assert_eq!(dst.get(IntVect::new(2, 2, 2)), 6.0);
        assert_eq!(dst.get(IntVect::new(1, 1, 1)), -1.0); // untouched
    }

    #[test]
    fn copy_from_disjoint_is_noop() {
        let mut dst = Fab::constant(b([0, 0, 0], [1, 1, 1]), 5.0);
        let src = Fab::constant(b([10, 10, 10], [11, 11, 11]), 7.0);
        assert_eq!(dst.copy_from(&src), 0);
        assert!(dst.data().iter().all(|&v| v == 5.0));
    }

    #[test]
    fn subfab_extracts_values() {
        let fab = Fab::from_fn(b([0, 0, 0], [4, 4, 4]), |iv| iv.sum() as f64);
        let sub = fab.subfab(b([1, 2, 3], [2, 3, 4]));
        assert_eq!(sub.box3().num_cells(), 8);
        for (cell, v) in sub.iter() {
            assert_eq!(v, cell.sum() as f64);
        }
    }

    #[test]
    fn read_region_into_matches_subfab() {
        let fab = Fab::from_fn(b([0, 0, 0], [4, 4, 4]), |iv| iv.sum() as f64);
        let region = b([1, 2, 3], [2, 3, 4]);
        let mut buf = vec![0.0; region.num_cells()];
        fab.read_region_into(region, &mut buf);
        assert_eq!(buf, fab.subfab(region).into_vec());
    }

    #[test]
    fn write_region_from_roundtrips_read() {
        let src = Fab::from_fn(b([0, 0, 0], [4, 4, 4]), |iv| iv.sum() as f64);
        let region = b([1, 1, 1], [3, 2, 4]);
        let mut buf = vec![0.0; region.num_cells()];
        src.read_region_into(region, &mut buf);
        let mut dst = Fab::zeros(b([0, 0, 0], [4, 4, 4]));
        dst.write_region_from(region, &buf);
        for (cell, v) in dst.iter() {
            let want = if region.contains(cell) {
                cell.sum() as f64
            } else {
                0.0
            };
            assert_eq!(v, want, "at {cell:?}");
        }
    }

    #[test]
    #[should_panic(expected = "read region outside fab")]
    fn read_region_checks_containment() {
        let fab = Fab::zeros(b([0, 0, 0], [1, 1, 1]));
        let mut buf = vec![0.0; 8];
        fab.read_region_into(b([1, 1, 1], [2, 2, 2]), &mut buf);
    }

    #[test]
    fn iter_matches_layout() {
        let bx = b([0, 0, 0], [1, 1, 0]);
        let fab = Fab::from_vec(bx, vec![0.0, 1.0, 2.0, 3.0]);
        let items: Vec<_> = fab.iter().collect();
        assert_eq!(items[1], (IntVect::new(1, 0, 0), 1.0));
        assert_eq!(items[2], (IntVect::new(0, 1, 0), 2.0));
    }

    #[test]
    fn apply_transforms_in_place() {
        let mut fab = Fab::constant(b([0, 0, 0], [1, 0, 0]), 2.0);
        fab.apply(|v| v * v + 1.0);
        assert!(fab.data().iter().all(|&v| v == 5.0));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_vec_checks_length() {
        Fab::from_vec(b([0, 0, 0], [1, 1, 1]), vec![0.0; 7]);
    }
}
