//! Tagging and Berger–Rigoutsos box clustering.
//!
//! During an AMR run, cells needing refinement are *tagged* (e.g. where a
//! gradient norm or the value itself exceeds a threshold — paper §2.2) and
//! the tagged set is clustered into rectangular patches. We implement the
//! classic Berger–Rigoutsos signature/inflection algorithm, operating on a
//! grid coarsened by the blocking factor so that the produced boxes are
//! automatically aligned and disjoint.

use crate::box_array::BoxArray;
use crate::boxes::Box3;
use crate::ivec::IntVect;
use crate::mask::Raster;

/// Parameters controlling box generation.
#[derive(Debug, Clone, Copy)]
pub struct RegridConfig {
    /// Minimum fraction of tagged cells a produced box must contain before
    /// recursion stops (AMReX `grid_eff`). Typical: 0.7.
    pub efficiency: f64,
    /// Boxes are aligned to multiples of this (power of two). Typical: 4.
    pub blocking_factor: i64,
    /// If set, boxes are chopped so none exceeds this many cells.
    pub max_box_cells: Option<usize>,
}

impl Default for RegridConfig {
    fn default() -> Self {
        RegridConfig {
            efficiency: 0.7,
            blocking_factor: 4,
            max_box_cells: Some(64 * 64 * 64),
        }
    }
}

/// Clusters tagged cells into boxes. `tags` lives at the level being
/// refined; the returned boxes are at the same level (refine them by the
/// ratio to get the new fine level's box array), clipped to `tags.region()`,
/// pairwise disjoint, and aligned to the blocking factor (except where
/// clipped by the domain boundary).
pub fn berger_rigoutsos(tags: &Raster, cfg: &RegridConfig) -> BoxArray {
    assert!(cfg.blocking_factor >= 1);
    assert!(
        (0.0..=1.0).contains(&cfg.efficiency),
        "efficiency must be in [0,1]"
    );
    if !tags.any() {
        return BoxArray::default();
    }
    // Work on the blocking-factor-coarsened grid: any tag marks its block.
    let coarse_tags = tags.coarsen_any(cfg.blocking_factor);
    let mut out: Vec<Box3> = Vec::new();
    let Some(bbox) = bounding_box(&coarse_tags, coarse_tags.region()) else {
        return BoxArray::default();
    };
    cluster(&coarse_tags, bbox, cfg.efficiency, &mut out);
    // Back to the original index space, clipped to the tag region.
    let mut boxes: Vec<Box3> = out
        .into_iter()
        .filter_map(|b| b.refine(cfg.blocking_factor).intersect(&tags.region()))
        .collect();
    if let Some(maxc) = cfg.max_box_cells {
        boxes = BoxArray::new(boxes)
            .chop_to_max_cells(maxc)
            .boxes()
            .to_vec();
    }
    BoxArray::new(boxes)
}

/// Bounding box of tagged cells within `within`, or `None` if untagged.
fn bounding_box(tags: &Raster, within: Box3) -> Option<Box3> {
    let mut lo = None;
    let mut hi = None;
    for cell in within.cells() {
        if tags.get_unchecked(cell) {
            lo = Some(lo.map_or(cell, |l: IntVect| l.min(cell)));
            hi = Some(hi.map_or(cell, |h: IntVect| h.max(cell)));
        }
    }
    Some(Box3::new(lo?, hi?))
}

fn count_tags(tags: &Raster, bx: Box3) -> usize {
    bx.cells().filter(|&c| tags.get_unchecked(c)).count()
}

fn cluster(tags: &Raster, candidate: Box3, efficiency: f64, out: &mut Vec<Box3>) {
    let ntags = count_tags(tags, candidate);
    debug_assert!(ntags > 0, "cluster called on untagged box");
    let eff = ntags as f64 / candidate.num_cells() as f64;
    if eff >= efficiency || candidate.num_cells() == 1 {
        out.push(candidate);
        return;
    }
    let Some(at_axis) = find_split(tags, candidate) else {
        out.push(candidate);
        return;
    };
    let (axis, at) = at_axis;
    let (a, b) = candidate
        .chop(axis, at)
        .expect("find_split returned an interior plane");
    for half in [a, b] {
        if let Some(bb) = bounding_box(tags, half) {
            cluster(tags, bb, efficiency, out);
        }
    }
}

/// Chooses a split plane: first a signature hole, then the strongest
/// Laplacian sign-change (inflection), finally the midpoint of the longest
/// axis. Returns `(axis, at)` where `at` is a valid `chop` plane, or `None`
/// if the box cannot be split.
#[allow(clippy::needless_range_loop)] // axis loops read clearer than zip chains here
fn find_split(tags: &Raster, bx: Box3) -> Option<(usize, i64)> {
    let size = bx.size();
    // Signatures: tag counts per plane along each axis.
    let mut sigs: [Vec<usize>; 3] = [vec![0; size[0]], vec![0; size[1]], vec![0; size[2]]];
    for cell in bx.cells() {
        if tags.get_unchecked(cell) {
            let d = cell - bx.lo();
            sigs[0][d[0] as usize] += 1;
            sigs[1][d[1] as usize] += 1;
            sigs[2][d[2] as usize] += 1;
        }
    }

    // 1. Holes — prefer the one closest to the box center, on the longest
    //    possible axis.
    let mut best_hole: Option<(usize, i64, i64)> = None; // (axis, at, dist-to-center)
    for axis in 0..3 {
        let n = size[axis];
        for (i, &s) in sigs[axis].iter().enumerate() {
            if s == 0 && i > 0 {
                let at = bx.lo()[axis] + i as i64;
                let dist = (2 * i as i64 - n as i64).abs();
                if best_hole.is_none_or(|(_, _, d)| dist < d) {
                    best_hole = Some((axis, at, dist));
                }
            }
        }
    }
    if let Some((axis, at, _)) = best_hole {
        return Some((axis, at));
    }

    // 2. Inflection: largest |Δlap| across a sign change of the discrete
    //    Laplacian of the signature.
    let mut best_infl: Option<(usize, i64, i64)> = None; // (axis, at, strength)
    for axis in 0..3 {
        let sig = &sigs[axis];
        let n = sig.len();
        if n < 4 {
            continue;
        }
        let lap: Vec<i64> = (1..n - 1)
            .map(|i| sig[i - 1] as i64 - 2 * sig[i] as i64 + sig[i + 1] as i64)
            .collect();
        for w in 0..lap.len().saturating_sub(1) {
            if lap[w].signum() * lap[w + 1].signum() < 0 {
                let strength = (lap[w + 1] - lap[w]).abs();
                // Laplacian index w corresponds to plane offset w+1; the
                // sign change sits between offsets w+1 and w+2.
                let at = bx.lo()[axis] + w as i64 + 2;
                if at > bx.lo()[axis]
                    && at <= bx.hi()[axis]
                    && best_infl.is_none_or(|(_, _, s)| strength > s)
                {
                    best_infl = Some((axis, at, strength));
                }
            }
        }
    }
    if let Some((axis, at, _)) = best_infl {
        return Some((axis, at));
    }

    // 3. Midpoint of the longest axis.
    let axis = bx.longest_axis();
    if size[axis] < 2 {
        return None;
    }
    Some((axis, bx.lo()[axis] + size[axis] as i64 / 2))
}

/// Convenience: tags every cell of a dense field (over `region`) where
/// `pred(value)` holds.
pub fn tag_where(region: Box3, values: &[f64], pred: impl Fn(f64) -> bool) -> Raster {
    assert_eq!(values.len(), region.num_cells());
    let mut tags = Raster::falses(region);
    for (n, cell) in region.cells().enumerate() {
        if pred(values[n]) {
            tags.set(cell, true);
        }
    }
    tags
}

/// Convenience: tags cells where the centered-difference gradient magnitude
/// of a dense field exceeds `threshold` (one-sided at the region boundary).
pub fn tag_gradient(region: Box3, values: &[f64], threshold: f64) -> Raster {
    assert_eq!(values.len(), region.num_cells());
    let [nx, ny, nz] = region.size();
    let idx = |i: usize, j: usize, k: usize| i + nx * (j + ny * k);
    let mut tags = Raster::falses(region);
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let v = |a: isize, b: isize, c: isize| {
                    let ii = (i as isize + a).clamp(0, nx as isize - 1) as usize;
                    let jj = (j as isize + b).clamp(0, ny as isize - 1) as usize;
                    let kk = (k as isize + c).clamp(0, nz as isize - 1) as usize;
                    values[idx(ii, jj, kk)]
                };
                let gx = 0.5 * (v(1, 0, 0) - v(-1, 0, 0));
                let gy = 0.5 * (v(0, 1, 0) - v(0, -1, 0));
                let gz = 0.5 * (v(0, 0, 1) - v(0, 0, -1));
                if (gx * gx + gy * gy + gz * gz).sqrt() > threshold {
                    tags.set(
                        region.lo() + IntVect::new(i as i64, j as i64, k as i64),
                        true,
                    );
                }
            }
        }
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: [i64; 3], hi: [i64; 3]) -> Box3 {
        Box3::new(IntVect(lo), IntVect(hi))
    }

    fn check_invariants(tags: &Raster, ba: &BoxArray) {
        assert!(ba.validate_disjoint().is_ok(), "boxes overlap");
        for cell in tags.true_cells() {
            assert!(ba.contains(cell), "tagged cell {cell:?} not covered");
        }
        for bx in ba.iter() {
            assert!(tags.region().contains_box(bx), "box {bx} escapes domain");
        }
    }

    #[test]
    fn empty_tags_give_no_boxes() {
        let tags = Raster::falses(b([0, 0, 0], [15, 15, 15]));
        let ba = berger_rigoutsos(&tags, &RegridConfig::default());
        assert!(ba.is_empty());
    }

    #[test]
    fn single_cluster_yields_tight_box() {
        let mut tags = Raster::falses(b([0, 0, 0], [31, 31, 31]));
        tags.set_box(&b([8, 8, 8], [15, 15, 15]), true);
        let cfg = RegridConfig {
            blocking_factor: 4,
            ..Default::default()
        };
        let ba = berger_rigoutsos(&tags, &cfg);
        check_invariants(&tags, &ba);
        // The cluster is exactly blocking-aligned, so coverage should be tight.
        assert_eq!(ba.num_cells(), 8 * 8 * 8);
    }

    #[test]
    fn two_separated_clusters_split() {
        let mut tags = Raster::falses(b([0, 0, 0], [31, 31, 31]));
        tags.set_box(&b([0, 0, 0], [7, 7, 7]), true);
        tags.set_box(&b([24, 24, 24], [31, 31, 31]), true);
        let cfg = RegridConfig {
            blocking_factor: 4,
            ..Default::default()
        };
        let ba = berger_rigoutsos(&tags, &cfg);
        check_invariants(&tags, &ba);
        assert!(ba.len() >= 2, "expected a split, got {:?}", ba.boxes());
        // Efficiency: the two tight clusters shouldn't blow up coverage.
        assert!(ba.num_cells() <= 2 * 512 + 4096, "coverage too loose");
    }

    #[test]
    fn l_shaped_cluster_respects_efficiency() {
        let mut tags = Raster::falses(b([0, 0, 0], [31, 31, 7]));
        tags.set_box(&b([0, 0, 0], [31, 7, 7]), true);
        tags.set_box(&b([0, 8, 0], [7, 31, 7]), true);
        let cfg = RegridConfig {
            efficiency: 0.8,
            blocking_factor: 4,
            ..Default::default()
        };
        let ba = berger_rigoutsos(&tags, &cfg);
        check_invariants(&tags, &ba);
        let tagged = tags.count();
        let covered = ba.num_cells();
        assert!(
            (covered as f64) < 1.6 * tagged as f64,
            "L-shape covered inefficiently: {covered} cells for {tagged} tags"
        );
    }

    #[test]
    fn boxes_align_to_blocking_factor() {
        let mut tags = Raster::falses(b([0, 0, 0], [31, 31, 31]));
        tags.set(IntVect::new(13, 17, 5), true);
        let cfg = RegridConfig {
            blocking_factor: 8,
            ..Default::default()
        };
        let ba = berger_rigoutsos(&tags, &cfg);
        check_invariants(&tags, &ba);
        for bx in ba.iter() {
            assert!(bx.is_aligned(8), "{bx} not aligned");
        }
    }

    #[test]
    fn max_box_cells_enforced() {
        let tags = Raster::trues(b([0, 0, 0], [31, 31, 31]));
        let cfg = RegridConfig {
            blocking_factor: 4,
            max_box_cells: Some(1024),
            ..Default::default()
        };
        let ba = berger_rigoutsos(&tags, &cfg);
        check_invariants(&tags, &ba);
        for bx in ba.iter() {
            assert!(bx.num_cells() <= 1024);
        }
        assert_eq!(ba.num_cells(), 32 * 32 * 32);
    }

    #[test]
    fn tag_where_predicate() {
        let region = b([0, 0, 0], [3, 3, 3]);
        let vals: Vec<f64> = region.cells().map(|c| c.sum() as f64).collect();
        let tags = tag_where(region, &vals, |v| v > 7.0);
        assert_eq!(tags.count(), vals.iter().filter(|&&v| v > 7.0).count());
    }

    #[test]
    fn tag_gradient_flags_interfaces() {
        let region = b([0, 0, 0], [7, 7, 7]);
        // Step function along x: gradient concentrated at x≈3.5.
        let vals: Vec<f64> = region
            .cells()
            .map(|c| if c[0] <= 3 { 0.0 } else { 10.0 })
            .collect();
        let tags = tag_gradient(region, &vals, 1.0);
        assert!(tags.any());
        for cell in tags.true_cells() {
            assert!(
                (3..=4).contains(&cell[0]),
                "tag far from interface: {cell:?}"
            );
        }
    }
}
