//! A simple on-disk plotfile format for AMR hierarchies.
//!
//! Layout mirrors the spirit of AMReX plotfiles / HDF5 groups (paper §2.2,
//! Fig. 3): one human-readable header describing geometry, refinement
//! ratios, box arrays and fields, plus one raw binary file per
//! (field, level) holding all fab data concatenated in box order,
//! little-endian `f64`.
//!
//! ```text
//! <dir>/
//!   Header.json
//!   <field>_L<level>.bin
//! ```

use std::fs;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use amrviz_json::Json;

use crate::box_array::BoxArray;
use crate::boxes::Box3;
use crate::error::AmrError;
use crate::geometry::Geometry;
use crate::hierarchy::AmrHierarchy;
use crate::multifab::MultiFab;

/// Serialized header describing a hierarchy.
#[derive(Debug)]
struct Header {
    /// Format magic/version — bump on incompatible changes.
    version: u32,
    geometry: Geometry,
    ref_ratios: Vec<i64>,
    box_arrays: Vec<BoxArray>,
    fields: Vec<String>,
    time: f64,
    step: u64,
}

const VERSION: u32 = 1;

fn ivec_json(iv: crate::ivec::IntVect) -> Json {
    Json::Arr(iv.0.iter().map(|&c| Json::Num(c as f64)).collect())
}

fn ivec_from(v: &Json) -> Option<crate::ivec::IntVect> {
    let a = v.as_arr()?;
    if a.len() != 3 {
        return None;
    }
    Some(crate::ivec::IntVect([
        a[0].as_i64()?,
        a[1].as_i64()?,
        a[2].as_i64()?,
    ]))
}

fn box_json(bx: Box3) -> Json {
    let mut o = Json::obj();
    o.set("lo", ivec_json(bx.lo()))
        .set("hi", ivec_json(bx.hi()));
    o
}

fn box_from(v: &Json) -> Option<Box3> {
    let lo = ivec_from(v.get("lo")?)?;
    let hi = ivec_from(v.get("hi")?)?;
    if !lo.all_le(hi) {
        return None;
    }
    Some(Box3::new(lo, hi))
}

fn f3_json(v: [f64; 3]) -> Json {
    Json::Arr(v.iter().map(|&c| Json::Num(c)).collect())
}

fn f3_from(v: &Json) -> Option<[f64; 3]> {
    let a = v.as_arr()?;
    if a.len() != 3 {
        return None;
    }
    Some([a[0].as_f64()?, a[1].as_f64()?, a[2].as_f64()?])
}

impl Header {
    fn to_json(&self) -> Json {
        let mut geom = Json::obj();
        geom.set("domain", box_json(self.geometry.domain))
            .set("prob_lo", f3_json(self.geometry.prob_lo))
            .set("prob_hi", f3_json(self.geometry.prob_hi));
        let mut o = Json::obj();
        o.set("version", self.version)
            .set("geometry", geom)
            .set(
                "ref_ratios",
                Json::Arr(
                    self.ref_ratios
                        .iter()
                        .map(|&r| Json::Num(r as f64))
                        .collect(),
                ),
            )
            .set(
                "box_arrays",
                Json::Arr(
                    self.box_arrays
                        .iter()
                        .map(|ba| {
                            let mut o = Json::obj();
                            o.set(
                                "boxes",
                                Json::Arr(ba.boxes().iter().map(|&b| box_json(b)).collect()),
                            );
                            o
                        })
                        .collect(),
                ),
            )
            .set(
                "fields",
                Json::Arr(self.fields.iter().map(|f| Json::Str(f.clone())).collect()),
            )
            .set("time", self.time)
            .set("step", self.step);
        o
    }

    fn from_json(v: &Json) -> Option<Header> {
        let g = v.get("geometry")?;
        let geometry = Geometry::new(
            box_from(g.get("domain")?)?,
            f3_from(g.get("prob_lo")?)?,
            f3_from(g.get("prob_hi")?)?,
        );
        Some(Header {
            version: v.get("version")?.as_u64()? as u32,
            geometry,
            ref_ratios: v
                .get("ref_ratios")?
                .as_arr()?
                .iter()
                .map(Json::as_i64)
                .collect::<Option<_>>()?,
            box_arrays: v
                .get("box_arrays")?
                .as_arr()?
                .iter()
                .map(|ba| {
                    Some(BoxArray::new(
                        ba.get("boxes")?
                            .as_arr()?
                            .iter()
                            .map(box_from)
                            .collect::<Option<_>>()?,
                    ))
                })
                .collect::<Option<_>>()?,
            fields: v
                .get("fields")?
                .as_arr()?
                .iter()
                .map(|f| f.as_str().map(str::to_string))
                .collect::<Option<_>>()?,
            time: v.get("time")?.as_f64()?,
            step: v.get("step")?.as_u64()?,
        })
    }
}

/// Writes a hierarchy (all fields) to `dir`, creating it if needed.
pub fn write_plotfile(dir: &Path, hier: &AmrHierarchy) -> Result<(), AmrError> {
    fs::create_dir_all(dir)?;
    let header = Header {
        version: VERSION,
        geometry: *hier.geometry(),
        ref_ratios: hier.ref_ratios().to_vec(),
        box_arrays: hier.box_arrays().to_vec(),
        fields: hier.field_names().iter().map(|s| s.to_string()).collect(),
        time: hier.time,
        step: hier.step,
    };
    fs::write(dir.join("Header.json"), header.to_json().to_string_pretty())?;

    for field in hier.fields() {
        for (lev, mf) in field.levels.iter().enumerate() {
            let path = dir.join(format!("{}_L{}.bin", field.name, lev));
            let mut w = BufWriter::new(fs::File::create(path)?);
            for fab in mf.fabs() {
                for &v in fab.data() {
                    w.write_all(&v.to_le_bytes())?;
                }
            }
            w.flush()?;
        }
    }
    Ok(())
}

/// Reads a hierarchy (all fields) from `dir`, with the default
/// (permissive) [`amrviz_codec::DecodeBudget`].
pub fn read_plotfile(dir: &Path) -> Result<AmrHierarchy, AmrError> {
    read_plotfile_budgeted(dir, &amrviz_codec::DecodeBudget::default())
}

/// Reads a hierarchy from `dir`, validating every size the header declares
/// — box dimensions, per-level cell counts — against `budget` and against
/// the actual on-disk file sizes *before* any data buffer is allocated. A
/// corrupted header cannot make this function reserve absurd memory.
pub fn read_plotfile_budgeted(
    dir: &Path,
    budget: &amrviz_codec::DecodeBudget,
) -> Result<AmrHierarchy, AmrError> {
    let header_text = fs::read_to_string(dir.join("Header.json"))?;
    let header_value =
        Json::parse(&header_text).map_err(|e| AmrError::Corrupt(format!("header parse: {e}")))?;
    let header = Header::from_json(&header_value)
        .ok_or_else(|| AmrError::Corrupt("header: missing or mistyped field".into()))?;
    if header.version != VERSION {
        return Err(AmrError::Corrupt(format!(
            "unsupported plotfile version {}",
            header.version
        )));
    }
    // Validate every declared box against the budget before the hierarchy
    // (covered masks, etc.) computes anything from them.
    for ba in &header.box_arrays {
        for bx in ba.boxes() {
            let [sx, sy, sz] = bx.size();
            for d in [sx, sy, sz] {
                budget
                    .check_dim(d)
                    .map_err(|e| AmrError::Corrupt(format!("header box: {e}")))?;
            }
            sx.checked_mul(sy)
                .and_then(|v| v.checked_mul(sz))
                .ok_or_else(|| AmrError::Corrupt("header box cell count overflow".into()))?;
        }
    }
    let mut hier = AmrHierarchy::new(header.geometry, header.ref_ratios, header.box_arrays)?;
    hier.time = header.time;
    hier.step = header.step;

    for name in &header.fields {
        let mut levels = Vec::with_capacity(hier.num_levels());
        for lev in 0..hier.num_levels() {
            let ba = hier.box_array(lev).clone();
            let path = dir.join(format!("{name}_L{lev}.bin"));
            let expected = ba
                .boxes()
                .iter()
                .try_fold(0usize, |acc, bx| acc.checked_add(bx.num_cells()))
                .ok_or_else(|| AmrError::Corrupt("level cell count overflow".into()))?;
            budget
                .check_values(expected)
                .map_err(|e| AmrError::Corrupt(format!("level {lev}: {e}")))?;
            let nbytes = expected
                .checked_mul(8)
                .ok_or_else(|| AmrError::Corrupt("level byte count overflow".into()))?;
            // Compare the declared size against the file on disk before
            // reserving a buffer for it.
            let file_len = fs::metadata(&path)?.len();
            if file_len != nbytes as u64 {
                return Err(AmrError::Corrupt(format!(
                    "{}: expected {} bytes, found {}",
                    path.display(),
                    nbytes,
                    file_len
                )));
            }
            let mut r = BufReader::new(fs::File::open(&path)?);
            let mut bytes = Vec::with_capacity(nbytes);
            r.read_to_end(&mut bytes)?;
            if bytes.len() != nbytes {
                return Err(AmrError::Corrupt(format!(
                    "{}: expected {} bytes, read {}",
                    path.display(),
                    nbytes,
                    bytes.len()
                )));
            }
            let flat: Vec<f64> = bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
                .collect();
            levels.push(MultiFab::from_flat(&ba, &flat));
        }
        hier.add_field(name, levels)?;
    }
    Ok(hier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxes::Box3;
    use crate::ivec::IntVect;

    fn sample_hierarchy() -> AmrHierarchy {
        let geom = Geometry::new(Box3::from_dims(8, 8, 8), [0.0, 0.0, 0.0], [1.0, 2.0, 3.0]);
        let mut h = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::new(vec![
                    Box3::new(IntVect::new(0, 0, 0), IntVect::new(7, 7, 7)),
                    Box3::new(IntVect::new(8, 8, 8), IntVect::new(15, 15, 15)),
                ]),
            ],
        )
        .unwrap();
        h.time = 1.25;
        h.step = 42;
        h.add_field_from_fn("density", |lev, iv| {
            lev as f64 * 1000.0 + iv[0] as f64 + 0.5 * iv[1] as f64 - iv[2] as f64
        })
        .unwrap();
        h.add_field_from_fn("temp", |_, iv| (iv.sum() as f64).exp() % 7.0)
            .unwrap();
        h
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dir = std::env::temp_dir().join(format!("amrviz_pf_{}", std::process::id()));
        let h = sample_hierarchy();
        write_plotfile(&dir, &h).unwrap();
        let back = read_plotfile(&dir).unwrap();
        assert_eq!(back.num_levels(), h.num_levels());
        assert_eq!(back.ref_ratios(), h.ref_ratios());
        assert_eq!(back.geometry(), h.geometry());
        assert_eq!(back.time, 1.25);
        assert_eq!(back.step, 42);
        assert_eq!(back.field_names(), h.field_names());
        for name in ["density", "temp"] {
            for lev in 0..h.num_levels() {
                let a = h.field_level(name, lev).unwrap();
                let b = back.field_level(name, lev).unwrap();
                assert_eq!(a, b, "{name} level {lev} differs");
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_data_detected() {
        let dir = std::env::temp_dir().join(format!("amrviz_pf_trunc_{}", std::process::id()));
        let h = sample_hierarchy();
        write_plotfile(&dir, &h).unwrap();
        // Truncate one data file.
        let victim = dir.join("density_L0.bin");
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() - 8]).unwrap();
        match read_plotfile(&dir) {
            Err(AmrError::Corrupt(msg)) => assert!(msg.contains("expected")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_is_io_error() {
        let res = read_plotfile(Path::new("/nonexistent/amrviz_nope"));
        assert!(matches!(res, Err(AmrError::Io(_))));
    }

    #[test]
    fn absurd_header_box_rejected_before_allocation() {
        let dir = std::env::temp_dir().join(format!("amrviz_pf_huge_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        // A header declaring a ~2^40-cell-per-axis box. The reader must
        // reject it from the header alone — no data file is even opened
        // (none exists), and nothing is allocated for it.
        let header = r#"{
            "version": 1,
            "geometry": {
                "domain": {"lo": [0, 0, 0], "hi": [1099511627775, 7, 7]},
                "prob_lo": [0.0, 0.0, 0.0],
                "prob_hi": [1.0, 1.0, 1.0]
            },
            "ref_ratios": [],
            "box_arrays": [{"boxes": [{"lo": [0, 0, 0], "hi": [1099511627775, 7, 7]}]}],
            "fields": ["density"],
            "time": 0.0,
            "step": 0
        }"#;
        fs::write(dir.join("Header.json"), header).unwrap();
        match read_plotfile(&dir) {
            Err(AmrError::Corrupt(msg)) => {
                assert!(msg.contains("header box"), "unexpected message: {msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_caps_level_cell_count() {
        let dir = std::env::temp_dir().join(format!("amrviz_pf_budget_{}", std::process::id()));
        let h = sample_hierarchy();
        write_plotfile(&dir, &h).unwrap();
        let tight = amrviz_codec::DecodeBudget {
            max_values: 100, // level 0 alone has 512 cells
            ..amrviz_codec::DecodeBudget::default()
        };
        match read_plotfile_budgeted(&dir, &tight) {
            Err(AmrError::Corrupt(msg)) => assert!(msg.contains("level")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The same plotfile reads fine under the default budget.
        assert!(read_plotfile(&dir).is_ok());
        fs::remove_dir_all(&dir).ok();
    }
}
