//! Integer index vectors for the 3D structured index space.

use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A point in the integer index space (cell or node index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntVect(pub [i64; 3]);

impl IntVect {
    pub const ZERO: IntVect = IntVect([0, 0, 0]);
    pub const UNIT: IntVect = IntVect([1, 1, 1]);

    #[inline]
    pub const fn new(x: i64, y: i64, z: i64) -> Self {
        IntVect([x, y, z])
    }

    /// All components equal to `v`.
    #[inline]
    pub const fn splat(v: i64) -> Self {
        IntVect([v, v, v])
    }

    #[inline]
    pub fn x(&self) -> i64 {
        self.0[0]
    }

    #[inline]
    pub fn y(&self) -> i64 {
        self.0[1]
    }

    #[inline]
    pub fn z(&self) -> i64 {
        self.0[2]
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: IntVect) -> IntVect {
        IntVect([
            self.0[0].min(o.0[0]),
            self.0[1].min(o.0[1]),
            self.0[2].min(o.0[2]),
        ])
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: IntVect) -> IntVect {
        IntVect([
            self.0[0].max(o.0[0]),
            self.0[1].max(o.0[1]),
            self.0[2].max(o.0[2]),
        ])
    }

    /// Component-wise multiplication.
    #[inline]
    pub fn mul_elem(self, o: IntVect) -> IntVect {
        IntVect([self.0[0] * o.0[0], self.0[1] * o.0[1], self.0[2] * o.0[2]])
    }

    /// Floor division by a positive scalar — the coarsening map. Rounds
    /// toward negative infinity so that, e.g., index −1 coarsened by 2 maps
    /// to −1 (the cell containing it), matching AMReX `coarsen` semantics.
    #[inline]
    pub fn coarsen(self, ratio: i64) -> IntVect {
        debug_assert!(ratio > 0);
        IntVect([
            self.0[0].div_euclid(ratio),
            self.0[1].div_euclid(ratio),
            self.0[2].div_euclid(ratio),
        ])
    }

    /// Multiplication by a positive scalar — the refinement map for a cell's
    /// low corner.
    #[inline]
    pub fn refine(self, ratio: i64) -> IntVect {
        debug_assert!(ratio > 0);
        IntVect([self.0[0] * ratio, self.0[1] * ratio, self.0[2] * ratio])
    }

    /// True if all components of `self` are `<=` those of `o`.
    #[inline]
    pub fn all_le(self, o: IntVect) -> bool {
        self.0[0] <= o.0[0] && self.0[1] <= o.0[1] && self.0[2] <= o.0[2]
    }

    /// True if all components of `self` are `>=` those of `o`.
    #[inline]
    pub fn all_ge(self, o: IntVect) -> bool {
        self.0[0] >= o.0[0] && self.0[1] >= o.0[1] && self.0[2] >= o.0[2]
    }

    /// Sum of components.
    #[inline]
    pub fn sum(self) -> i64 {
        self.0[0] + self.0[1] + self.0[2]
    }
}

impl Index<usize> for IntVect {
    type Output = i64;
    #[inline]
    fn index(&self, i: usize) -> &i64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for IntVect {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut i64 {
        &mut self.0[i]
    }
}

impl Add for IntVect {
    type Output = IntVect;
    #[inline]
    fn add(self, o: IntVect) -> IntVect {
        IntVect([self.0[0] + o.0[0], self.0[1] + o.0[1], self.0[2] + o.0[2]])
    }
}

impl AddAssign for IntVect {
    #[inline]
    fn add_assign(&mut self, o: IntVect) {
        *self = *self + o;
    }
}

impl Sub for IntVect {
    type Output = IntVect;
    #[inline]
    fn sub(self, o: IntVect) -> IntVect {
        IntVect([self.0[0] - o.0[0], self.0[1] - o.0[1], self.0[2] - o.0[2]])
    }
}

impl SubAssign for IntVect {
    #[inline]
    fn sub_assign(&mut self, o: IntVect) {
        *self = *self - o;
    }
}

impl Mul<i64> for IntVect {
    type Output = IntVect;
    #[inline]
    fn mul(self, s: i64) -> IntVect {
        IntVect([self.0[0] * s, self.0[1] * s, self.0[2] * s])
    }
}

impl Neg for IntVect {
    type Output = IntVect;
    #[inline]
    fn neg(self) -> IntVect {
        IntVect([-self.0[0], -self.0[1], -self.0[2]])
    }
}

impl From<[i64; 3]> for IntVect {
    fn from(a: [i64; 3]) -> Self {
        IntVect(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = IntVect::new(1, 2, 3);
        let b = IntVect::new(4, -1, 0);
        assert_eq!(a + b, IntVect::new(5, 1, 3));
        assert_eq!(a - b, IntVect::new(-3, 3, 3));
        assert_eq!(a * 2, IntVect::new(2, 4, 6));
        assert_eq!(-a, IntVect::new(-1, -2, -3));
        assert_eq!(a.mul_elem(b), IntVect::new(4, -2, 0));
    }

    #[test]
    fn coarsen_rounds_toward_neg_infinity() {
        assert_eq!(IntVect::new(5, -1, -4).coarsen(2), IntVect::new(2, -1, -2));
        assert_eq!(IntVect::new(-5, 4, 0).coarsen(4), IntVect::new(-2, 1, 0));
    }

    #[test]
    fn refine_then_coarsen_is_identity() {
        for v in [-7i64, -1, 0, 1, 13] {
            let iv = IntVect::splat(v);
            assert_eq!(iv.refine(2).coarsen(2), iv);
            assert_eq!(iv.refine(4).coarsen(4), iv);
        }
    }

    #[test]
    fn min_max_orderings() {
        let a = IntVect::new(1, 5, -2);
        let b = IntVect::new(2, 3, -2);
        assert_eq!(a.min(b), IntVect::new(1, 3, -2));
        assert_eq!(a.max(b), IntVect::new(2, 5, -2));
        assert!(a.min(b).all_le(a));
        assert!(a.max(b).all_ge(b));
    }
}
