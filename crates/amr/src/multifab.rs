//! `MultiFab` — one scalar field over the box array of an AMR level.

use crate::box_array::BoxArray;
use crate::boxes::Box3;
use crate::fab::Fab;
use crate::ivec::IntVect;

/// A field over a whole level: one [`Fab`] per box of the level's
/// [`BoxArray`], in the same order.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiFab {
    fabs: Vec<Fab>,
}

impl MultiFab {
    /// Zero-filled field on `ba`.
    pub fn zeros(ba: &BoxArray) -> Self {
        MultiFab {
            fabs: ba.iter().map(|&bx| Fab::zeros(bx)).collect(),
        }
    }

    /// Builds a field by evaluating `f` at every cell of every box.
    /// Evaluation is parallel over boxes.
    pub fn from_fn(ba: &BoxArray, f: impl Fn(IntVect) -> f64 + Sync) -> Self {
        let boxes = ba.boxes();
        let fabs = amrviz_par::run(boxes.len(), |i| Fab::from_fn(boxes[i], &f));
        MultiFab { fabs }
    }

    pub fn from_fabs(fabs: Vec<Fab>) -> Self {
        MultiFab { fabs }
    }

    pub fn fabs(&self) -> &[Fab] {
        &self.fabs
    }

    pub fn fabs_mut(&mut self) -> &mut [Fab] {
        &mut self.fabs
    }

    pub fn len(&self) -> usize {
        self.fabs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fabs.is_empty()
    }

    /// The box array this field lives on.
    pub fn box_array(&self) -> BoxArray {
        BoxArray::new(self.fabs.iter().map(|f| f.box3()).collect())
    }

    /// Total cell count.
    pub fn num_cells(&self) -> usize {
        self.fabs.iter().map(|f| f.box3().num_cells()).sum()
    }

    /// Looks up the value at a cell, scanning boxes (patch-based levels are
    /// disjoint, so the first hit is authoritative).
    pub fn value_at(&self, iv: IntVect) -> Option<f64> {
        self.fabs.iter().find_map(|f| f.try_get(iv))
    }

    /// Global minimum across all fabs.
    pub fn min(&self) -> f64 {
        amrviz_par::run(self.fabs.len(), |i| self.fabs[i].min())
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }

    /// Global maximum across all fabs.
    pub fn max(&self) -> f64 {
        amrviz_par::run(self.fabs.len(), |i| self.fabs[i].max())
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// `(min, max)` in a single pass. Per-fab extrema are computed in
    /// parallel and folded in box order, so the result is thread-count
    /// independent.
    pub fn min_max(&self) -> (f64, f64) {
        amrviz_par::run(self.fabs.len(), |i| {
            self.fabs[i]
                .data()
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                })
        })
        .into_iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(al, ah), (bl, bh)| {
            (al.min(bl), ah.max(bh))
        })
    }

    /// L2 norm of all values. Partial sums are per fab and combined in box
    /// order — bit-identical at any thread count.
    pub fn norm_l2(&self) -> f64 {
        amrviz_par::run(self.fabs.len(), |i| {
            self.fabs[i].data().iter().map(|v| v * v).sum::<f64>()
        })
        .into_iter()
        .sum::<f64>()
        .sqrt()
    }

    /// Copies overlapping regions from `src` into `self` (fab-by-fab
    /// all-pairs; counts copied cells).
    pub fn copy_from(&mut self, src: &MultiFab) -> usize {
        let mut copied = 0;
        for dst in &mut self.fabs {
            for s in &src.fabs {
                copied += dst.copy_from(s);
            }
        }
        copied
    }

    /// Applies `f` to every value, in parallel over fabs.
    pub fn apply(&mut self, f: impl Fn(f64) -> f64 + Sync) {
        amrviz_par::for_each_chunk_mut(&mut self.fabs, 1, |_, chunk| {
            chunk[0].apply(&f);
        });
    }

    /// Concatenates all fab buffers into one `Vec` in box order. The inverse
    /// of [`MultiFab::from_flat`].
    pub fn to_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_cells());
        for f in &self.fabs {
            out.extend_from_slice(f.data());
        }
        out
    }

    /// Rebuilds a multifab from a flat buffer laid out like
    /// [`MultiFab::to_flat`] over `ba`.
    pub fn from_flat(ba: &BoxArray, flat: &[f64]) -> Self {
        assert_eq!(flat.len(), ba.num_cells(), "flat buffer size mismatch");
        let mut fabs = Vec::with_capacity(ba.len());
        let mut off = 0;
        for &bx in ba.iter() {
            let n = bx.num_cells();
            fabs.push(Fab::from_vec(bx, flat[off..off + n].to_vec()));
            off += n;
        }
        MultiFab { fabs }
    }
}

/// Rasterizes a multifab onto a dense array over `region`, writing values of
/// cells covered by the multifab and leaving others untouched. Returns the
/// number of cells written.
pub fn rasterize_into(mf: &MultiFab, region: Box3, out: &mut [f64]) -> usize {
    assert_eq!(out.len(), region.num_cells());
    let [nx, ny, _] = region.size();
    let mut written = 0;
    for fab in mf.fabs() {
        let Some(overlap) = fab.box3().intersect(&region) else {
            continue;
        };
        let src_bx = fab.box3();
        let [snx, sny, _] = src_bx.size();
        let [onx, ony, onz] = overlap.size();
        let dlo = overlap.lo() - region.lo();
        let slo = overlap.lo() - src_bx.lo();
        for kk in 0..onz {
            for jj in 0..ony {
                let drow =
                    (dlo[0] as usize) + nx * ((dlo[1] as usize + jj) + ny * (dlo[2] as usize + kk));
                let srow = (slo[0] as usize)
                    + snx * ((slo[1] as usize + jj) + sny * (slo[2] as usize + kk));
                out[drow..drow + onx].copy_from_slice(&fab.data()[srow..srow + onx]);
            }
        }
        written += onx * ony * onz;
    }
    written
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: [i64; 3], hi: [i64; 3]) -> Box3 {
        Box3::new(IntVect(lo), IntVect(hi))
    }

    fn sample_ba() -> BoxArray {
        BoxArray::new(vec![b([0, 0, 0], [3, 3, 3]), b([4, 0, 0], [7, 3, 3])])
    }

    #[test]
    fn from_fn_fills_all_boxes() {
        let ba = sample_ba();
        let mf = MultiFab::from_fn(&ba, |iv| iv[0] as f64);
        assert_eq!(mf.num_cells(), ba.num_cells());
        assert_eq!(mf.value_at(IntVect::new(6, 1, 2)), Some(6.0));
        assert_eq!(mf.value_at(IntVect::new(8, 0, 0)), None);
        assert_eq!(mf.min(), 0.0);
        assert_eq!(mf.max(), 7.0);
        assert_eq!(mf.min_max(), (0.0, 7.0));
    }

    #[test]
    fn flat_roundtrip() {
        let ba = sample_ba();
        let mf = MultiFab::from_fn(&ba, |iv| (iv[0] + 10 * iv[1] + 100 * iv[2]) as f64);
        let flat = mf.to_flat();
        let back = MultiFab::from_flat(&ba, &flat);
        assert_eq!(mf, back);
    }

    #[test]
    fn copy_from_transfers_overlap() {
        let ba = sample_ba();
        let mut dst = MultiFab::zeros(&ba);
        let src = MultiFab::from_fn(&BoxArray::single(b([2, 0, 0], [5, 3, 3])), |_| 9.0);
        let copied = dst.copy_from(&src);
        assert_eq!(copied, 4 * 4 * 4);
        assert_eq!(dst.value_at(IntVect::new(3, 0, 0)), Some(9.0));
        assert_eq!(dst.value_at(IntVect::new(1, 0, 0)), Some(0.0));
    }

    #[test]
    fn rasterize_into_region() {
        let ba = sample_ba();
        let mf = MultiFab::from_fn(&ba, |iv| iv.sum() as f64);
        let region = b([0, 0, 0], [7, 3, 3]);
        let mut out = vec![f64::NAN; region.num_cells()];
        let written = rasterize_into(&mf, region, &mut out);
        assert_eq!(written, region.num_cells());
        for (n, cell) in region.cells().enumerate() {
            assert_eq!(out[n], cell.sum() as f64);
        }
    }

    #[test]
    fn rasterize_partial_leaves_gaps() {
        let mf = MultiFab::from_fn(&BoxArray::single(b([0, 0, 0], [1, 1, 1])), |_| 1.0);
        let region = b([0, 0, 0], [3, 1, 1]);
        let mut out = vec![-5.0; region.num_cells()];
        let written = rasterize_into(&mf, region, &mut out);
        assert_eq!(written, 8);
        assert_eq!(out.iter().filter(|&&v| v == -5.0).count(), 8);
    }

    #[test]
    fn norms() {
        let mf = MultiFab::from_fn(&BoxArray::single(b([0, 0, 0], [0, 0, 1])), |iv| {
            if iv[2] == 0 {
                3.0
            } else {
                4.0
            }
        });
        assert!((mf.norm_l2() - 5.0).abs() < 1e-12);
    }
}
