//! Cell-centered index boxes — the basic rectangular building block of
//! block-structured AMR.

use crate::ivec::IntVect;

/// A non-empty, cell-centered rectangular region of index space; both
/// corners are inclusive, matching AMReX's `Box` convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Box3 {
    lo: IntVect,
    hi: IntVect,
}

impl Box3 {
    /// Constructs a box from inclusive corners.
    ///
    /// # Panics
    /// Panics if any component of `lo` exceeds the matching component of
    /// `hi` (boxes are non-empty by construction).
    pub fn new(lo: IntVect, hi: IntVect) -> Self {
        assert!(
            lo.all_le(hi),
            "Box3 corners out of order: lo={lo:?} hi={hi:?}"
        );
        Box3 { lo, hi }
    }

    /// Box spanning `[0, n)` in each dimension.
    pub fn from_dims(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "box dims must be positive");
        Box3 {
            lo: IntVect::ZERO,
            hi: IntVect::new(nx as i64 - 1, ny as i64 - 1, nz as i64 - 1),
        }
    }

    /// Unit-volume box containing a single cell.
    pub fn single(cell: IntVect) -> Self {
        Box3 { lo: cell, hi: cell }
    }

    #[inline]
    pub fn lo(&self) -> IntVect {
        self.lo
    }

    #[inline]
    pub fn hi(&self) -> IntVect {
        self.hi
    }

    /// Extent along each axis, in cells.
    #[inline]
    pub fn size(&self) -> [usize; 3] {
        [
            (self.hi[0] - self.lo[0] + 1) as usize,
            (self.hi[1] - self.lo[1] + 1) as usize,
            (self.hi[2] - self.lo[2] + 1) as usize,
        ]
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        let s = self.size();
        s[0] * s[1] * s[2]
    }

    /// Extent along one axis, in cells.
    #[inline]
    pub fn extent(&self, axis: usize) -> usize {
        (self.hi[axis] - self.lo[axis] + 1) as usize
    }

    #[inline]
    pub fn contains(&self, iv: IntVect) -> bool {
        self.lo.all_le(iv) && iv.all_le(self.hi)
    }

    #[inline]
    pub fn contains_box(&self, other: &Box3) -> bool {
        self.contains(other.lo) && self.contains(other.hi)
    }

    /// Intersection, or `None` if disjoint.
    pub fn intersect(&self, other: &Box3) -> Option<Box3> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        lo.all_le(hi).then_some(Box3 { lo, hi })
    }

    pub fn intersects(&self, other: &Box3) -> bool {
        self.lo.max(other.lo).all_le(self.hi.min(other.hi))
    }

    /// Smallest box containing both.
    pub fn union_hull(&self, other: &Box3) -> Box3 {
        Box3 {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Grows the box by `n` cells on every face (may be negative to shrink;
    /// panics if shrinking empties the box).
    pub fn grow(&self, n: i64) -> Box3 {
        Box3::new(self.lo - IntVect::splat(n), self.hi + IntVect::splat(n))
    }

    /// Translates the box.
    pub fn shift(&self, by: IntVect) -> Box3 {
        Box3 {
            lo: self.lo + by,
            hi: self.hi + by,
        }
    }

    /// The refinement map: each cell becomes a `ratio³` block of fine cells.
    pub fn refine(&self, ratio: i64) -> Box3 {
        debug_assert!(ratio > 0);
        Box3 {
            lo: self.lo.refine(ratio),
            hi: self.hi.refine(ratio) + IntVect::splat(ratio - 1),
        }
    }

    /// The coarsening map: the smallest coarse box whose refinement covers
    /// this box.
    pub fn coarsen(&self, ratio: i64) -> Box3 {
        debug_assert!(ratio > 0);
        Box3 {
            lo: self.lo.coarsen(ratio),
            hi: self.hi.coarsen(ratio),
        }
    }

    /// The inward coarsening map: the coarse cells whose entire `ratio³`
    /// block of fine children lies inside this box. Where [`Self::coarsen`]
    /// rounds outward (any overlap counts), this rounds inward (only full
    /// coverage counts); the two agree exactly on aligned boxes. Returns
    /// `None` when no coarse cell is fully covered — e.g. an unaligned
    /// 1×1×1 box.
    pub fn coarsen_inward(&self, ratio: i64) -> Option<Box3> {
        debug_assert!(ratio > 0);
        let ceil_div = |a: i64| -> i64 { -((-a).div_euclid(ratio)) };
        let lo = IntVect([
            ceil_div(self.lo[0]),
            ceil_div(self.lo[1]),
            ceil_div(self.lo[2]),
        ]);
        let hi = (self.hi + IntVect::UNIT).coarsen(ratio) - IntVect::UNIT;
        lo.all_le(hi).then_some(Box3 { lo, hi })
    }

    /// Whether the box's lo/hi are aligned to multiples of `ratio` — i.e.
    /// it is exactly a refinement of a coarse box.
    pub fn is_aligned(&self, ratio: i64) -> bool {
        self.coarsen(ratio).refine(ratio) == *self
    }

    /// Splits the box at cell index `at` along `axis`: the first part keeps
    /// cells `< at`, the second keeps cells `>= at`. Returns `None` unless
    /// `at` is strictly inside the box extent.
    pub fn chop(&self, axis: usize, at: i64) -> Option<(Box3, Box3)> {
        if at <= self.lo[axis] || at > self.hi[axis] {
            return None;
        }
        let mut left_hi = self.hi;
        left_hi[axis] = at - 1;
        let mut right_lo = self.lo;
        right_lo[axis] = at;
        Some((
            Box3 {
                lo: self.lo,
                hi: left_hi,
            },
            Box3 {
                lo: right_lo,
                hi: self.hi,
            },
        ))
    }

    /// The axis with the largest extent (ties broken toward x).
    pub fn longest_axis(&self) -> usize {
        let s = self.size();
        let mut best = 0;
        for axis in 1..3 {
            if s[axis] > s[best] {
                best = axis;
            }
        }
        best
    }

    /// Iterates over all cells in x-fastest order.
    pub fn cells(&self) -> impl Iterator<Item = IntVect> + '_ {
        let (lo, hi) = (self.lo, self.hi);
        (lo[2]..=hi[2]).flat_map(move |k| {
            (lo[1]..=hi[1]).flat_map(move |j| (lo[0]..=hi[0]).map(move |i| IntVect::new(i, j, k)))
        })
    }

    /// Linear offset of `iv` inside the box (x-fastest layout).
    #[inline]
    pub fn offset(&self, iv: IntVect) -> usize {
        debug_assert!(self.contains(iv), "{iv:?} outside {self:?}");
        let s = self.size();
        let d = iv - self.lo;
        d[0] as usize + s[0] * (d[1] as usize + s[1] * d[2] as usize)
    }

    /// Subtraction: the parts of `self` not covered by `cut`, as up to six
    /// disjoint boxes.
    pub fn subtract(&self, cut: &Box3) -> Vec<Box3> {
        let Some(mid) = self.intersect(cut) else {
            return vec![*self];
        };
        if mid == *self {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut rest = *self;
        for axis in 0..3 {
            // Piece below the cut along this axis.
            if rest.lo[axis] < mid.lo()[axis] {
                let mut hi = rest.hi;
                hi[axis] = mid.lo()[axis] - 1;
                out.push(Box3 { lo: rest.lo, hi });
                let mut lo = rest.lo;
                lo[axis] = mid.lo()[axis];
                rest = Box3 { lo, hi: rest.hi };
            }
            // Piece above the cut along this axis.
            if rest.hi[axis] > mid.hi()[axis] {
                let mut lo = rest.lo;
                lo[axis] = mid.hi()[axis] + 1;
                out.push(Box3 { lo, hi: rest.hi });
                let mut hi = rest.hi;
                hi[axis] = mid.hi()[axis];
                rest = Box3 { lo: rest.lo, hi };
            }
        }
        debug_assert_eq!(rest, mid);
        out
    }
}

impl std::fmt::Display for Box3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[({},{},{})..({},{},{})]",
            self.lo[0], self.lo[1], self.lo[2], self.hi[0], self.hi[1], self.hi[2]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: [i64; 3], hi: [i64; 3]) -> Box3 {
        Box3::new(IntVect(lo), IntVect(hi))
    }

    #[test]
    fn size_and_cells() {
        let bx = b([0, 0, 0], [3, 1, 0]);
        assert_eq!(bx.size(), [4, 2, 1]);
        assert_eq!(bx.num_cells(), 8);
        assert_eq!(bx.cells().count(), 8);
        // x-fastest ordering
        let cells: Vec<_> = bx.cells().take(5).collect();
        assert_eq!(cells[0], IntVect::new(0, 0, 0));
        assert_eq!(cells[1], IntVect::new(1, 0, 0));
        assert_eq!(cells[4], IntVect::new(0, 1, 0));
    }

    #[test]
    fn offsets_match_cell_order() {
        let bx = b([-1, 2, 0], [2, 4, 1]);
        for (n, cell) in bx.cells().enumerate() {
            assert_eq!(bx.offset(cell), n);
        }
    }

    #[test]
    fn intersection_cases() {
        let a = b([0, 0, 0], [7, 7, 7]);
        let c = b([4, 4, 4], [10, 10, 10]);
        assert_eq!(a.intersect(&c), Some(b([4, 4, 4], [7, 7, 7])));
        let d = b([8, 0, 0], [9, 7, 7]);
        assert_eq!(a.intersect(&d), None);
        assert!(!a.intersects(&d));
        // Touching along a face still intersects when sharing cells? They
        // share no cells (8 > 7), so no.
        assert!(a.intersects(&b([7, 7, 7], [9, 9, 9])));
    }

    #[test]
    fn refine_coarsen_roundtrip() {
        let bx = b([1, -2, 3], [4, 5, 6]);
        let fine = bx.refine(2);
        assert_eq!(fine, b([2, -4, 6], [9, 11, 13]));
        assert_eq!(fine.coarsen(2), bx);
        assert!(fine.is_aligned(2));
        assert_eq!(fine.num_cells(), bx.num_cells() * 8);
    }

    #[test]
    fn coarsen_inward_agrees_on_aligned_boxes() {
        for ratio in [2, 3, 4] {
            let bx = b([1, -2, 3], [4, 5, 6]).refine(ratio);
            assert_eq!(bx.coarsen_inward(ratio), Some(bx.coarsen(ratio)));
        }
    }

    #[test]
    fn coarsen_inward_drops_partial_cells() {
        // [1..6] at ratio 2: outward → [0..3]; inward keeps only the cells
        // whose full child pair {2k, 2k+1} is present → [1..2].
        let bx = b([1, 1, 1], [6, 6, 6]);
        assert_eq!(bx.coarsen(2), b([0, 0, 0], [3, 3, 3]));
        assert_eq!(bx.coarsen_inward(2), Some(b([1, 1, 1], [2, 2, 2])));
        // A lone unaligned cell fully covers no coarse cell.
        assert_eq!(
            Box3::single(IntVect::new(13, 13, 13)).coarsen_inward(2),
            None
        );
        // …but an aligned 2³ block covers exactly one.
        assert_eq!(
            b([12, 12, 12], [13, 13, 13]).coarsen_inward(2),
            Some(Box3::single(IntVect::new(6, 6, 6)))
        );
        // Negative coordinates round toward −∞ / +∞ correctly.
        assert_eq!(
            b([-4, -4, -4], [-1, -1, -1]).coarsen_inward(2),
            Some(b([-2, -2, -2], [-1, -1, -1]))
        );
        assert_eq!(
            b([-3, -3, -3], [-1, -1, -1]).coarsen_inward(2),
            Some(b([-1, -1, -1], [-1, -1, -1]))
        );
    }

    #[test]
    fn coarsen_unaligned_box_covers_it() {
        let bx = b([1, 1, 1], [6, 6, 6]);
        let coarse = bx.coarsen(4);
        assert!(coarse.refine(4).contains_box(&bx));
        assert!(!bx.is_aligned(4));
    }

    #[test]
    fn chop_partitions() {
        let bx = b([0, 0, 0], [9, 4, 4]);
        let (l, r) = bx.chop(0, 4).unwrap();
        assert_eq!(l, b([0, 0, 0], [3, 4, 4]));
        assert_eq!(r, b([4, 0, 0], [9, 4, 4]));
        assert_eq!(l.num_cells() + r.num_cells(), bx.num_cells());
        assert!(bx.chop(0, 0).is_none());
        assert!(bx.chop(0, 10).is_none());
    }

    #[test]
    fn subtract_disjoint_returns_self() {
        let a = b([0, 0, 0], [3, 3, 3]);
        let c = b([10, 10, 10], [12, 12, 12]);
        assert_eq!(a.subtract(&c), vec![a]);
    }

    #[test]
    fn subtract_covering_returns_empty() {
        let a = b([1, 1, 1], [2, 2, 2]);
        let c = b([0, 0, 0], [5, 5, 5]);
        assert!(a.subtract(&c).is_empty());
    }

    #[test]
    fn subtract_center_hole_preserves_cell_count() {
        let a = b([0, 0, 0], [5, 5, 5]);
        let hole = b([2, 2, 2], [3, 3, 3]);
        let parts = a.subtract(&hole);
        let total: usize = parts.iter().map(Box3::num_cells).sum();
        assert_eq!(total, a.num_cells() - hole.num_cells());
        // Parts must be disjoint and exclude the hole.
        for (i, p) in parts.iter().enumerate() {
            assert!(!p.intersects(&hole));
            for q in &parts[i + 1..] {
                assert!(!p.intersects(q), "{p} overlaps {q}");
            }
        }
    }

    #[test]
    fn longest_axis_detection() {
        assert_eq!(b([0, 0, 0], [9, 3, 3]).longest_axis(), 0);
        assert_eq!(b([0, 0, 0], [3, 9, 3]).longest_axis(), 1);
        assert_eq!(b([0, 0, 0], [3, 3, 9]).longest_axis(), 2);
        assert_eq!(b([0, 0, 0], [3, 3, 3]).longest_axis(), 0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_inverted_corners() {
        b([1, 0, 0], [0, 0, 0]);
    }

    #[test]
    fn grow_and_shift() {
        let bx = b([0, 0, 0], [1, 1, 1]);
        assert_eq!(bx.grow(2), b([-2, -2, -2], [3, 3, 3]));
        assert_eq!(bx.shift(IntVect::new(5, 0, -1)), b([5, 0, -1], [6, 1, 0]));
    }
}
