//! Multi-level AMR hierarchies with named fields.

use std::collections::BTreeMap;

use crate::box_array::BoxArray;
use crate::boxes::Box3;
use crate::error::AmrError;
use crate::geometry::Geometry;
use crate::mask::Raster;
use crate::multifab::MultiFab;

/// One named scalar field, with one [`MultiFab`] per level.
#[derive(Debug, Clone, PartialEq)]
pub struct AmrField {
    pub name: String,
    pub levels: Vec<MultiFab>,
}

/// A patch-based AMR hierarchy: per-level box arrays plus any number of
/// named fields defined on them. Coarse levels keep their data underneath
/// finer levels (the "redundant" coarse data of patch-based AMR).
#[derive(Debug, Clone)]
pub struct AmrHierarchy {
    geom: Geometry,
    /// Refinement ratio between level `l` and `l+1` (length: levels − 1).
    ref_ratios: Vec<i64>,
    box_arrays: Vec<BoxArray>,
    fields: BTreeMap<String, AmrField>,
    /// Simulation time of this snapshot (informational).
    pub time: f64,
    /// Simulation step of this snapshot (informational).
    pub step: u64,
}

impl AmrHierarchy {
    /// Creates a hierarchy from per-level box arrays.
    ///
    /// Level 0 must exactly cover the geometry's domain; every level's boxes
    /// must be pairwise disjoint; every fine box must sit inside the refined
    /// index domain.
    pub fn new(
        geom: Geometry,
        ref_ratios: Vec<i64>,
        box_arrays: Vec<BoxArray>,
    ) -> Result<Self, AmrError> {
        if box_arrays.is_empty() {
            return Err(AmrError::InvalidStructure("no levels".into()));
        }
        if ref_ratios.len() + 1 != box_arrays.len() {
            return Err(AmrError::InvalidStructure(format!(
                "{} ref ratios for {} levels",
                ref_ratios.len(),
                box_arrays.len()
            )));
        }
        if ref_ratios.iter().any(|&r| r < 2) {
            return Err(AmrError::InvalidStructure("ref ratio must be >= 2".into()));
        }
        if !box_arrays[0].covers_exactly(&geom.domain) {
            return Err(AmrError::InvalidStructure(
                "level 0 must cover the domain exactly".into(),
            ));
        }
        let h = AmrHierarchy {
            geom,
            ref_ratios,
            box_arrays,
            fields: BTreeMap::new(),
            time: 0.0,
            step: 0,
        };
        for lev in 0..h.num_levels() {
            if let Err((a, b)) = h.box_arrays[lev].validate_disjoint() {
                return Err(AmrError::InvalidStructure(format!(
                    "level {lev} boxes {a} and {b} overlap"
                )));
            }
            let dom = h.level_domain(lev);
            for bx in h.box_arrays[lev].iter() {
                if !dom.contains_box(bx) {
                    return Err(AmrError::InvalidStructure(format!(
                        "level {lev} box {bx} escapes domain {dom}"
                    )));
                }
            }
        }
        Ok(h)
    }

    /// Single-level hierarchy over the whole domain.
    pub fn single_level(geom: Geometry) -> Self {
        AmrHierarchy::new(geom, Vec::new(), vec![BoxArray::single(geom.domain)])
            .expect("single-level hierarchy is always valid")
    }

    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    pub fn num_levels(&self) -> usize {
        self.box_arrays.len()
    }

    pub fn ref_ratios(&self) -> &[i64] {
        &self.ref_ratios
    }

    /// Refinement ratio between level `lev` and `lev + 1`.
    pub fn ratio_at(&self, lev: usize) -> i64 {
        self.ref_ratios[lev]
    }

    /// Accumulated refinement of level `lev` relative to level 0.
    pub fn ratio_to_level0(&self, lev: usize) -> i64 {
        self.ref_ratios[..lev].iter().product()
    }

    /// The full index domain at level `lev`'s resolution.
    pub fn level_domain(&self, lev: usize) -> Box3 {
        self.geom.domain.refine(self.ratio_to_level0(lev))
    }

    pub fn box_array(&self, lev: usize) -> &BoxArray {
        &self.box_arrays[lev]
    }

    pub fn box_arrays(&self) -> &[BoxArray] {
        &self.box_arrays
    }

    pub fn field_names(&self) -> Vec<&str> {
        self.fields.keys().map(String::as_str).collect()
    }

    pub fn fields(&self) -> impl Iterator<Item = &AmrField> {
        self.fields.values()
    }

    /// Adds (or replaces) a field. The multifabs must match the hierarchy's
    /// box arrays level by level.
    pub fn add_field(&mut self, name: &str, levels: Vec<MultiFab>) -> Result<(), AmrError> {
        if levels.len() != self.num_levels() {
            return Err(AmrError::InvalidStructure(format!(
                "field {name}: {} levels, hierarchy has {}",
                levels.len(),
                self.num_levels()
            )));
        }
        for (lev, mf) in levels.iter().enumerate() {
            if mf.box_array() != self.box_arrays[lev] {
                return Err(AmrError::InvalidStructure(format!(
                    "field {name}: level {lev} box array mismatch"
                )));
            }
        }
        self.fields.insert(
            name.to_string(),
            AmrField {
                name: name.to_string(),
                levels,
            },
        );
        Ok(())
    }

    /// Builds a field by evaluating `f(level, cell)` on every level.
    pub fn add_field_from_fn(
        &mut self,
        name: &str,
        f: impl Fn(usize, crate::ivec::IntVect) -> f64 + Sync,
    ) -> Result<(), AmrError> {
        let levels: Vec<MultiFab> = (0..self.num_levels())
            .map(|lev| MultiFab::from_fn(&self.box_arrays[lev], |iv| f(lev, iv)))
            .collect();
        self.add_field(name, levels)
    }

    pub fn field(&self, name: &str) -> Result<&AmrField, AmrError> {
        self.fields
            .get(name)
            .ok_or_else(|| AmrError::UnknownField(name.to_string()))
    }

    pub fn field_mut(&mut self, name: &str) -> Result<&mut AmrField, AmrError> {
        self.fields
            .get_mut(name)
            .ok_or_else(|| AmrError::UnknownField(name.to_string()))
    }

    pub fn field_level(&self, name: &str, lev: usize) -> Result<&MultiFab, AmrError> {
        let f = self.field(name)?;
        f.levels.get(lev).ok_or(AmrError::BadLevel {
            requested: lev,
            available: f.levels.len(),
        })
    }

    /// Mask over `level_domain(lev)`: cells covered by level `lev`'s own
    /// boxes. (Level 0 is always fully valid.)
    pub fn valid_mask(&self, lev: usize) -> Raster {
        Raster::from_box_array(self.level_domain(lev), &self.box_arrays[lev])
    }

    /// Mask over `level_domain(lev)`: cells covered by the *next finer*
    /// level (the redundant coarse cells). All-false on the finest level.
    pub fn covered_mask(&self, lev: usize) -> Raster {
        let dom = self.level_domain(lev);
        if lev + 1 >= self.num_levels() {
            return Raster::falses(dom);
        }
        let fine_coarsened = self.box_arrays[lev + 1].coarsen(self.ref_ratios[lev]);
        Raster::from_box_array(dom, &fine_coarsened)
    }

    /// Cells of level `lev` that are valid *and not* covered by finer data —
    /// the cells that actually contribute to post-analysis (paper Fig. 3).
    pub fn unique_mask(&self, lev: usize) -> Raster {
        let mut m = self.valid_mask(lev);
        let mut cov = self.covered_mask(lev);
        cov.invert();
        m.and(&cov);
        m
    }

    /// Fraction of the *physical domain volume* whose finest representation
    /// is level `lev` (the paper's per-level "density", Table 1).
    pub fn level_density(&self, lev: usize) -> f64 {
        let unique = self.unique_mask(lev).count() as f64;
        unique / self.level_domain(lev).num_cells() as f64
    }

    /// Total number of stored cells across all levels (per field).
    pub fn total_cells(&self) -> usize {
        self.box_arrays.iter().map(BoxArray::num_cells).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivec::IntVect;

    fn b(lo: [i64; 3], hi: [i64; 3]) -> Box3 {
        Box3::new(IntVect(lo), IntVect(hi))
    }

    /// 8³ coarse domain with a 8³-cell fine patch over its upper octant.
    fn two_level() -> AmrHierarchy {
        let geom = Geometry::unit(b([0, 0, 0], [7, 7, 7]));
        AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::single(b([8, 8, 8], [15, 15, 15])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_domains() {
        let h = two_level();
        assert_eq!(h.num_levels(), 2);
        assert_eq!(h.ratio_to_level0(0), 1);
        assert_eq!(h.ratio_to_level0(1), 2);
        assert_eq!(h.level_domain(1), b([0, 0, 0], [15, 15, 15]));
        assert_eq!(h.total_cells(), 512 + 512);
    }

    #[test]
    fn masks_and_density() {
        let h = two_level();
        // Fine patch covers the coarse upper octant: 4³ = 64 coarse cells.
        let cov = h.covered_mask(0);
        assert_eq!(cov.count(), 64);
        assert!(cov.get(IntVect::new(5, 5, 5)));
        assert!(!cov.get(IntVect::new(3, 3, 3)));
        let unique0 = h.unique_mask(0);
        assert_eq!(unique0.count(), 512 - 64);
        // Densities: 7/8 of the volume is finest-at-coarse, 1/8 at fine.
        assert!((h.level_density(0) - 7.0 / 8.0).abs() < 1e-12);
        assert!((h.level_density(1) - 1.0 / 8.0).abs() < 1e-12);
        assert!((h.level_density(0) + h.level_density(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn field_roundtrip_and_validation() {
        let mut h = two_level();
        h.add_field_from_fn("rho", |lev, iv| lev as f64 * 100.0 + iv.sum() as f64)
            .unwrap();
        let mf0 = h.field_level("rho", 0).unwrap();
        assert_eq!(mf0.value_at(IntVect::new(1, 2, 3)), Some(6.0));
        let mf1 = h.field_level("rho", 1).unwrap();
        assert_eq!(mf1.value_at(IntVect::new(8, 8, 8)), Some(124.0));
        assert!(h.field("nope").is_err());
        assert!(h.field_level("rho", 7).is_err());
        assert_eq!(h.field_names(), vec!["rho"]);
    }

    #[test]
    fn rejects_level0_not_covering_domain() {
        let geom = Geometry::unit(b([0, 0, 0], [7, 7, 7]));
        let err = AmrHierarchy::new(
            geom,
            vec![],
            vec![BoxArray::single(b([0, 0, 0], [3, 7, 7]))],
        );
        assert!(err.is_err());
    }

    #[test]
    fn rejects_overlapping_level_boxes() {
        let geom = Geometry::unit(b([0, 0, 0], [7, 7, 7]));
        let err = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::new(vec![b([0, 0, 0], [7, 7, 7]), b([4, 4, 4], [11, 11, 11])]),
            ],
        );
        assert!(err.is_err());
    }

    #[test]
    fn rejects_escaping_fine_box() {
        let geom = Geometry::unit(b([0, 0, 0], [7, 7, 7]));
        let err = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::single(b([8, 8, 8], [16, 15, 15])),
            ],
        );
        assert!(err.is_err());
    }

    #[test]
    fn rejects_field_on_wrong_boxes() {
        let mut h = two_level();
        let bad = vec![
            MultiFab::zeros(&BoxArray::single(b([0, 0, 0], [7, 7, 7]))),
            MultiFab::zeros(&BoxArray::single(b([0, 0, 0], [7, 7, 7]))),
        ];
        assert!(h.add_field("bad", bad).is_err());
    }

    #[test]
    fn three_level_ratios() {
        let geom = Geometry::unit(b([0, 0, 0], [7, 7, 7]));
        let h = AmrHierarchy::new(
            geom,
            vec![2, 4],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::single(b([0, 0, 0], [7, 7, 7])),
                BoxArray::single(b([0, 0, 0], [15, 15, 15])),
            ],
        )
        .unwrap();
        assert_eq!(h.ratio_to_level0(2), 8);
        assert_eq!(h.level_domain(2), b([0, 0, 0], [63, 63, 63]));
    }
}
