//! Collections of boxes describing the footprint of one AMR level.

use crate::boxes::Box3;
use crate::ivec::IntVect;

/// The set of boxes making up one level's grid. In patch-based AMR the
/// boxes of a level are pairwise disjoint; [`BoxArray::validate_disjoint`]
/// checks that.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BoxArray {
    boxes: Vec<Box3>,
}

impl BoxArray {
    pub fn new(boxes: Vec<Box3>) -> Self {
        BoxArray { boxes }
    }

    /// A single-box array (e.g. the root domain).
    pub fn single(bx: Box3) -> Self {
        BoxArray { boxes: vec![bx] }
    }

    pub fn boxes(&self) -> &[Box3] {
        &self.boxes
    }

    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    pub fn push(&mut self, bx: Box3) {
        self.boxes.push(bx);
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Box3> {
        self.boxes.iter()
    }

    /// Total number of cells over all boxes (assumes disjointness).
    pub fn num_cells(&self) -> usize {
        self.boxes.iter().map(Box3::num_cells).sum()
    }

    /// Smallest box containing every box, or `None` when empty.
    pub fn bounding_box(&self) -> Option<Box3> {
        self.boxes.iter().copied().reduce(|a, b| a.union_hull(&b))
    }

    /// True if any box contains the cell.
    pub fn contains(&self, iv: IntVect) -> bool {
        self.boxes.iter().any(|b| b.contains(iv))
    }

    /// True if `bx` intersects any member box.
    pub fn intersects(&self, bx: &Box3) -> bool {
        self.boxes.iter().any(|b| b.intersects(bx))
    }

    /// All non-empty intersections of member boxes with `bx`.
    pub fn intersections(&self, bx: &Box3) -> Vec<Box3> {
        self.boxes.iter().filter_map(|b| b.intersect(bx)).collect()
    }

    /// Refines every box.
    pub fn refine(&self, ratio: i64) -> BoxArray {
        BoxArray {
            boxes: self.boxes.iter().map(|b| b.refine(ratio)).collect(),
        }
    }

    /// Coarsens every box.
    pub fn coarsen(&self, ratio: i64) -> BoxArray {
        BoxArray {
            boxes: self.boxes.iter().map(|b| b.coarsen(ratio)).collect(),
        }
    }

    /// Coarsens inward: only the coarse cells every box *fully* covers
    /// survive ([`Box3::coarsen_inward`]); boxes too small or too
    /// misaligned to cover any coarse cell drop out entirely. The result
    /// may therefore hold fewer boxes than `self`.
    pub fn coarsen_inward(&self, ratio: i64) -> BoxArray {
        BoxArray {
            boxes: self
                .boxes
                .iter()
                .filter_map(|b| b.coarsen_inward(ratio))
                .collect(),
        }
    }

    /// Checks pairwise disjointness (O(n²); fine for the box counts AMR
    /// levels produce).
    pub fn validate_disjoint(&self) -> Result<(), (Box3, Box3)> {
        for (i, a) in self.boxes.iter().enumerate() {
            for b in &self.boxes[i + 1..] {
                if a.intersects(b) {
                    return Err((*a, *b));
                }
            }
        }
        Ok(())
    }

    /// True if the union of boxes covers `domain` exactly (assumes
    /// disjointness): coverage is checked by cell count plus containment.
    pub fn covers_exactly(&self, domain: &Box3) -> bool {
        self.boxes.iter().all(|b| domain.contains_box(b)) && self.num_cells() == domain.num_cells()
    }

    /// The parts of `bx` *not* covered by this array, as disjoint boxes.
    pub fn complement_in(&self, bx: &Box3) -> Vec<Box3> {
        let mut remaining = vec![*bx];
        for cut in &self.boxes {
            let mut next = Vec::with_capacity(remaining.len());
            for piece in remaining {
                next.extend(piece.subtract(cut));
            }
            remaining = next;
            if remaining.is_empty() {
                break;
            }
        }
        remaining
    }

    /// Splits every box so that no box has more than `max_cells` cells,
    /// chopping along the longest axis. Useful to emulate AMReX
    /// `max_grid_size` distribution.
    pub fn chop_to_max_cells(&self, max_cells: usize) -> BoxArray {
        assert!(max_cells > 0);
        let mut out = Vec::with_capacity(self.boxes.len());
        let mut stack: Vec<Box3> = self.boxes.clone();
        while let Some(bx) = stack.pop() {
            if bx.num_cells() <= max_cells {
                out.push(bx);
                continue;
            }
            let axis = bx.longest_axis();
            let mid = bx.lo()[axis] + (bx.extent(axis) as i64) / 2;
            match bx.chop(axis, mid) {
                Some((a, b)) => {
                    stack.push(a);
                    stack.push(b);
                }
                None => out.push(bx), // single-cell box larger than budget
            }
        }
        out.sort_by_key(|b| (b.lo()[2], b.lo()[1], b.lo()[0]));
        BoxArray { boxes: out }
    }
}

impl From<Vec<Box3>> for BoxArray {
    fn from(boxes: Vec<Box3>) -> Self {
        BoxArray { boxes }
    }
}

impl<'a> IntoIterator for &'a BoxArray {
    type Item = &'a Box3;
    type IntoIter = std::slice::Iter<'a, Box3>;
    fn into_iter(self) -> Self::IntoIter {
        self.boxes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: [i64; 3], hi: [i64; 3]) -> Box3 {
        Box3::new(IntVect(lo), IntVect(hi))
    }

    #[test]
    fn counts_and_bounds() {
        let ba = BoxArray::new(vec![b([0, 0, 0], [1, 1, 1]), b([4, 0, 0], [5, 1, 1])]);
        assert_eq!(ba.num_cells(), 16);
        assert_eq!(ba.bounding_box(), Some(b([0, 0, 0], [5, 1, 1])));
        assert!(ba.contains(IntVect::new(5, 1, 1)));
        assert!(!ba.contains(IntVect::new(2, 0, 0)));
    }

    #[test]
    fn disjoint_validation() {
        let good = BoxArray::new(vec![b([0, 0, 0], [1, 1, 1]), b([2, 0, 0], [3, 1, 1])]);
        assert!(good.validate_disjoint().is_ok());
        let bad = BoxArray::new(vec![b([0, 0, 0], [2, 2, 2]), b([2, 2, 2], [4, 4, 4])]);
        assert!(bad.validate_disjoint().is_err());
    }

    #[test]
    fn complement_covers_the_rest() {
        let domain = b([0, 0, 0], [7, 7, 7]);
        let ba = BoxArray::new(vec![b([0, 0, 0], [3, 7, 7]), b([4, 0, 0], [7, 3, 7])]);
        let rest = BoxArray::new(ba.complement_in(&domain));
        assert!(rest.validate_disjoint().is_ok());
        assert_eq!(ba.num_cells() + rest.num_cells(), domain.num_cells());
        for piece in rest.iter() {
            assert!(!ba.intersects(piece));
        }
    }

    #[test]
    fn complement_of_full_cover_is_empty() {
        let domain = b([0, 0, 0], [3, 3, 3]);
        let ba = BoxArray::single(domain);
        assert!(ba.complement_in(&domain).is_empty());
        assert!(ba.covers_exactly(&domain));
    }

    #[test]
    fn chop_to_max_cells_partitions() {
        let domain = b([0, 0, 0], [15, 15, 15]);
        let ba = BoxArray::single(domain).chop_to_max_cells(512);
        assert!(ba.validate_disjoint().is_ok());
        assert_eq!(ba.num_cells(), domain.num_cells());
        for bx in ba.iter() {
            assert!(bx.num_cells() <= 512, "{bx} too big");
        }
        assert!(ba.covers_exactly(&domain));
    }

    #[test]
    fn refine_coarsen_preserve_counts() {
        let ba = BoxArray::new(vec![b([0, 0, 0], [1, 1, 1]), b([4, 4, 4], [5, 5, 5])]);
        let fine = ba.refine(2);
        assert_eq!(fine.num_cells(), ba.num_cells() * 8);
        assert_eq!(fine.coarsen(2), ba);
    }
}
