//! Coarse↔fine transfer operators (prolongation / restriction).

use crate::boxes::Box3;
use crate::fab::Fab;
use crate::ivec::IntVect;

/// Piecewise-constant (injection) prolongation: each fine cell takes its
/// coarse parent's value. `target` is a fine-index box; `coarse` must cover
/// `target.coarsen(ratio)`.
pub fn prolong_piecewise_constant(coarse: &Fab, target: Box3, ratio: i64) -> Fab {
    let needed = target.coarsen(ratio);
    assert!(
        coarse.box3().contains_box(&needed),
        "coarse fab {:?} does not cover {:?}",
        coarse.box3(),
        needed
    );
    Fab::from_fn(target, |fine| coarse.get(fine.coarsen(ratio)))
}

/// Trilinear cell-centered prolongation. Fine cell centers are interpolated
/// from the 8 surrounding coarse cell centers; coarse indices are clamped to
/// the coarse fab's box at its boundary (one-sided constant extension).
///
/// `coarse` must cover `target.coarsen(ratio)` — the clamping supplies the
/// halo the stencil would otherwise need.
pub fn prolong_trilinear(coarse: &Fab, target: Box3, ratio: i64) -> Fab {
    let needed = target.coarsen(ratio);
    assert!(
        coarse.box3().contains_box(&needed),
        "coarse fab {:?} does not cover {:?}",
        coarse.box3(),
        needed
    );
    let cb = coarse.box3();
    let r = ratio as f64;
    Fab::from_fn(target, |fine| {
        // Position of the fine cell center in coarse index coordinates.
        let xc = (fine[0] as f64 + 0.5) / r - 0.5;
        let yc = (fine[1] as f64 + 0.5) / r - 0.5;
        let zc = (fine[2] as f64 + 0.5) / r - 0.5;
        let i0 = xc.floor() as i64;
        let j0 = yc.floor() as i64;
        let k0 = zc.floor() as i64;
        let fx = xc - i0 as f64;
        let fy = yc - j0 as f64;
        let fz = zc - k0 as f64;
        let clamp = |iv: IntVect| iv.max(cb.lo()).min(cb.hi());
        let mut acc = 0.0;
        for dz in 0..2i64 {
            let wz = if dz == 0 { 1.0 - fz } else { fz };
            for dy in 0..2i64 {
                let wy = if dy == 0 { 1.0 - fy } else { fy };
                for dx in 0..2i64 {
                    let wx = if dx == 0 { 1.0 - fx } else { fx };
                    let c = clamp(IntVect::new(i0 + dx, j0 + dy, k0 + dz));
                    acc += wx * wy * wz * coarse.get(c);
                }
            }
        }
        acc
    })
}

/// Conservative restriction: each coarse cell of `target` becomes the mean
/// of its `ratio³` fine children. `fine` must cover `target.refine(ratio)`.
pub fn restrict_average(fine: &Fab, target: Box3, ratio: i64) -> Fab {
    let needed = target.refine(ratio);
    assert!(
        fine.box3().contains_box(&needed),
        "fine fab {:?} does not cover {:?}",
        fine.box3(),
        needed
    );
    let inv = 1.0 / (ratio * ratio * ratio) as f64;
    Fab::from_fn(target, |coarse| {
        let base = coarse.refine(ratio);
        let mut acc = 0.0;
        for dz in 0..ratio {
            for dy in 0..ratio {
                for dx in 0..ratio {
                    acc += fine.get(base + IntVect::new(dx, dy, dz));
                }
            }
        }
        acc * inv
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: [i64; 3], hi: [i64; 3]) -> Box3 {
        Box3::new(IntVect(lo), IntVect(hi))
    }

    #[test]
    fn piecewise_constant_copies_parent() {
        let coarse = Fab::from_fn(b([0, 0, 0], [1, 1, 1]), |iv| iv.sum() as f64);
        let fine = prolong_piecewise_constant(&coarse, b([0, 0, 0], [3, 3, 3]), 2);
        assert_eq!(fine.get(IntVect::new(0, 0, 0)), 0.0);
        assert_eq!(fine.get(IntVect::new(1, 1, 1)), 0.0);
        assert_eq!(fine.get(IntVect::new(2, 0, 0)), 1.0);
        assert_eq!(fine.get(IntVect::new(3, 3, 3)), 3.0);
    }

    #[test]
    fn trilinear_preserves_constants() {
        let coarse = Fab::constant(b([0, 0, 0], [3, 3, 3]), 7.5);
        let fine = prolong_trilinear(&coarse, b([0, 0, 0], [7, 7, 7]), 2);
        for (_, v) in fine.iter() {
            assert!((v - 7.5).abs() < 1e-12);
        }
    }

    #[test]
    fn trilinear_reproduces_linear_fields_in_interior() {
        // f(x) = x in physical coords; cell-centered values are linear in the
        // index, so trilinear interpolation should be exact away from the
        // clamped boundary.
        let coarse = Fab::from_fn(b([0, 0, 0], [7, 7, 7]), |iv| {
            iv[0] as f64 + 2.0 * iv[1] as f64 - 0.5 * iv[2] as f64
        });
        let target = b([4, 4, 4], [11, 11, 11]); // interior region
        let fine = prolong_trilinear(&coarse, target, 2);
        for (cell, v) in fine.iter() {
            // Expected: evaluate the same linear function at the fine center
            // expressed in coarse index coordinates.
            let x = (cell[0] as f64 + 0.5) / 2.0 - 0.5;
            let y = (cell[1] as f64 + 0.5) / 2.0 - 0.5;
            let z = (cell[2] as f64 + 0.5) / 2.0 - 0.5;
            let want = x + 2.0 * y - 0.5 * z;
            assert!((v - want).abs() < 1e-12, "at {cell:?}: {v} vs {want}");
        }
    }

    #[test]
    fn restriction_averages_children() {
        let fine = Fab::from_fn(b([0, 0, 0], [3, 3, 3]), |iv| iv[0] as f64);
        let coarse = restrict_average(&fine, b([0, 0, 0], [1, 1, 1]), 2);
        // children x-values: {0,1} → 0.5 and {2,3} → 2.5
        assert!((coarse.get(IntVect::new(0, 0, 0)) - 0.5).abs() < 1e-12);
        assert!((coarse.get(IntVect::new(1, 0, 0)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn restrict_of_prolong_is_identity_for_pc() {
        let coarse = Fab::from_fn(b([0, 0, 0], [3, 3, 3]), |iv| (iv.sum() * iv[0]) as f64);
        let fine = prolong_piecewise_constant(&coarse, coarse.box3().refine(2), 2);
        let back = restrict_average(&fine, coarse.box3(), 2);
        for (c, v) in back.iter() {
            assert!((v - coarse.get(c)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn prolong_requires_coverage() {
        let coarse = Fab::zeros(b([0, 0, 0], [1, 1, 1]));
        prolong_piecewise_constant(&coarse, b([0, 0, 0], [7, 7, 7]), 2);
    }
}
