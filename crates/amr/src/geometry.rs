//! Mapping between the integer index space and physical coordinates.

use crate::boxes::Box3;
use crate::ivec::IntVect;

/// Physical geometry of the level-0 index domain. Finer levels divide the
/// cell size by the accumulated refinement ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometry {
    /// Level-0 index domain.
    pub domain: Box3,
    /// Physical coordinates of the domain's low corner.
    pub prob_lo: [f64; 3],
    /// Physical coordinates of the domain's high corner.
    pub prob_hi: [f64; 3],
}

impl Geometry {
    /// Unit-cube geometry over `domain`.
    pub fn unit(domain: Box3) -> Self {
        Geometry {
            domain,
            prob_lo: [0.0; 3],
            prob_hi: [1.0; 3],
        }
    }

    pub fn new(domain: Box3, prob_lo: [f64; 3], prob_hi: [f64; 3]) -> Self {
        for a in 0..3 {
            assert!(
                prob_hi[a] > prob_lo[a],
                "degenerate physical extent on axis {a}"
            );
        }
        Geometry {
            domain,
            prob_lo,
            prob_hi,
        }
    }

    /// Cell size at level 0.
    pub fn cell_size(&self) -> [f64; 3] {
        let s = self.domain.size();
        [
            (self.prob_hi[0] - self.prob_lo[0]) / s[0] as f64,
            (self.prob_hi[1] - self.prob_lo[1]) / s[1] as f64,
            (self.prob_hi[2] - self.prob_lo[2]) / s[2] as f64,
        ]
    }

    /// Cell size at a level whose accumulated refinement relative to level 0
    /// is `ratio_to_level0`.
    pub fn cell_size_at(&self, ratio_to_level0: i64) -> [f64; 3] {
        let h = self.cell_size();
        let r = ratio_to_level0 as f64;
        [h[0] / r, h[1] / r, h[2] / r]
    }

    /// Physical position of a cell *center* at the given accumulated ratio.
    pub fn cell_center(&self, iv: IntVect, ratio_to_level0: i64) -> [f64; 3] {
        let h = self.cell_size_at(ratio_to_level0);
        [
            self.prob_lo[0] + (iv[0] as f64 + 0.5) * h[0],
            self.prob_lo[1] + (iv[1] as f64 + 0.5) * h[1],
            self.prob_lo[2] + (iv[2] as f64 + 0.5) * h[2],
        ]
    }

    /// Physical position of a *node* (cell corner) at the given ratio.
    pub fn node_pos(&self, iv: IntVect, ratio_to_level0: i64) -> [f64; 3] {
        let h = self.cell_size_at(ratio_to_level0);
        [
            self.prob_lo[0] + iv[0] as f64 * h[0],
            self.prob_lo[1] + iv[1] as f64 * h[1],
            self.prob_lo[2] + iv[2] as f64 * h[2],
        ]
    }

    /// Normalized coordinates in `[0,1]³` of a cell center at level 0.
    pub fn unit_coords(&self, iv: IntVect) -> [f64; 3] {
        let s = self.domain.size();
        let d = iv - self.domain.lo();
        [
            (d[0] as f64 + 0.5) / s[0] as f64,
            (d[1] as f64 + 0.5) / s[1] as f64,
            (d[2] as f64 + 0.5) / s[2] as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_sizes_divide_by_ratio() {
        let g = Geometry::new(Box3::from_dims(8, 8, 16), [0.0, 0.0, 0.0], [1.0, 1.0, 2.0]);
        assert_eq!(g.cell_size(), [0.125, 0.125, 0.125]);
        assert_eq!(g.cell_size_at(2), [0.0625, 0.0625, 0.0625]);
    }

    #[test]
    fn centers_and_nodes() {
        let g = Geometry::unit(Box3::from_dims(4, 4, 4));
        let c = g.cell_center(IntVect::new(0, 0, 0), 1);
        assert_eq!(c, [0.125, 0.125, 0.125]);
        let n = g.node_pos(IntVect::new(4, 4, 4), 1);
        assert_eq!(n, [1.0, 1.0, 1.0]);
        // fine cell 0 center sits at half the coarse offset
        let cf = g.cell_center(IntVect::new(0, 0, 0), 2);
        assert_eq!(cf, [0.0625, 0.0625, 0.0625]);
    }

    #[test]
    fn unit_coords_center_of_domain() {
        let g = Geometry::unit(Box3::from_dims(2, 2, 2));
        assert_eq!(g.unit_coords(IntVect::new(0, 0, 0)), [0.25, 0.25, 0.25]);
        assert_eq!(g.unit_coords(IntVect::new(1, 1, 1)), [0.75, 0.75, 0.75]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_degenerate_extent() {
        Geometry::new(Box3::from_dims(2, 2, 2), [0.0; 3], [1.0, 0.0, 1.0]);
    }
}
