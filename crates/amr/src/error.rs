//! Error type shared across the AMR crate.

use std::fmt;

/// Errors produced by AMR construction, validation and I/O.
#[derive(Debug)]
pub enum AmrError {
    /// A box or box array violated a structural requirement.
    InvalidStructure(String),
    /// A field name was not found in a hierarchy.
    UnknownField(String),
    /// Level index out of range.
    BadLevel { requested: usize, available: usize },
    /// Underlying I/O failure (plotfile read/write).
    Io(std::io::Error),
    /// Plotfile content could not be parsed.
    Corrupt(String),
}

impl fmt::Display for AmrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmrError::InvalidStructure(msg) => write!(f, "invalid AMR structure: {msg}"),
            AmrError::UnknownField(name) => write!(f, "unknown field: {name}"),
            AmrError::BadLevel {
                requested,
                available,
            } => {
                write!(f, "level {requested} out of range ({available} levels)")
            }
            AmrError::Io(e) => write!(f, "I/O error: {e}"),
            AmrError::Corrupt(msg) => write!(f, "corrupt plotfile: {msg}"),
        }
    }
}

impl std::error::Error for AmrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AmrError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AmrError {
    fn from(e: std::io::Error) -> Self {
        AmrError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = AmrError::BadLevel {
            requested: 3,
            available: 2,
        };
        assert!(e.to_string().contains("level 3"));
        let e = AmrError::UnknownField("rho".into());
        assert!(e.to_string().contains("rho"));
    }

    #[test]
    fn io_error_wraps_with_source() {
        use std::error::Error;
        let e: AmrError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
    }
}
