//! Merging an AMR hierarchy to a single uniform-resolution grid.
//!
//! This is the standard post-analysis transformation the paper describes in
//! §2.2 / Fig. 3: coarse data is up-sampled, finer data overwrites it, and
//! the redundant coarse values underneath fine patches are thereby omitted.

use crate::boxes::Box3;
use crate::error::AmrError;
use crate::fab::Fab;
use crate::hierarchy::AmrHierarchy;
use crate::interp;
use crate::multifab::{rasterize_into, MultiFab};

/// How coarse data is up-sampled during flattening.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Upsample {
    /// Each fine cell takes its parent's value (injection).
    #[default]
    PiecewiseConstant,
    /// Trilinear interpolation of coarse cell centers.
    Trilinear,
}

/// A dense uniform-resolution scalar field over a box region.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformField {
    pub region: Box3,
    pub data: Vec<f64>,
}

impl UniformField {
    pub fn new(region: Box3, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), region.num_cells());
        UniformField { region, data }
    }

    pub fn dims(&self) -> [usize; 3] {
        self.region.size()
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        let [nx, ny, _] = self.region.size();
        self.data[i + nx * (j + ny * k)]
    }

    pub fn min_max(&self) -> (f64, f64) {
        self.data
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            })
    }
}

/// Up-samples a dense field covering `region` by `ratio`, returning a dense
/// field covering `region.refine(ratio)`.
pub fn upsample_dense(field: &UniformField, ratio: i64, method: Upsample) -> UniformField {
    upsample_dense_owned(field.clone(), ratio, method)
}

/// [`upsample_dense`] taking the field by value: the coarse buffer is moved
/// into the interpolation (no clone), which matters when flattening large
/// hierarchies level by level.
pub fn upsample_dense_owned(field: UniformField, ratio: i64, method: Upsample) -> UniformField {
    let region = field.region;
    let coarse_fab = Fab::from_vec(region, field.data);
    let target = region.refine(ratio);
    let fine = match method {
        Upsample::PiecewiseConstant => {
            interp::prolong_piecewise_constant(&coarse_fab, target, ratio)
        }
        Upsample::Trilinear => interp::prolong_trilinear(&coarse_fab, target, ratio),
    };
    UniformField {
        region: target,
        data: fine.into_vec(),
    }
}

/// Flattens a hierarchy field to the finest level's resolution: level 0 is
/// rasterized over the whole domain, then repeatedly up-sampled with finer
/// valid data overwriting the interpolated values.
pub fn flatten_to_finest(
    hier: &AmrHierarchy,
    field: &str,
    method: Upsample,
) -> Result<UniformField, AmrError> {
    flatten_levels_to_finest(hier, &hier.field(field)?.levels, method)
}

/// [`flatten_to_finest`] over caller-supplied per-level data (one
/// [`MultiFab`] per level, on the hierarchy's box arrays). This is the entry
/// point for flattening *decompressed* level data: it borrows the levels
/// directly, so callers no longer need to clone the hierarchy and attach a
/// scratch field just to merge a reconstruction.
pub fn flatten_levels_to_finest(
    hier: &AmrHierarchy,
    levels: &[MultiFab],
    method: Upsample,
) -> Result<UniformField, AmrError> {
    if levels.len() != hier.num_levels() {
        return Err(AmrError::InvalidStructure(format!(
            "{} level fields for a {}-level hierarchy",
            levels.len(),
            hier.num_levels()
        )));
    }
    let dom0 = hier.level_domain(0);
    let mut data = vec![0.0; dom0.num_cells()];
    let written = rasterize_into(&levels[0], dom0, &mut data);
    debug_assert_eq!(written, dom0.num_cells(), "level 0 must cover the domain");
    let mut uniform = UniformField { region: dom0, data };
    for (lev, mf) in levels.iter().enumerate().skip(1) {
        uniform = upsample_dense_owned(uniform, hier.ratio_at(lev - 1), method);
        rasterize_into(mf, uniform.region, &mut uniform.data);
    }
    Ok(uniform)
}

/// Rasterizes one level of a field onto its full level domain. Returns the
/// dense data plus the validity mask (true where the level has boxes).
pub fn rasterize_level(
    hier: &AmrHierarchy,
    field: &str,
    lev: usize,
) -> Result<(UniformField, crate::mask::Raster), AmrError> {
    let mf = hier.field_level(field, lev)?;
    let dom = hier.level_domain(lev);
    let mut data = vec![f64::NAN; dom.num_cells()];
    rasterize_into(mf, dom, &mut data);
    let valid = hier.valid_mask(lev);
    Ok((UniformField { region: dom, data }, valid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::box_array::BoxArray;
    use crate::geometry::Geometry;
    use crate::ivec::IntVect;

    fn b(lo: [i64; 3], hi: [i64; 3]) -> Box3 {
        Box3::new(IntVect(lo), IntVect(hi))
    }

    fn two_level_with_field(f: impl Fn(usize, IntVect) -> f64 + Sync) -> AmrHierarchy {
        let geom = Geometry::unit(b([0, 0, 0], [7, 7, 7]));
        let mut h = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::single(b([8, 8, 8], [15, 15, 15])),
            ],
        )
        .unwrap();
        h.add_field_from_fn("v", f).unwrap();
        h
    }

    #[test]
    fn flatten_prefers_fine_data() {
        // Coarse stores 1.0 everywhere; fine stores 2.0.
        let h = two_level_with_field(|lev, _| (lev + 1) as f64);
        let u = flatten_to_finest(&h, "v", Upsample::PiecewiseConstant).unwrap();
        assert_eq!(u.region, b([0, 0, 0], [15, 15, 15]));
        // Fine octant (all indices >= 8) must be 2.0; elsewhere 1.0.
        for (n, cell) in u.region.cells().enumerate() {
            let want = if cell[0] >= 8 && cell[1] >= 8 && cell[2] >= 8 {
                2.0
            } else {
                1.0
            };
            assert_eq!(u.data[n], want, "at {cell:?}");
        }
    }

    #[test]
    fn flatten_constant_field_is_constant() {
        let h = two_level_with_field(|_, _| 3.25);
        for method in [Upsample::PiecewiseConstant, Upsample::Trilinear] {
            let u = flatten_to_finest(&h, "v", method).unwrap();
            assert!(u.data.iter().all(|&v| (v - 3.25).abs() < 1e-12));
        }
    }

    #[test]
    fn upsample_dense_dims() {
        let u = UniformField::new(b([0, 0, 0], [1, 1, 1]), vec![1.0; 8]);
        let f = upsample_dense(&u, 2, Upsample::PiecewiseConstant);
        assert_eq!(f.dims(), [4, 4, 4]);
        assert!(f.data.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn rasterize_level_masks_uncovered() {
        let h = two_level_with_field(|lev, _| lev as f64);
        let (u, valid) = rasterize_level(&h, "v", 1).unwrap();
        assert_eq!(u.region, b([0, 0, 0], [15, 15, 15]));
        assert_eq!(valid.count(), 512);
        // Covered cells hold data; uncovered cells are NaN.
        assert_eq!(u.at(8, 8, 8), 1.0);
        assert!(u.at(0, 0, 0).is_nan());
    }

    #[test]
    fn flatten_levels_slice_matches_field_path() {
        let h = two_level_with_field(|lev, iv| lev as f64 * 10.0 + iv.sum() as f64);
        let by_name = flatten_to_finest(&h, "v", Upsample::Trilinear).unwrap();
        let levels = h.field("v").unwrap().levels.clone();
        let by_slice = flatten_levels_to_finest(&h, &levels, Upsample::Trilinear).unwrap();
        assert_eq!(by_name, by_slice);
        // Wrong level count is a structural error, not a panic.
        assert!(flatten_levels_to_finest(&h, &levels[..1], Upsample::Trilinear).is_err());
    }

    #[test]
    fn unknown_field_errors() {
        let h = two_level_with_field(|_, _| 0.0);
        assert!(flatten_to_finest(&h, "missing", Upsample::Trilinear).is_err());
    }

    #[test]
    fn uniform_field_accessors() {
        let u = UniformField::new(b([0, 0, 0], [1, 1, 0]), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(u.at(1, 0, 0), 2.0);
        assert_eq!(u.at(0, 1, 0), 3.0);
        assert_eq!(u.min_max(), (1.0, 4.0));
    }
}
