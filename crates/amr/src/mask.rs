//! Rasterized boolean masks over a box region.
//!
//! Masks are the workhorse for coverage queries ("is this coarse cell
//! covered by the fine level?") and for the redundant-coarse "switching
//! cells" logic in the dual-cell visualization method.

use crate::box_array::BoxArray;
use crate::boxes::Box3;
use crate::ivec::IntVect;

/// A dense boolean grid over a [`Box3`] region (x-fastest layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Raster {
    region: Box3,
    bits: Vec<bool>,
}

impl Raster {
    /// All-false raster over `region`.
    pub fn falses(region: Box3) -> Self {
        Raster {
            bits: vec![false; region.num_cells()],
            region,
        }
    }

    /// All-true raster over `region`.
    pub fn trues(region: Box3) -> Self {
        Raster {
            bits: vec![true; region.num_cells()],
            region,
        }
    }

    /// Raster marking the cells of `region` covered by any box of `ba`.
    pub fn from_box_array(region: Box3, ba: &BoxArray) -> Self {
        let mut r = Raster::falses(region);
        for bx in ba.iter() {
            r.set_box(bx, true);
        }
        r
    }

    #[inline]
    pub fn region(&self) -> Box3 {
        self.region
    }

    #[inline]
    pub fn get(&self, iv: IntVect) -> bool {
        self.region.contains(iv) && self.bits[self.region.offset(iv)]
    }

    /// Raw flag at a cell known to be inside the region.
    #[inline]
    pub fn get_unchecked(&self, iv: IntVect) -> bool {
        self.bits[self.region.offset(iv)]
    }

    #[inline]
    pub fn set(&mut self, iv: IntVect, v: bool) {
        if self.region.contains(iv) {
            let off = self.region.offset(iv);
            self.bits[off] = v;
        }
    }

    /// Sets every cell of `bx ∩ region`.
    pub fn set_box(&mut self, bx: &Box3, v: bool) {
        let Some(overlap) = self.region.intersect(bx) else {
            return;
        };
        let [nx, ny, _] = self.region.size();
        let [onx, ony, onz] = overlap.size();
        let lo = overlap.lo() - self.region.lo();
        for kk in 0..onz {
            for jj in 0..ony {
                let row =
                    (lo[0] as usize) + nx * ((lo[1] as usize + jj) + ny * (lo[2] as usize + kk));
                self.bits[row..row + onx].fill(v);
            }
        }
    }

    /// Number of `true` cells.
    pub fn count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Fraction of the region that is `true`.
    pub fn fill_fraction(&self) -> f64 {
        self.count() as f64 / self.bits.len() as f64
    }

    pub fn any(&self) -> bool {
        self.bits.iter().any(|&b| b)
    }

    pub fn all(&self) -> bool {
        self.bits.iter().all(|&b| b)
    }

    /// In-place logical negation.
    pub fn invert(&mut self) {
        for b in &mut self.bits {
            *b = !*b;
        }
    }

    /// In-place AND with another raster over the same region.
    pub fn and(&mut self, other: &Raster) {
        assert_eq!(self.region, other.region, "raster region mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= *b;
        }
    }

    /// In-place OR with another raster over the same region.
    pub fn or(&mut self, other: &Raster) {
        assert_eq!(self.region, other.region, "raster region mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
    }

    /// Morphological erosion by `n` cells: a cell stays `true` only if every
    /// cell within Chebyshev distance `n` (clipped to the region) is `true`.
    /// Cells near the region boundary treat outside as `false`, so eroding
    /// shrinks regions touching the boundary too.
    pub fn erode(&self, n: i64) -> Raster {
        assert!(n >= 0);
        if n == 0 {
            return self.clone();
        }
        let mut out = Raster::falses(self.region);
        for cell in self.region.cells() {
            let mut keep = true;
            'probe: for dz in -n..=n {
                for dy in -n..=n {
                    for dx in -n..=n {
                        let p = cell + IntVect::new(dx, dy, dz);
                        if !self.region.contains(p) || !self.get_unchecked(p) {
                            keep = false;
                            break 'probe;
                        }
                    }
                }
            }
            if keep {
                let off = self.region.offset(cell);
                out.bits[off] = true;
            }
        }
        out
    }

    /// Morphological dilation by `n` cells (Chebyshev ball), clipped to the
    /// region.
    pub fn dilate(&self, n: i64) -> Raster {
        assert!(n >= 0);
        if n == 0 {
            return self.clone();
        }
        let mut out = Raster::falses(self.region);
        for cell in self.region.cells() {
            if !self.get_unchecked(cell) {
                continue;
            }
            let lo = (cell - IntVect::splat(n)).max(self.region.lo());
            let hi = (cell + IntVect::splat(n)).min(self.region.hi());
            out.set_box(&Box3::new(lo, hi), true);
        }
        out
    }

    /// Iterates over the `true` cells.
    pub fn true_cells(&self) -> impl Iterator<Item = IntVect> + '_ {
        self.region
            .cells()
            .zip(self.bits.iter())
            .filter_map(|(c, &b)| b.then_some(c))
    }

    /// Coarsens the mask by `ratio`: a coarse cell is `true` if **any** of
    /// its fine children is `true`.
    pub fn coarsen_any(&self, ratio: i64) -> Raster {
        let coarse_region = self.region.coarsen(ratio);
        let mut out = Raster::falses(coarse_region);
        for cell in self.true_cells() {
            let off = coarse_region.offset(cell.coarsen(ratio));
            out.bits[off] = true;
        }
        out
    }

    /// Coarsens the mask by `ratio`: a coarse cell is `true` only if **all**
    /// of its fine children are `true` (children outside the fine region
    /// count as `false`).
    pub fn coarsen_all(&self, ratio: i64) -> Raster {
        let coarse_region = self.region.coarsen(ratio);
        let mut out = Raster::trues(coarse_region);
        for coarse in coarse_region.cells() {
            let base = coarse.refine(ratio);
            'children: for dz in 0..ratio {
                for dy in 0..ratio {
                    for dx in 0..ratio {
                        let child = base + IntVect::new(dx, dy, dz);
                        if !self.get(child) {
                            let off = coarse_region.offset(coarse);
                            out.bits[off] = false;
                            break 'children;
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: [i64; 3], hi: [i64; 3]) -> Box3 {
        Box3::new(IntVect(lo), IntVect(hi))
    }

    #[test]
    fn set_box_and_count() {
        let mut r = Raster::falses(b([0, 0, 0], [3, 3, 3]));
        r.set_box(&b([1, 1, 1], [2, 2, 2]), true);
        assert_eq!(r.count(), 8);
        assert!(r.get(IntVect::new(1, 2, 1)));
        assert!(!r.get(IntVect::new(0, 0, 0)));
        assert!(!r.get(IntVect::new(9, 9, 9))); // out of region
        assert!((r.fill_fraction() - 8.0 / 64.0).abs() < 1e-15);
    }

    #[test]
    fn from_box_array_marks_union() {
        let ba = BoxArray::new(vec![b([0, 0, 0], [0, 3, 3]), b([3, 0, 0], [3, 3, 3])]);
        let r = Raster::from_box_array(b([0, 0, 0], [3, 3, 3]), &ba);
        assert_eq!(r.count(), 32);
        assert!(r.true_cells().all(|c| c[0] == 0 || c[0] == 3));
    }

    #[test]
    fn erode_shrinks() {
        let mut r = Raster::falses(b([0, 0, 0], [6, 6, 6]));
        r.set_box(&b([1, 1, 1], [5, 5, 5]), true);
        let e = r.erode(1);
        assert_eq!(e.count(), 27); // 5³ → 3³
        assert!(e.get(IntVect::new(3, 3, 3)));
        assert!(!e.get(IntVect::new(1, 1, 1)));
    }

    #[test]
    fn erode_removes_boundary_touching_cells() {
        let r = Raster::trues(b([0, 0, 0], [2, 2, 2]));
        let e = r.erode(1);
        assert_eq!(e.count(), 1);
        assert!(e.get(IntVect::new(1, 1, 1)));
    }

    #[test]
    fn dilate_grows_and_clips() {
        let mut r = Raster::falses(b([0, 0, 0], [4, 4, 4]));
        r.set(IntVect::new(0, 0, 0), true);
        let d = r.dilate(1);
        assert_eq!(d.count(), 8); // clipped 3³ ball at the corner
    }

    #[test]
    fn erode_dilate_are_adjoint_on_interior() {
        let mut r = Raster::falses(b([0, 0, 0], [9, 9, 9]));
        r.set_box(&b([3, 3, 3], [6, 6, 6]), true);
        assert_eq!(r.erode(1).dilate(1), r);
    }

    #[test]
    fn coarsen_any_vs_all() {
        let mut r = Raster::falses(b([0, 0, 0], [3, 3, 3]));
        // Fill exactly one fine child of coarse cell (0,0,0), all 8 of (1,1,1).
        r.set(IntVect::new(0, 0, 0), true);
        r.set_box(&b([2, 2, 2], [3, 3, 3]), true);
        let any = r.coarsen_any(2);
        let all = r.coarsen_all(2);
        assert!(any.get(IntVect::new(0, 0, 0)));
        assert!(!all.get(IntVect::new(0, 0, 0)));
        assert!(any.get(IntVect::new(1, 1, 1)));
        assert!(all.get(IntVect::new(1, 1, 1)));
        assert!(!any.get(IntVect::new(1, 0, 0)));
    }

    #[test]
    fn logic_ops() {
        let region = b([0, 0, 0], [1, 1, 1]);
        let mut a = Raster::falses(region);
        a.set_box(&b([0, 0, 0], [0, 1, 1]), true);
        let mut bm = Raster::falses(region);
        bm.set_box(&b([0, 0, 0], [1, 0, 1]), true);
        let mut and = a.clone();
        and.and(&bm);
        assert_eq!(and.count(), 2);
        let mut or = a.clone();
        or.or(&bm);
        assert_eq!(or.count(), 6);
        let mut inv = a;
        inv.invert();
        assert_eq!(inv.count(), 4);
    }
}
