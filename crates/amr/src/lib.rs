//! Block-structured (patch-based) adaptive mesh refinement substrate.
//!
//! This crate reimplements, from scratch and in safe Rust, the subset of the
//! AMReX data model that the paper's evaluation depends on:
//!
//! * integer index space: [`IntVect`], cell-centered index [`Box3`]es and
//!   [`BoxArray`]s (`ivec`, `boxes`, `box_array`);
//! * data containers: a [`Fab`] is a dense field on one box, a [`MultiFab`]
//!   is a field over a whole box array (`fab`, `multifab`);
//! * a [`Geometry`] mapping index space to physical space (`geometry`);
//! * coarse↔fine transfer operators (`interp`);
//! * rasterized coverage masks for level interiors/interfaces (`mask`);
//! * tagging + Berger–Rigoutsos box clustering for regridding (`regrid`);
//! * a multi-level [`AmrHierarchy`] with per-level fields (`hierarchy`);
//! * merging a hierarchy to a single uniform-resolution grid, omitting the
//!   redundant coarse data exactly as the paper's §2.2 describes
//!   (`resample`);
//! * a simple on-disk plotfile format (`plotfile`).
//!
//! Patch-based semantics follow AMReX: every level covers its boxes fully,
//! and coarse levels *retain* data underneath finer levels (the "redundant"
//! coarse data). Downstream crates decide whether to use or omit that
//! redundancy (compression may skip it; the dual-cell visualization method
//! uses it to bridge gaps between levels).

pub mod box_array;
pub mod boxes;
pub mod error;
pub mod fab;
pub mod geometry;
pub mod hierarchy;
pub mod interp;
pub mod ivec;
pub mod mask;
pub mod multifab;
pub mod plotfile;
pub mod regrid;
pub mod resample;

pub use box_array::BoxArray;
pub use boxes::Box3;
pub use error::AmrError;
pub use fab::Fab;
pub use geometry::Geometry;
pub use hierarchy::{AmrField, AmrHierarchy};
pub use interp::{prolong_piecewise_constant, prolong_trilinear, restrict_average};
pub use ivec::IntVect;
pub use mask::Raster;
pub use multifab::{rasterize_into, MultiFab};
pub use regrid::{berger_rigoutsos, RegridConfig};
pub use resample::{
    flatten_levels_to_finest, flatten_to_finest, rasterize_level, upsample_dense,
    upsample_dense_owned, UniformField, Upsample,
};
