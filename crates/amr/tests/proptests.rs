//! Property-based tests of the AMR substrate's algebraic invariants.

use amrviz_amr::regrid::tag_where;
use amrviz_amr::{
    berger_rigoutsos, Box3, BoxArray, Fab, IntVect, Raster, RegridConfig,
};
use proptest::prelude::*;

/// Strategy: a random non-empty box with coordinates in ±32 and extents
/// up to 16.
fn arb_box() -> impl Strategy<Value = Box3> {
    (
        -32i64..32,
        -32i64..32,
        -32i64..32,
        1i64..16,
        1i64..16,
        1i64..16,
    )
        .prop_map(|(x, y, z, dx, dy, dz)| {
            Box3::new(
                IntVect::new(x, y, z),
                IntVect::new(x + dx - 1, y + dy - 1, z + dz - 1),
            )
        })
}

proptest! {
    #[test]
    fn intersection_is_commutative_and_contained(a in arb_box(), b in arb_box()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains_box(&i));
            prop_assert!(b.contains_box(&i));
            // Every cell of the intersection is in both boxes.
            for c in i.cells().take(64) {
                prop_assert!(a.contains(c) && b.contains(c));
            }
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn union_hull_contains_both(a in arb_box(), b in arb_box()) {
        let h = a.union_hull(&b);
        prop_assert!(h.contains_box(&a));
        prop_assert!(h.contains_box(&b));
    }

    #[test]
    fn subtract_partitions_exactly(a in arb_box(), b in arb_box()) {
        let parts = a.subtract(&b);
        // Disjointness.
        for (i, p) in parts.iter().enumerate() {
            prop_assert!(!p.intersects(&b));
            prop_assert!(a.contains_box(p));
            for q in &parts[i + 1..] {
                prop_assert!(!p.intersects(q));
            }
        }
        // Cell count conservation.
        let cut = a.intersect(&b).map_or(0, |i| i.num_cells());
        let total: usize = parts.iter().map(Box3::num_cells).sum();
        prop_assert_eq!(total + cut, a.num_cells());
    }

    #[test]
    fn refine_coarsen_roundtrip(a in arb_box(), r in 2i64..5) {
        prop_assert_eq!(a.refine(r).coarsen(r), a);
        // Coarsening any box then refining covers the original.
        prop_assert!(a.coarsen(r).refine(r).contains_box(&a));
        prop_assert_eq!(a.refine(r).num_cells(), a.num_cells() * (r * r * r) as usize);
    }

    #[test]
    fn coarsen_is_minimal_cover(a in arb_box(), r in 2i64..5) {
        // No strictly smaller aligned coarse box covers `a`.
        let c = a.coarsen(r);
        if c.num_cells() > 1 {
            // Shrinking any face by one must lose coverage.
            for axis in 0..3 {
                if c.extent(axis) > 1 {
                    let mut hi = c.hi();
                    hi[axis] -= 1;
                    let smaller = Box3::new(c.lo(), hi);
                    prop_assert!(!smaller.refine(r).contains_box(&a)
                        || !smaller.refine(r).contains_box(&a));
                }
            }
        }
    }

    #[test]
    fn chop_to_max_cells_is_a_partition(a in arb_box(), max_cells in 1usize..64) {
        let ba = BoxArray::single(a).chop_to_max_cells(max_cells);
        prop_assert!(ba.validate_disjoint().is_ok());
        prop_assert_eq!(ba.num_cells(), a.num_cells());
        for b in ba.iter() {
            prop_assert!(a.contains_box(b));
            prop_assert!(b.num_cells() <= max_cells.max(1));
        }
    }

    #[test]
    fn complement_in_partitions(a in arb_box(), cuts in prop::collection::vec(arb_box(), 0..4)) {
        let ba = BoxArray::new(cuts.clone());
        let rest = ba.complement_in(&a);
        // Disjoint, inside `a`, not intersecting any cut.
        for (i, p) in rest.iter().enumerate() {
            prop_assert!(a.contains_box(p));
            prop_assert!(!ba.intersects(p));
            for q in &rest[i + 1..] {
                prop_assert!(!p.intersects(q));
            }
        }
        // Conservation: |rest| + |a ∩ union(cuts)| == |a| — verify by
        // rasterizing (authoritative but O(n)).
        let mut mask = Raster::falses(a);
        for c in &cuts {
            mask.set_box(c, true);
        }
        let covered_in_a = mask.count();
        let total: usize = rest.iter().map(Box3::num_cells).sum();
        prop_assert_eq!(total + covered_in_a, a.num_cells());
    }

    #[test]
    fn raster_coarsen_any_matches_definition(
        seeds in prop::collection::vec((0usize..16, 0usize..16, 0usize..16), 1..20),
        r in 2i64..4,
    ) {
        let region = Box3::from_dims(16, 16, 16);
        let mut tags = Raster::falses(region);
        for (i, j, k) in seeds {
            tags.set(IntVect::new(i as i64, j as i64, k as i64), true);
        }
        let coarse = tags.coarsen_any(r);
        for cell in tags.true_cells() {
            prop_assert!(coarse.get(cell.coarsen(r)));
        }
        // Count consistency: every true coarse cell has ≥1 true child.
        for cc in coarse.true_cells() {
            let base = cc.refine(r);
            let mut any = false;
            for dz in 0..r {
                for dy in 0..r {
                    for dx in 0..r {
                        any |= tags.get(base + IntVect::new(dx, dy, dz));
                    }
                }
            }
            prop_assert!(any);
        }
    }

    #[test]
    fn berger_rigoutsos_covers_all_tags(
        boxes in prop::collection::vec(
            (0i64..24, 0i64..24, 0i64..24, 1i64..8, 1i64..8, 1i64..8),
            1..4,
        ),
        eff in 0.3f64..0.95,
    ) {
        let region = Box3::from_dims(32, 32, 32);
        let mut tags = Raster::falses(region);
        for (x, y, z, dx, dy, dz) in boxes {
            let lo = IntVect::new(x, y, z);
            let hi = IntVect::new(
                (x + dx - 1).min(31),
                (y + dy - 1).min(31),
                (z + dz - 1).min(31),
            );
            tags.set_box(&Box3::new(lo, hi), true);
        }
        let cfg = RegridConfig { efficiency: eff, blocking_factor: 4, max_box_cells: None };
        let ba = berger_rigoutsos(&tags, &cfg);
        prop_assert!(ba.validate_disjoint().is_ok());
        for cell in tags.true_cells() {
            prop_assert!(ba.contains(cell), "tag {cell:?} uncovered");
        }
        for b in ba.iter() {
            prop_assert!(region.contains_box(b));
        }
    }

    #[test]
    fn fab_copy_roundtrip(a in arb_box(), b in arb_box()) {
        let src = Fab::from_fn(b, |iv| (iv[0] * 31 + iv[1] * 7 + iv[2]) as f64);
        let mut dst = Fab::constant(a, f64::NAN);
        let copied = dst.copy_from(&src);
        let overlap = a.intersect(&b).map_or(0, |o| o.num_cells());
        prop_assert_eq!(copied, overlap);
        for (cell, v) in dst.iter() {
            if b.contains(cell) {
                prop_assert_eq!(v, src.get(cell));
            } else {
                prop_assert!(v.is_nan());
            }
        }
    }

    #[test]
    fn tag_where_count_matches_predicate(vals in prop::collection::vec(-10.0f64..10.0, 27)) {
        let region = Box3::from_dims(3, 3, 3);
        let tags = tag_where(region, &vals, |v| v > 0.0);
        prop_assert_eq!(tags.count(), vals.iter().filter(|&&v| v > 0.0).count());
    }
}
