//! Property-based tests of the AMR substrate's algebraic invariants,
//! driven by the seeded `amrviz_rng::check` harness (deterministic across
//! platforms; failures report a reproduction seed).

use amrviz_amr::regrid::tag_where;
use amrviz_amr::{berger_rigoutsos, Box3, BoxArray, Fab, IntVect, Raster, RegridConfig};
use amrviz_rng::{check, Rng};

/// A random non-empty box with coordinates in ±32 and extents up to 16.
fn arb_box(rng: &mut Rng) -> Box3 {
    let x = rng.range_i64(-32, 31);
    let y = rng.range_i64(-32, 31);
    let z = rng.range_i64(-32, 31);
    let dx = rng.range_i64(1, 15);
    let dy = rng.range_i64(1, 15);
    let dz = rng.range_i64(1, 15);
    Box3::new(
        IntVect::new(x, y, z),
        IntVect::new(x + dx - 1, y + dy - 1, z + dz - 1),
    )
}

#[test]
fn intersection_is_commutative_and_contained() {
    check(0xA1, 256, |rng| {
        let a = arb_box(rng);
        let b = arb_box(rng);
        assert_eq!(a.intersect(&b), b.intersect(&a));
        if let Some(i) = a.intersect(&b) {
            assert!(a.contains_box(&i));
            assert!(b.contains_box(&i));
            // Every cell of the intersection is in both boxes.
            for c in i.cells().take(64) {
                assert!(a.contains(c) && b.contains(c));
            }
        } else {
            assert!(!a.intersects(&b));
        }
    });
}

#[test]
fn union_hull_contains_both() {
    check(0xA2, 256, |rng| {
        let a = arb_box(rng);
        let b = arb_box(rng);
        let h = a.union_hull(&b);
        assert!(h.contains_box(&a));
        assert!(h.contains_box(&b));
    });
}

#[test]
fn subtract_partitions_exactly() {
    check(0xA3, 128, |rng| {
        let a = arb_box(rng);
        let b = arb_box(rng);
        let parts = a.subtract(&b);
        // Disjointness.
        for (i, p) in parts.iter().enumerate() {
            assert!(!p.intersects(&b));
            assert!(a.contains_box(p));
            for q in &parts[i + 1..] {
                assert!(!p.intersects(q));
            }
        }
        // Cell count conservation.
        let cut = a.intersect(&b).map_or(0, |i| i.num_cells());
        let total: usize = parts.iter().map(Box3::num_cells).sum();
        assert_eq!(total + cut, a.num_cells());
    });
}

#[test]
fn refine_coarsen_roundtrip() {
    check(0xA4, 256, |rng| {
        let a = arb_box(rng);
        let r = rng.range_i64(2, 4);
        assert_eq!(a.refine(r).coarsen(r), a);
        // Coarsening any box then refining covers the original.
        assert!(a.coarsen(r).refine(r).contains_box(&a));
        assert_eq!(
            a.refine(r).num_cells(),
            a.num_cells() * (r * r * r) as usize
        );
    });
}

#[test]
fn coarsen_is_minimal_cover() {
    check(0xA5, 256, |rng| {
        let a = arb_box(rng);
        let r = rng.range_i64(2, 4);
        // No strictly smaller aligned coarse box covers `a`.
        let c = a.coarsen(r);
        if c.num_cells() > 1 {
            // Shrinking any face by one must lose coverage.
            for axis in 0..3 {
                if c.extent(axis) > 1 {
                    let mut hi = c.hi();
                    hi[axis] -= 1;
                    let smaller = Box3::new(c.lo(), hi);
                    assert!(!smaller.refine(r).contains_box(&a));
                }
            }
        }
    });
}

#[test]
fn chop_to_max_cells_is_a_partition() {
    check(0xA6, 128, |rng| {
        let a = arb_box(rng);
        let max_cells = rng.range_usize(1, 63);
        let ba = BoxArray::single(a).chop_to_max_cells(max_cells);
        assert!(ba.validate_disjoint().is_ok());
        assert_eq!(ba.num_cells(), a.num_cells());
        for b in ba.iter() {
            assert!(a.contains_box(b));
            assert!(b.num_cells() <= max_cells.max(1));
        }
    });
}

#[test]
fn complement_in_partitions() {
    check(0xA7, 96, |rng| {
        let a = arb_box(rng);
        let cuts: Vec<Box3> = (0..rng.range_usize(0, 3)).map(|_| arb_box(rng)).collect();
        let ba = BoxArray::new(cuts.clone());
        let rest = ba.complement_in(&a);
        // Disjoint, inside `a`, not intersecting any cut.
        for (i, p) in rest.iter().enumerate() {
            assert!(a.contains_box(p));
            assert!(!ba.intersects(p));
            for q in &rest[i + 1..] {
                assert!(!p.intersects(q));
            }
        }
        // Conservation: |rest| + |a ∩ union(cuts)| == |a| — verify by
        // rasterizing (authoritative but O(n)).
        let mut mask = Raster::falses(a);
        for c in &cuts {
            mask.set_box(c, true);
        }
        let covered_in_a = mask.count();
        let total: usize = rest.iter().map(Box3::num_cells).sum();
        assert_eq!(total + covered_in_a, a.num_cells());
    });
}

#[test]
fn raster_coarsen_any_matches_definition() {
    check(0xA8, 64, |rng| {
        let n_seeds = rng.range_usize(1, 19);
        let r = rng.range_i64(2, 3);
        let region = Box3::from_dims(16, 16, 16);
        let mut tags = Raster::falses(region);
        for _ in 0..n_seeds {
            let i = rng.range_i64(0, 15);
            let j = rng.range_i64(0, 15);
            let k = rng.range_i64(0, 15);
            tags.set(IntVect::new(i, j, k), true);
        }
        let coarse = tags.coarsen_any(r);
        for cell in tags.true_cells() {
            assert!(coarse.get(cell.coarsen(r)));
        }
        // Count consistency: every true coarse cell has ≥1 true child.
        for cc in coarse.true_cells() {
            let base = cc.refine(r);
            let mut any = false;
            for dz in 0..r {
                for dy in 0..r {
                    for dx in 0..r {
                        any |= tags.get(base + IntVect::new(dx, dy, dz));
                    }
                }
            }
            assert!(any);
        }
    });
}

#[test]
fn berger_rigoutsos_covers_all_tags() {
    check(0xA9, 48, |rng| {
        let region = Box3::from_dims(32, 32, 32);
        let mut tags = Raster::falses(region);
        for _ in 0..rng.range_usize(1, 3) {
            let x = rng.range_i64(0, 23);
            let y = rng.range_i64(0, 23);
            let z = rng.range_i64(0, 23);
            let dx = rng.range_i64(1, 7);
            let dy = rng.range_i64(1, 7);
            let dz = rng.range_i64(1, 7);
            let lo = IntVect::new(x, y, z);
            let hi = IntVect::new(
                (x + dx - 1).min(31),
                (y + dy - 1).min(31),
                (z + dz - 1).min(31),
            );
            tags.set_box(&Box3::new(lo, hi), true);
        }
        let eff = rng.range_f64(0.3, 0.95);
        let cfg = RegridConfig {
            efficiency: eff,
            blocking_factor: 4,
            max_box_cells: None,
        };
        let ba = berger_rigoutsos(&tags, &cfg);
        assert!(ba.validate_disjoint().is_ok());
        for cell in tags.true_cells() {
            assert!(ba.contains(cell), "tag {cell:?} uncovered");
        }
        for b in ba.iter() {
            assert!(region.contains_box(b));
        }
    });
}

#[test]
fn fab_copy_roundtrip() {
    check(0xAA, 128, |rng| {
        let a = arb_box(rng);
        let b = arb_box(rng);
        let src = Fab::from_fn(b, |iv| (iv[0] * 31 + iv[1] * 7 + iv[2]) as f64);
        let mut dst = Fab::constant(a, f64::NAN);
        let copied = dst.copy_from(&src);
        let overlap = a.intersect(&b).map_or(0, |o| o.num_cells());
        assert_eq!(copied, overlap);
        for (cell, v) in dst.iter() {
            if b.contains(cell) {
                assert_eq!(v, src.get(cell));
            } else {
                assert!(v.is_nan());
            }
        }
    });
}

#[test]
fn tag_where_count_matches_predicate() {
    check(0xAB, 128, |rng| {
        let vals: Vec<f64> = (0..27).map(|_| rng.range_f64(-10.0, 10.0)).collect();
        let region = Box3::from_dims(3, 3, 3);
        let tags = tag_where(region, &vals, |v| v > 0.0);
        assert_eq!(tags.count(), vals.iter().filter(|&&v| v > 0.0).count());
    });
}
