//! Implementations of the `amrviz` subcommands.

use std::path::Path;

use amrviz_amr::plotfile::{read_plotfile, write_plotfile};
use amrviz_amr::resample::{flatten_to_finest, Upsample};
use amrviz_amr::AmrHierarchy;
use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field_policy, AmrCodecConfig,
    CompressedHierarchyField, CompressionStats, Compressor, DecodeBudget, DecodePolicy, ErrorBound,
    FabStatus, SzInterp, SzLr, ZfpLike,
};
use amrviz_render::{
    render_mesh, render_slice, render_volume, Camera, RenderOptions, SliceOptions, VolumeOptions,
};
use amrviz_sim::solver::AmrAdvection;
use amrviz_sim::{NyxScenario, Scale, WarpxScenario};
use amrviz_viz::{extract_amr_isosurface, obj, IsoMethod};

use crate::args::parse;

fn algo(name: Option<&str>) -> Result<Box<dyn Compressor>, String> {
    match name.unwrap_or("szlr") {
        "szlr" => Ok(Box::new(SzLr::default())),
        "szinterp" => Ok(Box::new(SzInterp)),
        "zfp" => Ok(Box::new(ZfpLike)),
        other => Err(format!("unknown algorithm `{other}` (szlr|szinterp|zfp)")),
    }
}

fn method(name: Option<&str>) -> Result<IsoMethod, String> {
    match name.unwrap_or("resampling") {
        "resampling" => Ok(IsoMethod::Resampling),
        "dual" => Ok(IsoMethod::DualCell),
        "dual-redundant" => Ok(IsoMethod::DualCellRedundant),
        other => Err(format!(
            "unknown method `{other}` (resampling|dual|dual-redundant)"
        )),
    }
}

fn bound(p: &crate::args::Parsed) -> Result<ErrorBound, String> {
    match (p.opt_parse::<f64>("rel")?, p.opt_parse::<f64>("abs")?) {
        (Some(_), Some(_)) => Err("--rel and --abs are mutually exclusive".into()),
        (Some(r), None) => Ok(ErrorBound::Rel(r)),
        (None, Some(a)) => Ok(ErrorBound::Abs(a)),
        (None, None) => Ok(ErrorBound::Rel(1e-3)),
    }
}

fn load(path: &str) -> Result<AmrHierarchy, String> {
    read_plotfile(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))
}

/// Iso value from `--iso` or `--quantile` (default: 0.9 quantile).
fn iso_value(p: &crate::args::Parsed, hier: &AmrHierarchy, field: &str) -> Result<f64, String> {
    if let Some(v) = p.opt_parse::<f64>("iso")? {
        return Ok(v);
    }
    let q = p.opt_parse::<f64>("quantile")?.unwrap_or(0.9);
    if !(0.0..=1.0).contains(&q) {
        return Err("--quantile must be in [0, 1]".into());
    }
    let uniform =
        flatten_to_finest(hier, field, Upsample::PiecewiseConstant).map_err(|e| e.to_string())?;
    let mut v = uniform.data;
    let k = ((v.len() - 1) as f64 * q).round() as usize;
    let (_, val, _) = v.select_nth_unstable_by(k, |a, b| a.partial_cmp(b).expect("no NaNs"));
    Ok(*val)
}

pub fn generate(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &["out", "scale", "seed"], &["all-fields"])?;
    let app = p.positional(0, "application (nyx|warpx)")?;
    let out = p.required("out")?;
    let scale = match p.opt("scale") {
        None => Scale::Small,
        Some(s) => Scale::parse(s).ok_or(format!("unknown scale `{s}`"))?,
    };
    let seed = p.opt_parse::<u64>("seed")?.unwrap_or(42);
    let hier = match app {
        "nyx" => {
            let mut sc = NyxScenario::new(scale, seed);
            if p.switch("all-fields") {
                sc = sc.with_all_fields();
            }
            sc.generate()
        }
        "warpx" => WarpxScenario::new(scale, seed).generate(),
        other => return Err(format!("unknown application `{other}` (nyx|warpx)")),
    };
    write_plotfile(Path::new(out), &hier).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} levels, {} cells, fields: {:?}",
        hier.num_levels(),
        hier.total_cells(),
        hier.field_names()
    );
    Ok(())
}

pub fn simulate(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &["out", "n", "steps", "snap-every"], &[])?;
    let out = Path::new(p.required("out")?);
    let n = p.opt_parse::<usize>("n")?.unwrap_or(32);
    let steps = p.opt_parse::<u64>("steps")?.unwrap_or(24);
    let every = p.opt_parse::<u64>("snap-every")?.unwrap_or(8).max(1);
    std::fs::create_dir_all(out).map_err(|e| e.to_string())?;
    let mut sim = AmrAdvection::new(n, [1.0, 0.4, 0.0], 0.02, |pt| {
        let r2 = (pt[0] - 0.25).powi(2) + (pt[1] - 0.3).powi(2) + (pt[2] - 0.5).powi(2);
        (-r2 / (2.0 * 0.07f64.powi(2))).exp()
    });
    let snap = |sim: &AmrAdvection| -> Result<(), String> {
        let h = sim.hierarchy();
        let dir = out.join(format!("plt{:05}", h.step));
        write_plotfile(&dir, h).map_err(|e| e.to_string())?;
        println!(
            "step {:>4}  t={:.4}  fine cells {:>8}  -> {}",
            h.step,
            sim.time(),
            h.box_array(1).num_cells(),
            dir.display()
        );
        Ok(())
    };
    snap(&sim)?;
    let mut done = 0;
    while done < steps {
        let burst = every.min(steps - done);
        sim.run(burst);
        done += burst;
        snap(&sim)?;
    }
    Ok(())
}

pub fn info(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &[], &[])?;
    let hier = load(p.positional(0, "plotfile path")?)?;
    println!("levels:      {}", hier.num_levels());
    println!("ref ratios:  {:?}", hier.ref_ratios());
    println!("time/step:   {} / {}", hier.time, hier.step);
    let g = hier.geometry();
    println!("phys box:    {:?} .. {:?}", g.prob_lo, g.prob_hi);
    for lev in 0..hier.num_levels() {
        println!(
            "level {lev}: domain {:?}, {} boxes, {} cells, density {:.1}%",
            hier.level_domain(lev).size(),
            hier.box_array(lev).len(),
            hier.box_array(lev).num_cells(),
            hier.level_density(lev) * 100.0
        );
    }
    for f in hier.fields() {
        let (lo, hi) = f
            .levels
            .iter()
            .map(|mf| mf.min_max())
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(al, ah), (bl, bh)| {
                (al.min(bl), ah.max(bh))
            });
        println!("field {:<20} range [{lo:.6e}, {hi:.6e}]", f.name);
    }
    Ok(())
}

pub fn compress(argv: &[String]) -> Result<(), String> {
    let p = parse(
        argv,
        &["field", "out", "algo", "rel", "abs"],
        &["skip-redundant"],
    )?;
    let hier = load(p.positional(0, "plotfile path")?)?;
    let field = p.required("field")?;
    let out = p.required("out")?;
    let comp = algo(p.opt("algo"))?;
    let cfg = AmrCodecConfig {
        skip_redundant: p.switch("skip-redundant"),
        restore_redundant: false,
    };
    let sp = amrviz_obs::span!("compress", algo = comp.name());
    let c = compress_hierarchy_field(&hier, field, comp.as_ref(), bound(&p)?, &cfg)
        .map_err(|e| e.to_string())?;
    let secs = sp.finish();
    std::fs::write(out, c.to_bytes()).map_err(|e| e.to_string())?;
    let stats = CompressionStats::new(c.n_values, c.compressed_bytes());
    println!(
        "{} -> {out}: {} values, {} bytes, CR {:.1}x (f64) / {:.1}x (f32-equiv), \
         {:.2} bits/value, abs eb {:.3e}, {:.2} s ({:.0} MB/s)",
        comp.name(),
        c.n_values,
        c.compressed_bytes(),
        stats.ratio(),
        stats.ratio_vs_f32(),
        stats.bits_per_value(),
        c.abs_eb,
        secs,
        stats.original_bytes as f64 / secs / 1e6
    );
    Ok(())
}

pub fn decompress(argv: &[String]) -> Result<(), String> {
    let p = parse(
        argv,
        &["out", "algo", "field"],
        &["skip-redundant", "degrade"],
    )?;
    let hier = load(p.positional(0, "plotfile path (for structure)")?)?;
    let stream_path = p.positional(1, "compressed stream path")?;
    let out = p.required("out")?;
    let comp = algo(p.opt("algo"))?;
    let field_name = p.opt("field").unwrap_or("decompressed");
    let bytes = std::fs::read(stream_path).map_err(|e| e.to_string())?;
    let c = CompressedHierarchyField::from_bytes(&bytes).map_err(|e| e.to_string())?;
    let cfg = AmrCodecConfig {
        skip_redundant: p.switch("skip-redundant"),
        restore_redundant: p.switch("skip-redundant"),
    };
    let policy = if p.switch("degrade") {
        DecodePolicy::Degrade
    } else {
        DecodePolicy::Strict
    };
    let (levels, report) = decompress_hierarchy_field_policy(
        &hier,
        &c,
        comp.as_ref(),
        &cfg,
        policy,
        &DecodeBudget::default(),
    )
    .map_err(|e| e.to_string())?;
    let (n_ok, n_degraded, n_failed) = report.counts();
    if n_degraded + n_failed > 0 {
        eprintln!("decode report: {n_ok} fabs ok, {n_degraded} degraded, {n_failed} failed");
        for (lev, fab, status) in report.problems() {
            match status {
                FabStatus::Degraded { repair, cause } => {
                    eprintln!("  level {lev} fab {fab}: degraded ({repair:?}): {cause}")
                }
                FabStatus::Failed { cause } => {
                    eprintln!("  level {lev} fab {fab}: FAILED (zero-filled): {cause}")
                }
                FabStatus::Ok => {}
            }
        }
    }
    // Write a fresh plotfile holding only the decompressed field on the
    // same structure.
    let mut out_hier = AmrHierarchy::new(
        *hier.geometry(),
        hier.ref_ratios().to_vec(),
        hier.box_arrays().to_vec(),
    )
    .map_err(|e| e.to_string())?;
    out_hier.time = hier.time;
    out_hier.step = hier.step;
    out_hier
        .add_field(field_name, levels)
        .map_err(|e| e.to_string())?;
    write_plotfile(Path::new(out), &out_hier).map_err(|e| e.to_string())?;
    println!(
        "wrote {out} with field `{field_name}` (abs eb {:.3e})",
        c.abs_eb
    );
    Ok(())
}

pub fn extract(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &["field", "out", "iso", "quantile", "method"], &[])?;
    let hier = load(p.positional(0, "plotfile path")?)?;
    let field = p.required("field")?;
    let out = p.required("out")?;
    let m = method(p.opt("method"))?;
    let iso = iso_value(&p, &hier, field)?;
    let levels = &hier.field(field).map_err(|e| e.to_string())?.levels;
    let res = extract_amr_isosurface(&hier, levels, iso, m);
    obj::save_obj(Path::new(out), &res.combined()).map_err(|e| e.to_string())?;
    println!(
        "{} @ iso {iso:.6e}: {} triangles ({} per-level) -> {out}",
        m.label(),
        res.total_triangles(),
        res.level_meshes
            .iter()
            .map(|m| m.num_triangles().to_string())
            .collect::<Vec<_>>()
            .join(" + ")
    );
    Ok(())
}

pub fn render(argv: &[String]) -> Result<(), String> {
    let p = parse(
        argv,
        &[
            "field", "out", "iso", "quantile", "method", "mode", "width", "height",
        ],
        &["log"],
    )?;
    let hier = load(p.positional(0, "plotfile path")?)?;
    let field = p.required("field")?;
    let out = p.required("out")?;
    let width = p.opt_parse::<usize>("width")?.unwrap_or(960);
    let height = p.opt_parse::<usize>("height")?.unwrap_or(720);

    let g = hier.geometry();
    let center = [
        0.5 * (g.prob_lo[0] + g.prob_hi[0]),
        0.5 * (g.prob_lo[1] + g.prob_hi[1]),
        0.5 * (g.prob_lo[2] + g.prob_hi[2]),
    ];
    let diag = (0..3)
        .map(|a| (g.prob_hi[a] - g.prob_lo[a]).powi(2))
        .sum::<f64>()
        .sqrt();
    let eye = [
        center[0] - diag,
        center[1] - 0.6 * diag,
        center[2] + 0.5 * diag,
    ];
    let cam = Camera::orthographic(eye, center, 0.55 * diag);

    let img = match p.opt("mode").unwrap_or("surface") {
        "surface" => {
            let m = method(p.opt("method"))?;
            let iso = iso_value(&p, &hier, field)?;
            let levels = &hier.field(field).map_err(|e| e.to_string())?.levels;
            let mesh = extract_amr_isosurface(&hier, levels, iso, m).into_combined();
            println!(
                "surface @ iso {iso:.6e}: {} triangles",
                mesh.num_triangles()
            );
            render_mesh(
                &mesh,
                &cam,
                &RenderOptions {
                    width,
                    height,
                    ..Default::default()
                },
            )
        }
        "slice" => render_slice(
            &hier,
            field,
            &SliceOptions {
                log_scale: p.switch("log"),
                ..Default::default()
            },
        )
        .map_err(|e| e.to_string())?,
        "volume" => {
            let uniform = flatten_to_finest(&hier, field, Upsample::PiecewiseConstant)
                .map_err(|e| e.to_string())?;
            render_volume(
                &uniform,
                g.prob_lo,
                g.prob_hi,
                &cam,
                &VolumeOptions {
                    width,
                    height,
                    log_scale: p.switch("log"),
                    ..Default::default()
                },
            )
        }
        other => return Err(format!("unknown mode `{other}` (surface|slice|volume)")),
    };
    img.save_png(Path::new(out)).map_err(|e| e.to_string())?;
    println!("wrote {out} ({}x{})", img.width, img.height);
    Ok(())
}

/// Compares a field across two plotfiles on the uniform-resolution merge:
/// PSNR, SSIM, R-SSIM, max error — the quality check for a compression
/// round-trip.
pub fn diff(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &["field", "field-b"], &[])?;
    let ha = load(p.positional(0, "first plotfile")?)?;
    let hb = load(p.positional(1, "second plotfile")?)?;
    let fa = p.required("field")?;
    let fb = p.opt("field-b").unwrap_or(fa);
    let ua = flatten_to_finest(&ha, fa, Upsample::PiecewiseConstant).map_err(|e| e.to_string())?;
    let ub = flatten_to_finest(&hb, fb, Upsample::PiecewiseConstant).map_err(|e| e.to_string())?;
    if ua.dims() != ub.dims() {
        return Err(format!(
            "shape mismatch: {:?} vs {:?}",
            ua.dims(),
            ub.dims()
        ));
    }
    let q = amrviz_metrics::quality(&ua.data, &ub.data);
    let s = amrviz_metrics::ssim3(
        &ua.data,
        &ub.data,
        ua.dims(),
        &amrviz_metrics::SsimConfig::default(),
    );
    println!("samples:     {}", q.n);
    println!("range (A):   {:.6e}", q.range);
    println!("max |err|:   {:.6e}", q.max_abs_err);
    println!("RMSE:        {:.6e}", q.rmse);
    println!("PSNR:        {:.2} dB", q.psnr);
    println!("SSIM:        {:.9}", s);
    println!("R-SSIM:      {:.3e}", 1.0 - s);
    Ok(())
}

/// Fault-injection sweep: corrupt known-good streams and assert every
/// decoder errors gracefully within its memory budget.
pub fn torture(argv: &[String]) -> Result<(), String> {
    let p = parse(
        argv,
        &["iters", "seed", "max-peak-mb", "recipes", "workers"],
        &["serve"],
    )?;
    if p.switch("serve") {
        return serve_torture(&p);
    }
    let cfg = amrviz_fault::TortureConfig {
        seed: p.opt_parse::<u64>("seed")?.unwrap_or(7),
        iters: p.opt_parse::<u32>("iters")?.unwrap_or(500),
        max_peak_bytes: p
            .opt_parse::<usize>("max-peak-mb")?
            .unwrap_or(128)
            .saturating_mul(1 << 20),
        recipes: p.opt_parse::<u32>("recipes")?.unwrap_or(0),
    };
    if cfg.iters == 0 {
        return Err("--iters must be at least 1".into());
    }
    let report = amrviz_fault::run_torture(&cfg);
    println!("TORTURE {}", report.to_json());
    if report.passed() {
        Ok(())
    } else {
        let mut msg = format!(
            "torture run failed: {} panic(s), {} over-budget decode(s)",
            report.panics, report.over_budget
        );
        for v in &report.violations {
            msg.push('\n');
            msg.push_str("  ");
            msg.push_str(v);
        }
        msg.push_str(&format!(
            "\nreproduce with: amrviz torture --seed {} --iters {}",
            report.seed, report.iters
        ));
        if report.recipes > 0 {
            msg.push_str(&format!(" --recipes {}", report.recipes));
        }
        Err(msg)
    }
}

/// Pinned benchmark matrix with BENCH_*.json output and baseline gating.
pub fn bench(argv: &[String]) -> Result<(), String> {
    let p = parse(
        argv,
        &[
            "name",
            "out",
            "baseline",
            "threshold",
            "scale",
            "thread-counts",
            "ebs",
        ],
        &["quick", "obs-overhead"],
    )?;
    p.report_warnings();
    let out_dir = std::path::PathBuf::from(p.opt("out").unwrap_or("."));
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let name = match p.opt("name") {
        Some(n) => n.to_string(),
        None => amrviz_bench::harness::git_describe(),
    };
    if p.switch("obs-overhead") {
        let scale = match p.opt("scale") {
            None => Scale::Tiny,
            Some(s) => Scale::parse(s).ok_or(format!("unknown scale `{s}`"))?,
        };
        let report = amrviz_bench::harness::run_obs_overhead(scale, &out_dir);
        let path = out_dir.join(format!("OBS_OVERHEAD_{name}.json"));
        std::fs::write(&path, report.to_json().to_string_pretty())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("OBS_OVERHEAD written to {}", path.display());
        print!("{}", report.render());
        return if report.passed() {
            Ok(())
        } else {
            Err(format!(
                "instrumentation overhead {:.2}% exceeds the {:.0}% budget",
                report.overhead_pct,
                amrviz_bench::harness::OBS_OVERHEAD_MAX_PCT
            ))
        };
    }
    let mut cfg = if p.switch("quick") {
        amrviz_bench::harness::BenchConfig::quick(name, out_dir.clone())
    } else {
        amrviz_bench::harness::BenchConfig::full(name, out_dir.clone())
    };
    if let Some(s) = p.opt("scale") {
        cfg.scale = Scale::parse(s).ok_or(format!("unknown scale `{s}`"))?;
    }
    if let Some(list) = p.opt("thread-counts") {
        cfg.thread_counts = list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--thread-counts: bad entry `{t}`"))
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(list) = p.opt("ebs") {
        cfg.rel_ebs = list
            .split(',')
            .map(|e| {
                e.trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|v| *v > 0.0)
                    .ok_or(format!("--ebs: bad entry `{e}`"))
            })
            .collect::<Result<_, _>>()?;
    }
    let threshold = p
        .opt_parse::<f64>("threshold")?
        .unwrap_or(amrviz_bench::harness::DEFAULT_THRESHOLD_PCT);

    // Read the baseline *before* running (and before writing, in case the
    // baseline is the file this run is about to overwrite).
    let baseline = match p.opt("baseline") {
        None => None,
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading baseline {path}: {e}"))?;
            let doc = amrviz_json::Json::parse(&text)
                .map_err(|e| format!("parsing baseline {path}: {e}"))?;
            Some((path.to_string(), doc))
        }
    };

    eprintln!(
        "bench: scale {:?}, threads {:?}, ebs {:?} ({} matrix)",
        cfg.scale,
        cfg.thread_counts,
        cfg.rel_ebs,
        if cfg.quick { "quick" } else { "full" }
    );
    let doc = amrviz_bench::harness::run_bench(&cfg);
    let path = amrviz_bench::harness::write_bench(&doc, &out_dir)
        .map_err(|e| format!("writing BENCH file: {e}"))?;
    println!("BENCH written to {}", path.display());

    if let Some((bpath, base)) = baseline {
        let cmp = amrviz_bench::harness::compare(&doc, &base, threshold);
        print!("{}", cmp.render(threshold));
        if !cmp.regressions.is_empty() {
            return Err(format!(
                "{} metric(s) regressed against baseline {bpath} (threshold ±{threshold}%)",
                cmp.regressions.len()
            ));
        }
    }
    Ok(())
}

/// Pretty-prints continuous-telemetry artifacts: a `--journal` JSONL file
/// or a `--metrics-out` snapshot. Journals written by newer binaries may
/// carry event kinds this binary doesn't know; those (and malformed lines)
/// warn and are skipped so the tool stays useful across versions —
/// `--strict` restores hard failure on the first bad line (the CI
/// well-formedness check). `--slo SPEC` additionally gates the journal's
/// server-side outcomes against a declared objective.
pub fn stats(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &["slo"], &["strict"])?;
    p.report_warnings();
    let path = p.positional(0, "telemetry file (journal JSONL or metrics snapshot)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let first = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .ok_or(format!("{path} is empty"))?;
    let head = amrviz_json::Json::parse(first).map_err(|e| format!("{path}:1: {e}"))?;
    let is_snapshot = head
        .get("schema")
        .and_then(|s| s.as_str())
        .is_some_and(|s| s.starts_with("amrviz-metrics"));
    if is_snapshot {
        stats_snapshot(path, &head)
    } else {
        stats_journal(path, &text, p.switch("strict"), p.opt("slo"))
    }
}

/// One parsed `kind: "span"` journal line.
struct JournalSpan {
    trace: String,
    id: u64,
    parent: u64,
    name: String,
    thread: u64,
    start_ns: u64,
    dur_ns: u64,
}

/// One parsed `kind: "serve"` journal line (server- or client-side).
struct ServeLine {
    trace: String,
    role: String,
    /// Server `status` or client `outcome`.
    result: String,
    elapsed_us: u64,
    /// Per-stage timing breakdown (server GET lines), taxonomy order.
    stages_us: Vec<(String, u64)>,
}

/// One parsed `kind: "slo"` journal line (burn-rate window evaluation).
struct SloEvent {
    spec: String,
    window: String,
    good: u64,
    total: u64,
    p99_us: u64,
    burn: f64,
    breached: bool,
}

/// Journal event kinds this binary understands.
const KNOWN_KINDS: [&str; 5] = ["span", "serve", "meta", "fault", "slo"];

fn stats_journal(path: &str, text: &str, strict: bool, slo: Option<&str>) -> Result<(), String> {
    let mut kinds: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut spans: Vec<JournalSpan> = Vec::new();
    let mut serve_lines: Vec<ServeLine> = Vec::new();
    let mut slo_events: Vec<SloEvent> = Vec::new();
    let mut warned_kinds: std::collections::BTreeSet<String> = Default::default();
    let mut dropped = 0u64;
    let mut n_lines = 0u64;
    let mut skipped = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        n_lines += 1;
        // Every line should be a standalone JSON object carrying `kind` —
        // the schema contract. Violations are fatal under --strict and
        // warn-and-skip otherwise (a journal from a newer binary must stay
        // readable).
        let v = match amrviz_json::Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                if strict {
                    return Err(format!("{path}:{}: {e}", i + 1));
                }
                eprintln!("warning: {path}:{}: skipping unparseable line: {e}", i + 1);
                skipped += 1;
                continue;
            }
        };
        let kind = match v.get("kind").and_then(|k| k.as_str()) {
            Some(k) => k,
            None => {
                if strict {
                    return Err(format!("{path}:{}: line has no `kind`", i + 1));
                }
                eprintln!("warning: {path}:{}: skipping line with no `kind`", i + 1);
                skipped += 1;
                continue;
            }
        };
        *kinds.entry(kind.to_string()).or_insert(0) += 1;
        if !KNOWN_KINDS.contains(&kind) {
            if strict {
                return Err(format!("{path}:{}: unknown event kind `{kind}`", i + 1));
            }
            if warned_kinds.insert(kind.to_string()) {
                eprintln!(
                    "warning: {path}: unknown event kind `{kind}` (newer journal \
                     schema?); counting but not interpreting it"
                );
            }
            skipped += 1;
            continue;
        }
        match kind {
            "span" => {
                let get_u64 = |k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
                spans.push(JournalSpan {
                    trace: v
                        .get("trace")
                        .and_then(|t| t.as_str())
                        .unwrap_or("0")
                        .to_string(),
                    id: get_u64("span"),
                    parent: get_u64("parent"),
                    name: v
                        .get("name")
                        .and_then(|n| n.as_str())
                        .unwrap_or("?")
                        .to_string(),
                    thread: get_u64("thread"),
                    start_ns: get_u64("start_ns"),
                    dur_ns: get_u64("dur_ns"),
                });
            }
            "serve" => {
                let str_of = |k: &str| v.get(k).and_then(|x| x.as_str()).unwrap_or("?").to_string();
                // Server lines carry `status`, client lines `outcome`;
                // lifecycle events (e.g. drain) carry neither and are
                // counted in the kind totals only.
                let result = v
                    .get("status")
                    .or_else(|| v.get("outcome"))
                    .and_then(|x| x.as_str());
                if let Some(result) = result {
                    let mut stages_us = Vec::new();
                    if let Some(amrviz_json::Json::Obj(entries)) = v.get("stages_us") {
                        for (name, us) in entries {
                            stages_us.push((name.clone(), us.as_u64().unwrap_or(0)));
                        }
                    }
                    serve_lines.push(ServeLine {
                        trace: str_of("trace"),
                        role: str_of("role"),
                        result: result.to_string(),
                        elapsed_us: v.get("elapsed_us").and_then(|x| x.as_u64()).unwrap_or(0),
                        stages_us,
                    });
                }
            }
            "meta" => {
                if let Some(d) = v.get("dropped").and_then(|d| d.as_u64()) {
                    dropped = d;
                }
            }
            "slo" => {
                let str_of = |k: &str| v.get(k).and_then(|x| x.as_str()).unwrap_or("?").to_string();
                let u64_of = |k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
                slo_events.push(SloEvent {
                    spec: str_of("spec"),
                    window: str_of("window"),
                    good: u64_of("good"),
                    total: u64_of("total"),
                    p99_us: u64_of("p99_us"),
                    burn: v.get("burn").and_then(|x| x.as_f64()).unwrap_or(0.0),
                    breached: v.get("breached").and_then(|x| x.as_bool()).unwrap_or(false),
                });
            }
            _ => {}
        }
    }

    if skipped > 0 {
        println!("journal {path}: {n_lines} lines, {dropped} dropped, {skipped} skipped");
    } else {
        println!("journal {path}: {n_lines} lines, {dropped} dropped");
    }
    for (kind, n) in &kinds {
        println!("  {kind:<12} {n}");
    }
    if !serve_lines.is_empty() {
        print_serve_summary(&serve_lines);
        print_tail_breakdown(&serve_lines);
    }
    if !slo_events.is_empty() {
        println!("slo events ({}):", slo_events.len());
        println!(
            "  {:<20} {:<6} {:>12} {:>10} {:>8} {:>9}",
            "spec", "window", "good/total", "p99 ms", "burn", "breached"
        );
        for e in &slo_events {
            println!(
                "  {:<20} {:<6} {:>12} {:>10.2} {:>8.2} {:>9}",
                e.spec,
                e.window,
                format!("{}/{}", e.good, e.total),
                e.p99_us as f64 / 1e3,
                e.burn,
                e.breached
            );
        }
    }

    // Stitch spans into per-trace trees, traces in first-seen order.
    let mut trace_order: Vec<String> = Vec::new();
    let mut by_trace: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
    for (i, s) in spans.iter().enumerate() {
        if !by_trace.contains_key(&s.trace) {
            trace_order.push(s.trace.clone());
        }
        by_trace.entry(s.trace.clone()).or_default().push(i);
    }
    const MAX_TRACES: usize = 20;
    for trace in trace_order.iter().take(MAX_TRACES) {
        let idxs = &by_trace[trace];
        println!("trace {trace} ({} spans):", idxs.len());
        let ids: std::collections::BTreeSet<u64> = idxs.iter().map(|&i| spans[i].id).collect();
        let mut children: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
        let mut roots: Vec<usize> = Vec::new();
        for &i in idxs {
            let s = &spans[i];
            if s.parent != 0 && ids.contains(&s.parent) {
                children.entry(s.parent).or_default().push(i);
            } else {
                roots.push(i);
            }
        }
        let order = |list: &mut Vec<usize>| {
            list.sort_by_key(|&i| (spans[i].start_ns, spans[i].id));
        };
        order(&mut roots);
        for list in children.values_mut() {
            order(list);
        }
        // Depth-first print; explicit stack so deep trees can't recurse out.
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
        while let Some((i, depth)) = stack.pop() {
            let s = &spans[i];
            println!(
                "  {:indent$}{} [{:.3} ms, thread {}]",
                "",
                s.name,
                s.dur_ns as f64 / 1e6,
                s.thread,
                indent = depth * 2
            );
            if let Some(kids) = children.get(&s.id) {
                for &k in kids.iter().rev() {
                    stack.push((k, depth + 1));
                }
            }
        }
    }
    if trace_order.len() > MAX_TRACES {
        println!("... and {} more trace(s)", trace_order.len() - MAX_TRACES);
    }

    // `--slo SPEC`: gate the journal's server-side outcomes against a
    // declared objective, whole journal as one window. Exact-rank p99 (not
    // log-bucketed) since the raw latencies are all in hand.
    if let Some(spec_str) = slo {
        let spec = amrviz_obs::slo::SloSpec::parse(spec_str)?;
        // Client-attributable errors don't burn the server's budget —
        // same exclusion the live STATS endpoint applies.
        let server: Vec<&ServeLine> = serve_lines
            .iter()
            .filter(|l| {
                l.role == "server" && !matches!(l.result.as_str(), "not_found" | "bad_request")
            })
            .collect();
        let good = server
            .iter()
            .filter(|l| matches!(l.result.as_str(), "ok" | "degraded"))
            .count() as u64;
        let mut lat: Vec<u64> = server.iter().map(|l| l.elapsed_us).collect();
        lat.sort_unstable();
        let p99_us = if lat.is_empty() {
            0
        } else {
            let idx = ((lat.len() as f64 - 1.0) * 0.99).round() as usize;
            lat[idx.min(lat.len() - 1)]
        };
        let reading = amrviz_obs::slo::WindowReading {
            label: "journal",
            secs: 0,
            good,
            total: server.len() as u64,
            p99_us,
        };
        let eval = amrviz_obs::slo::evaluate(&spec, &[reading]);
        println!("SLO_EVAL {}", eval.to_json());
        if eval.breached() {
            return Err(format!(
                "SLO {} breached over {} server request(s) in {path}",
                spec.display(),
                server.len()
            ));
        }
    }
    Ok(())
}

/// Names the dominant stage of the slowest server requests — the "p99 is
/// decode-bound" answer, straight from journal `stages_us` breakdowns.
fn print_tail_breakdown(lines: &[ServeLine]) {
    let mut tail: Vec<&ServeLine> = lines
        .iter()
        .filter(|l| l.role == "server" && !l.stages_us.is_empty())
        .collect();
    if tail.is_empty() {
        return;
    }
    tail.sort_by(|a, b| b.elapsed_us.cmp(&a.elapsed_us).then(b.trace.cmp(&a.trace)));
    println!("slowest server requests (stage-attributed):");
    for l in tail.iter().take(3) {
        let dominant = l
            .stages_us
            .iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let attribution = match dominant {
            Some((name, us)) if l.elapsed_us > 0 => format!(
                "{name}-bound ({:.2} ms, {:.0}%)",
                *us as f64 / 1e3,
                *us as f64 / l.elapsed_us as f64 * 100.0
            ),
            Some((name, us)) => format!("{name}-bound ({:.2} ms)", *us as f64 / 1e3),
            None => "no stage breakdown".to_string(),
        };
        println!(
            "  {:>10.2} ms  trace {}  {}  {attribution}",
            l.elapsed_us as f64 / 1e3,
            l.trace,
            l.result
        );
    }
}

/// Per-role outcome table plus client↔server trace stitching for the
/// `serve` journal kind.
fn print_serve_summary(lines: &[ServeLine]) {
    let pct = |sorted_us: &[u64], p: f64| -> f64 {
        if sorted_us.is_empty() {
            return 0.0;
        }
        let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
        sorted_us[idx.min(sorted_us.len() - 1)] as f64 / 1e3
    };
    // (role, result) -> latencies; BTreeMap keeps the table stable.
    let mut table: std::collections::BTreeMap<(String, String), Vec<u64>> = Default::default();
    for l in lines {
        table
            .entry((l.role.clone(), l.result.clone()))
            .or_default()
            .push(l.elapsed_us);
    }
    println!("serve outcomes ({} lines):", lines.len());
    println!(
        "  {:<8} {:<16} {:>8} {:>10} {:>10}",
        "role", "outcome", "count", "p50 ms", "p99 ms"
    );
    for ((role, result), lat) in &mut table {
        lat.sort_unstable();
        println!(
            "  {role:<8} {result:<16} {:>8} {:>10.2} {:>10.2}",
            lat.len(),
            pct(lat, 0.50),
            pct(lat, 0.99)
        );
    }
    // Stitching: a trace observed by both ends means the client journal line
    // and the server journal line describe the same exchange.
    let mut server_traces: std::collections::BTreeSet<&str> = Default::default();
    let mut client_traces: std::collections::BTreeSet<&str> = Default::default();
    for l in lines {
        if l.trace == "?" {
            continue;
        }
        match l.role.as_str() {
            "server" => {
                server_traces.insert(&l.trace);
            }
            "client" => {
                client_traces.insert(&l.trace);
            }
            _ => {}
        }
    }
    let both = server_traces.intersection(&client_traces).count();
    println!(
        "  traces: {both} stitched (both ends), {} server-only, {} client-only",
        server_traces.len() - both,
        client_traces.len() - both
    );
}

fn stats_snapshot(path: &str, doc: &amrviz_json::Json) -> Result<(), String> {
    let f = |v: Option<&amrviz_json::Json>| v.and_then(|x| x.as_f64()).unwrap_or(0.0);
    println!(
        "metrics snapshot {path} (schema {}, uptime {:.1} s, window {:.0} s)",
        doc.get("schema").and_then(|s| s.as_str()).unwrap_or("?"),
        f(doc.get("uptime_ns")) / 1e9,
        f(doc.get("window").and_then(|w| w.get("view_secs"))),
    );
    if let Some(amrviz_json::Json::Obj(entries)) = doc.get("counters") {
        if !entries.is_empty() {
            println!("{:<32} {:>14} {:>14}", "counter", "lifetime", "window");
            for (name, c) in entries {
                println!(
                    "{name:<32} {:>14} {:>14}",
                    f(c.get("lifetime")) as u64,
                    f(c.get("window")) as u64
                );
            }
        }
    }
    if let Some(amrviz_json::Json::Obj(entries)) = doc.get("gauges") {
        if !entries.is_empty() {
            println!("{:<32} {:>14}", "gauge", "last");
            for (name, g) in entries {
                println!("{name:<32} {:>14.6}", f(g.get("last")));
            }
        }
    }
    if let Some(amrviz_json::Json::Obj(entries)) = doc.get("histograms") {
        if !entries.is_empty() {
            println!(
                "{:<32} {:>9} {:>12} {:>12} {:>12}",
                "histogram (lifetime)", "count", "p50", "p90", "p99"
            );
            for (name, h) in entries {
                let l = h.get("lifetime");
                let g = |k: &str| f(l.and_then(|x| x.get(k)));
                println!(
                    "{name:<32} {:>9} {:>12.1} {:>12.1} {:>12.1}",
                    g("count") as u64,
                    g("p50"),
                    g("p90"),
                    g("p99")
                );
            }
        }
    }
    if let Some(meta) = doc.get("meta") {
        println!(
            "obs: overhead {:.1} ms, {} spans, {} traces, {} dropped events",
            f(meta.get("overhead_us")) / 1e3,
            f(meta.get("spans_recorded")) as u64,
            f(meta.get("traces_started")) as u64,
            f(meta.get("dropped_events")) as u64
        );
    }
    Ok(())
}

/// `amrviz torture --serve`: chaos-test the serving stack end to end.
fn serve_torture(p: &crate::args::Parsed) -> Result<(), String> {
    let cfg = amrviz_serve::ServeTortureConfig {
        iters: p.opt_parse::<u64>("iters")?.unwrap_or(300),
        seed: p.opt_parse::<u64>("seed")?.unwrap_or(7),
        workers: p.opt_parse::<usize>("workers")?.unwrap_or(2),
        max_peak_bytes: p
            .opt_parse::<usize>("max-peak-mb")?
            .unwrap_or(1024)
            .saturating_mul(1 << 20),
        ..amrviz_serve::ServeTortureConfig::default()
    };
    if cfg.iters == 0 {
        return Err("--iters must be at least 1".into());
    }
    let report = amrviz_serve::torture::run(&cfg);
    println!("SERVE_TORTURE {}", report.to_json_line());
    if report.passed() {
        Ok(())
    } else {
        let mut msg = format!(
            "serve torture failed: {} violation(s)",
            report.violations.len()
        );
        for v in &report.violations {
            msg.push('\n');
            msg.push_str("  ");
            msg.push_str(v);
        }
        msg.push_str(&format!(
            "\nreproduce with: amrviz torture --serve --seed {} --iters {}",
            cfg.seed, cfg.iters
        ));
        Err(msg)
    }
}

/// Seeds a serve store with deterministic tiny scenario artifacts so the
/// server (and CI) has something to stream without a prior `generate` +
/// `compress` pipeline run.
fn seed_store(dir: &Path, n: usize, seed: u64) -> Result<Vec<u64>, String> {
    let store = amrviz_serve::BlobStore::open(dir).map_err(|e| e.to_string())?;
    let cfg = AmrCodecConfig::default();
    let mut keys = Vec::new();
    for i in 0..n {
        // Alternate Nyx (spiky) and WarpX (smooth) tiny snapshots.
        let (hier, field) = if i % 2 == 0 {
            (
                NyxScenario::new(Scale::Tiny, seed + i as u64).generate(),
                "baryon_density",
            )
        } else {
            (
                WarpxScenario::new(Scale::Tiny, seed + i as u64).generate(),
                "Ez",
            )
        };
        let container =
            compress_hierarchy_field(&hier, field, &SzLr::default(), ErrorBound::Rel(1e-3), &cfg)
                .map_err(|e| format!("seeding store: {e}"))?;
        let key = store
            .put(&amrviz_serve::encode_artifact(
                &hier, field, "szlr", &container,
            ))
            .map_err(|e| e.to_string())?;
        keys.push(key);
    }
    Ok(keys)
}

/// `amrviz serve`: run the progressive server (optionally behind a chaos
/// proxy) until `--shutdown-after` elapses.
pub fn serve(argv: &[String]) -> Result<(), String> {
    let p = parse(
        argv,
        &[
            "store",
            "addr",
            "workers",
            "queue-depth",
            "cache-mb",
            "max-deadline-ms",
            "shutdown-after",
            "chaos",
            "seed-scenarios",
            "seed",
            "slo",
        ],
        &[],
    )?;
    p.report_warnings();
    let store_dir = std::path::PathBuf::from(p.required("store")?);
    if let Some(n) = p.opt_parse::<usize>("seed-scenarios")? {
        let seed = p.opt_parse::<u64>("seed")?.unwrap_or(1);
        let keys = seed_store(&store_dir, n, seed)?;
        let hex: Vec<String> = keys.iter().map(|k| format!("\"{k:016x}\"")).collect();
        println!("SERVE_KEYS [{}]", hex.join(","));
    }
    let shutdown_after = p
        .opt_parse::<f64>("shutdown-after")?
        .map(std::time::Duration::from_secs_f64);
    if shutdown_after.is_none() {
        eprintln!("note: no --shutdown-after given; serving until killed");
    }
    let cfg = amrviz_serve::ServeConfig {
        addr: p.opt("addr").unwrap_or("127.0.0.1:0").to_string(),
        store_dir,
        workers: p.opt_parse::<usize>("workers")?.unwrap_or(2),
        queue_depth: p.opt_parse::<usize>("queue-depth")?.unwrap_or(32),
        cache_bytes: p
            .opt_parse::<usize>("cache-mb")?
            .unwrap_or(256)
            .saturating_mul(1 << 20),
        max_deadline_ms: p.opt_parse::<u32>("max-deadline-ms")?.unwrap_or(10_000),
        shutdown_after,
        slo: match p.opt("slo") {
            Some(s) => amrviz_obs::slo::SloSpec::parse(s)?,
            None => amrviz_obs::slo::SloSpec::default(),
        },
        ..amrviz_serve::ServeConfig::default()
    };
    let server = amrviz_serve::start(cfg).map_err(|e| format!("starting server: {e}"))?;
    let proxy = match p.opt_parse::<u64>("chaos")? {
        Some(chaos_seed) => Some(
            amrviz_serve::ChaosProxy::start(
                server.addr(),
                chaos_seed,
                amrviz_serve::ChaosConfig::default(),
            )
            .map_err(|e| format!("starting chaos proxy: {e}"))?,
        ),
        None => None,
    };
    // Machine-readable address line for scripts (CI parses this).
    match &proxy {
        Some(pr) => println!("SERVE_LISTENING addr={} chaos={}", server.addr(), pr.addr()),
        None => println!("SERVE_LISTENING addr={}", server.addr()),
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // With --shutdown-after, `start`'s accept thread flips the stop flag
    // itself; joining blocks until the drain completes.
    let stats = server.join();
    if let Some(pr) = proxy {
        pr.stop();
    }
    println!("SERVE_STATS {}", stats.to_json_line());
    if stats.panics > 0 || stats.post_deadline_responses > 0 {
        return Err(format!(
            "serve invariants violated: {} panic(s), {} post-deadline response(s)",
            stats.panics, stats.post_deadline_responses
        ));
    }
    Ok(())
}

/// `amrviz loadgen`: drive a running server and report latency/outcome
/// distribution; exits nonzero below the success-rate floor.
pub fn loadgen(argv: &[String]) -> Result<(), String> {
    let p = parse(
        argv,
        &[
            "addr",
            "clients",
            "rps",
            "duration",
            "deadline-ms",
            "retries",
            "seed",
            "min-success",
            "slo",
        ],
        &[],
    )?;
    p.report_warnings();
    let addr: std::net::SocketAddr = p
        .required("addr")?
        .parse()
        .map_err(|e| format!("--addr: {e}"))?;
    let cfg = amrviz_serve::LoadgenConfig {
        addr,
        clients: p.opt_parse::<usize>("clients")?.unwrap_or(4),
        rps: p.opt_parse::<f64>("rps")?.unwrap_or(20.0),
        duration: std::time::Duration::from_secs_f64(
            p.opt_parse::<f64>("duration")?.unwrap_or(5.0),
        ),
        deadline_ms: p.opt_parse::<u32>("deadline-ms")?.unwrap_or(500),
        max_retries: p.opt_parse::<u32>("retries")?.unwrap_or(3),
        seed: p.opt_parse::<u64>("seed")?.unwrap_or(1),
        ..amrviz_serve::LoadgenConfig::default()
    };
    let min_success = p.opt_parse::<f64>("min-success")?.unwrap_or(0.9);

    // Discover keys from the server itself: one LIST exchange.
    let list = amrviz_serve::exchange(
        addr,
        &amrviz_serve::Request {
            op: amrviz_serve::Op::List,
            trace: 1,
            key: 0,
            deadline_ms: 5_000,
            max_level: 0,
        },
        &amrviz_serve::ClientConfig::default(),
    );
    let keys = match list.keys {
        Some(k) if !k.is_empty() => k,
        _ => {
            return Err(format!(
                "could not list keys from {addr} (outcome: {}); is the server \
                 running with a seeded store?",
                list.outcome.name()
            ))
        }
    };

    let report = amrviz_serve::loadgen::run(&cfg, &keys);
    println!("LOADGEN {}", report.to_json_line());
    println!(
        "loadgen: {} requests ({} attempts), p50 {:.1} ms, p99 {:.1} ms, success {:.1}%",
        report.requests,
        report.attempts,
        report.p50_us as f64 / 1e3,
        report.p99_us as f64 / 1e3,
        report.success_rate * 100.0
    );
    if report.late_frames > 0 {
        return Err(format!(
            "{} frame(s) arrived after deadline+grace",
            report.late_frames
        ));
    }
    if report.success_rate < min_success {
        return Err(format!(
            "success rate {:.3} below --min-success {min_success}",
            report.success_rate
        ));
    }
    // `--slo`: gate the whole run as one evaluation window, reusing the
    // same evaluator the server's burn-rate windows run through.
    if let Some(spec_str) = p.opt("slo") {
        let spec = amrviz_obs::slo::SloSpec::parse(spec_str)?;
        let good: u64 = report
            .outcomes
            .iter()
            .filter(|(name, _)| matches!(**name, "ok" | "degraded" | "cut_short"))
            .map(|(_, n)| n)
            .sum();
        let reading = amrviz_obs::slo::WindowReading {
            label: "run",
            secs: cfg.duration.as_secs(),
            good,
            total: report.requests,
            p99_us: report.p99_us,
        };
        let eval = amrviz_obs::slo::evaluate(&spec, &[reading]);
        println!("LOADGEN_SLO {}", eval.to_json());
        if eval.breached() {
            return Err(format!(
                "SLO {} breached over the run ({good}/{} good, p99 {:.1} ms)",
                spec.display(),
                report.requests,
                report.p99_us as f64 / 1e3
            ));
        }
    }
    Ok(())
}
