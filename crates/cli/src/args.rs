//! Tiny flag parser: positional arguments plus `--key value` / `--switch`
//! options. Hand-rolled to keep the dependency budget at zero.

use std::collections::BTreeMap;

#[derive(Debug, Default)]
pub struct Parsed {
    pub positional: Vec<String>,
    options: BTreeMap<String, String>,
    switches: Vec<String>,
    /// One entry per repeated value option (last occurrence wins, matching
    /// the switch dedupe behavior, but noisily: callers print these to
    /// stderr so `--metrics-interval 5 ... --metrics-interval 1` in a long
    /// command line is never a silent surprise).
    warnings: Vec<String>,
}

/// Parses `argv` given the set of value-taking option names and boolean
/// switch names (both without the `--` prefix).
pub fn parse(argv: &[String], value_opts: &[&str], switch_opts: &[&str]) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if let Some((key, _)) = name.split_once('=') {
                return Err(format!(
                    "`--{key}=VALUE` style is not supported; use `--{key} VALUE`"
                ));
            }
            if switch_opts.contains(&name) {
                if !out.switches.iter().any(|s| s == name) {
                    out.switches.push(name.to_string());
                }
            } else if value_opts.contains(&name) {
                let v = it.next().ok_or(format!("--{name} needs a value"))?;
                if let Some(prev) = out.options.insert(name.to_string(), v.clone()) {
                    out.warnings.push(format!(
                        "--{name} given more than once; using `{v}` (ignoring `{prev}`)"
                    ));
                }
            } else {
                return Err(format!("unknown option --{name}"));
            }
        } else {
            out.positional.push(a.clone());
        }
    }
    Ok(out)
}

impl Parsed {
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    pub fn opt_parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.opt(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|e| format!("--{name}: {e}")),
        }
    }

    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.opt(name).ok_or(format!("missing required --{name}"))
    }

    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    pub fn positional(&self, idx: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(idx)
            .map(String::as_str)
            .ok_or(format!("missing {what}"))
    }

    /// Warnings accumulated during parsing (e.g. repeated value options).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Prints every accumulated warning to stderr.
    pub fn report_warnings(&self) {
        for w in self.warnings() {
            eprintln!("warning: {w}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn mixed_args() {
        let p = parse(
            &sv(&["plot", "--field", "rho", "--skip", "more"]),
            &["field"],
            &["skip"],
        )
        .unwrap();
        assert_eq!(p.positional, vec!["plot", "more"]);
        assert_eq!(p.opt("field"), Some("rho"));
        assert!(p.switch("skip"));
        assert!(!p.switch("other"));
        assert_eq!(p.positional(0, "x").unwrap(), "plot");
        assert!(p.positional(5, "missing thing").is_err());
    }

    #[test]
    fn missing_value_and_unknown_option() {
        assert!(parse(&sv(&["--field"]), &["field"], &[]).is_err());
        assert!(parse(&sv(&["--nope", "v"]), &["field"], &[]).is_err());
    }

    #[test]
    fn repeated_switches_are_deduped() {
        let p = parse(&sv(&["--skip", "--skip", "--skip"]), &[], &["skip"]).unwrap();
        assert!(p.switch("skip"));
        assert_eq!(p.switches, vec!["skip"]);
    }

    #[test]
    fn repeated_value_option_keeps_last() {
        let p = parse(&sv(&["--n", "1", "--n", "2"]), &["n"], &[]).unwrap();
        assert_eq!(p.opt("n"), Some("2"));
    }

    #[test]
    fn repeated_value_option_warns() {
        let p = parse(
            &sv(&["--metrics-interval", "5", "--metrics-interval", "1"]),
            &["metrics-interval"],
            &[],
        )
        .unwrap();
        assert_eq!(p.opt("metrics-interval"), Some("1"), "last wins");
        assert_eq!(p.warnings().len(), 1);
        assert!(
            p.warnings()[0].contains("--metrics-interval given more than once"),
            "unexpected warning: {}",
            p.warnings()[0]
        );
        assert!(p.warnings()[0].contains("using `1`"));
        assert!(p.warnings()[0].contains("ignoring `5`"));
        // A single occurrence stays quiet.
        let q = parse(&sv(&["--n", "1"]), &["n"], &[]).unwrap();
        assert!(q.warnings().is_empty());
    }

    #[test]
    fn equals_style_is_rejected_with_guidance() {
        let err = parse(&sv(&["--field=rho"]), &["field"], &[]).unwrap_err();
        assert!(
            err.contains("`--field=VALUE` style is not supported"),
            "unexpected message: {err}"
        );
        assert!(
            err.contains("use `--field VALUE`"),
            "unexpected message: {err}"
        );
        // Even an unknown key gets the syntax hint, not "unknown option".
        let err = parse(&sv(&["--nope=1"]), &["field"], &[]).unwrap_err();
        assert!(err.contains("`--nope=VALUE`"), "unexpected message: {err}");
    }

    #[test]
    fn typed_parse() {
        let p = parse(&sv(&["--n", "42"]), &["n"], &[]).unwrap();
        assert_eq!(p.opt_parse::<u64>("n").unwrap(), Some(42));
        assert_eq!(p.opt_parse::<u64>("missing").unwrap(), None);
        let bad = parse(&sv(&["--n", "abc"]), &["n"], &[]).unwrap();
        assert!(bad.opt_parse::<u64>("n").is_err());
    }
}
