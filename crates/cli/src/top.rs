//! `amrviz top` — a live terminal dashboard over the serve STATS endpoint.
//!
//! Polls the server's in-band `Op::Stats` request (same framed protocol,
//! same port as data traffic — no second listener) and redraws an ANSI
//! dashboard: request/outcome rates with sparklines, windowed latency and
//! stage-timing percentiles, SLO burn rates, and the tail-exemplar
//! drill-down that names the stage a slow request actually spent its time
//! in. `--once --json` prints one validated snapshot and exits, which is
//! what scripts and CI consume.

use crate::args::parse;
use amrviz_json::Json;
use amrviz_serve::{exchange, ClientConfig, Op, Request};
use std::collections::{BTreeMap, VecDeque};
use std::net::SocketAddr;
use std::time::Duration;

/// Wire attempts per poll. A chaos proxy in front of the server fails a
/// large fraction of individual connections by design; an operator
/// dashboard should see through that, not flicker with it.
const POLL_ATTEMPTS: u32 = 15;

/// Sparkline history length (polls).
const SPARK_LEN: usize = 24;

pub fn top(argv: &[String]) -> Result<(), String> {
    let p = parse(argv, &["interval", "exemplars"], &["once", "json"])?;
    p.report_warnings();
    let addr: SocketAddr = p
        .positional(0, "server address (HOST:PORT)")?
        .parse()
        .map_err(|e| format!("bad server address: {e}"))?;
    let interval = p.opt_parse::<f64>("interval")?.unwrap_or(2.0);
    if !interval.is_finite() || interval <= 0.0 {
        return Err(format!("--interval must be positive, got {interval}"));
    }
    let max_exemplars = p.opt_parse::<usize>("exemplars")?.unwrap_or(3);
    let once = p.switch("once");
    let as_json = p.switch("json");
    if as_json && !once {
        return Err("--json requires --once (one snapshot per line is for scripts)".into());
    }

    let mut spark: BTreeMap<String, VecDeque<u64>> = BTreeMap::new();
    let mut prev_counts: BTreeMap<String, u64> = BTreeMap::new();
    loop {
        let raw = fetch_stats(addr)?;
        let doc = Json::parse(&raw).map_err(|e| format!("STATS from {addr} is not JSON: {e}"))?;
        let schema = doc.get("schema").and_then(|s| s.as_str()).unwrap_or("?");
        if schema != amrviz_serve::STATS_SCHEMA {
            return Err(format!(
                "unexpected STATS schema `{schema}` (want {})",
                amrviz_serve::STATS_SCHEMA
            ));
        }
        if as_json {
            println!("{raw}");
            return Ok(());
        }
        update_sparklines(&doc, &mut spark, &mut prev_counts);
        if !once {
            // Clear + home; plain ANSI so it works in any terminal and CI logs.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render(addr, &doc, &spark, max_exemplars));
        if once {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

/// One STATS poll with retries: chaos-induced connection failures are
/// expected, so keep trying until a snapshot arrives or patience runs out.
fn fetch_stats(addr: SocketAddr) -> Result<String, String> {
    let req = Request {
        op: Op::Stats,
        trace: 0,
        key: 0,
        deadline_ms: 5_000,
        max_level: 0,
    };
    let cfg = ClientConfig::default();
    let mut last = "no attempt made";
    for attempt in 0..POLL_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(100));
        }
        let ex = exchange(addr, &req, &cfg);
        if let Some(s) = ex.stats {
            return Ok(s);
        }
        last = ex.outcome.name();
    }
    Err(format!(
        "no STATS from {addr} after {POLL_ATTEMPTS} attempts (last outcome: {last}); \
         is the server running?"
    ))
}

fn gu(j: &Json, k: &str) -> u64 {
    j.get(k).and_then(|x| x.as_u64()).unwrap_or(0)
}

fn gf(j: &Json, k: &str) -> f64 {
    j.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0)
}

fn gs<'a>(j: &'a Json, k: &str) -> &'a str {
    j.get(k).and_then(|x| x.as_str()).unwrap_or("?")
}

/// Feeds the per-outcome sparkline histories from deltas of the lifetime
/// counters between polls (first poll seeds the baseline, drawing nothing).
fn update_sparklines(
    doc: &Json,
    spark: &mut BTreeMap<String, VecDeque<u64>>,
    prev: &mut BTreeMap<String, u64>,
) {
    if let Some(Json::Obj(entries)) = doc.get("latency_us") {
        for (name, h) in entries {
            let count = h.get("lifetime").map(|l| gu(l, "count")).unwrap_or(0);
            if let Some(&was) = prev.get(name) {
                let hist = spark.entry(name.clone()).or_default();
                hist.push_back(count.saturating_sub(was));
                while hist.len() > SPARK_LEN {
                    hist.pop_front();
                }
            }
            prev.insert(name.clone(), count);
        }
    }
}

/// Renders a delta history as a unicode sparkline, scaled to its own max.
fn sparkline(hist: &VecDeque<u64>) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = hist.iter().copied().max().unwrap_or(0).max(1);
    hist.iter()
        .map(|&v| BARS[((v * 7 + max / 2) / max) as usize % 8])
        .collect()
}

fn ms(us: f64) -> String {
    format!("{:.1}", us / 1e3)
}

/// The full dashboard frame as one string (single write keeps redraw
/// flicker-free).
fn render(
    addr: SocketAddr,
    doc: &Json,
    spark: &BTreeMap<String, VecDeque<u64>>,
    max_exemplars: usize,
) -> String {
    let mut out = String::new();
    let health = gs(doc, "health");
    out.push_str(&format!(
        "amrviz top {addr} — health {} — uptime {:.1} s — proto v{}\n",
        if health == "ok" { "OK" } else { "DEGRADED" },
        gf(doc, "uptime_ms") / 1e3,
        gu(doc, "proto_version"),
    ));
    if let Some(req) = doc.get("requests") {
        out.push_str(&format!(
            "requests {}  ok {}  degraded {}  shed {}  timeout {}  not_found {}  \
             corrupt {}  io_err {}  panics {}  post_deadline {}\n",
            gu(req, "requests"),
            gu(req, "ok"),
            gu(req, "degraded"),
            gu(req, "shed"),
            gu(req, "timeout"),
            gu(req, "not_found"),
            gu(req, "corrupt"),
            gu(req, "io_errors"),
            gu(req, "panics"),
            gu(req, "post_deadline_responses"),
        ));
    }
    if let Some(c) = doc.get("cache") {
        let (hits, misses) = (gu(c, "hits"), gu(c, "misses"));
        let rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64 * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "queue {}  workers {}  cache {} entries, {:.1}/{:.1} MB, hit rate {rate:.1}%\n",
            gu(doc, "queue_depth"),
            gu(doc, "workers"),
            gu(c, "entries"),
            gf(c, "bytes") / 1e6,
            gf(c, "budget_bytes") / 1e6,
        ));
    }

    out.push('\n');
    out.push_str(&format!(
        "{:<14} {:>9} {:>9} {:>9} {:>9}  {}\n",
        "latency (5m)", "count", "p50 ms", "p99 ms", "max ms", "recent"
    ));
    if let Some(Json::Obj(entries)) = doc.get("latency_us") {
        for (name, h) in entries {
            let Some(w) = h.get("w5m") else { continue };
            let line = spark.get(name).map(sparkline).unwrap_or_default();
            out.push_str(&format!(
                "  {:<12} {:>9} {:>9} {:>9} {:>9}  {line}\n",
                name,
                gu(w, "count"),
                ms(gf(w, "p50")),
                ms(gf(w, "p99")),
                ms(gf(w, "max")),
            ));
        }
    }

    out.push('\n');
    out.push_str(&format!(
        "{:<20} {:>9} {:>9} {:>9} {:>9}\n",
        "stage (5m)", "count", "p50 ms", "p90 ms", "p99 ms"
    ));
    if let Some(Json::Obj(entries)) = doc.get("stages_us") {
        for (name, h) in entries {
            let Some(w) = h.get("w5m") else { continue };
            out.push_str(&format!(
                "  {:<18} {:>9} {:>9} {:>9} {:>9}\n",
                name,
                gu(w, "count"),
                ms(gf(w, "p50")),
                ms(gf(w, "p90")),
                ms(gf(w, "p99")),
            ));
        }
    }

    if let Some(slo) = doc.get("slo") {
        out.push('\n');
        out.push_str(&format!(
            "SLO {}  —  {}\n",
            gs(slo, "spec"),
            if slo
                .get("breached")
                .and_then(|b| b.as_bool())
                .unwrap_or(false)
            {
                "BREACHED"
            } else {
                "within objectives"
            }
        ));
        if let Some(windows) = slo.get("windows").and_then(|w| w.as_arr()) {
            for w in windows {
                let mut flags = String::new();
                if w.get("avail_exceeded").and_then(|b| b.as_bool()) == Some(true) {
                    flags.push_str(" [AVAIL]");
                }
                if w.get("latency_exceeded").and_then(|b| b.as_bool()) == Some(true) {
                    flags.push_str(" [LATENCY]");
                }
                out.push_str(&format!(
                    "  {:<4} good {}/{}  burn {:.2}  p99 {} ms{flags}\n",
                    gs(w, "label"),
                    gu(w, "good"),
                    gu(w, "total"),
                    gf(w, "burn"),
                    ms(gf(w, "p99_us")),
                ));
            }
        }
    }

    if let Some(exs) = doc.get("exemplars").and_then(|e| e.as_arr()) {
        if !exs.is_empty() {
            out.push('\n');
            out.push_str("tail exemplars (slowest retained requests)\n");
            for e in exs.iter().take(max_exemplars) {
                let total = gu(e, "total_us");
                let mut dominant: Option<(&str, u64)> = None;
                if let Some(Json::Obj(stages)) = e.get("stages_us") {
                    for (name, us) in stages {
                        let us = us.as_u64().unwrap_or(0);
                        if dominant.is_none_or(|(dn, dus)| (us, name.as_str()) > (dus, dn)) {
                            dominant = Some((name, us));
                        }
                    }
                }
                let bound = match dominant {
                    Some((name, us)) if total > 0 => format!(
                        "{name}-bound ({} ms, {:.0}%)",
                        ms(us as f64),
                        us as f64 / total as f64 * 100.0
                    ),
                    _ => "no stage breakdown".to_string(),
                };
                out.push_str(&format!(
                    "  {:>9} ms  trace {}  {}  {bound}\n",
                    ms(total as f64),
                    gs(e, "trace"),
                    gs(e, "label"),
                ));
                if let Some(Json::Obj(stages)) = e.get("stages_us") {
                    let parts: Vec<String> = stages
                        .iter()
                        .map(|(n, us)| format!("{n} {}", ms(us.as_u64().unwrap_or(0) as f64)))
                        .collect();
                    out.push_str(&format!("             stages: {}\n", parts.join("  ")));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_own_max() {
        let d: VecDeque<u64> = vec![0, 1, 7, 14].into();
        let s = sparkline(&d);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'), "{s}");
        assert!(s.ends_with('█'), "{s}");
        // All-zero history renders the floor glyph, not a panic.
        let z: VecDeque<u64> = vec![0, 0].into();
        assert_eq!(sparkline(&z), "▁▁");
    }

    #[test]
    fn render_handles_a_minimal_snapshot() {
        let raw = format!(
            "{{\"schema\":\"{}\",\"proto_version\":1,\"uptime_ms\":1500,\
             \"health\":\"ok\",\"queue_depth\":0,\"workers\":2,\
             \"latency_us\":{{\"ok\":{{\"lifetime\":{{\"count\":3}},\
             \"w5m\":{{\"count\":3,\"p50\":100.0,\"p99\":200.0,\"max\":250.0}}}}}},\
             \"stages_us\":{{}},\
             \"slo\":{{\"spec\":\"avail>99\",\"breached\":false,\"windows\":[]}},\
             \"exemplars\":[{{\"trace\":\"abc\",\"total_us\":900,\"label\":\"ok key=7\",\
             \"stages_us\":{{\"decode\":800,\"write\":90}}}}]}}",
            amrviz_serve::STATS_SCHEMA
        );
        let doc = Json::parse(&raw).unwrap();
        let addr: SocketAddr = "127.0.0.1:9999".parse().unwrap();
        let frame = render(addr, &doc, &BTreeMap::new(), 3);
        assert!(frame.contains("health OK"), "{frame}");
        assert!(frame.contains("decode-bound"), "{frame}");
        assert!(frame.contains("trace abc"), "{frame}");
    }

    #[test]
    fn sparkline_feed_uses_lifetime_deltas() {
        let mk = |count: u64| {
            Json::parse(&format!(
                "{{\"latency_us\":{{\"ok\":{{\"lifetime\":{{\"count\":{count}}}}}}}}}"
            ))
            .unwrap()
        };
        let mut spark = BTreeMap::new();
        let mut prev = BTreeMap::new();
        update_sparklines(&mk(10), &mut spark, &mut prev);
        assert!(spark.is_empty(), "first poll only seeds the baseline");
        update_sparklines(&mk(25), &mut spark, &mut prev);
        assert_eq!(spark["ok"], VecDeque::from(vec![15]));
    }
}
