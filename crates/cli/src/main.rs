//! `amrviz` — command-line front end to the workspace.
//!
//! ```text
//! amrviz generate   <nyx|warpx> --out DIR [--scale S] [--seed N] [--all-fields]
//! amrviz simulate   --out DIR [--n N] [--steps K] [--snap-every M]
//! amrviz info       <plotfile>
//! amrviz compress   <plotfile> --field F --out FILE [--algo A] [--rel EB | --abs EB] [--skip-redundant]
//! amrviz decompress <plotfile> <stream> --out DIR [--algo A] [--skip-redundant] [--degrade]
//! amrviz extract    <plotfile> --field F --out FILE.obj [--iso V | --quantile Q] [--method M]
//! amrviz render     <plotfile> --field F --out FILE.png [--mode surface|slice|volume] [...]
//! amrviz diff       <plotfile A> <plotfile B> --field F [--field-b G]
//! ```
//!
//! Algorithms: `szlr` (default), `szinterp`, `zfp`. Methods: `resampling`
//! (default), `dual`, `dual-redundant`. Plotfiles are the directories
//! written by `amrviz-amr::plotfile`.

mod args;
mod commands;

use std::process::ExitCode;

// Counting allocator so `amrviz torture` can assert bounded memory on
// corrupted-stream decodes; negligible overhead on the other commands
// (two relaxed atomic ops per allocation).
#[global_allocator]
static ALLOC: amrviz_fault::CountingAlloc = amrviz_fault::CountingAlloc;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (argv, obs_opts) = match extract_obs_options(argv) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" || argv[0] == "help" {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if let Some(n) = obs_opts.threads {
        amrviz_par::set_threads(n);
    }
    if obs_opts.active() {
        amrviz_obs::enable();
    }
    let cmd = argv[0].clone();
    let rest = &argv[1..];
    let result = match cmd.as_str() {
        "generate" => commands::generate(rest),
        "simulate" => commands::simulate(rest),
        "info" => commands::info(rest),
        "compress" => commands::compress(rest),
        "decompress" => commands::decompress(rest),
        "extract" => commands::extract(rest),
        "render" => commands::render(rest),
        "diff" => commands::diff(rest),
        "torture" => commands::torture(rest),
        "bench" => commands::bench(rest),
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    };
    let result = result.and_then(|()| obs_opts.export());
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Observability flags, valid on every subcommand.
#[derive(Debug, Default)]
struct ObsOptions {
    trace_path: Option<String>,
    flame_path: Option<String>,
    timing: bool,
    threads: Option<usize>,
}

impl ObsOptions {
    fn active(&self) -> bool {
        self.trace_path.is_some() || self.flame_path.is_some() || self.timing
    }

    /// Writes the chrome trace / flamegraph and/or prints the timing
    /// summary.
    fn export(&self) -> Result<(), String> {
        if let Some(path) = &self.trace_path {
            amrviz_obs::chrome::write_chrome_trace(std::path::Path::new(path))
                .map_err(|e| format!("writing trace to {path}: {e}"))?;
            eprintln!("trace written to {path} (open in chrome://tracing or ui.perfetto.dev)");
        }
        if let Some(path) = &self.flame_path {
            amrviz_obs::flame::write_flamegraph(std::path::Path::new(path))
                .map_err(|e| format!("writing flamegraph to {path}: {e}"))?;
            let kind = if path.to_ascii_lowercase().ends_with(".html")
                || path.to_ascii_lowercase().ends_with(".htm")
            {
                "self-contained HTML"
            } else {
                "collapsed-stack text"
            };
            eprintln!("flamegraph written to {path} ({kind})");
        }
        if self.timing {
            let summary = amrviz_obs::summary::collect();
            eprint!("{}", summary.to_text());
            let hists = amrviz_obs::histograms_snapshot();
            if !hists.is_empty() {
                eprint!("{}", amrviz_obs::hist::render_text(&hists));
            }
            eprint!("{}", amrviz_par::utilization().to_text());
        }
        Ok(())
    }
}

/// Strips `--trace PATH`, `--flame PATH`, `--timing`, and `--threads N`
/// (valid anywhere on the command line) from `argv` before subcommand
/// dispatch.
fn extract_obs_options(argv: Vec<String>) -> Result<(Vec<String>, ObsOptions), String> {
    let mut opts = ObsOptions::default();
    let mut rest = Vec::with_capacity(argv.len());
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                let path = it.next().ok_or("--trace needs a value".to_string())?;
                opts.trace_path = Some(path);
            }
            "--flame" => {
                let path = it.next().ok_or("--flame needs a value".to_string())?;
                opts.flame_path = Some(path);
            }
            "--timing" => opts.timing = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value".to_string())?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads needs a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                opts.threads = Some(n);
            }
            _ => rest.push(a),
        }
    }
    Ok((rest, opts))
}

fn usage() -> &'static str {
    "amrviz — AMR data toolkit (compression × visualization)

USAGE:
  amrviz generate   <nyx|warpx> --out DIR [--scale tiny|small|medium|paper]
                    [--seed N] [--all-fields]
  amrviz simulate   --out DIR [--n N] [--steps K] [--snap-every M]
  amrviz info       <plotfile>
  amrviz compress   <plotfile> --field F --out FILE
                    [--algo szlr|szinterp|zfp] [--rel EB | --abs EB]
                    [--skip-redundant]
  amrviz decompress <plotfile> <stream> --out DIR
                    [--algo szlr|szinterp|zfp] [--skip-redundant]
                    [--degrade]  repair corrupt fabs from neighbor levels
                    instead of failing; prints a per-fab decode report
  amrviz extract    <plotfile> --field F --out FILE.obj
                    [--iso V | --quantile Q]
                    [--method resampling|dual|dual-redundant]
  amrviz render     <plotfile> --field F --out FILE.png
                    [--mode surface|slice|volume] [--iso V | --quantile Q]
                    [--method M] [--width W] [--height H] [--log]
  amrviz diff       <plotfile A> <plotfile B> --field F [--field-b G]
  amrviz torture    [--iters N] [--seed S] [--max-peak-mb M]
                    fault-injection sweep over every decoder: mutated
                    streams must error gracefully, never panic, and stay
                    under the peak-allocation cap (default 128 MiB).
                    Prints one machine-readable `TORTURE {...}` line;
                    exits nonzero on any contract violation.
  amrviz bench      [--quick] [--name LABEL] [--out DIR]
                    [--baseline OLD.json] [--threshold PCT]
                    [--thread-counts 1,4] [--scale S] [--ebs 1e-3,1e-2]
                    runs the pinned Nyx/WarpX × {szlr, interp, zfp-like} ×
                    thread-count matrix and writes BENCH_<name>.json (wall
                    times, histogram percentiles, peak memory, CR/PSNR/SSIM
                    per cell). With --baseline, prints per-metric deltas and
                    exits nonzero when any gated metric leaves the ±PCT%
                    band (default 200). Time metrics gate symmetrically —
                    an implausibly *faster* run also fails, since it means
                    the baseline is stale or doctored.

GLOBAL OPTIONS (valid on every command):
  --trace FILE   write a chrome://tracing / Perfetto trace of the run
  --flame FILE   write a flamegraph of the run's span tree; `.html` gets a
                 self-contained interactive page, anything else
                 collapsed-stack text (flamegraph.pl format)
  --timing       print a hierarchical per-stage timing summary, latency/size
                 histograms (p50/p90/p99), plus worker-pool utilization to
                 stderr
  --threads N    size of the worker pool (default: available parallelism;
                 the AMRVIZ_THREADS env var sets the same default).
                 Results are bit-identical at any thread count.
"
}
