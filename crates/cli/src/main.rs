//! `amrviz` — command-line front end to the workspace.
//!
//! ```text
//! amrviz generate   <nyx|warpx> --out DIR [--scale S] [--seed N] [--all-fields]
//! amrviz simulate   --out DIR [--n N] [--steps K] [--snap-every M]
//! amrviz info       <plotfile>
//! amrviz compress   <plotfile> --field F --out FILE [--algo A] [--rel EB | --abs EB] [--skip-redundant]
//! amrviz decompress <plotfile> <stream> --out DIR [--algo A] [--skip-redundant]
//! amrviz extract    <plotfile> --field F --out FILE.obj [--iso V | --quantile Q] [--method M]
//! amrviz render     <plotfile> --field F --out FILE.png [--mode surface|slice|volume] [...]
//! amrviz diff       <plotfile A> <plotfile B> --field F [--field-b G]
//! ```
//!
//! Algorithms: `szlr` (default), `szinterp`, `zfp`. Methods: `resampling`
//! (default), `dual`, `dual-redundant`. Plotfiles are the directories
//! written by `amrviz-amr::plotfile`.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" || argv[0] == "help" {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let cmd = argv[0].clone();
    let rest = &argv[1..];
    let result = match cmd.as_str() {
        "generate" => commands::generate(rest),
        "simulate" => commands::simulate(rest),
        "info" => commands::info(rest),
        "compress" => commands::compress(rest),
        "decompress" => commands::decompress(rest),
        "extract" => commands::extract(rest),
        "render" => commands::render(rest),
        "diff" => commands::diff(rest),
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "amrviz — AMR data toolkit (compression × visualization)

USAGE:
  amrviz generate   <nyx|warpx> --out DIR [--scale tiny|small|medium|paper]
                    [--seed N] [--all-fields]
  amrviz simulate   --out DIR [--n N] [--steps K] [--snap-every M]
  amrviz info       <plotfile>
  amrviz compress   <plotfile> --field F --out FILE
                    [--algo szlr|szinterp|zfp] [--rel EB | --abs EB]
                    [--skip-redundant]
  amrviz decompress <plotfile> <stream> --out DIR
                    [--algo szlr|szinterp|zfp] [--skip-redundant]
  amrviz extract    <plotfile> --field F --out FILE.obj
                    [--iso V | --quantile Q]
                    [--method resampling|dual|dual-redundant]
  amrviz render     <plotfile> --field F --out FILE.png
                    [--mode surface|slice|volume] [--iso V | --quantile Q]
                    [--method M] [--width W] [--height H] [--log]
  amrviz diff       <plotfile A> <plotfile B> --field F [--field-b G]
"
}
