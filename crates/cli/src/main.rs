//! `amrviz` — command-line front end to the workspace.
//!
//! ```text
//! amrviz generate   <nyx|warpx> --out DIR [--scale S] [--seed N] [--all-fields]
//! amrviz simulate   --out DIR [--n N] [--steps K] [--snap-every M]
//! amrviz info       <plotfile>
//! amrviz compress   <plotfile> --field F --out FILE [--algo A] [--rel EB | --abs EB] [--skip-redundant]
//! amrviz decompress <plotfile> <stream> --out DIR [--algo A] [--skip-redundant] [--degrade]
//! amrviz extract    <plotfile> --field F --out FILE.obj [--iso V | --quantile Q] [--method M]
//! amrviz render     <plotfile> --field F --out FILE.png [--mode surface|slice|volume] [...]
//! amrviz diff       <plotfile A> <plotfile B> --field F [--field-b G]
//! ```
//!
//! Algorithms: `szlr` (default), `szinterp`, `zfp`. Methods: `resampling`
//! (default), `dual`, `dual-redundant`. Plotfiles are the directories
//! written by `amrviz-amr::plotfile`.

mod args;
mod commands;
mod top;

use std::process::ExitCode;

// Counting allocator so `amrviz torture` can assert bounded memory on
// corrupted-stream decodes; negligible overhead on the other commands
// (two relaxed atomic ops per allocation).
#[global_allocator]
static ALLOC: amrviz_fault::CountingAlloc = amrviz_fault::CountingAlloc;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (argv, obs_opts) = match extract_obs_options(argv) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" || argv[0] == "help" {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if let Some(n) = obs_opts.threads {
        amrviz_par::set_threads(n);
    }
    if obs_opts.active() {
        amrviz_obs::enable();
    }
    if let Err(e) = obs_opts.start_streaming() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let cmd = argv[0].clone();
    let rest = &argv[1..];
    let result = match cmd.as_str() {
        "generate" => commands::generate(rest),
        "simulate" => commands::simulate(rest),
        "info" => commands::info(rest),
        "compress" => commands::compress(rest),
        "decompress" => commands::decompress(rest),
        "extract" => commands::extract(rest),
        "render" => commands::render(rest),
        "diff" => commands::diff(rest),
        "torture" => commands::torture(rest),
        "serve" => commands::serve(rest),
        "loadgen" => commands::loadgen(rest),
        "bench" => commands::bench(rest),
        "stats" => commands::stats(rest),
        "top" => top::top(rest),
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    };
    // Streaming shutdown and exporters run even when the command failed:
    // a journal/trace of a failed run is exactly when you want one.
    let result = result.and(obs_opts.finish());
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Observability flags, valid on every subcommand.
#[derive(Debug, Default)]
struct ObsOptions {
    trace_path: Option<String>,
    flame_path: Option<String>,
    timing: bool,
    threads: Option<usize>,
    journal_path: Option<String>,
    metrics_path: Option<String>,
    metrics_interval_secs: Option<f64>,
    trace_sample: Option<u64>,
}

impl Drop for ObsOptions {
    /// Flush-on-drop backstop: if a command panics (or any path skips
    /// `finish`), unwinding still stops the journal and lands the queued
    /// tail — a short run must never lose its final events to the 50 ms
    /// writer poll. No-op on the normal path where `finish` already ran.
    fn drop(&mut self) {
        if self.journal_path.is_some() && amrviz_obs::journal::is_active() {
            amrviz_obs::journal::stop();
        }
    }
}

impl ObsOptions {
    fn active(&self) -> bool {
        self.trace_path.is_some()
            || self.flame_path.is_some()
            || self.timing
            || self.journal_path.is_some()
            || self.metrics_path.is_some()
    }

    /// Starts the continuous-telemetry machinery (trace sampling, JSONL
    /// journal, periodic metrics snapshots) before command dispatch.
    fn start_streaming(&self) -> Result<(), String> {
        if let Some(n) = self.trace_sample {
            amrviz_obs::set_trace_sampling(n);
        }
        if let Some(path) = &self.journal_path {
            amrviz_obs::journal::start(std::path::Path::new(path))?;
        }
        if let Some(path) = &self.metrics_path {
            let secs = self.metrics_interval_secs.unwrap_or(5.0);
            if !secs.is_finite() || secs <= 0.0 {
                return Err(format!("--metrics-interval must be positive, got {secs}"));
            }
            amrviz_obs::expose::writer_start(
                std::path::PathBuf::from(path),
                std::time::Duration::from_secs_f64(secs),
            )?;
        }
        Ok(())
    }

    /// Stops streaming (flushing the journal and a final metrics snapshot)
    /// and then runs the batch exporters. Called whether or not the
    /// command succeeded.
    fn finish(&self) -> Result<(), String> {
        if self.metrics_path.is_some() {
            amrviz_obs::expose::writer_stop();
        }
        if self.journal_path.is_some() {
            let stats = amrviz_obs::journal::stop();
            if let Some(path) = &self.journal_path {
                eprintln!(
                    "journal written to {path} ({} lines, {} dropped)",
                    stats.enqueued, stats.dropped
                );
            }
        }
        self.export()
    }

    /// Writes the chrome trace / flamegraph and/or prints the timing
    /// summary.
    fn export(&self) -> Result<(), String> {
        if let Some(path) = &self.trace_path {
            amrviz_obs::chrome::write_chrome_trace(std::path::Path::new(path))
                .map_err(|e| format!("writing trace to {path}: {e}"))?;
            eprintln!("trace written to {path} (open in chrome://tracing or ui.perfetto.dev)");
        }
        if let Some(path) = &self.flame_path {
            amrviz_obs::flame::write_flamegraph(std::path::Path::new(path))
                .map_err(|e| format!("writing flamegraph to {path}: {e}"))?;
            let kind = if path.to_ascii_lowercase().ends_with(".html")
                || path.to_ascii_lowercase().ends_with(".htm")
            {
                "self-contained HTML"
            } else {
                "collapsed-stack text"
            };
            eprintln!("flamegraph written to {path} ({kind})");
        }
        if self.timing {
            let summary = amrviz_obs::summary::collect();
            eprint!("{}", summary.to_text());
            let hists = amrviz_obs::histograms_snapshot();
            if !hists.is_empty() {
                eprint!("{}", amrviz_obs::hist::render_text(&hists));
            }
            eprint!("{}", amrviz_par::utilization().to_text());
        }
        Ok(())
    }
}

/// Strips the global observability flags (`--trace PATH`, `--flame PATH`,
/// `--timing`, `--threads N`, `--journal FILE`, `--metrics-out FILE`,
/// `--metrics-interval SECS`, `--trace-sample N` — valid anywhere on the
/// command line) from `argv` before subcommand dispatch. Repeated value
/// flags keep the last occurrence and warn on stderr, matching
/// [`args::parse`].
fn extract_obs_options(argv: Vec<String>) -> Result<(Vec<String>, ObsOptions), String> {
    fn set_warn<T: std::fmt::Display>(slot: &mut Option<T>, flag: &str, value: T) {
        if let Some(prev) = slot.replace(value) {
            let v = slot.as_ref().expect("just replaced");
            eprintln!("warning: {flag} given more than once; using `{v}` (ignoring `{prev}`)");
        }
    }
    let mut opts = ObsOptions::default();
    let mut rest = Vec::with_capacity(argv.len());
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                let path = it.next().ok_or("--trace needs a value".to_string())?;
                set_warn(&mut opts.trace_path, "--trace", path);
            }
            "--flame" => {
                let path = it.next().ok_or("--flame needs a value".to_string())?;
                set_warn(&mut opts.flame_path, "--flame", path);
            }
            "--timing" => opts.timing = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value".to_string())?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads needs a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                set_warn(&mut opts.threads, "--threads", n);
            }
            "--journal" => {
                let path = it.next().ok_or("--journal needs a value".to_string())?;
                set_warn(&mut opts.journal_path, "--journal", path);
            }
            "--metrics-out" => {
                let path = it.next().ok_or("--metrics-out needs a value".to_string())?;
                set_warn(&mut opts.metrics_path, "--metrics-out", path);
            }
            "--metrics-interval" => {
                let v = it
                    .next()
                    .ok_or("--metrics-interval needs a value".to_string())?;
                let secs: f64 = v.parse().map_err(|_| {
                    format!("--metrics-interval needs a number of seconds, got `{v}`")
                })?;
                set_warn(&mut opts.metrics_interval_secs, "--metrics-interval", secs);
            }
            "--trace-sample" => {
                let v = it
                    .next()
                    .ok_or("--trace-sample needs a value".to_string())?;
                let n: u64 = v.parse().map_err(|_| {
                    format!("--trace-sample needs a positive integer N (keep 1/N), got `{v}`")
                })?;
                if n == 0 {
                    return Err("--trace-sample must be at least 1".to_string());
                }
                set_warn(&mut opts.trace_sample, "--trace-sample", n);
            }
            _ => rest.push(a),
        }
    }
    Ok((rest, opts))
}

fn usage() -> &'static str {
    "amrviz — AMR data toolkit (compression × visualization)

USAGE:
  amrviz generate   <nyx|warpx> --out DIR [--scale tiny|small|medium|paper]
                    [--seed N] [--all-fields]
  amrviz simulate   --out DIR [--n N] [--steps K] [--snap-every M]
  amrviz info       <plotfile>
  amrviz compress   <plotfile> --field F --out FILE
                    [--algo szlr|szinterp|zfp] [--rel EB | --abs EB]
                    [--skip-redundant]
  amrviz decompress <plotfile> <stream> --out DIR
                    [--algo szlr|szinterp|zfp] [--skip-redundant]
                    [--degrade]  repair corrupt fabs from neighbor levels
                    instead of failing; prints a per-fab decode report
  amrviz extract    <plotfile> --field F --out FILE.obj
                    [--iso V | --quantile Q]
                    [--method resampling|dual|dual-redundant]
  amrviz render     <plotfile> --field F --out FILE.png
                    [--mode surface|slice|volume] [--iso V | --quantile Q]
                    [--method M] [--width W] [--height H] [--log]
  amrviz diff       <plotfile A> <plotfile B> --field F [--field-b G]
  amrviz torture    [--iters N] [--seed S] [--max-peak-mb M] [--recipes K]
                    fault-injection sweep over every decoder: mutated
                    streams must error gracefully, never panic, and stay
                    under the peak-allocation cap (default 128 MiB).
                    --recipes K appends K recipe-sampled AMR scenarios to
                    the corrupted-stream corpus; violations print the
                    reproducing recipe string. Prints one machine-readable
                    `TORTURE {...}` line; exits nonzero on any violation.
                    [--serve] instead chaos-tests the serving stack: an
                    in-process server behind a fault-injecting proxy, with
                    good/degraded/disk-corrupt/unknown keys and randomized
                    deadlines. Asserts no panics, no post-deadline data,
                    typed errors for corrupt blobs, and bounded peak
                    memory. Prints `SERVE_TORTURE {...}`; exits nonzero on
                    any violation with a reproducing command line.
  amrviz serve      --store DIR [--addr HOST:PORT] [--workers N]
                    [--queue-depth D] [--cache-mb MB] [--max-deadline-ms MS]
                    [--shutdown-after SECS] [--chaos SEED] [--slo SPEC]
                    [--seed-scenarios N [--seed S]]
                    progressive AMR server: streams cached decoded
                    hierarchies coarse-level-first over a length-prefixed
                    binary protocol, honoring per-request deadline budgets
                    (late work is cut mid-stream, never delivered late) and
                    shedding load with typed RETRY_LATER + retry hint when
                    the queue is full. --chaos puts a deterministic
                    fault-injecting proxy in front (for CI/torture).
                    --seed-scenarios pre-populates the store with N tiny
                    compressed snapshots. --slo declares the objectives
                    (e.g. p99<250,avail>99) evaluated over 5m/1h burn
                    windows and reported by the in-band STATS endpoint.
                    Prints `SERVE_LISTENING addr=...`
                    once ready and `SERVE_STATS {...}` after drain; exits
                    nonzero if any worker panicked or any data frame was
                    written past its deadline.
  amrviz loadgen    --addr HOST:PORT [--clients N] [--rps R]
                    [--duration SECS] [--deadline-ms MS] [--retries K]
                    [--seed S] [--min-success FRAC] [--slo SPEC]
                    closed-loop load generator: N client threads with
                    jittered pacing and seeded exponential backoff on
                    shed/timeout. Discovers keys via LIST, prints a
                    `LOADGEN {...}` line with p50/p99 latency and
                    per-outcome latency histograms; exits nonzero when the
                    success rate drops below --min-success (default 0.9) or
                    any frame arrived after deadline + grace. --slo gates
                    the whole run against a declared objective (e.g.
                    p99<250,avail>99), printing `LOADGEN_SLO {...}` and
                    exiting nonzero on breach.
  amrviz top        HOST:PORT [--interval SECS] [--exemplars N]
                    [--once] [--json]
                    live dashboard over the server's in-band STATS request
                    (same port as data traffic): outcome sparklines,
                    windowed latency and stage-timing percentiles, SLO
                    burn-rate windows, and tail exemplars naming the stage
                    each slow request spent its time in. Retries through
                    chaos-proxy faults. --once renders a single frame;
                    --once --json prints the raw validated snapshot for
                    scripts and CI.
  amrviz bench      [--quick] [--name LABEL] [--out DIR]
                    [--baseline OLD.json] [--threshold PCT]
                    [--thread-counts 1,4] [--scale S] [--ebs 1e-3,1e-2]
                    runs the pinned Nyx/WarpX × {szlr, interp, zfp-like} ×
                    thread-count matrix and writes BENCH_<name>.json (wall
                    times, histogram percentiles, peak memory, CR/PSNR/SSIM
                    per cell). With --baseline, prints per-metric deltas and
                    exits nonzero when any gated metric leaves the ±PCT%
                    band (default 200). Time metrics gate symmetrically —
                    an implausibly *faster* run also fails, since it means
                    the baseline is stale or doctored.
                    [--obs-overhead] instead runs the instrumentation
                    self-overhead cell (Nyx × szlr, recorder off vs. on +
                    journal) and exits nonzero when the overhead exceeds
                    the 3% wall-time budget.
  amrviz stats      <FILE> [--strict] [--slo SPEC]
                    pretty-prints continuous-telemetry artifacts: a
                    `--journal` JSONL file or a `--metrics-out` snapshot
                    (counters, gauges, histogram percentiles, recorder
                    self-overhead). Unknown event kinds and malformed
                    journal lines warn and are skipped so old binaries can
                    read new journals; --strict restores hard failure on
                    the first bad line. Journals from `serve`/`loadgen`
                    additionally get a per-role outcome table
                    (ok/degraded/shed/timeout with p50/p99), a
                    client-to-server trace-stitching summary, a tail
                    breakdown naming the dominant stage of the slowest
                    requests, and any `slo` burn-rate events. --slo
                    evaluates server-side outcomes in the journal against
                    a declared objective, printing `SLO_EVAL {...}` and
                    exiting nonzero on breach.

GLOBAL OPTIONS (valid on every command):
  --trace FILE   write a chrome://tracing / Perfetto trace of the run
  --flame FILE   write a flamegraph of the run's span tree; `.html` gets a
                 self-contained interactive page, anything else
                 collapsed-stack text (flamegraph.pl format)
  --timing       print a hierarchical per-stage timing summary, latency/size
                 histograms (p50/p90/p99), plus worker-pool utilization to
                 stderr
  --threads N    size of the worker pool (default: available parallelism;
                 the AMRVIZ_THREADS env var sets the same default).
                 Results are bit-identical at any thread count.
  --journal FILE stream every completed span (and fault/meta events) to
                 FILE as JSONL (`amrviz-journal-v1`): bounded queues,
                 drop-oldest backpressure, line-atomic appends. Inspect
                 with `amrviz stats FILE`.
  --metrics-out FILE
                 write a rolling `amrviz-metrics-v1` JSON snapshot to FILE
                 (plus Prometheus text at FILE.prom) every interval,
                 atomically replaced so readers never see a torn file
  --metrics-interval SECS
                 snapshot period for --metrics-out (default 5)
  --trace-sample N
                 head-based trace sampling: keep every N-th trace's spans
                 (counters/histograms are unaffected; default 1 = keep all)
"
}
