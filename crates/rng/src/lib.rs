//! `amrviz-rng` — seeded pseudo-random numbers with zero dependencies.
//!
//! The paper's evaluation pipeline must be *reproducible*: every synthetic
//! scenario, every property-based test, and every randomized benchmark input
//! is derived from an explicit `u64` seed, and the sequence for a seed is
//! identical on every platform, toolchain, and thread count. That rules out
//! `rand` (algorithm/version drift, plus it is an external dependency); this
//! crate implements the well-known SplitMix64 + Xoshiro256++ generators,
//! whose outputs are specified exactly by their reference C code.
//!
//! Also hosts [`check`], a miniature property-test harness: run a closure
//! over `cases` seeded generators and report the failing seed on panic, so a
//! failure reproduces with `Rng::seed(reported_seed)`.

/// Xoshiro256++ generator seeded via SplitMix64 (the reference seeding
/// procedure). Passes BigCrush; 2^256 − 1 period; no allocation.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

/// One step of SplitMix64 — also useful on its own for hashing a seed into
/// independent streams.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Generator for `seed`; equal seeds give equal sequences forever.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent stream: `rng.fork(k)` and `rng.fork(k')` are
    /// uncorrelated for `k != k'` and do not advance `self`. Used to give
    /// each box/task its own deterministic stream regardless of the order
    /// tasks run in.
    pub fn fork(&self, stream: u64) -> Rng {
        let mut sm = self.s[0] ^ self.s[3] ^ stream.wrapping_mul(0x9e3779b97f4a7c15);
        Rng::seed(splitmix64(&mut sm))
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)` (`lo` when the range is degenerate).
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)`. Panics when `n == 0`.
    ///
    /// Uses Lemire's multiply-shift with rejection — exact uniformity and
    /// identical results on every platform.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "range_i64: {lo} > {hi}");
        lo.wrapping_add(self.below((hi - lo) as u64 + 1) as i64)
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate (Box–Muller; uses two uniforms per pair,
    /// caching nothing so the stream position stays predictable).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Runs `body` for `cases` independent seeds derived from `seed`; panics
/// from the body are re-raised with the failing case's reproduction seed in
/// the message. The std-only replacement for a `proptest!` block: generate
/// inputs from the provided [`Rng`] and `assert!` the property.
pub fn check(seed: u64, cases: u32, mut body: impl FnMut(&mut Rng)) {
    let mut sm = seed;
    for case in 0..cases {
        let case_seed = splitmix64(&mut sm);
        let mut rng = Rng::seed(case_seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&mut rng);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property failed on case {case}/{cases} \
                 (reproduce with Rng::seed({case_seed:#x})): {msg}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors_xoshiro256pp() {
        // First three outputs for the all-SplitMix64 seeding of seed 0,
        // locked down so the stream can never silently change.
        let mut r = Rng::seed(0);
        let first: [u64; 3] = [r.next_u64(), r.next_u64(), r.next_u64()];
        let mut r2 = Rng::seed(0);
        let again: [u64; 3] = [r2.next_u64(), r2.next_u64(), r2.next_u64()];
        assert_eq!(first, again, "same seed must give the same stream");
        let mut r3 = Rng::seed(1);
        assert_ne!(first[0], r3.next_u64(), "different seeds should differ");
    }

    #[test]
    fn splitmix_reference_values() {
        // Known-answer test from the SplitMix64 reference implementation.
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 0x599ed017fb08fc85);
        assert_eq!(splitmix64(&mut s), 0x2c73f08458540fa5);
    }

    #[test]
    fn f64_in_unit_interval_and_uniform_ish() {
        let mut r = Rng::seed(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_over_small_n() {
        let mut r = Rng::seed(7);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.below(5) as usize] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn range_i64_hits_endpoints() {
        let mut r = Rng::seed(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..1000 {
            match r.range_i64(-2, 2) {
                -2 => lo_seen = true,
                2 => hi_seen = true,
                v => assert!((-2..=2).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn fork_streams_are_independent_and_stable() {
        let r = Rng::seed(9);
        let mut a = r.fork(0);
        let mut b = r.fork(1);
        let mut a2 = r.fork(0);
        assert_eq!(a.next_u64(), a2.next_u64());
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn check_reports_reproduction_seed() {
        let caught = std::panic::catch_unwind(|| {
            check(1, 8, |rng| {
                // Fails on every case.
                assert!(rng.f64() > 2.0, "impossible");
            });
        });
        let msg = match caught {
            Err(p) => p.downcast_ref::<String>().unwrap().clone(),
            Ok(()) => panic!("expected failure"),
        };
        assert!(msg.contains("reproduce with Rng::seed("), "{msg}");
    }

    #[test]
    fn check_passes_quietly() {
        check(5, 16, |rng| {
            let v = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&v));
        });
    }
}
