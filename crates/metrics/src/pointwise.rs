//! Pointwise error statistics between an original and a reconstruction.

use amrviz_json::{Json, ToJson};

/// Summary of pointwise reconstruction error.
#[derive(Debug, Clone, Copy)]
pub struct QualityStats {
    /// Number of samples compared.
    pub n: usize,
    /// Value range (max − min) of the *original* data.
    pub range: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Normalized RMSE (RMSE / range; 0 when the original is constant).
    pub nrmse: f64,
    /// Peak signal-to-noise ratio, `20·log10(range/RMSE)` (dB).
    /// `f64::INFINITY` for bit-exact reconstructions.
    pub psnr: f64,
    /// Largest absolute pointwise error.
    pub max_abs_err: f64,
    /// Mean absolute pointwise error.
    pub mean_abs_err: f64,
}

/// Computes pointwise statistics. Panics if lengths differ or are zero.
pub fn quality(original: &[f64], reconstructed: &[f64]) -> QualityStats {
    assert_eq!(
        original.len(),
        reconstructed.len(),
        "quality: length mismatch"
    );
    assert!(!original.is_empty(), "quality: empty input");

    // Fixed-size chunks reduced in chunk order: the float accumulation
    // grouping depends only on CHUNK, never on the thread count, so the
    // stats are bit-identical at any `--threads` setting.
    const CHUNK: usize = 1 << 16;
    let n_total = original.len();
    let (min, max) = amrviz_par::reduce_chunked(
        n_total,
        CHUNK,
        (f64::INFINITY, f64::NEG_INFINITY),
        |r| {
            original[r]
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                })
        },
        |(al, ah), (bl, bh)| (al.min(bl), ah.max(bh)),
    );
    let range = max - min;

    let (se_sum, ae_sum, max_ae) = amrviz_par::reduce_chunked(
        n_total,
        CHUNK,
        (0.0f64, 0.0f64, 0.0f64),
        |r| {
            original[r.clone()].iter().zip(&reconstructed[r]).fold(
                (0.0f64, 0.0f64, 0.0f64),
                |(se, ae, mx), (&o, &rv)| {
                    let d = o - rv;
                    (se + d * d, ae + d.abs(), mx.max(d.abs()))
                },
            )
        },
        |(se1, ae1, m1), (se2, ae2, m2)| (se1 + se2, ae1 + ae2, m1.max(m2)),
    );

    let n = original.len();
    let mse = se_sum / n as f64;
    let rmse = mse.sqrt();
    let psnr = if rmse == 0.0 {
        f64::INFINITY
    } else if range == 0.0 {
        f64::NEG_INFINITY
    } else {
        20.0 * (range / rmse).log10()
    };
    QualityStats {
        n,
        range,
        mse,
        rmse,
        nrmse: if range == 0.0 { 0.0 } else { rmse / range },
        psnr,
        max_abs_err: max_ae,
        mean_abs_err: ae_sum / n as f64,
    }
}

impl ToJson for QualityStats {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("n", self.n)
            .set("range", self.range)
            .set("mse", self.mse)
            .set("rmse", self.rmse)
            .set("nrmse", self.nrmse)
            .set("psnr", self.psnr)
            .set("max_abs_err", self.max_abs_err)
            .set("mean_abs_err", self.mean_abs_err);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_data_is_lossless() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let s = quality(&a, &a);
        assert_eq!(s.mse, 0.0);
        assert_eq!(s.psnr, f64::INFINITY);
        assert_eq!(s.max_abs_err, 0.0);
        assert_eq!(s.range, 3.0);
    }

    #[test]
    fn known_error_values() {
        let orig = vec![0.0, 10.0]; // range 10
        let recon = vec![1.0, 9.0]; // errors ±1
        let s = quality(&orig, &recon);
        assert!((s.mse - 1.0).abs() < 1e-15);
        assert!((s.rmse - 1.0).abs() < 1e-15);
        assert!((s.psnr - 20.0).abs() < 1e-12); // 20·log10(10/1)
        assert_eq!(s.max_abs_err, 1.0);
        assert!((s.nrmse - 0.1).abs() < 1e-15);
        assert_eq!(s.mean_abs_err, 1.0);
    }

    #[test]
    fn psnr_scales_with_error() {
        let orig: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let small: Vec<f64> = orig.iter().map(|v| v + 0.001).collect();
        let large: Vec<f64> = orig.iter().map(|v| v + 0.1).collect();
        let s_small = quality(&orig, &small);
        let s_large = quality(&orig, &large);
        assert!(s_small.psnr > s_large.psnr);
        // Error ratio 100 → 40 dB PSNR difference.
        assert!((s_small.psnr - s_large.psnr - 40.0).abs() < 1e-9);
    }

    #[test]
    fn constant_original_handled() {
        let orig = vec![5.0; 10];
        let recon = vec![5.5; 10];
        let s = quality(&orig, &recon);
        assert_eq!(s.range, 0.0);
        assert_eq!(s.psnr, f64::NEG_INFINITY);
        assert_eq!(s.nrmse, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        quality(&[1.0], &[1.0, 2.0]);
    }
}
