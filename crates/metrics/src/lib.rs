//! Reconstruction-quality metrics used throughout the evaluation.
//!
//! * [`quality`] — pointwise error statistics (MSE, RMSE, PSNR, max error);
//! * [`ssim3`] / [`ssim2`] — windowed structural similarity on volumes and
//!   images;
//! * [`rssim`] — the paper's proposed **reverse SSIM**, `R-SSIM = 1 − SSIM`
//!   (Eq. 1), which spreads the interesting `0.999…` range over orders of
//!   magnitude;
//! * [`Histogram`] — simple fixed-bin histograms for distribution checks.
//!
//! ```
//! use amrviz_metrics::{quality, rssim, ssim3, SsimConfig};
//!
//! let orig: Vec<f64> = (0..512).map(|i| (i as f64 * 0.1).sin()).collect();
//! let noisy: Vec<f64> = orig.iter().map(|v| v + 1e-4).collect();
//! let q = quality(&orig, &noisy);
//! assert!(q.psnr > 80.0);
//! let s = ssim3(&orig, &noisy, [8, 8, 8], &SsimConfig::default());
//! assert!(rssim(s) < 1e-4);
//! ```

pub mod histogram;
pub mod pointwise;
pub mod ssim;

pub use histogram::Histogram;
pub use pointwise::{quality, QualityStats};
pub use ssim::{rssim, ssim2, ssim3, SsimConfig};
