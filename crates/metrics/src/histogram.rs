//! Fixed-bin histograms for sanity-checking value distributions.

use amrviz_json::{Json, ToJson};

/// A uniform-bin histogram over `[lo, hi]`.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    pub counts: Vec<u64>,
    /// Samples outside `[lo, hi]`.
    pub outliers: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` uniform bins over `[lo, hi]`.
    pub fn build(values: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "bad histogram bounds");
        let mut counts = vec![0u64; bins];
        let mut outliers = 0;
        let scale = bins as f64 / (hi - lo);
        for &v in values {
            if v < lo || v > hi || v.is_nan() {
                outliers += 1;
            } else {
                let b = (((v - lo) * scale) as usize).min(bins - 1);
                counts[b] += 1;
            }
        }
        Histogram {
            lo,
            hi,
            counts,
            outliers,
        }
    }

    /// Histogram spanning the data's own range.
    pub fn auto(values: &[f64], bins: usize) -> Self {
        let (lo, hi) = values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            });
        if lo == hi {
            // Degenerate: one-bin histogram holding everything.
            let mut h = Histogram {
                lo,
                hi: lo + 1.0,
                counts: vec![0; bins],
                outliers: 0,
            };
            h.counts[0] = values.len() as u64;
            return h;
        }
        Histogram::build(values, lo, hi, bins)
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.outliers
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Shannon entropy of the bin distribution, in bits.
    pub fn entropy_bits(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total as f64;
                -p * p.log2()
            })
            .sum()
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("lo", self.lo)
            .set("hi", self.hi)
            .set(
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::Num(c as f64)).collect()),
            )
            .set("outliers", self.outliers);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fill() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64 + 0.5).collect();
        let h = Histogram::build(&vals, 0.0, 100.0, 10);
        assert!(h.counts.iter().all(|&c| c == 10));
        assert_eq!(h.outliers, 0);
        assert_eq!(h.total(), 100);
        assert!((h.entropy_bits() - 10f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn outliers_counted() {
        let vals = [-1.0, 0.5, 2.0, f64::NAN];
        let h = Histogram::build(&vals, 0.0, 1.0, 4);
        assert_eq!(h.outliers, 3);
        assert_eq!(h.counts.iter().sum::<u64>(), 1);
    }

    #[test]
    fn top_edge_lands_in_last_bin() {
        let h = Histogram::build(&[1.0], 0.0, 1.0, 4);
        assert_eq!(h.counts[3], 1);
    }

    #[test]
    fn auto_range_and_mode() {
        let vals = [1.0, 1.0, 1.0, 5.0];
        let h = Histogram::auto(&vals, 4);
        assert_eq!(h.outliers, 0);
        assert_eq!(h.mode_bin(), 0);
    }

    #[test]
    fn constant_data_degenerate() {
        let h = Histogram::auto(&[3.0; 7], 5);
        assert_eq!(h.total(), 7);
        assert_eq!(h.entropy_bits(), 0.0);
    }
}
