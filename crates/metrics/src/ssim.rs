//! Windowed structural similarity (SSIM) for 2D images and 3D volumes,
//! plus the paper's reverse SSIM.
//!
//! SSIM over a window pair `(x, y)`:
//!
//! ```text
//! SSIM = (2·μx·μy + C1)(2·σxy + C2) / ((μx² + μy² + C1)(σx² + σy² + C2))
//! C1 = (K1·L)², C2 = (K2·L)², K1 = 0.01, K2 = 0.03
//! ```
//!
//! where `L` is the dynamic range of the original data. The global score is
//! the mean over all window positions. Windows are uniform (box) windows,
//! the standard choice for volumetric scientific data; `stride` trades
//! exactness for speed on large volumes (stride 1 = every position).

/// SSIM parameters.
#[derive(Debug, Clone, Copy)]
pub struct SsimConfig {
    /// Cubic (or square) window edge length.
    pub window: usize,
    /// Step between window positions along each axis.
    pub stride: usize,
    pub k1: f64,
    pub k2: f64,
}

impl Default for SsimConfig {
    fn default() -> Self {
        SsimConfig {
            window: 7,
            stride: 2,
            k1: 0.01,
            k2: 0.03,
        }
    }
}

impl SsimConfig {
    /// Exhaustive evaluation (stride 1) — slower, reference-quality.
    pub fn exhaustive() -> Self {
        SsimConfig {
            stride: 1,
            ..Default::default()
        }
    }
}

/// SSIM of a 3D volume pair with dims `[nx, ny, nz]` (x-fastest layout).
pub fn ssim3(original: &[f64], reconstructed: &[f64], dims: [usize; 3], cfg: &SsimConfig) -> f64 {
    assert_eq!(original.len(), dims[0] * dims[1] * dims[2], "dims mismatch");
    assert_eq!(original.len(), reconstructed.len(), "length mismatch");
    assert!(cfg.window >= 2 && cfg.stride >= 1);
    let _sp = amrviz_obs::span!(
        "metrics.ssim3",
        nx = dims[0],
        ny = dims[1],
        nz = dims[2],
        window = cfg.window,
        stride = cfg.stride,
    );
    let [nx, ny, nz] = dims;
    let w = cfg.window.min(nx).min(ny).min(nz);

    // Dynamic range of the original defines C1/C2.
    let (min, max) = original
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let range = max - min;
    if range == 0.0 {
        // Constant original: SSIM is 1 iff reconstruction matches exactly.
        return if original == reconstructed { 1.0 } else { 0.0 };
    }
    let c1 = (cfg.k1 * range).powi(2);
    let c2 = (cfg.k2 * range).powi(2);

    let positions = |n: usize| -> Vec<usize> {
        let last = n - w;
        let mut v: Vec<usize> = (0..=last).step_by(cfg.stride).collect();
        // Always include the final window so the volume edge is covered.
        if *v.last().expect("window fits") != last {
            v.push(last);
        }
        v
    };
    let (xs, ys, zs) = (positions(nx), positions(ny), positions(nz));

    let inv_n = 1.0 / (w * w * w) as f64;
    // One task per z-plane of window origins; partial sums are combined in
    // z order below, so the score is bit-identical at any thread count.
    let partials: Vec<(f64, usize)> = amrviz_par::run(zs.len(), |zi| {
        let z0 = zs[zi];
        {
            let mut acc = 0.0;
            let mut count = 0usize;
            for &y0 in &ys {
                for &x0 in &xs {
                    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
                    for dz in 0..w {
                        for dy in 0..w {
                            let row = x0 + nx * ((y0 + dy) + ny * (z0 + dz));
                            let xo = &original[row..row + w];
                            let yo = &reconstructed[row..row + w];
                            for i in 0..w {
                                let a = xo[i];
                                let b = yo[i];
                                sx += a;
                                sy += b;
                                sxx += a * a;
                                syy += b * b;
                                sxy += a * b;
                            }
                        }
                    }
                    let mx = sx * inv_n;
                    let my = sy * inv_n;
                    let vx = (sxx * inv_n - mx * mx).max(0.0);
                    let vy = (syy * inv_n - my * my).max(0.0);
                    let cov = sxy * inv_n - mx * my;
                    let s = ((2.0 * mx * my + c1) * (2.0 * cov + c2))
                        / ((mx * mx + my * my + c1) * (vx + vy + c2));
                    acc += s;
                    count += 1;
                }
            }
            (acc, count)
        }
    });
    let sums = partials
        .into_iter()
        .fold((0.0, 0usize), |(a, ca), (b, cb)| (a + b, ca + cb));

    sums.0 / sums.1 as f64
}

/// SSIM of a 2D image pair with dims `[nx, ny]` (x-fastest layout).
pub fn ssim2(original: &[f64], reconstructed: &[f64], dims: [usize; 2], cfg: &SsimConfig) -> f64 {
    // A 2D image is a volume of depth 1 with the window clamped by `ssim3`.
    ssim3(original, reconstructed, [dims[0], dims[1], 1], cfg)
}

/// The paper's reverse SSIM (Eq. 1): `R-SSIM = 1 − SSIM`. Near-perfect
/// reconstructions differ in the 6th-9th decimal of SSIM; R-SSIM makes those
/// differences legible (e.g. 2.2e-7 vs 4.0e-4).
#[inline]
pub fn rssim(ssim_value: f64) -> f64 {
    1.0 - ssim_value
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_rng::Rng;

    fn ramp_volume(dims: [usize; 3]) -> Vec<f64> {
        let [nx, ny, nz] = dims;
        let mut v = Vec::with_capacity(nx * ny * nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    v.push(i as f64 + 0.5 * j as f64 + 0.25 * (k as f64).sin());
                }
            }
        }
        v
    }

    #[test]
    fn identical_volumes_score_one() {
        let dims = [16, 16, 16];
        let v = ramp_volume(dims);
        let s = ssim3(&v, &v, dims, &SsimConfig::default());
        assert!((s - 1.0).abs() < 1e-12, "got {s}");
    }

    #[test]
    fn noise_lowers_ssim_monotonically() {
        let dims = [16, 16, 16];
        let v = ramp_volume(dims);
        let mut rng = Rng::seed(7);
        let noisy = |amp: f64, rng: &mut Rng| -> Vec<f64> {
            v.iter().map(|x| x + rng.range_f64(-amp, amp)).collect()
        };
        let cfg = SsimConfig::default();
        let s_small = ssim3(&v, &noisy(0.01, &mut rng), dims, &cfg);
        let s_mid = ssim3(&v, &noisy(1.0, &mut rng), dims, &cfg);
        let s_big = ssim3(&v, &noisy(5.0, &mut rng), dims, &cfg);
        assert!(
            s_small > s_mid && s_mid > s_big,
            "{s_small} vs {s_mid} vs {s_big}"
        );
        assert!(s_small > 0.999);
        assert!(s_big < 0.7);
    }

    #[test]
    fn structure_inversion_penalized() {
        // Reflect each value around the global mean: same means per window
        // (approximately), anti-correlated structure → structure term flips
        // sign and SSIM drops far below 1.
        let dims = [8, 8, 8];
        let v = ramp_volume(dims);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let reflected: Vec<f64> = v.iter().map(|x| 2.0 * mean - x).collect();
        let s = ssim3(&v, &reflected, dims, &SsimConfig::exhaustive());
        assert!(s < 0.5, "anti-correlated data scored high: {s}");
    }

    #[test]
    fn stride_approximates_exhaustive() {
        let dims = [20, 20, 20];
        let v = ramp_volume(dims);
        let mut rng = Rng::seed(3);
        let noisy: Vec<f64> = v.iter().map(|x| x + rng.range_f64(-0.3, 0.3)).collect();
        let exact = ssim3(&v, &noisy, dims, &SsimConfig::exhaustive());
        let approx = ssim3(
            &v,
            &noisy,
            dims,
            &SsimConfig {
                stride: 3,
                ..Default::default()
            },
        );
        assert!((exact - approx).abs() < 0.02, "{exact} vs {approx}");
    }

    #[test]
    fn constant_volume_cases() {
        let dims = [8, 8, 8];
        let v = vec![2.0; 512];
        assert_eq!(ssim3(&v, &v, dims, &SsimConfig::default()), 1.0);
        let w = vec![3.0; 512];
        assert_eq!(ssim3(&v, &w, dims, &SsimConfig::default()), 0.0);
    }

    #[test]
    fn window_larger_than_volume_is_clamped() {
        let dims = [4, 4, 4];
        let v = ramp_volume(dims);
        let s = ssim3(
            &v,
            &v,
            dims,
            &SsimConfig {
                window: 11,
                ..Default::default()
            },
        );
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_d_images() {
        let dims = [32, 32];
        let img: Vec<f64> = (0..1024).map(|i| ((i % 32) as f64 * 0.2).sin()).collect();
        let s_same = ssim2(&img, &img, dims, &SsimConfig::default());
        assert!((s_same - 1.0).abs() < 1e-12);
        let shifted: Vec<f64> = (0..1024)
            .map(|i| (((i + 5) % 32) as f64 * 0.2).sin())
            .collect();
        let s_shift = ssim2(&img, &shifted, dims, &SsimConfig::default());
        assert!(s_shift < 0.9, "shifted image too similar: {s_shift}");
    }

    #[test]
    fn rssim_inverts() {
        assert_eq!(rssim(1.0), 0.0);
        assert!((rssim(0.9999998) - 2e-7).abs() < 1e-12);
    }

    #[test]
    fn blocky_artifacts_hurt_rssim_more_than_psnr_suggests() {
        // Same RMSE, different structure: blocky (correlated) error vs
        // white noise. SSIM penalizes the structured one at least as much.
        let dims = [16, 16, 16];
        let v = ramp_volume(dims);
        let [nx, ny, _] = dims;
        let mut blocky = v.clone();
        for (n, val) in blocky.iter_mut().enumerate() {
            let i = n % nx;
            let j = (n / nx) % ny;
            let k = n / (nx * ny);
            // ±0.5 per 4³ block
            let sign = if ((i / 4) + (j / 4) + (k / 4)) % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            *val += 0.5 * sign;
        }
        let cfg = SsimConfig::exhaustive();
        let s = ssim3(&v, &blocky, dims, &cfg);
        assert!(s < 0.999, "blocky artifact not penalized: {s}");
    }
}
