//! LRU cache of decoded hierarchy arenas.
//!
//! Decoding a blob (parse artifact → decompress every level) dominates
//! request latency, so the server keeps recently served hierarchies decoded.
//! Entries are shared out as `Arc<DecodedEntry>` — workers stream from the
//! cache without copying cell data. Eviction is strict LRU by touch order,
//! bounded by an approximate byte budget. Evicted arenas whose `Arc` is no
//! longer shared are recycled into a level pool: the next decode of a
//! same-shaped hierarchy reuses the buffers via
//! `decompress_hierarchy_field_into` instead of reallocating.

use amrviz_amr::MultiFab;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One cached decode: everything a worker needs to stream a response.
#[derive(Debug)]
pub struct DecodedEntry {
    /// Compressor algorithm the blob was encoded with.
    pub algo: String,
    /// Field name from the artifact.
    pub field: String,
    /// Decoded cell data, one `MultiFab` per level (coarse → fine).
    pub levels: Vec<MultiFab>,
    /// Per-level count of fabs that were repaired from neighbor levels
    /// rather than decoded (`DecodePolicy::Degrade`). Nonzero ⇒ the
    /// response is flagged `FLAG_DEGRADED`.
    pub degraded_fabs: Vec<u32>,
}

impl DecodedEntry {
    /// Approximate resident bytes (cell data dominates).
    pub fn approx_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|mf| mf.num_cells() * std::mem::size_of::<f64>())
            .sum()
    }

    /// True when any fab on any level was repaired.
    pub fn is_degraded(&self) -> bool {
        self.degraded_fabs.iter().any(|&n| n > 0)
    }
}

struct Slot {
    recency: u64,
    bytes: usize,
    entry: Arc<DecodedEntry>,
}

struct CacheState {
    map: HashMap<u64, Slot>,
    tick: u64,
    bytes: usize,
    /// Evicted level vectors waiting to be reused as decode arenas.
    pool: Vec<Vec<MultiFab>>,
}

/// Thread-safe LRU keyed by blob content key.
pub struct ArenaCache {
    capacity_bytes: usize,
    state: Mutex<CacheState>,
}

impl ArenaCache {
    /// A cache bounded by `capacity_bytes` of decoded cell data.
    pub fn new(capacity_bytes: usize) -> ArenaCache {
        ArenaCache {
            capacity_bytes,
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
                pool: Vec::new(),
            }),
        }
    }

    /// Looks up `key`, refreshing its recency on hit.
    pub fn get(&self, key: u64) -> Option<Arc<DecodedEntry>> {
        let mut st = self.state.lock().unwrap();
        st.tick += 1;
        let tick = st.tick;
        match st.map.get_mut(&key) {
            Some(slot) => {
                slot.recency = tick;
                amrviz_obs::counter!("serve.cache_hit", 1);
                Some(Arc::clone(&slot.entry))
            }
            None => {
                amrviz_obs::counter!("serve.cache_miss", 1);
                None
            }
        }
    }

    /// Inserts a decoded entry, evicting least-recently-used entries until
    /// the byte budget holds. Returns the shared handle.
    pub fn insert(&self, key: u64, entry: DecodedEntry) -> Arc<DecodedEntry> {
        let bytes = entry.approx_bytes();
        let entry = Arc::new(entry);
        let mut st = self.state.lock().unwrap();
        st.tick += 1;
        let tick = st.tick;
        if let Some(old) = st.map.insert(
            key,
            Slot {
                recency: tick,
                bytes,
                entry: Arc::clone(&entry),
            },
        ) {
            st.bytes -= old.bytes;
            Self::recycle(&mut st.pool, old.entry);
        }
        st.bytes += bytes;
        while st.bytes > self.capacity_bytes && st.map.len() > 1 {
            let (&victim, _) = st
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.recency)
                .expect("nonempty map");
            // Never evict the entry we just inserted, even if oversized —
            // the caller is about to stream from it.
            if victim == key {
                break;
            }
            let slot = st.map.remove(&victim).expect("victim present");
            st.bytes -= slot.bytes;
            amrviz_obs::counter!("serve.cache_evicted", 1);
            Self::recycle(&mut st.pool, slot.entry);
        }
        entry
    }

    /// Hands out an evicted arena for reuse by
    /// `decompress_hierarchy_field_into` (empty when none are pooled).
    pub fn take_arena(&self) -> Vec<MultiFab> {
        self.state.lock().unwrap().pool.pop().unwrap_or_default()
    }

    /// `(entries, approx_bytes)` currently resident.
    pub fn stats(&self) -> (usize, usize) {
        let st = self.state.lock().unwrap();
        (st.map.len(), st.bytes)
    }

    fn recycle(pool: &mut Vec<Vec<MultiFab>>, entry: Arc<DecodedEntry>) {
        // Only reclaim buffers nobody is still streaming from.
        if let Ok(owned) = Arc::try_unwrap(entry) {
            if pool.len() < 4 {
                pool.push(owned.levels);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_amr::{Box3, BoxArray, MultiFab};

    fn entry(cells: usize) -> DecodedEntry {
        let ba = BoxArray::single(Box3::from_dims(cells, 1, 1));
        DecodedEntry {
            algo: "szlr".into(),
            field: "density".into(),
            levels: vec![MultiFab::from_fn(&ba, |iv| iv[0] as f64)],
            degraded_fabs: vec![0],
        }
    }

    #[test]
    fn lru_evicts_oldest_and_recycles_arena() {
        // Capacity fits two 64-cell entries (512 B each), not three.
        let cache = ArenaCache::new(2 * 64 * 8);
        cache.insert(1, entry(64));
        cache.insert(2, entry(64));
        assert!(cache.get(1).is_some(), "refresh key 1");
        cache.insert(3, entry(64));
        // Key 2 was least recently used.
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        let (n, bytes) = cache.stats();
        assert_eq!(n, 2);
        assert!(bytes <= 2 * 64 * 8);
        // The evicted entry's arena is available for reuse.
        let arena = cache.take_arena();
        assert_eq!(arena.len(), 1);
        assert_eq!(arena[0].num_cells(), 64);
        assert!(cache.take_arena().is_empty(), "pool drains");
    }

    #[test]
    fn shared_entries_are_not_recycled() {
        let cache = ArenaCache::new(64 * 8);
        let held = cache.insert(1, entry(64));
        cache.insert(2, entry(64)); // evicts 1, but `held` is still live
        assert!(cache.get(1).is_none());
        assert!(cache.take_arena().is_empty(), "live Arc must not be pooled");
        drop(held);
    }

    #[test]
    fn oversized_insert_still_serves() {
        let cache = ArenaCache::new(8); // absurdly small
        let e = cache.insert(7, entry(64));
        assert_eq!(e.levels.len(), 1);
        assert!(cache.get(7).is_some(), "just-inserted entry survives");
    }
}
