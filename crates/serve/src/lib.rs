//! Fault-tolerant progressive serving for compressed AMR hierarchies.
//!
//! This crate turns the repo's compression pipeline into a small service:
//! a blocking-worker TCP server streams *decoded* hierarchies coarse-level
//! first over a length-prefixed binary protocol, backed by a
//! crash-consistent content-addressed blob store and an LRU cache of
//! decoded arenas. The interesting part is the failure model:
//!
//! - **Deadlines** ride the decode path itself: [`amrviz_codec::DecodeBudget`]
//!   carries an optional wall-clock deadline that the codec inner loops
//!   check cooperatively, so a slow decode is abandoned mid-loop instead of
//!   holding a worker past its budget. Near-deadline requests degrade to a
//!   coarse-only response; expired ones get a typed `Timeout`.
//! - **Backpressure** is explicit: a bounded admission queue sheds the
//!   newest connection with a typed `RetryLater` + retry-after hint.
//! - **Corruption** is typed end to end: the store quarantines blobs that
//!   fail their content hash; damaged fabs inside a parseable artifact are
//!   repaired under `DecodePolicy::Degrade` and flagged in the response
//!   header — a response never silently passes off damaged data as clean.
//! - The whole stack is **chaos-tested**: [`torture`] runs a real server
//!   behind a deterministic fault-injecting proxy ([`chaos`]) and asserts
//!   the contract (no panics, no post-deadline data frames, corrupt blobs
//!   degraded-or-typed, bounded peak memory).
//!
//! Module map: [`proto`] (wire protocol) · [`store`] (blob store) ·
//! [`artifact`] (self-contained blob format) · [`cache`] (decoded-arena
//! LRU) · [`server`] (worker pool) · [`client`] (measuring client) ·
//! [`chaos`] (fault proxy) · [`loadgen`] (load generator) · [`torture`]
//! (invariant harness).

pub mod artifact;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod loadgen;
pub mod proto;
pub mod server;
pub mod store;
pub mod telemetry;
pub mod torture;

pub use artifact::{compressor_for, decode_artifact, encode_artifact, Artifact};
pub use cache::{ArenaCache, DecodedEntry};
pub use chaos::{ChaosConfig, ChaosProxy};
pub use client::{exchange, ClientConfig, Exchange, Outcome};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use proto::{Op, Request, RespHeader, Status};
pub use server::{start, ServeConfig, ServerHandle, StatsSnapshot};
pub use store::{BlobStore, StoreError};
pub use telemetry::{ReqTelemetry, StageTimes, STATS_SCHEMA};
pub use torture::{ServeTortureConfig, ServeTortureReport};
