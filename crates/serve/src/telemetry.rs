//! Request-centric serve telemetry: per-status windowed latency, stage
//! timing breakdowns, tail exemplars, and the in-band STATS snapshot.
//!
//! The server answers `Op::Stats` from this module alone — it is
//! deliberately independent of the global obs recorder's enable state, so
//! an operator gets live telemetry even from a server started without
//! `--journal`/`--metrics-out`. (When the recorder *is* enabled, the same
//! samples are mirrored into it so Prometheus exposition sees them too.)
//!
//! Ring geometry is private to serving: 720 slots × 5 s = one hour of
//! coverage, enough for the 1 h SLO burn window, regardless of how the
//! global recorder's window is configured.

use crate::proto::{Status, PROTO_VERSION};
use crate::server::StatsSnapshot;
use amrviz_obs::exemplar::{Exemplar, Reservoir};
use amrviz_obs::expose::hist_stats_json;
use amrviz_obs::slo::{evaluate, SloReport, SloSpec, WindowReading};
use amrviz_obs::window::WindowedHistogram;
use std::sync::Mutex;
use std::time::Instant;

/// STATS snapshot schema identifier.
pub const STATS_SCHEMA: &str = "amrviz-serve-stats-v1";

/// Telemetry ring slot width in seconds.
pub const SLOT_SECS: u64 = 5;

/// Telemetry ring size: one hour of coverage at [`SLOT_SECS`].
pub const SLOTS: usize = 720;

/// Evaluation windows for the SLO burn math: fast/noisy and slow/stable.
pub const WINDOWS: [(&str, u64); 2] = [("5m", 300), ("1h", 3600)];

/// Tail exemplars retained.
pub const EXEMPLAR_CAP: usize = 8;

/// Request stage names, in pipeline order. The taxonomy every aggregated
/// view and journal line shares.
pub const STAGE_NAMES: [&str; 5] = [
    "queue_wait",
    "store_read",
    "structure_validate",
    "decode",
    "write",
];

/// Statuses counted as *good* for availability: the client got usable data.
fn is_good(status: Status) -> bool {
    matches!(status, Status::Ok | Status::Degraded)
}

/// Statuses that count toward the SLO at all. Client-attributable errors
/// (unknown key, malformed request) never burn the server's error budget —
/// the same rule as excluding 4xx from HTTP availability.
fn slo_counts(status: Status) -> bool {
    !matches!(status, Status::NotFound | Status::BadRequest)
}

/// Per-request stage timing breakdown in microseconds. `None` means the
/// stage never ran for this request — a cache hit skips `store_read`,
/// `structure_validate` and `decode` entirely, which is itself signal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Admission queue to worker pickup.
    pub queue_wait_us: Option<u64>,
    /// Blob store read (cache miss only).
    pub store_read_us: Option<u64>,
    /// Artifact structural decode + validation (cache miss only).
    pub structure_validate_us: Option<u64>,
    /// Field decompression into the arena (cache miss only).
    pub decode_us: Option<u64>,
    /// Cumulative gated socket writes.
    pub write_us: Option<u64>,
}

impl StageTimes {
    /// Present stages as `(name, us)` pairs in [`STAGE_NAMES`] order.
    pub fn as_pairs(&self) -> Vec<(&'static str, u64)> {
        [
            self.queue_wait_us,
            self.store_read_us,
            self.structure_validate_us,
            self.decode_us,
            self.write_us,
        ]
        .iter()
        .zip(STAGE_NAMES)
        .filter_map(|(v, name)| v.map(|us| (name, us)))
        .collect()
    }

    /// Compact JSON object of the present stages (for the journal line).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, us)) in self.as_pairs().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{us}"));
        }
        out.push('}');
        out
    }

    /// Adds `us` to the cumulative write stage.
    pub fn add_write(&mut self, us: u64) {
        self.write_us = Some(self.write_us.unwrap_or(0) + us);
    }
}

/// The server's request telemetry: windowed per-status latency, windowed
/// per-stage timings, and the tail-exemplar reservoir. One instance per
/// server, shared by all workers.
pub struct ReqTelemetry {
    started: Instant,
    /// Latency histograms indexed by `Status::code()`.
    latency: Mutex<Vec<WindowedHistogram>>,
    /// Stage histograms indexed by [`STAGE_NAMES`] position.
    stages: Mutex<Vec<WindowedHistogram>>,
    exemplars: Mutex<Reservoir>,
    spec: SloSpec,
}

/// Number of `Status` variants (codes 0..N_STATUS are all valid).
const N_STATUS: usize = 9;

impl ReqTelemetry {
    pub fn new(spec: SloSpec) -> Self {
        ReqTelemetry {
            started: Instant::now(),
            latency: Mutex::new(
                (0..N_STATUS)
                    .map(|_| WindowedHistogram::with_slots(SLOTS))
                    .collect(),
            ),
            stages: Mutex::new(
                (0..STAGE_NAMES.len())
                    .map(|_| WindowedHistogram::with_slots(SLOTS))
                    .collect(),
            ),
            exemplars: Mutex::new(Reservoir::new(EXEMPLAR_CAP)),
            spec,
        }
    }

    /// Declared SLO.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Milliseconds since the server started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Current telemetry slot id.
    fn now_slot(&self) -> u64 {
        self.started.elapsed().as_secs() / SLOT_SECS
    }

    /// Records one finished request. `stages` is `None` for ops with no
    /// stage breakdown (ping/list/shed). Mirrored into the global recorder
    /// when it is enabled, so `--metrics-out` exposition sees the same
    /// samples.
    pub fn record(
        &self,
        status: Status,
        total_us: u64,
        stages: Option<&StageTimes>,
        trace: u64,
        key: u64,
    ) {
        self.record_at(self.now_slot(), status, total_us, stages, trace, key);
    }

    /// [`ReqTelemetry::record`] with an explicit slot id — the
    /// deterministic entry point unit tests drive.
    pub fn record_at(
        &self,
        slot: u64,
        status: Status,
        total_us: u64,
        stages: Option<&StageTimes>,
        trace: u64,
        key: u64,
    ) {
        self.latency.lock().unwrap()[status.code() as usize].record(slot, total_us);
        if let Some(st) = stages {
            let mut hs = self.stages.lock().unwrap();
            for (name, us) in st.as_pairs() {
                let idx = STAGE_NAMES.iter().position(|n| *n == name).unwrap();
                hs[idx].record(slot, us);
            }
        }
        if amrviz_obs::is_enabled() {
            amrviz_obs::histogram_record(status_hist_name(status), total_us);
            if let Some(st) = stages {
                for (name, us) in st.as_pairs() {
                    amrviz_obs::histogram_record(stage_hist_name(name), us);
                }
            }
        }
        // Tail reservoir: only requests that carried a stage breakdown
        // (GETs) are diagnosable, so only they become exemplars.
        if let Some(st) = stages {
            let mut res = self.exemplars.lock().unwrap();
            if total_us > res.min_retained_us() {
                res.offer(Exemplar {
                    trace,
                    total_us,
                    label: format!("{} key={key:016x}", status.name()),
                    stages: st
                        .as_pairs()
                        .iter()
                        .map(|(n, us)| (n.to_string(), *us))
                        .collect(),
                });
            }
        }
    }

    /// Multi-window SLO evaluation over the recorded request stream.
    pub fn slo_report(&self) -> SloReport {
        self.slo_report_at(self.now_slot())
    }

    /// [`ReqTelemetry::slo_report`] at an explicit slot (tests).
    pub fn slo_report_at(&self, now_slot: u64) -> SloReport {
        let lat = self.latency.lock().unwrap();
        let mut readings = Vec::new();
        for (label, secs) in WINDOWS {
            let k = (secs / SLOT_SECS).max(1);
            let mut good = 0u64;
            let mut total = 0u64;
            let mut merged = amrviz_obs::hist::Histogram::new();
            for (code, h) in lat.iter().enumerate() {
                let Some(status) = Status::from_code(code as u8) else {
                    continue;
                };
                if !slo_counts(status) {
                    continue;
                }
                let w = h.window_merged(now_slot, k);
                let n = w.count();
                total += n;
                if is_good(status) {
                    good += n;
                }
                merged.merge(&w);
            }
            readings.push(WindowReading::from_histogram(
                label, secs, good, total, &merged,
            ));
        }
        evaluate(&self.spec, &readings)
    }

    /// The versioned STATS snapshot. `snap` and the cache numbers come from
    /// the server (they live outside this module); everything windowed
    /// comes from the telemetry rings.
    pub fn snapshot_json(
        &self,
        snap: &StatsSnapshot,
        queue_depth: usize,
        workers: usize,
        cache_entries: usize,
        cache_bytes: usize,
        cache_budget_bytes: usize,
    ) -> String {
        let now_slot = self.now_slot();
        let slo = self.slo_report_at(now_slot);
        let w5m = (WINDOWS[0].1 / SLOT_SECS).max(1);

        // Health verdict: invariant violations or an SLO breach degrade it.
        let health = if snap.panics > 0 || snap.post_deadline_responses > 0 || slo.breached() {
            "degraded"
        } else {
            "ok"
        };

        let mut out = format!(
            "{{\"schema\":\"{STATS_SCHEMA}\",\"proto_version\":{PROTO_VERSION},\
             \"uptime_ms\":{},\"health\":\"{health}\"",
            self.uptime_ms()
        );
        out.push_str(&format!(",\"requests\":{}", snap.to_json_line()));
        out.push_str(&format!(
            ",\"queue_depth\":{queue_depth},\"workers\":{workers}"
        ));
        out.push_str(&format!(
            ",\"cache\":{{\"entries\":{cache_entries},\"bytes\":{cache_bytes},\
             \"budget_bytes\":{cache_budget_bytes},\"hits\":{},\"misses\":{}}}",
            snap.cache_hits, snap.cache_misses
        ));

        // Per-status latency: lifetime + trailing-5m views, nonzero only.
        out.push_str(",\"latency_us\":{");
        {
            let lat = self.latency.lock().unwrap();
            let mut first = true;
            for (code, h) in lat.iter().enumerate() {
                if h.lifetime.count() == 0 {
                    continue;
                }
                let Some(status) = Status::from_code(code as u8) else {
                    continue;
                };
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\"{}\":{{\"lifetime\":{},\"w5m\":{}}}",
                    status.name(),
                    hist_stats_json(&h.lifetime),
                    hist_stats_json(&h.window_merged(now_slot, w5m)),
                ));
            }
        }
        out.push('}');

        // Per-stage timing: same shape, keyed by the stage taxonomy.
        out.push_str(",\"stages_us\":{");
        {
            let hs = self.stages.lock().unwrap();
            let mut first = true;
            for (idx, h) in hs.iter().enumerate() {
                if h.lifetime.count() == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\"{}\":{{\"lifetime\":{},\"w5m\":{}}}",
                    STAGE_NAMES[idx],
                    hist_stats_json(&h.lifetime),
                    hist_stats_json(&h.window_merged(now_slot, w5m)),
                ));
            }
        }
        out.push('}');

        out.push_str(&format!(",\"slo\":{}", slo.to_json()));
        out.push_str(&format!(
            ",\"exemplars\":{}}}",
            self.exemplars.lock().unwrap().to_json()
        ));
        out
    }
}

fn status_hist_name(status: Status) -> &'static str {
    match status {
        Status::Ok => "serve.latency_us.ok",
        Status::Degraded => "serve.latency_us.degraded",
        Status::RetryLater => "serve.latency_us.retry_later",
        Status::NotFound => "serve.latency_us.not_found",
        Status::Corrupt => "serve.latency_us.corrupt",
        Status::Timeout => "serve.latency_us.timeout",
        Status::BadRequest => "serve.latency_us.bad_request",
        Status::ShuttingDown => "serve.latency_us.shutting_down",
        Status::Internal => "serve.latency_us.internal",
    }
}

fn stage_hist_name(stage: &str) -> &'static str {
    match stage {
        "queue_wait" => "serve.stage.queue_wait_us",
        "store_read" => "serve.stage.store_read_us",
        "structure_validate" => "serve.stage.structure_validate_us",
        "decode" => "serve.stage.decode_us",
        _ => "serve.stage.write_us",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stages(decode: u64, write: u64) -> StageTimes {
        StageTimes {
            queue_wait_us: Some(3),
            store_read_us: None,
            structure_validate_us: None,
            decode_us: Some(decode),
            write_us: Some(write),
        }
    }

    #[test]
    fn stage_times_pairs_and_json_skip_absent() {
        let st = stages(500, 20);
        let pairs = st.as_pairs();
        assert_eq!(
            pairs,
            vec![("queue_wait", 3), ("decode", 500), ("write", 20)],
            "absent stages are skipped, order follows the taxonomy"
        );
        let j = st.to_json();
        assert_eq!(j, "{\"queue_wait\":3,\"decode\":500,\"write\":20}");
        assert_eq!(StageTimes::default().to_json(), "{}");
        let mut w = StageTimes::default();
        w.add_write(5);
        w.add_write(7);
        assert_eq!(w.write_us, Some(12));
    }

    #[test]
    fn slo_windows_see_only_their_slots() {
        let t = ReqTelemetry::new(SloSpec::parse("avail>99").unwrap());
        // Slot 0: a burst of failures. 700 slots later (past the 5m window,
        // inside the 1h window): all good.
        for _ in 0..50 {
            t.record_at(0, Status::Timeout, 1000, None, 0, 0);
            t.record_at(0, Status::Ok, 100, None, 0, 0);
        }
        for _ in 0..100 {
            t.record_at(119, Status::Ok, 100, None, 0, 0);
        }
        let r = t.slo_report_at(119);
        // 5m window (60 slots ending at 119): only the good burst.
        let w5 = &r.windows[0];
        assert_eq!(w5.total, 100);
        assert_eq!(w5.good, 100);
        assert!(!w5.avail_exceeded);
        // 1h window sees both bursts: 150 good of 200.
        let w1h = &r.windows[1];
        assert_eq!(w1h.total, 200);
        assert_eq!(w1h.good, 150);
        assert!(w1h.avail_exceeded, "25% bad over a 1% budget");
        // AND semantics: short window recovered, so no breach.
        assert!(!r.breached());
    }

    #[test]
    fn snapshot_json_is_valid_and_carries_sections() {
        let t = ReqTelemetry::new(SloSpec::default());
        t.record_at(1, Status::Ok, 1500, Some(&stages(900, 40)), 0xABC, 7);
        t.record_at(
            1,
            Status::Timeout,
            90_000,
            Some(&stages(88_000, 1)),
            0xDEF,
            8,
        );
        let snap = StatsSnapshot {
            requests: 2,
            ok: 1,
            degraded: 0,
            shed: 0,
            not_found: 0,
            corrupt: 0,
            timeout: 1,
            bad_request: 0,
            io_errors: 0,
            panics: 0,
            post_deadline_responses: 0,
            deadline_aborts: 0,
            coarse_only: 0,
            cache_hits: 1,
            cache_misses: 1,
        };
        let j = t.snapshot_json(&snap, 0, 2, 1, 4096, 1 << 20);
        let doc = amrviz_json::Json::parse(&j).expect("snapshot json parses");
        assert_eq!(doc.get("schema").unwrap().as_str().unwrap(), STATS_SCHEMA);
        assert!(doc.get("health").is_some());
        assert!(doc.get("slo").is_some());
        let lat = doc.get("latency_us").unwrap();
        assert!(lat.get("ok").is_some() && lat.get("timeout").is_some());
        let st = doc.get("stages_us").unwrap();
        assert!(st.get("decode").is_some() && st.get("write").is_some());
        assert!(
            st.get("decode")
                .unwrap()
                .get("w5m")
                .unwrap()
                .get("p99")
                .is_some(),
            "stage timings carry windowed percentiles"
        );
        // The slow request is retained as an exemplar with its trace id.
        let ex = doc.get("exemplars").unwrap().as_arr().unwrap();
        assert!(!ex.is_empty());
        assert_eq!(ex[0].get("trace").unwrap().as_str().unwrap(), "def");
        assert_eq!(ex[0].get("total_us").unwrap().as_u64().unwrap(), 90_000);
    }

    #[test]
    fn health_degrades_on_invariant_violation() {
        let t = ReqTelemetry::new(SloSpec::default());
        let mut snap = StatsSnapshot {
            requests: 0,
            ok: 0,
            degraded: 0,
            shed: 0,
            not_found: 0,
            corrupt: 0,
            timeout: 0,
            bad_request: 0,
            io_errors: 0,
            panics: 0,
            post_deadline_responses: 0,
            deadline_aborts: 0,
            coarse_only: 0,
            cache_hits: 0,
            cache_misses: 0,
        };
        let j = t.snapshot_json(&snap, 0, 1, 0, 0, 0);
        assert!(j.contains("\"health\":\"ok\""));
        snap.post_deadline_responses = 1;
        let j = t.snapshot_json(&snap, 0, 1, 0, 0, 0);
        assert!(j.contains("\"health\":\"degraded\""));
    }
}
