//! `amrviz loadgen`: a closed-loop load generator with paced arrivals and
//! jittered exponential backoff.
//!
//! Each client thread issues one logical request at a time: pick a key,
//! send, and on a retryable outcome (shed, timeout, reset, cut stream) back
//! off exponentially with seeded jitter before retrying — the standard
//! thundering-herd countermeasure, made deterministic per seed for CI. Every
//! logical request's end-to-end latency (including retries) lands in a
//! histogram; the report carries p50/p99 and per-outcome counts.

use crate::client::{exchange, ClientConfig, Exchange};
use crate::proto::{Op, Request};
use amrviz_obs::hist::Histogram;
use amrviz_obs::journal;
use amrviz_rng::Rng;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Load shape and retry policy.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server (or chaos proxy) address.
    pub addr: SocketAddr,
    /// Concurrent client threads.
    pub clients: usize,
    /// Target request rate *per client*, requests/second. 0 = as fast as
    /// the closed loop allows.
    pub rps: f64,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Deadline budget stamped on every request.
    pub deadline_ms: u32,
    /// Client max level request.
    pub max_level: u8,
    /// Retries per logical request on retryable outcomes.
    pub max_retries: u32,
    /// Base backoff; attempt k sleeps `base * 2^k * jitter(0.5..1.5)`.
    pub backoff_base: Duration,
    /// Determinism seed (forked per client thread).
    pub seed: u64,
    /// Socket/grace knobs.
    pub client: ClientConfig,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            clients: 4,
            rps: 20.0,
            duration: Duration::from_secs(5),
            deadline_ms: 500,
            max_level: 0xFF,
            max_retries: 3,
            backoff_base: Duration::from_millis(20),
            seed: 1,
            client: ClientConfig::default(),
        }
    }
}

/// Aggregated run outcome.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Logical requests (retries collapse into their request).
    pub requests: u64,
    /// Wire attempts (>= requests).
    pub attempts: u64,
    pub retries: u64,
    /// Final-outcome counts by name.
    pub outcomes: BTreeMap<&'static str, u64>,
    /// Per-outcome end-to-end latency distributions (log-bucketed, so
    /// per-outcome p50/p99 come from the same machinery the server uses).
    pub outcome_latency: BTreeMap<&'static str, Histogram>,
    /// Frames observed after deadline+grace across the whole run.
    pub late_frames: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    /// Fraction of logical requests whose final outcome carried data.
    pub success_rate: f64,
}

impl LoadgenReport {
    /// One-line JSON for the `LOADGEN` stdout marker and CI greps.
    pub fn to_json_line(&self) -> String {
        let mut outcomes = String::new();
        for (i, (name, n)) in self.outcomes.iter().enumerate() {
            if i > 0 {
                outcomes.push(',');
            }
            outcomes.push_str(&format!("\"{name}\":{n}"));
        }
        let mut lat = String::new();
        for (i, (name, h)) in self.outcome_latency.iter().enumerate() {
            if i > 0 {
                lat.push(',');
            }
            lat.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"p50_us\":{},\"p99_us\":{}}}",
                h.count(),
                h.percentile(50.0).round() as u64,
                h.percentile(99.0).round() as u64,
            ));
        }
        format!(
            concat!(
                "{{\"requests\":{},\"attempts\":{},\"retries\":{},",
                "\"late_frames\":{},\"p50_us\":{},\"p99_us\":{},",
                "\"success_rate\":{:.4},\"outcomes\":{{{}}},",
                "\"outcome_latency_us\":{{{}}}}}"
            ),
            self.requests,
            self.attempts,
            self.retries,
            self.late_frames,
            self.p50_us,
            self.p99_us,
            self.success_rate,
            outcomes,
            lat,
        )
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// One logical request with retry/backoff. Returns the final exchange, the
/// number of wire attempts made, and total elapsed.
fn logical_request(
    addr: SocketAddr,
    key: u64,
    cfg: &LoadgenConfig,
    rng: &mut Rng,
) -> (Exchange, u32, Duration) {
    let t0 = Instant::now();
    let mut attempt = 0u32;
    loop {
        let req = Request {
            op: Op::Get,
            trace: rng.next_u64() | 1, // nonzero: 0 means "no trace"
            key,
            deadline_ms: cfg.deadline_ms,
            max_level: cfg.max_level,
        };
        let ex = exchange(addr, &req, &cfg.client);
        {
            // Same trace as the request, so `amrviz stats` can stitch this
            // client line to the server's line for the exchange.
            let _scope = amrviz_obs::context_scope(amrviz_obs::TraceContext {
                parent: 0,
                trace: req.trace,
                sampled: true,
            });
            journal::emit(
                "serve",
                &[
                    ("role", "\"client\"".into()),
                    ("outcome", format!("\"{}\"", ex.outcome.name())),
                    ("attempt", attempt.to_string()),
                    ("elapsed_us", ex.elapsed.as_micros().to_string()),
                    ("late_frames", ex.late_frames.to_string()),
                ],
            );
        }
        attempt += 1;
        if !ex.outcome.is_retryable() || attempt > cfg.max_retries {
            return (ex, attempt, t0.elapsed());
        }
        // Jittered exponential backoff: 2^k spread, ±50% seeded jitter.
        let scale = (1u64 << attempt.min(10)) as f64 * (0.5 + rng.f64());
        let backoff = cfg.backoff_base.mul_f64(scale);
        std::thread::sleep(backoff.min(Duration::from_millis(500)));
    }
}

/// Runs the generator against `keys` (requests cycle through them
/// rng-uniformly). Blocks for `cfg.duration` plus stragglers.
pub fn run(cfg: &LoadgenConfig, keys: &[u64]) -> LoadgenReport {
    assert!(!keys.is_empty(), "loadgen needs at least one key");
    let late_total = AtomicU64::new(0);
    let attempts_total = AtomicU64::new(0);
    let base = Rng::seed(cfg.seed);
    let deadline = Instant::now() + cfg.duration;
    let interarrival = if cfg.rps > 0.0 {
        Some(Duration::from_secs_f64(1.0 / cfg.rps))
    } else {
        None
    };

    let per_thread: Vec<(Vec<u64>, Vec<&'static str>)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..cfg.clients.max(1) {
            let late_total = &late_total;
            let attempts_total = &attempts_total;
            let mut rng = base.fork(c as u64 + 1);
            handles.push(s.spawn(move || {
                let mut latencies_us = Vec::new();
                let mut outcomes = Vec::new();
                while Instant::now() < deadline {
                    let key = keys[rng.below(keys.len() as u64) as usize];
                    let (ex, attempts, elapsed) = logical_request(cfg.addr, key, cfg, &mut rng);
                    late_total.fetch_add(ex.late_frames, Ordering::Relaxed);
                    attempts_total.fetch_add(attempts as u64, Ordering::Relaxed);
                    latencies_us.push(elapsed.as_micros() as u64);
                    amrviz_obs::histogram!("loadgen.latency_us", elapsed.as_micros() as f64);
                    outcomes.push(ex.outcome.name());
                    if let Some(gap) = interarrival {
                        // Jittered pacing (0.5..1.5×) so client fleets don't
                        // phase-lock into synchronized bursts.
                        std::thread::sleep(gap.mul_f64(0.5 + rng.f64()));
                    }
                }
                (latencies_us, outcomes)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut all_latencies = Vec::new();
    let mut outcome_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut outcome_latency: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    let mut successes = 0u64;
    let mut requests = 0u64;
    for (lat, outs) in per_thread {
        for (us, name) in lat.iter().zip(outs.iter().copied()) {
            outcome_latency.entry(name).or_default().record(*us);
        }
        all_latencies.extend(lat);
        for name in outs {
            *outcome_counts.entry(name).or_insert(0) += 1;
            requests += 1;
            if matches!(name, "ok" | "degraded" | "cut_short") {
                successes += 1;
            }
        }
    }
    all_latencies.sort_unstable();
    let attempts = attempts_total.load(Ordering::Relaxed);
    LoadgenReport {
        requests,
        attempts,
        retries: attempts.saturating_sub(requests),
        outcomes: outcome_counts,
        outcome_latency,
        late_frames: late_total.load(Ordering::Relaxed),
        p50_us: percentile(&all_latencies, 0.50),
        p99_us: percentile(&all_latencies, 0.99),
        success_rate: if requests == 0 {
            0.0
        } else {
            successes as f64 / requests as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_expected_ranks() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 51); // round((99)*0.5)=50 → v[50]=51
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
