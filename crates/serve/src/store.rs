//! Crash-consistent content-addressed blob store.
//!
//! Blobs are keyed by the FNV-1a hash of their bytes and stored one file
//! per blob (`<key:016x>.blob`). The write path is tmp+rename: bytes land
//! in a hidden temp file, are fsynced, and only then renamed into place —
//! a crash mid-write leaves a stray temp file, never a half-written blob
//! under a valid name. The read path re-hashes the file and compares
//! against the key (the filename *is* the checksum); a mismatch means
//! on-disk corruption, and the blob is **quarantined** — renamed to
//! `<key>.quarantined`, not deleted — so the corrupt bytes stay available
//! for forensics while the key stops resolving.

use amrviz_codec::fnv1a_64;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Typed store failures; the serve layer maps these onto response statuses
/// (`NotFound` → `Status::NotFound`, `Corrupt` → `Status::Corrupt`).
#[derive(Debug)]
pub enum StoreError {
    /// No blob under that key.
    NotFound,
    /// Blob bytes no longer hash to the key; the file was quarantined.
    Corrupt {
        /// Where the corrupt bytes now live.
        quarantined: PathBuf,
    },
    /// Underlying filesystem failure.
    Io(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound => write!(f, "blob not found"),
            StoreError::Corrupt { quarantined } => {
                write!(f, "blob corrupt, quarantined at {}", quarantined.display())
            }
            StoreError::Io(e) => write!(f, "store i/o: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Monotonic temp-file nonce so concurrent writers never collide.
static TMP_NONCE: AtomicU64 = AtomicU64::new(0);

/// A directory of content-addressed blobs.
#[derive(Debug)]
pub struct BlobStore {
    dir: PathBuf,
}

impl BlobStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<BlobStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::Io(e.to_string()))?;
        Ok(BlobStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// On-disk path for `key`.
    pub fn path_of(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.blob"))
    }

    fn quarantine_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.quarantined"))
    }

    /// Stores `bytes`, returning their content key. Idempotent: an existing
    /// blob under the same key is left untouched (same key ⇒ same bytes).
    pub fn put(&self, bytes: &[u8]) -> Result<u64, StoreError> {
        let key = fnv1a_64(bytes);
        let dst = self.path_of(key);
        if dst.exists() {
            return Ok(key);
        }
        let nonce = TMP_NONCE.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".tmp-{key:016x}-{}-{nonce}", std::process::id()));
        let write = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            // fsync before rename: the rename must never become visible
            // ahead of the data it names.
            f.sync_all()?;
            std::fs::rename(&tmp, &dst)
        })();
        if let Err(e) = write {
            let _ = std::fs::remove_file(&tmp);
            return Err(StoreError::Io(e.to_string()));
        }
        Ok(key)
    }

    /// Fetches and *verifies* the blob under `key`. A checksum mismatch
    /// quarantines the file and reports `Corrupt`; the key then reads as
    /// `NotFound` until re-`put`.
    pub fn get(&self, key: u64) -> Result<Vec<u8>, StoreError> {
        let path = self.path_of(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(StoreError::NotFound),
            Err(e) => return Err(StoreError::Io(e.to_string())),
        };
        if fnv1a_64(&bytes) != key {
            let q = self.quarantine_path(key);
            // Quarantine, never delete: the corrupted bytes are evidence.
            let _ = std::fs::rename(&path, &q);
            amrviz_obs::counter!("serve.store_quarantined", 1);
            return Err(StoreError::Corrupt { quarantined: q });
        }
        Ok(bytes)
    }

    /// All resolvable blob keys, sorted (deterministic listing order).
    pub fn list(&self) -> Result<Vec<u64>, StoreError> {
        let mut keys = Vec::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|e| StoreError::Io(e.to_string()))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::Io(e.to_string()))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(hex) = name.strip_suffix(".blob") {
                if let Ok(key) = u64::from_str_radix(hex, 16) {
                    keys.push(key);
                }
            }
        }
        keys.sort_unstable();
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> BlobStore {
        let dir = std::env::temp_dir().join(format!("amrviz_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        BlobStore::open(dir).unwrap()
    }

    #[test]
    fn put_get_roundtrip_content_addressed() {
        let store = temp_store("rt");
        let key = store.put(b"hello blobs").unwrap();
        assert_eq!(key, fnv1a_64(b"hello blobs"));
        assert_eq!(store.get(key).unwrap(), b"hello blobs");
        // Idempotent re-put.
        assert_eq!(store.put(b"hello blobs").unwrap(), key);
        assert_eq!(store.list().unwrap(), vec![key]);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_key_is_not_found() {
        let store = temp_store("nf");
        assert!(matches!(store.get(0xDEAD), Err(StoreError::NotFound)));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_blob_is_quarantined_not_deleted() {
        let store = temp_store("q");
        let key = store.put(b"precious bytes").unwrap();
        // Corrupt the file in place behind the store's back.
        let path = store.path_of(key);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        match store.get(key) {
            Err(StoreError::Corrupt { quarantined }) => {
                assert!(quarantined.exists(), "quarantined file must survive");
                assert_eq!(std::fs::read(&quarantined).unwrap(), bytes);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The key no longer resolves, and the listing drops it.
        assert!(matches!(store.get(key), Err(StoreError::NotFound)));
        assert!(store.list().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
