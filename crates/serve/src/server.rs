//! The `amrviz serve` TCP server: blocking worker pool, bounded admission
//! queue, per-request deadline budgets, graceful drain.
//!
//! Robustness contract (chaos-tested by [`crate::torture`]):
//!
//! - **No panic escapes.** Each connection runs under `catch_unwind`; a
//!   panicking request is counted and the connection dropped, the pool
//!   keeps serving.
//! - **No data frame is decided at/after its deadline.** Every data-frame
//!   write goes through one gated choke point that samples the clock
//!   *before* writing; an expired deadline aborts the stream (counted in
//!   `deadline_aborts`) instead. The stream then lacks its `END` frame —
//!   the client's received prefix is still a valid progressive result.
//!   `post_deadline_responses` measures violations of this invariant and
//!   must stay 0.
//! - **Overload sheds, never queues unboundedly.** The accept thread keeps
//!   the work queue bounded; beyond it, connections get a typed
//!   `RetryLater` + retry-after hint (drop-newest) rather than waiting.
//! - **Corruption degrades or errors, never lies.** A quarantined blob is
//!   `Corrupt`; a blob whose fabs partially fail decodes under
//!   `DecodePolicy::Degrade` and is served flagged `FLAG_DEGRADED`.

use crate::artifact::{compressor_for, decode_artifact};
use crate::cache::{ArenaCache, DecodedEntry};
use crate::proto::{
    self, EndFrame, Op, Request, RespHeader, Status, FLAG_COARSE_ONLY, FLAG_DEGRADED,
    MAX_REQUEST_FRAME,
};
use crate::store::{BlobStore, StoreError};
use crate::telemetry::{ReqTelemetry, StageTimes};
use amrviz_codec::DecodeBudget;
use amrviz_compress::{decompress_hierarchy_field_into, AmrCodecConfig, DecodePolicy};
use amrviz_obs::slo::SloSpec;
use amrviz_obs::{context_scope, journal, TraceContext};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server configuration. `Default` is sized for tests and smoke runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Blob store directory.
    pub store_dir: PathBuf,
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Bounded admission queue depth; beyond this, shed with `RetryLater`.
    pub queue_depth: usize,
    /// Decoded-arena cache budget in bytes.
    pub cache_bytes: usize,
    /// Cap on client-requested deadlines.
    pub max_deadline_ms: u32,
    /// Per-socket read/write timeout (a stalled or chaos-delayed peer can
    /// hold a worker at most this long per syscall).
    pub io_timeout_ms: u64,
    /// Retry-after hint handed to shed clients.
    pub retry_after_ms: u32,
    /// When the remaining deadline budget falls below this fraction at
    /// stream-planning time, serve only the coarse level.
    pub coarse_only_frac: f64,
    /// Stop accepting and drain after this long (None = run until `stop`).
    pub shutdown_after: Option<Duration>,
    /// Declared service-level objectives, evaluated over 5 m/1 h burn
    /// windows and surfaced in STATS snapshots + `slo` journal events.
    pub slo: SloSpec,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            store_dir: PathBuf::from("serve_store"),
            workers: 2,
            queue_depth: 32,
            cache_bytes: 256 << 20,
            max_deadline_ms: 10_000,
            io_timeout_ms: 2_000,
            retry_after_ms: 50,
            coarse_only_frac: 0.25,
            shutdown_after: None,
            slo: SloSpec::default(),
        }
    }
}

/// Monotonic counters shared by all server threads.
#[derive(Debug, Default)]
pub struct ServeStats {
    pub requests: AtomicU64,
    pub ok: AtomicU64,
    pub degraded: AtomicU64,
    pub shed: AtomicU64,
    pub not_found: AtomicU64,
    pub corrupt: AtomicU64,
    pub timeout: AtomicU64,
    pub bad_request: AtomicU64,
    pub io_errors: AtomicU64,
    pub panics: AtomicU64,
    /// Data frames written at/after their deadline — the invariant counter;
    /// must be 0.
    pub post_deadline_responses: AtomicU64,
    /// Streams cut (no END) because the deadline expired mid-response.
    pub deadline_aborts: AtomicU64,
    pub coarse_only: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
}

/// Point-in-time copy of [`ServeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub requests: u64,
    pub ok: u64,
    pub degraded: u64,
    pub shed: u64,
    pub not_found: u64,
    pub corrupt: u64,
    pub timeout: u64,
    pub bad_request: u64,
    pub io_errors: u64,
    pub panics: u64,
    pub post_deadline_responses: u64,
    pub deadline_aborts: u64,
    pub coarse_only: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

impl ServeStats {
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            not_found: self.not_found.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            timeout: self.timeout.load(Ordering::Relaxed),
            bad_request: self.bad_request.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            post_deadline_responses: self.post_deadline_responses.load(Ordering::Relaxed),
            deadline_aborts: self.deadline_aborts.load(Ordering::Relaxed),
            coarse_only: self.coarse_only.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// One-line JSON for the `SERVE_STATS` stdout marker and CI greps.
    pub fn to_json_line(&self) -> String {
        format!(
            concat!(
                "{{\"requests\":{},\"ok\":{},\"degraded\":{},\"shed\":{},",
                "\"not_found\":{},\"corrupt\":{},\"timeout\":{},",
                "\"bad_request\":{},\"io_errors\":{},\"panics\":{},",
                "\"post_deadline_responses\":{},\"deadline_aborts\":{},",
                "\"coarse_only\":{},\"cache_hits\":{},\"cache_misses\":{}}}"
            ),
            self.requests,
            self.ok,
            self.degraded,
            self.shed,
            self.not_found,
            self.corrupt,
            self.timeout,
            self.bad_request,
            self.io_errors,
            self.panics,
            self.post_deadline_responses,
            self.deadline_aborts,
            self.coarse_only,
            self.cache_hits,
            self.cache_misses,
        )
    }
}

struct Inner {
    cfg: ServeConfig,
    store: BlobStore,
    cache: ArenaCache,
    stats: ServeStats,
    telemetry: ReqTelemetry,
    stop: AtomicBool,
    /// Admitted connections with their admission timestamp, so queue-wait
    /// is attributable per request.
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    cond: Condvar,
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`] (or let `shutdown_after` elapse) then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live stats (threads may still be mutating them).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Begins graceful drain: stop accepting, finish queued work.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.cond.notify_all();
    }

    /// Waits for drain to complete, flushes the journal, and returns the
    /// final stats. Call [`ServerHandle::shutdown`] first unless
    /// `shutdown_after` was set.
    pub fn join(mut self) -> StatsSnapshot {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // Accept thread exit implies stop is set; wake any idle workers.
        self.inner.cond.notify_all();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        let snap = self.inner.stats.snapshot();
        // Final SLO verdict as typed journal events, so a run's breach
        // state is on record even if nobody ever polled STATS.
        amrviz_obs::slo::emit_journal(&self.inner.telemetry.slo_report());
        journal::emit(
            "serve",
            &[
                ("role", "\"server\"".into()),
                ("event", "\"drain\"".into()),
                ("requests", snap.requests.to_string()),
                ("ok", snap.ok.to_string()),
                ("degraded", snap.degraded.to_string()),
                ("shed", snap.shed.to_string()),
                ("timeout", snap.timeout.to_string()),
                ("panics", snap.panics.to_string()),
                (
                    "post_deadline_responses",
                    snap.post_deadline_responses.to_string(),
                ),
                ("deadline_aborts", snap.deadline_aborts.to_string()),
                ("cache_hits", snap.cache_hits.to_string()),
            ],
        );
        amrviz_obs::journal_flush();
        snap
    }
}

/// Binds, spawns the accept thread and worker pool, and returns.
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let store = BlobStore::open(&cfg.store_dir)
        .map_err(|e| std::io::Error::other(format!("store: {e}")))?;
    let inner = Arc::new(Inner {
        cache: ArenaCache::new(cfg.cache_bytes),
        stats: ServeStats::default(),
        telemetry: ReqTelemetry::new(cfg.slo.clone()),
        stop: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        cond: Condvar::new(),
        store,
        cfg,
    });

    let mut workers = Vec::new();
    for w in 0..inner.cfg.workers.max(1) {
        let inner = Arc::clone(&inner);
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{w}"))
                .spawn(move || worker_loop(&inner))?,
        );
    }
    let accept = {
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(&inner, listener))?
    };
    Ok(ServerHandle {
        addr,
        inner,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(inner: &Inner, listener: TcpListener) {
    let started = Instant::now();
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        if let Some(after) = inner.cfg.shutdown_after {
            if started.elapsed() >= after {
                inner.stop.store(true, Ordering::SeqCst);
                break;
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let io_t = Duration::from_millis(inner.cfg.io_timeout_ms.max(1));
                let _ = stream.set_read_timeout(Some(io_t));
                let _ = stream.set_write_timeout(Some(io_t));
                admit(inner, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    inner.cond.notify_all();
}

/// Admission control: bounded queue, drop-newest with a typed shed reply.
fn admit(inner: &Inner, mut stream: TcpStream) {
    let mut q = inner.queue.lock().unwrap();
    if q.len() >= inner.cfg.queue_depth.max(1) {
        drop(q);
        inner.stats.shed.fetch_add(1, Ordering::Relaxed);
        amrviz_obs::counter!("serve.shed", 1);
        journal::emit(
            "serve",
            &[
                ("role", "\"server\"".into()),
                ("event", "\"shed\"".into()),
                ("retry_after_ms", inner.cfg.retry_after_ms.to_string()),
            ],
        );
        // Best-effort typed reply from the accept thread (bounded by the
        // socket write timeout). The request frame is never read — shedding
        // must not depend on a possibly-slow client.
        let header = RespHeader {
            status: Status::RetryLater,
            flags: 0,
            retry_after_ms: inner.cfg.retry_after_ms,
            n_levels: 0,
            key: 0,
        };
        let _ = proto::write_frame(&mut stream, &header.encode());
        let _ = proto::write_frame(
            &mut stream,
            &EndFrame {
                status: Status::RetryLater,
                levels_sent: 0,
                server_elapsed_us: 0,
            }
            .encode(),
        );
        // Shed requests count against availability in the SLO windows.
        inner.telemetry.record(Status::RetryLater, 0, None, 0, 0);
        return;
    }
    q.push_back((stream, Instant::now()));
    drop(q);
    inner.cond.notify_one();
}

fn worker_loop(inner: &Inner) {
    loop {
        let stream = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if inner.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = inner
                    .cond
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap();
                q = guard;
            }
        };
        let Some((stream, admitted_at)) = stream else {
            return;
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            handle_connection(inner, stream, admitted_at)
        }));
        if result.is_err() {
            inner.stats.panics.fetch_add(1, Ordering::Relaxed);
            amrviz_obs::counter!("serve.panic", 1);
            journal::emit(
                "serve",
                &[("role", "\"server\"".into()), ("event", "\"panic\"".into())],
            );
        }
    }
}

/// Outcome of a gated data-frame write.
enum Gated {
    Written,
    /// Deadline expired at decision time; nothing was written.
    Expired,
    Io,
}

/// The single choke point for data-bearing frames: sample the clock, refuse
/// to write at/after the deadline. `post_deadline_responses` re-checks the
/// *decision* timestamp after the write — it can only increment if a write
/// was started despite an expired deadline, i.e. if this gate is broken.
fn write_gated(
    stream: &mut TcpStream,
    payload: &[u8],
    deadline: Instant,
    stats: &ServeStats,
) -> Gated {
    let decided_at = Instant::now();
    if decided_at >= deadline {
        return Gated::Expired;
    }
    let r = proto::write_frame(stream, payload);
    if decided_at >= deadline {
        stats
            .post_deadline_responses
            .fetch_add(1, Ordering::Relaxed);
    }
    match r {
        Ok(()) => Gated::Written,
        Err(_) => Gated::Io,
    }
}

/// Writes an error/notification header + END. Exempt from the deadline gate:
/// a `Timeout` reply *is* the deadline signal, and shed/corrupt/not-found
/// replies carry no hierarchy data.
fn write_notification(stream: &mut TcpStream, status: Status, retry_after_ms: u32, key: u64) {
    let header = RespHeader {
        status,
        flags: 0,
        retry_after_ms,
        n_levels: 0,
        key,
    };
    let _ = proto::write_frame(stream, &header.encode());
    let _ = proto::write_frame(
        stream,
        &EndFrame {
            status,
            levels_sent: 0,
            server_elapsed_us: 0,
        }
        .encode(),
    );
}

fn handle_connection(inner: &Inner, mut stream: TcpStream, admitted_at: Instant) {
    let queue_wait_us = admitted_at.elapsed().as_micros() as u64;
    let payload = match proto::read_frame(&mut stream, MAX_REQUEST_FRAME) {
        Ok(Some(p)) => p,
        Ok(None) => return, // peer connected and left
        Err(_) => {
            inner.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let req = match Request::decode(&payload) {
        Ok(r) => r,
        Err(_) => {
            inner.stats.bad_request.fetch_add(1, Ordering::Relaxed);
            inner.stats.requests.fetch_add(1, Ordering::Relaxed);
            write_notification(&mut stream, Status::BadRequest, 0, 0);
            return;
        }
    };
    // Adopt the client's trace so journal lines from both halves stitch.
    let _scope = context_scope(TraceContext {
        parent: 0,
        trace: req.trace,
        sampled: true,
    });
    inner.stats.requests.fetch_add(1, Ordering::Relaxed);
    amrviz_obs::counter!("serve.requests", 1);
    let t0 = Instant::now();
    let (status, levels_sent, flags, stages) = match req.op {
        Op::Ping => {
            write_notification(&mut stream, Status::Ok, 0, 0);
            (Status::Ok, 0u8, 0u8, None)
        }
        Op::List => {
            let (s, l, f) = serve_list(inner, &mut stream, &req, t0);
            (s, l, f, None)
        }
        Op::Stats => (serve_stats(inner, &mut stream, t0), 0u8, 0u8, None),
        Op::Get => {
            let mut st = StageTimes {
                queue_wait_us: Some(queue_wait_us),
                ..StageTimes::default()
            };
            let (s, l, f) = serve_get(inner, &mut stream, &req, t0, &mut st);
            (s, l, f, Some(st))
        }
    };
    let elapsed_us = t0.elapsed().as_micros() as u64;
    match status {
        Status::Ok => inner.stats.ok.fetch_add(1, Ordering::Relaxed),
        Status::Degraded => inner.stats.degraded.fetch_add(1, Ordering::Relaxed),
        Status::NotFound => inner.stats.not_found.fetch_add(1, Ordering::Relaxed),
        Status::Corrupt => inner.stats.corrupt.fetch_add(1, Ordering::Relaxed),
        Status::Timeout => inner.stats.timeout.fetch_add(1, Ordering::Relaxed),
        Status::BadRequest => inner.stats.bad_request.fetch_add(1, Ordering::Relaxed),
        Status::Internal => inner.stats.io_errors.fetch_add(1, Ordering::Relaxed),
        Status::RetryLater | Status::ShuttingDown => 0,
    };
    amrviz_obs::histogram!("serve.latency_us", elapsed_us as f64);
    // STATS polls are monitoring traffic: answered, counted in `requests`,
    // but excluded from the SLO latency/availability windows so watching
    // the server never moves its own objectives.
    if req.op != Op::Stats {
        inner
            .telemetry
            .record(status, elapsed_us, stages.as_ref(), req.trace, req.key);
    }
    let mut fields = vec![
        ("role", "\"server\"".into()),
        ("op", format!("\"{}\"", req.op.name())),
        ("status", format!("\"{}\"", status.name())),
        ("key", format!("\"{:016x}\"", req.key)),
        ("levels", levels_sent.to_string()),
        ("elapsed_us", elapsed_us.to_string()),
        ("degraded", ((flags & FLAG_DEGRADED) != 0).to_string()),
        ("coarse_only", ((flags & FLAG_COARSE_ONLY) != 0).to_string()),
    ];
    if let Some(st) = &stages {
        fields.push(("stages_us", st.to_json()));
    }
    journal::emit("serve", &fields);
}

/// Answers `Op::Stats`: one header, one STATS frame carrying the snapshot
/// JSON, one END. Exempt from the deadline gate like other notifications —
/// the snapshot carries no hierarchy data, and an operator polling a
/// saturated server wants the answer, not a timeout.
fn serve_stats(inner: &Inner, stream: &mut TcpStream, t0: Instant) -> Status {
    let (cache_entries, cache_bytes) = inner.cache.stats();
    let queue_depth = inner.queue.lock().unwrap().len();
    let snap = inner.stats.snapshot();
    let json = inner.telemetry.snapshot_json(
        &snap,
        queue_depth,
        inner.cfg.workers.max(1),
        cache_entries,
        cache_bytes,
        inner.cfg.cache_bytes,
    );
    // Every poll also journals the SLO state as typed events, so burn-rate
    // history is reconstructible offline from the journal alone.
    amrviz_obs::slo::emit_journal(&inner.telemetry.slo_report());
    let header = RespHeader {
        status: Status::Ok,
        flags: 0,
        retry_after_ms: 0,
        n_levels: 0,
        key: 0,
    };
    for payload in [
        header.encode(),
        proto::encode_stats_frame(&json),
        EndFrame {
            status: Status::Ok,
            levels_sent: 0,
            server_elapsed_us: t0.elapsed().as_micros() as u64,
        }
        .encode(),
    ] {
        if proto::write_frame(stream, &payload).is_err() {
            inner.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            return Status::Internal;
        }
    }
    Status::Ok
}

fn serve_list(
    inner: &Inner,
    stream: &mut TcpStream,
    req: &Request,
    t0: Instant,
) -> (Status, u8, u8) {
    let deadline = t0 + Duration::from_millis(effective_deadline_ms(inner, req) as u64);
    let keys = match inner.store.list() {
        Ok(k) => k,
        Err(_) => {
            write_notification(stream, Status::Internal, 0, 0);
            return (Status::Internal, 0, 0);
        }
    };
    let header = RespHeader {
        status: Status::Ok,
        flags: 0,
        retry_after_ms: 0,
        n_levels: 0,
        key: 0,
    };
    for payload in [header.encode(), proto::encode_keys_frame(&keys)] {
        match write_gated(stream, &payload, deadline, &inner.stats) {
            Gated::Written => {}
            Gated::Expired => {
                inner.stats.deadline_aborts.fetch_add(1, Ordering::Relaxed);
                return (Status::Timeout, 0, 0);
            }
            Gated::Io => {
                inner.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                return (Status::Internal, 0, 0);
            }
        }
    }
    let _ = proto::write_frame(
        stream,
        &EndFrame {
            status: Status::Ok,
            levels_sent: 0,
            server_elapsed_us: t0.elapsed().as_micros() as u64,
        }
        .encode(),
    );
    (Status::Ok, 0, 0)
}

fn effective_deadline_ms(inner: &Inner, req: &Request) -> u32 {
    req.deadline_ms.min(inner.cfg.max_deadline_ms)
}

/// Looks up (or decodes into cache) the entry for `key`. Deadline-aware:
/// decode loops carry the budget's deadline and bail cooperatively.
fn lookup_or_decode(
    inner: &Inner,
    key: u64,
    deadline: Instant,
    st: &mut StageTimes,
) -> Result<Arc<DecodedEntry>, Status> {
    if let Some(entry) = inner.cache.get(key) {
        inner.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        // Cache hit: the read/validate/decode stages never ran; their
        // absence in the breakdown is the "warm cache" signal.
        return Ok(entry);
    }
    inner.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
    let stage_t = Instant::now();
    let bytes = match inner.store.get(key) {
        Ok(b) => b,
        Err(StoreError::NotFound) => return Err(Status::NotFound),
        Err(StoreError::Corrupt { .. }) => return Err(Status::Corrupt),
        Err(StoreError::Io(_)) => return Err(Status::Internal),
    };
    st.store_read_us = Some(stage_t.elapsed().as_micros() as u64);
    let budget = DecodeBudget::permissive().with_deadline(deadline);
    let stage_t = Instant::now();
    let art = match decode_artifact(&bytes, &budget) {
        Ok(a) => a,
        Err(e) if e.is_deadline() => return Err(Status::Timeout),
        Err(_) => return Err(Status::Corrupt),
    };
    st.structure_validate_us = Some(stage_t.elapsed().as_micros() as u64);
    let Some(compressor) = compressor_for(&art.algo) else {
        return Err(Status::Corrupt);
    };
    let mut levels = inner.cache.take_arena();
    let cfg = AmrCodecConfig::default();
    let stage_t = Instant::now();
    let report = match decompress_hierarchy_field_into(
        &art.hier,
        &art.container,
        compressor.as_ref(),
        &cfg,
        DecodePolicy::Degrade,
        &budget,
        &mut levels,
    ) {
        Ok(r) => r,
        Err(e) if e.is_deadline() => return Err(Status::Timeout),
        Err(_) => return Err(Status::Corrupt),
    };
    st.decode_us = Some(stage_t.elapsed().as_micros() as u64);
    let mut degraded_fabs = vec![0u32; levels.len()];
    for (lev, _, status) in &report.fabs {
        if !matches!(status, amrviz_compress::FabStatus::Ok) {
            degraded_fabs[*lev] += 1;
        }
    }
    let entry = DecodedEntry {
        algo: art.algo,
        field: art.field,
        levels,
        degraded_fabs,
    };
    Ok(inner.cache.insert(key, entry))
}

fn serve_get(
    inner: &Inner,
    stream: &mut TcpStream,
    req: &Request,
    t0: Instant,
    st: &mut StageTimes,
) -> (Status, u8, u8) {
    let budget_ms = effective_deadline_ms(inner, req);
    let total = Duration::from_millis(budget_ms as u64);
    let deadline = t0 + total;
    if budget_ms == 0 || Instant::now() >= deadline {
        write_notification(stream, Status::Timeout, inner.cfg.retry_after_ms, req.key);
        return (Status::Timeout, 0, 0);
    }
    let entry = match lookup_or_decode(inner, req.key, deadline, st) {
        Ok(e) => e,
        Err(status) => {
            let retry = if status.is_retryable() {
                inner.cfg.retry_after_ms
            } else {
                0
            };
            write_notification(stream, status, retry, req.key);
            return (status, 0, 0);
        }
    };

    // Plan the stream: cap at the client's max level; drop to coarse-only
    // when the remaining budget is thin.
    let want = (req.max_level as usize + 1).min(entry.levels.len());
    let remaining = deadline.saturating_duration_since(Instant::now());
    let mut flags = if entry.is_degraded() {
        FLAG_DEGRADED
    } else {
        0
    };
    let n_levels = if remaining < total.mul_f64(inner.cfg.coarse_only_frac) {
        flags |= FLAG_COARSE_ONLY;
        inner.stats.coarse_only.fetch_add(1, Ordering::Relaxed);
        1
    } else {
        want
    };
    let status = if entry.is_degraded() {
        Status::Degraded
    } else {
        Status::Ok
    };
    let header = RespHeader {
        status,
        flags,
        retry_after_ms: 0,
        n_levels: n_levels as u8,
        key: req.key,
    };
    let write_t = Instant::now();
    let gated = write_gated(stream, &header.encode(), deadline, &inner.stats);
    st.add_write(write_t.elapsed().as_micros() as u64);
    match gated {
        Gated::Written => {}
        Gated::Expired => {
            // Nothing sent yet: a typed Timeout is still possible.
            inner.stats.deadline_aborts.fetch_add(1, Ordering::Relaxed);
            write_notification(stream, Status::Timeout, inner.cfg.retry_after_ms, req.key);
            return (Status::Timeout, 0, 0);
        }
        Gated::Io => {
            inner.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            return (Status::Internal, 0, 0);
        }
    }
    let mut sent = 0u8;
    for lev in 0..n_levels {
        let frame = proto::encode_level_frame(lev, entry.degraded_fabs[lev], &entry.levels[lev]);
        let write_t = Instant::now();
        let gated = write_gated(stream, &frame, deadline, &inner.stats);
        st.add_write(write_t.elapsed().as_micros() as u64);
        match gated {
            Gated::Written => sent += 1,
            Gated::Expired => {
                // Mid-stream expiry: cut WITHOUT the END frame. The prefix
                // the client holds is a valid progressive result.
                inner.stats.deadline_aborts.fetch_add(1, Ordering::Relaxed);
                amrviz_obs::counter!("serve.deadline_abort", 1);
                return (Status::Timeout, sent, flags);
            }
            Gated::Io => {
                inner.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                return (Status::Internal, sent, flags);
            }
        }
    }
    let end = EndFrame {
        status,
        levels_sent: sent,
        server_elapsed_us: t0.elapsed().as_micros() as u64,
    };
    let write_t = Instant::now();
    let gated = write_gated(stream, &end.encode(), deadline, &inner.stats);
    st.add_write(write_t.elapsed().as_micros() as u64);
    match gated {
        Gated::Written => (status, sent, flags),
        Gated::Expired => {
            inner.stats.deadline_aborts.fetch_add(1, Ordering::Relaxed);
            (Status::Timeout, sent, flags)
        }
        Gated::Io => {
            inner.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            (Status::Internal, sent, flags)
        }
    }
}
