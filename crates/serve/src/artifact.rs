//! Self-contained serving artifact: hierarchy structure + compressed field.
//!
//! The compressed container (`CompressedHierarchyField`) deliberately does
//! not carry the hierarchy's box structure — the decoder reconstructs the
//! piece schedule from a hierarchy it already has. For serving, the blob
//! must stand alone, so an artifact bundles: the compressor algorithm name,
//! the field name, the full level/box structure, and the container bytes.
//! Everything is budget-checked on decode; a corrupted artifact surfaces as
//! a typed error, never a panic or absurd allocation.

use amrviz_amr::{AmrHierarchy, Box3, BoxArray, Geometry, IntVect};
use amrviz_codec::{zigzag_decode, zigzag_encode, CodecError, DecodeBudget};
use amrviz_compress::wire::{ByteReader, ByteWriter};
use amrviz_compress::{
    CompressError, CompressedHierarchyField, Compressor, SzInterp, SzLr, ZfpLike,
};

/// Artifact wire magic + version.
pub const ARTIFACT_MAGIC: &[u8; 4] = b"AVH1";

/// A decoded artifact: everything needed to decompress and serve.
#[derive(Debug)]
pub struct Artifact {
    /// Compressor algorithm name (`szlr` | `szinterp` | `zfp`).
    pub algo: String,
    /// Field name (reporting only; the container holds one field).
    pub field: String,
    /// Hierarchy *structure* (no field data attached).
    pub hier: AmrHierarchy,
    /// The compressed field itself.
    pub container: CompressedHierarchyField,
}

/// Resolves a compressor by artifact algorithm name.
pub fn compressor_for(algo: &str) -> Option<Box<dyn Compressor>> {
    match algo {
        "szlr" => Some(Box::new(SzLr::default())),
        "szinterp" => Some(Box::new(SzInterp)),
        "zfp" => Some(Box::new(ZfpLike)),
        _ => None,
    }
}

fn ivarint(w: &mut ByteWriter, v: i64) {
    w.uvarint(zigzag_encode(v));
}

/// Serializes an artifact from a hierarchy's structure plus an
/// already-compressed container.
pub fn encode_artifact(
    hier: &AmrHierarchy,
    field: &str,
    algo: &str,
    container: &CompressedHierarchyField,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for &b in ARTIFACT_MAGIC {
        w.u8(b);
    }
    w.u8(1); // artifact version
    w.section(algo.as_bytes());
    w.section(field.as_bytes());
    let geom = hier.geometry();
    for v in [
        geom.domain.lo()[0],
        geom.domain.lo()[1],
        geom.domain.lo()[2],
        geom.domain.hi()[0],
        geom.domain.hi()[1],
        geom.domain.hi()[2],
    ] {
        ivarint(&mut w, v);
    }
    for a in 0..3 {
        w.f64(geom.prob_lo[a]);
    }
    for a in 0..3 {
        w.f64(geom.prob_hi[a]);
    }
    w.uvarint(hier.num_levels() as u64);
    for &r in hier.ref_ratios() {
        w.uvarint(r as u64);
    }
    for lev in 0..hier.num_levels() {
        let ba = hier.box_array(lev);
        w.uvarint(ba.len() as u64);
        for bx in ba.iter() {
            for v in [
                bx.lo()[0],
                bx.lo()[1],
                bx.lo()[2],
                bx.hi()[0],
                bx.hi()[1],
                bx.hi()[2],
            ] {
                ivarint(&mut w, v);
            }
        }
    }
    w.section(&container.to_bytes());
    w.finish()
}

fn read_box(r: &mut ByteReader<'_>) -> Result<Box3, CodecError> {
    let mut c = [0i64; 6];
    for v in c.iter_mut() {
        *v = zigzag_decode(r.uvarint()?);
    }
    for a in 0..3 {
        if c[3 + a] < c[a] {
            return Err(CodecError::Corrupt("inverted box in artifact"));
        }
    }
    Ok(Box3::new(
        IntVect::new(c[0], c[1], c[2]),
        IntVect::new(c[3], c[4], c[5]),
    ))
}

/// Parses and validates an artifact. The reconstructed hierarchy passes
/// through `AmrHierarchy::new`, which enforces structural invariants
/// (disjoint boxes, domain coverage) — so a corrupted structure fails
/// *here*, before any decompression is attempted.
pub fn decode_artifact(bytes: &[u8], budget: &DecodeBudget) -> Result<Artifact, CompressError> {
    let mut r = ByteReader::with_budget(bytes, *budget);
    for &expect in ARTIFACT_MAGIC {
        if r.u8()? != expect {
            return Err(CompressError::Malformed("bad artifact magic".into()));
        }
    }
    if r.u8()? != 1 {
        return Err(CompressError::Malformed("unknown artifact version".into()));
    }
    let algo = String::from_utf8(r.section()?.to_vec())
        .map_err(|_| CompressError::Malformed("algo name not utf-8".into()))?;
    let field = String::from_utf8(r.section()?.to_vec())
        .map_err(|_| CompressError::Malformed("field name not utf-8".into()))?;
    let domain = read_box(&mut r).map_err(CompressError::Codec)?;
    let mut prob_lo = [0f64; 3];
    let mut prob_hi = [0f64; 3];
    for v in prob_lo.iter_mut() {
        *v = r.f64()?;
    }
    for v in prob_hi.iter_mut() {
        *v = r.f64()?;
    }
    for a in 0..3 {
        if prob_hi[a] <= prob_lo[a] || !prob_lo[a].is_finite() || !prob_hi[a].is_finite() {
            return Err(CompressError::Malformed(
                "degenerate physical extent in artifact".into(),
            ));
        }
    }
    let n_levels = budget
        .check_values(r.uvarint()? as usize)
        .map_err(CompressError::Codec)?;
    if n_levels == 0 || n_levels > 32 {
        return Err(CompressError::Malformed(format!(
            "implausible level count {n_levels}"
        )));
    }
    let mut ratios = Vec::with_capacity(n_levels.saturating_sub(1));
    for _ in 1..n_levels {
        let ratio = r.uvarint()?;
        if !(2..=16).contains(&ratio) {
            return Err(CompressError::Malformed(format!(
                "implausible refinement ratio {ratio}"
            )));
        }
        ratios.push(ratio as i64);
    }
    let mut box_arrays = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        let nboxes = budget
            .check_values(r.uvarint()? as usize)
            .map_err(CompressError::Codec)?;
        let mut boxes = Vec::with_capacity(nboxes.min(1 << 16));
        for _ in 0..nboxes {
            let bx = read_box(&mut r).map_err(CompressError::Codec)?;
            for a in 0..3 {
                budget
                    .check_dim(bx.size()[a])
                    .map_err(CompressError::Codec)?;
            }
            boxes.push(bx);
        }
        box_arrays.push(BoxArray::new(boxes));
    }
    let geom = Geometry::new(domain, prob_lo, prob_hi);
    let hier = AmrHierarchy::new(geom, ratios, box_arrays)
        .map_err(|e| CompressError::Malformed(format!("invalid artifact hierarchy: {e}")))?;
    let container = CompressedHierarchyField::from_bytes_budgeted(r.section()?, budget)?;
    Ok(Artifact {
        algo,
        field,
        hier,
        container,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_compress::{compress_hierarchy_field, AmrCodecConfig, ErrorBound};

    fn tiny_hierarchy() -> AmrHierarchy {
        let geom = Geometry::new(Box3::from_dims(8, 8, 8), [0.0; 3], [1.0; 3]);
        let mut h = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::single(Box3::new(IntVect::new(2, 2, 2), IntVect::new(9, 9, 9))),
            ],
        )
        .unwrap();
        h.add_field_from_fn("density", |lev, iv| {
            (iv[0] as f64 * 0.2).sin() + 0.1 * lev as f64 + 0.01 * iv[1] as f64
        })
        .unwrap();
        h
    }

    #[test]
    fn artifact_roundtrips_structure_and_container() {
        let hier = tiny_hierarchy();
        let cfg = AmrCodecConfig::default();
        let container = compress_hierarchy_field(
            &hier,
            "density",
            &SzLr::default(),
            ErrorBound::Rel(1e-3),
            &cfg,
        )
        .unwrap();
        let bytes = encode_artifact(&hier, "density", "szlr", &container);
        let art = decode_artifact(&bytes, &DecodeBudget::strict()).unwrap();
        assert_eq!(art.algo, "szlr");
        assert_eq!(art.field, "density");
        assert_eq!(art.hier.num_levels(), 2);
        assert_eq!(art.hier.ref_ratios(), &[2]);
        assert_eq!(art.hier.box_array(1).len(), 1);
        assert_eq!(
            art.container.to_bytes(),
            container.to_bytes(),
            "container survives byte-for-byte"
        );
    }

    #[test]
    fn corrupted_artifacts_fail_typed() {
        let hier = tiny_hierarchy();
        let cfg = AmrCodecConfig::default();
        let container = compress_hierarchy_field(
            &hier,
            "density",
            &SzLr::default(),
            ErrorBound::Rel(1e-3),
            &cfg,
        )
        .unwrap();
        let bytes = encode_artifact(&hier, "density", "szlr", &container);
        // Magic corruption, truncation, and random byte damage must all be
        // typed errors, never panics.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(decode_artifact(&bad, &DecodeBudget::strict()).is_err());
        assert!(decode_artifact(&bytes[..10], &DecodeBudget::strict()).is_err());
        for at in [6usize, 20, 40, 60] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x55;
            // Any outcome except panic is acceptable; most corruptions at
            // these offsets hit structure fields and error out.
            let _ = decode_artifact(&bad, &DecodeBudget::strict());
        }
    }
}
