//! Length-prefixed binary wire protocol for `amrviz serve`.
//!
//! Every frame on the wire is `u32` little-endian payload length followed by
//! the payload. A request is one frame; a response is a *sequence* of frames
//! the client may stop consuming at any prefix:
//!
//! ```text
//! client → server   [REQUEST]
//! server → client   [HEADER] ([KEYS] | [LEVEL]*) [END]
//! ```
//!
//! `HEADER` carries the typed status (and, for `RetryLater`, a retry-after
//! hint) plus response flags — `FLAG_DEGRADED` when any fab was repaired
//! under `DecodePolicy::Degrade`, `FLAG_COARSE_ONLY` when the deadline
//! budget forced a coarse-only response. `LEVEL` frames stream the decoded
//! hierarchy coarse-first; `END` closes a successful stream. A stream cut
//! without `END` means the server hit the deadline mid-response and stopped
//! rather than write past it — the received prefix is still a valid
//! progressive result.
//!
//! Frame payloads are encoded with the same budget-checked
//! [`ByteWriter`]/[`ByteReader`] pair the compressed container uses, so a
//! chaos-corrupted frame surfaces as a typed [`CodecError`], never a panic.

use amrviz_codec::{zigzag_decode, zigzag_encode, CodecError, DecodeBudget};
use amrviz_compress::wire::{ByteReader, ByteWriter};
use std::io::{Read, Write};

/// Protocol version byte, first in every request and header payload.
pub const PROTO_VERSION: u8 = 1;
/// Request payload magic.
pub const REQ_MAGIC: u8 = 0xA5;
/// Response header magic.
pub const RESP_MAGIC: u8 = 0x5A;

/// Hard cap on a *request* frame (requests are tiny; anything bigger is an
/// attack or corruption).
pub const MAX_REQUEST_FRAME: usize = 4 << 10;
/// Hard cap on a *response* frame (one level of a decoded hierarchy).
pub const MAX_RESPONSE_FRAME: usize = 256 << 20;

/// Frame tags: first payload byte of every response frame.
pub const TAG_HEADER: u8 = 0;
pub const TAG_LEVEL: u8 = 1;
pub const TAG_END: u8 = 2;
pub const TAG_KEYS: u8 = 3;
pub const TAG_STATS: u8 = 4;

/// Response header flag: at least one fab was served repaired
/// (`DecodePolicy::Degrade`) rather than decoded cleanly.
pub const FLAG_DEGRADED: u8 = 1;
/// Response header flag: the deadline budget was near exhaustion at
/// admission, so only the coarse level is streamed.
pub const FLAG_COARSE_ONLY: u8 = 2;

/// Request operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Progressive fetch of a decoded hierarchy by blob key.
    Get,
    /// Enumerate the store's blob keys.
    List,
    /// Liveness probe.
    Ping,
    /// In-band telemetry pull: the server answers with a versioned JSON
    /// snapshot (health, windowed latency/stage percentiles, SLO burn,
    /// tail exemplars) in a single `STATS` frame. Same listener, same
    /// framing — no second port to firewall or keep alive.
    Stats,
}

impl Op {
    pub fn code(self) -> u8 {
        match self {
            Op::Get => 1,
            Op::List => 2,
            Op::Ping => 3,
            Op::Stats => 4,
        }
    }

    pub fn from_code(c: u8) -> Option<Op> {
        match c {
            1 => Some(Op::Get),
            2 => Some(Op::List),
            3 => Some(Op::Ping),
            4 => Some(Op::Stats),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Op::Get => "get",
            Op::List => "list",
            Op::Ping => "ping",
            Op::Stats => "stats",
        }
    }
}

/// Typed response statuses. The split mirrors the codec error taxonomy:
/// `RetryLater` and `Timeout` are transient (retry may succeed); `Corrupt`,
/// `NotFound` and `BadRequest` are permanent for the same request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Fully decoded, all fabs clean.
    Ok,
    /// Served, but some fabs were repaired (see `FLAG_DEGRADED`).
    Degraded,
    /// Load shed at admission: the work queue was full. The header carries
    /// a retry-after hint in milliseconds.
    RetryLater,
    /// No blob under that key.
    NotFound,
    /// Blob failed its checksum (quarantined) or its contents failed
    /// structural decode — permanently unservable as stored.
    Corrupt,
    /// The deadline budget expired before even the coarse level was ready.
    Timeout,
    /// Unparseable or unsupported request frame.
    BadRequest,
    /// Server is draining; no new work accepted.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

impl Status {
    pub fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Degraded => 1,
            Status::RetryLater => 2,
            Status::NotFound => 3,
            Status::Corrupt => 4,
            Status::Timeout => 5,
            Status::BadRequest => 6,
            Status::ShuttingDown => 7,
            Status::Internal => 8,
        }
    }

    pub fn from_code(c: u8) -> Option<Status> {
        Some(match c {
            0 => Status::Ok,
            1 => Status::Degraded,
            2 => Status::RetryLater,
            3 => Status::NotFound,
            4 => Status::Corrupt,
            5 => Status::Timeout,
            6 => Status::BadRequest,
            7 => Status::ShuttingDown,
            8 => Status::Internal,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Degraded => "degraded",
            Status::RetryLater => "retry_later",
            Status::NotFound => "not_found",
            Status::Corrupt => "corrupt",
            Status::Timeout => "timeout",
            Status::BadRequest => "bad_request",
            Status::ShuttingDown => "shutting_down",
            Status::Internal => "internal",
        }
    }

    /// True when the same request may succeed if retried later.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            Status::RetryLater | Status::Timeout | Status::ShuttingDown
        )
    }
}

/// A client request. One request per connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    pub op: Op,
    /// Client-generated trace id, propagated into the server's journal so
    /// `amrviz stats` can stitch the client and server halves of a request.
    pub trace: u64,
    /// Blob key (GET only).
    pub key: u64,
    /// Deadline budget in milliseconds (0 = expire immediately; the server
    /// also caps this at its own maximum).
    pub deadline_ms: u32,
    /// Finest level the client wants (0xFF = all levels).
    pub max_level: u8,
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(REQ_MAGIC);
        w.u8(PROTO_VERSION);
        w.u8(self.op.code());
        w.u64_le(self.trace);
        w.u64_le(self.key);
        w.uvarint(self.deadline_ms as u64);
        w.u8(self.max_level);
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<Request, CodecError> {
        let mut r = ByteReader::with_budget(bytes, DecodeBudget::strict());
        if r.u8()? != REQ_MAGIC {
            return Err(CodecError::Corrupt("bad request magic"));
        }
        if r.u8()? != PROTO_VERSION {
            return Err(CodecError::Corrupt("unsupported protocol version"));
        }
        let op = Op::from_code(r.u8()?).ok_or(CodecError::Corrupt("unknown op"))?;
        let trace = r.u64_le()?;
        let key = r.u64_le()?;
        let deadline_ms = u32::try_from(r.uvarint()?)
            .map_err(|_| CodecError::Corrupt("deadline out of range"))?;
        let max_level = r.u8()?;
        Ok(Request {
            op,
            trace,
            key,
            deadline_ms,
            max_level,
        })
    }
}

/// Response header frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RespHeader {
    pub status: Status,
    pub flags: u8,
    pub retry_after_ms: u32,
    /// Levels the server intends to stream (0 for non-OK statuses).
    pub n_levels: u8,
    pub key: u64,
}

impl RespHeader {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(TAG_HEADER);
        w.u8(RESP_MAGIC);
        w.u8(PROTO_VERSION);
        w.u8(self.status.code());
        w.u8(self.flags);
        w.uvarint(self.retry_after_ms as u64);
        w.u8(self.n_levels);
        w.u64_le(self.key);
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<RespHeader, CodecError> {
        let mut r = ByteReader::with_budget(bytes, DecodeBudget::strict());
        if r.u8()? != TAG_HEADER {
            return Err(CodecError::Corrupt("expected header frame"));
        }
        if r.u8()? != RESP_MAGIC || r.u8()? != PROTO_VERSION {
            return Err(CodecError::Corrupt("bad response magic/version"));
        }
        let status =
            Status::from_code(r.u8()?).ok_or(CodecError::Corrupt("unknown status code"))?;
        let flags = r.u8()?;
        let retry_after_ms = u32::try_from(r.uvarint()?)
            .map_err(|_| CodecError::Corrupt("retry-after out of range"))?;
        let n_levels = r.u8()?;
        let key = r.u64_le()?;
        Ok(RespHeader {
            status,
            flags,
            retry_after_ms,
            n_levels,
            key,
        })
    }
}

/// End-of-stream frame: marks a response the server *completed* (as opposed
/// to one cut mid-stream at the deadline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndFrame {
    pub status: Status,
    pub levels_sent: u8,
    pub server_elapsed_us: u64,
}

impl EndFrame {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(TAG_END);
        w.u8(self.status.code());
        w.u8(self.levels_sent);
        w.uvarint(self.server_elapsed_us);
        w.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<EndFrame, CodecError> {
        let mut r = ByteReader::with_budget(bytes, DecodeBudget::strict());
        if r.u8()? != TAG_END {
            return Err(CodecError::Corrupt("expected end frame"));
        }
        let status = Status::from_code(r.u8()?).ok_or(CodecError::Corrupt("unknown status"))?;
        let levels_sent = r.u8()?;
        let server_elapsed_us = r.uvarint()?;
        Ok(EndFrame {
            status,
            levels_sent,
            server_elapsed_us,
        })
    }
}

/// Encodes one level of a decoded hierarchy as a `LEVEL` frame payload.
pub fn encode_level_frame(level: usize, degraded_fabs: u32, mf: &amrviz_amr::MultiFab) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(TAG_LEVEL);
    w.u8(level as u8);
    w.uvarint(degraded_fabs as u64);
    w.uvarint(mf.len() as u64);
    for fab in mf.fabs() {
        let bx = fab.box3();
        for v in [
            bx.lo()[0],
            bx.lo()[1],
            bx.lo()[2],
            bx.hi()[0],
            bx.hi()[1],
            bx.hi()[2],
        ] {
            w.uvarint(zigzag_encode(v));
        }
        for &v in fab.data() {
            w.f64(v);
        }
    }
    w.finish()
}

/// Summary of a parsed `LEVEL` frame (the client validates structure and
/// counts cells; it does not retain the data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSummary {
    pub level: u8,
    pub degraded_fabs: u64,
    pub fabs: u64,
    pub cells: u64,
}

/// Parses a `LEVEL` frame payload, validating every declared size against
/// `budget` before trusting it.
pub fn decode_level_frame(bytes: &[u8], budget: &DecodeBudget) -> Result<LevelSummary, CodecError> {
    let mut r = ByteReader::with_budget(bytes, *budget);
    if r.u8()? != TAG_LEVEL {
        return Err(CodecError::Corrupt("expected level frame"));
    }
    let level = r.u8()?;
    let degraded_fabs = r.uvarint()?;
    let fabs = budget.check_values(r.uvarint()? as usize)? as u64;
    let mut cells = 0u64;
    for _ in 0..fabs {
        let mut c = [0i64; 6];
        for v in c.iter_mut() {
            *v = zigzag_decode(r.uvarint()?);
        }
        let (lo, hi) = (&c[..3], &c[3..]);
        let mut n = 1usize;
        for a in 0..3 {
            if hi[a] < lo[a] {
                return Err(CodecError::Corrupt("inverted fab box"));
            }
            let d = budget.check_dim((hi[a] - lo[a] + 1) as usize)?;
            n = n
                .checked_mul(d)
                .ok_or(CodecError::Corrupt("fab dims overflow"))?;
        }
        budget.check_values(n)?;
        budget.check_section(n * 8, r.remaining())?;
        for _ in 0..n {
            r.f64()?;
        }
        cells += n as u64;
    }
    Ok(LevelSummary {
        level,
        degraded_fabs,
        fabs,
        cells,
    })
}

/// Encodes a `KEYS` frame (LIST response).
pub fn encode_keys_frame(keys: &[u64]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(TAG_KEYS);
    w.uvarint(keys.len() as u64);
    for &k in keys {
        w.u64_le(k);
    }
    w.finish()
}

/// Encodes a `STATS` frame: the telemetry snapshot JSON as one
/// length-prefixed section.
pub fn encode_stats_frame(json: &str) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(TAG_STATS);
    w.section(json.as_bytes());
    w.finish()
}

/// Parses a `STATS` frame payload back into the snapshot JSON string,
/// validating the section length against `budget` and requiring UTF-8
/// (a chaos-corrupted snapshot surfaces as a typed error, never a panic
/// or mojibake downstream).
pub fn decode_stats_frame(bytes: &[u8], budget: &DecodeBudget) -> Result<String, CodecError> {
    let mut r = ByteReader::with_budget(bytes, *budget);
    if r.u8()? != TAG_STATS {
        return Err(CodecError::Corrupt("expected stats frame"));
    }
    let body = r.section()?;
    std::str::from_utf8(body)
        .map(|s| s.to_string())
        .map_err(|_| CodecError::Corrupt("stats frame not utf-8"))
}

/// Parses a `KEYS` frame payload.
pub fn decode_keys_frame(bytes: &[u8], budget: &DecodeBudget) -> Result<Vec<u64>, CodecError> {
    let mut r = ByteReader::with_budget(bytes, *budget);
    if r.u8()? != TAG_KEYS {
        return Err(CodecError::Corrupt("expected keys frame"));
    }
    let n = budget.check_values(r.uvarint()? as usize)?;
    budget.check_section(n * 8, r.remaining())?;
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        keys.push(r.u64_le()?);
    }
    Ok(keys)
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame, capping the declared length at `max`.
/// Returns `Ok(None)` on clean EOF *before* the length prefix (peer closed
/// between frames).
pub fn read_frame(r: &mut impl Read, max: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_bytes[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {max}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_amr::{Box3, BoxArray, MultiFab};

    #[test]
    fn request_roundtrip() {
        let req = Request {
            op: Op::Get,
            trace: 0xDEAD_BEEF_1234,
            key: 42,
            deadline_ms: 250,
            max_level: 0xFF,
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn header_and_end_roundtrip() {
        let h = RespHeader {
            status: Status::RetryLater,
            flags: 0,
            retry_after_ms: 75,
            n_levels: 0,
            key: 7,
        };
        assert_eq!(RespHeader::decode(&h.encode()).unwrap(), h);
        let e = EndFrame {
            status: Status::Degraded,
            levels_sent: 3,
            server_elapsed_us: 12_345,
        };
        assert_eq!(EndFrame::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn level_frame_roundtrip_counts_cells() {
        let ba = BoxArray::new(vec![
            Box3::from_dims(4, 4, 4),
            Box3::new(
                amrviz_amr::IntVect::new(4, 0, 0),
                amrviz_amr::IntVect::new(7, 3, 3),
            ),
        ]);
        let mf = MultiFab::from_fn(&ba, |iv| iv[0] as f64);
        let frame = encode_level_frame(1, 2, &mf);
        let s = decode_level_frame(&frame, &DecodeBudget::strict()).unwrap();
        assert_eq!(s.level, 1);
        assert_eq!(s.degraded_fabs, 2);
        assert_eq!(s.fabs, 2);
        assert_eq!(s.cells, 128);
    }

    #[test]
    fn stats_frame_roundtrip_and_corruption() {
        let json = "{\"schema\":\"amrviz-serve-stats-v1\",\"health\":\"ok\"}";
        let frame = encode_stats_frame(json);
        assert_eq!(frame[0], TAG_STATS);
        assert_eq!(
            decode_stats_frame(&frame, &DecodeBudget::strict()).unwrap(),
            json
        );
        // Truncated section: typed error.
        assert!(matches!(
            decode_stats_frame(&frame[..frame.len() - 3], &DecodeBudget::strict()),
            Err(CodecError::Corrupt(_) | CodecError::Truncated)
        ));
        // Wrong tag: typed error.
        let mut bad = frame.clone();
        bad[0] = TAG_KEYS;
        assert!(matches!(
            decode_stats_frame(&bad, &DecodeBudget::strict()),
            Err(CodecError::Corrupt(_))
        ));
        // Non-UTF-8 body: typed error, not a panic.
        let mut w = amrviz_compress::wire::ByteWriter::new();
        w.u8(TAG_STATS);
        w.section(&[0xFF, 0xFE, 0x80]);
        assert!(matches!(
            decode_stats_frame(&w.finish(), &DecodeBudget::strict()),
            Err(CodecError::Corrupt(_))
        ));
        // Op::Stats roundtrips through the request codec.
        let req = Request {
            op: Op::Stats,
            trace: 0x70B,
            key: 0,
            deadline_ms: 1000,
            max_level: 0,
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        assert_eq!(Op::Stats.name(), "stats");
    }

    #[test]
    fn corrupt_frames_yield_typed_errors() {
        let req = Request {
            op: Op::Get,
            trace: 1,
            key: 2,
            deadline_ms: 3,
            max_level: 0,
        };
        let mut bytes = req.encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Request::decode(&bytes),
            Err(CodecError::Corrupt(_))
        ));
        assert!(matches!(
            Request::decode(&bytes[..2]),
            Err(CodecError::Corrupt(_) | CodecError::Truncated)
        ));
        let keys = encode_keys_frame(&[1, 2, 3]);
        assert!(matches!(
            decode_keys_frame(&keys[..keys.len() - 2], &DecodeBudget::strict()),
            Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn frame_io_roundtrip_and_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cur, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur, 64).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cur, 64).unwrap().is_none(), "clean EOF");

        let mut big = Vec::new();
        write_frame(&mut big, &[0u8; 100]).unwrap();
        let mut cur = std::io::Cursor::new(big);
        let err = read_frame(&mut cur, 64).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
