//! Chaos torture for the serving stack: a real in-process server, a
//! deterministic chaos proxy in front of it, and a client that asserts the
//! robustness contract after every request.
//!
//! Store population (deterministic per seed):
//! - a **good** artifact (Nyx-tiny snapshot, cleanly compressed);
//! - a **degraded** artifact — one compressed fab blob bit-flipped *before*
//!   the artifact was sealed, so its checksum fails and
//!   `DecodePolicy::Degrade` must repair it (served `FLAG_DEGRADED`);
//! - a **disk-corrupt** blob — valid artifact bytes damaged on disk *after*
//!   `put`, so the store's read-path checksum catches it (quarantine →
//!   `Corrupt`, then `NotFound`);
//! - an **unknown** key that was never stored.
//!
//! Invariants checked (violations are collected, not panicked):
//! 1. the server never panics (worker pool counter stays 0);
//! 2. no data frame is decided at/after its deadline
//!    (`post_deadline_responses == 0` server-side; zero late frames
//!    client-side on the *direct* path);
//! 3. corrupt blobs are served degraded-and-flagged or as a typed error —
//!    never as clean `Ok` (checked on the direct path, where no chaos can
//!    forge a header);
//! 4. peak memory stays bounded while serving (decoded arenas are cached
//!    and reused, not re-allocated per request).

use crate::artifact::encode_artifact;
use crate::chaos::{ChaosConfig, ChaosProxy};
use crate::client::{exchange, ClientConfig, Outcome};
use crate::proto::{Op, Request, FLAG_DEGRADED};
use crate::server::{start, ServeConfig, StatsSnapshot};
use crate::store::BlobStore;
use amrviz_compress::{compress_hierarchy_field, AmrCodecConfig, ErrorBound, SzLr};
use amrviz_obs::mem;
use amrviz_rng::Rng;
use amrviz_sim::{NyxScenario, Scale};
use std::time::Duration;

/// Torture run configuration.
#[derive(Debug, Clone)]
pub struct ServeTortureConfig {
    pub iters: u64,
    pub seed: u64,
    /// Server worker threads.
    pub workers: usize,
    /// Store directory (created fresh; contents are overwritten).
    pub store_dir: std::path::PathBuf,
    /// Peak allocated-bytes bound (checked only when the counting allocator
    /// is installed, i.e. under the `amrviz` binary).
    pub max_peak_bytes: usize,
}

impl Default for ServeTortureConfig {
    fn default() -> Self {
        ServeTortureConfig {
            iters: 300,
            seed: 7,
            workers: 2,
            store_dir: std::env::temp_dir()
                .join(format!("amrviz_serve_torture_{}", std::process::id())),
            max_peak_bytes: 1 << 30,
        }
    }
}

/// Aggregated torture outcome.
#[derive(Debug)]
pub struct ServeTortureReport {
    pub iters: u64,
    /// (outcome name, count) over all requests, sorted by name.
    pub outcomes: Vec<(&'static str, u64)>,
    pub server: StatsSnapshot,
    pub late_frames: u64,
    pub peak_bytes: usize,
    /// Human-readable invariant violations (empty = pass). Capped at 32.
    pub violations: Vec<String>,
}

impl ServeTortureReport {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line JSON for the `SERVE_TORTURE` stdout marker.
    pub fn to_json_line(&self) -> String {
        let mut outcomes = String::new();
        for (i, (name, n)) in self.outcomes.iter().enumerate() {
            if i > 0 {
                outcomes.push(',');
            }
            outcomes.push_str(&format!("\"{name}\":{n}"));
        }
        format!(
            concat!(
                "{{\"iters\":{},\"violations\":{},\"late_frames\":{},",
                "\"panics\":{},\"post_deadline_responses\":{},",
                "\"deadline_aborts\":{},\"shed\":{},\"peak_bytes\":{},",
                "\"passed\":{},\"outcomes\":{{{}}}}}"
            ),
            self.iters,
            self.violations.len(),
            self.late_frames,
            self.server.panics,
            self.server.post_deadline_responses,
            self.server.deadline_aborts,
            self.server.shed,
            self.peak_bytes,
            self.passed(),
            outcomes,
        )
    }
}

/// The four stored-state classes a request can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TargetClass {
    Good,
    Degraded,
    DiskCorrupt,
    Unknown,
}

struct StoreSetup {
    good: u64,
    degraded: u64,
    disk_corrupt: u64,
    unknown: u64,
}

/// Builds the store fixtures. Deterministic per seed.
fn populate(dir: &std::path::Path, seed: u64) -> StoreSetup {
    let _ = std::fs::remove_dir_all(dir);
    let store = BlobStore::open(dir).expect("torture store");
    let cfg = AmrCodecConfig::default();
    let compressor = SzLr::default();

    let hier = NyxScenario::new(Scale::Tiny, seed).generate();
    let clean = compress_hierarchy_field(
        &hier,
        "baryon_density",
        &compressor,
        ErrorBound::Rel(1e-3),
        &cfg,
    )
    .expect("compress good");
    let good = store
        .put(&encode_artifact(&hier, "baryon_density", "szlr", &clean))
        .expect("put good");

    // Degraded: flip one bit in a fine-level blob before sealing, so the
    // blob's checksum fails and Degrade must prolong that fab from the
    // coarse level.
    let mut damaged = clean.clone();
    let lev = damaged.blobs.len() - 1;
    assert!(
        !damaged.blobs[lev].is_empty(),
        "fine level must have blobs to damage"
    );
    let blob = &mut damaged.blobs[lev][0];
    let mid = blob.len() / 2;
    blob[mid] ^= 0x10;
    let degraded = store
        .put(&encode_artifact(&hier, "baryon_density", "szlr", &damaged))
        .expect("put degraded");

    // Disk-corrupt: a *second* clean artifact (different seed ⇒ different
    // bytes/key), damaged on disk after the fact.
    let hier2 = NyxScenario::new(Scale::Tiny, seed ^ 0x5EED).generate();
    let clean2 = compress_hierarchy_field(
        &hier2,
        "baryon_density",
        &compressor,
        ErrorBound::Rel(1e-3),
        &cfg,
    )
    .expect("compress second");
    let disk_corrupt = store
        .put(&encode_artifact(&hier2, "baryon_density", "szlr", &clean2))
        .expect("put disk-corrupt fixture");
    let path = store.path_of(disk_corrupt);
    let mut bytes = std::fs::read(&path).expect("read back");
    let at = bytes.len() / 3;
    bytes[at] ^= 0x40;
    std::fs::write(&path, &bytes).expect("damage on disk");

    StoreSetup {
        good,
        degraded,
        disk_corrupt,
        unknown: 0xDEAD_BEEF_0BAD_F00D,
    }
}

/// Runs the full chaos torture. Never panics on invariant failure — the
/// report carries the violations.
pub fn run(cfg: &ServeTortureConfig) -> ServeTortureReport {
    let setup = populate(&cfg.store_dir, cfg.seed);
    let server = start(ServeConfig {
        store_dir: cfg.store_dir.clone(),
        workers: cfg.workers,
        queue_depth: 8,
        cache_bytes: 64 << 20,
        ..ServeConfig::default()
    })
    .expect("server start");
    let direct_addr = server.addr();
    let proxy = ChaosProxy::start(direct_addr, cfg.seed, ChaosConfig::default())
        .expect("chaos proxy start");
    let chaos_addr = proxy.addr();

    let mem_baseline = mem::alloc_baseline();
    let mut rng = Rng::seed(cfg.seed).fork(0xC11A05);
    let mut violations: Vec<String> = Vec::new();
    let mut late_frames = 0u64;
    let mut outcome_counts: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    let violate = |violations: &mut Vec<String>, msg: String| {
        if violations.len() < 32 {
            violations.push(msg);
        }
    };

    let client_cfg = ClientConfig {
        io_timeout: Duration::from_millis(3_000),
        // Grace must absorb the proxy's worst-case injected delay (100 ms
        // per chunk) plus scheduling noise.
        grace: Duration::from_millis(800),
    };
    for i in 0..cfg.iters {
        let class = match rng.below(8) {
            0..=3 => TargetClass::Good,
            4..=5 => TargetClass::Degraded,
            6 => TargetClass::DiskCorrupt,
            _ => TargetClass::Unknown,
        };
        let key = match class {
            TargetClass::Good => setup.good,
            TargetClass::Degraded => setup.degraded,
            TargetClass::DiskCorrupt => setup.disk_corrupt,
            TargetClass::Unknown => setup.unknown,
        };
        // Mixed deadline budgets: some immediately-expired, some tight
        // enough to cut mid-stream, some roomy.
        let deadline_ms = [0u32, 1, 5, 50, 200, 1000][rng.below(6) as usize];
        // Every 4th request goes direct (no chaos): that's where semantic
        // invariants are checked, since chaos can forge/destroy frames.
        let direct = i % 4 == 0;
        let req = Request {
            op: Op::Get,
            trace: rng.next_u64() | 1,
            key,
            deadline_ms,
            max_level: 0xFF,
        };
        let addr = if direct { direct_addr } else { chaos_addr };
        let ex = exchange(addr, &req, &client_cfg);
        *outcome_counts.entry(ex.outcome.name()).or_insert(0) += 1;
        late_frames += ex.late_frames;
        if ex.late_frames > 0 && direct {
            violate(
                &mut violations,
                format!(
                    "iter {i}: {} frame(s) after deadline+grace on direct path \
                     (deadline {deadline_ms}ms, outcome {})",
                    ex.late_frames,
                    ex.outcome.name()
                ),
            );
        }
        if direct {
            // Semantic invariants, immune to chaos interference.
            match class {
                TargetClass::Good => {
                    if matches!(
                        ex.outcome,
                        Outcome::Corrupt | Outcome::NotFound | Outcome::ProtocolError
                    ) {
                        violate(
                            &mut violations,
                            format!("iter {i}: good blob served as {}", ex.outcome.name()),
                        );
                    }
                }
                TargetClass::Degraded => {
                    // Must be flagged degraded or a typed transient error —
                    // never clean Ok.
                    if ex.outcome == Outcome::Ok {
                        violate(
                            &mut violations,
                            format!("iter {i}: damaged blob served as clean ok"),
                        );
                    }
                    if let Some(h) = ex.header {
                        if h.status_streams_data() && h.flags & FLAG_DEGRADED == 0 {
                            violate(
                                &mut violations,
                                format!("iter {i}: damaged blob streamed without FLAG_DEGRADED"),
                            );
                        }
                    }
                }
                TargetClass::DiskCorrupt => {
                    // First hit quarantines (Corrupt); later hits NotFound.
                    if ex.outcome.has_data() {
                        violate(
                            &mut violations,
                            format!(
                                "iter {i}: disk-corrupt blob produced data ({})",
                                ex.outcome.name()
                            ),
                        );
                    }
                }
                TargetClass::Unknown => {
                    if ex.outcome.has_data() {
                        violate(
                            &mut violations,
                            format!("iter {i}: unknown key produced data"),
                        );
                    }
                }
            }
            if deadline_ms == 0 && ex.outcome.has_data() {
                violate(
                    &mut violations,
                    format!("iter {i}: zero deadline budget still produced data"),
                );
            }
        }
    }

    proxy.stop();
    server.shutdown();
    let server_stats = server.join();
    let peak_bytes = if mem::counting_alloc_installed() {
        mem::peak_since(mem_baseline)
    } else {
        0
    };

    if server_stats.panics > 0 {
        violate(
            &mut violations,
            format!("{} worker panic(s)", server_stats.panics),
        );
    }
    if server_stats.post_deadline_responses > 0 {
        violate(
            &mut violations,
            format!(
                "{} data frame(s) decided after deadline",
                server_stats.post_deadline_responses
            ),
        );
    }
    if mem::counting_alloc_installed() && peak_bytes > cfg.max_peak_bytes {
        violate(
            &mut violations,
            format!(
                "peak allocation {peak_bytes} exceeds bound {}",
                cfg.max_peak_bytes
            ),
        );
    }

    let _ = std::fs::remove_dir_all(&cfg.store_dir);
    ServeTortureReport {
        iters: cfg.iters,
        outcomes: outcome_counts.into_iter().collect(),
        server: server_stats,
        late_frames,
        peak_bytes,
        violations,
    }
}
