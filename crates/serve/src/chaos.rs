//! Deterministic chaos proxy: a TCP forwarder that injects connection-level
//! faults between client and server.
//!
//! Faults are chosen per connection from a seeded [`Rng`]: the proxy forks
//! the seed by connection index, so a run with the same seed and the same
//! (sequential) connection order replays the same fault schedule — the
//! torture harness depends on this for reproducibility.
//!
//! Injected faults (independently per direction):
//! - **delay**: a one-shot pause before the first forwarded chunk
//!   (head-of-line latency; a per-chunk pause would scale with stream
//!   size and stall multi-MB responses for tens of seconds);
//! - **corrupt**: one bit flipped in one forwarded chunk (wire corruption);
//! - **short**: the direction is severed after N bytes (truncation /
//!   mid-stream reset);
//! - **none**: bytes pass through untouched.

use amrviz_rng::Rng;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One direction's fault plan.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Fault {
    None,
    /// Sleep this long before the first forwarded chunk.
    Delay(Duration),
    /// XOR this bit mask into the byte at `at` (absolute stream offset).
    CorruptByte {
        at: u64,
        mask: u8,
    },
    /// Stop forwarding (and shut the write side) after this many bytes.
    ShortAfter(u64),
}

/// Chaos intensity knobs.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Probability a direction gets *some* fault.
    pub fault_prob: f64,
    /// Max injected per-chunk delay in milliseconds.
    pub max_delay_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            fault_prob: 0.4,
            max_delay_ms: 100,
        }
    }
}

fn pick_fault(rng: &mut Rng, cfg: &ChaosConfig) -> Fault {
    if !rng.chance(cfg.fault_prob) {
        return Fault::None;
    }
    match rng.below(3) {
        0 => Fault::Delay(Duration::from_millis(
            1 + rng.below(cfg.max_delay_ms.max(1)),
        )),
        1 => Fault::CorruptByte {
            at: rng.below(4096),
            mask: 1 << rng.below(8) as u8,
        },
        _ => Fault::ShortAfter(rng.below(2048)),
    }
}

/// Counters for post-run assertions.
#[derive(Debug, Default)]
pub struct ChaosStats {
    pub connections: AtomicU64,
    pub faults_delay: AtomicU64,
    pub faults_corrupt: AtomicU64,
    pub faults_short: AtomicU64,
}

/// A running chaos proxy.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ChaosStats>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on an OS-picked port forwarding to `upstream`.
    pub fn start(upstream: SocketAddr, seed: u64, cfg: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ChaosStats::default());
        let accept = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || accept_loop(&listener, upstream, seed, cfg, &stop, &stats))?
        };
        Ok(ChaosProxy {
            addr,
            stop,
            stats,
            accept: Some(accept),
        })
    }

    /// The proxy's listen address (point clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Stops accepting and joins the accept thread. In-flight pump threads
    /// finish on their own (sockets carry timeouts).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    seed: u64,
    cfg: ChaosConfig,
    stop: &AtomicBool,
    stats: &Arc<ChaosStats>,
) {
    let base = Rng::seed(seed);
    let mut conn_index = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let mut rng = base.fork(conn_index);
                conn_index += 1;
                let c2s = pick_fault(&mut rng, &cfg);
                let s2c = pick_fault(&mut rng, &cfg);
                for f in [c2s, s2c] {
                    match f {
                        Fault::Delay(_) => stats.faults_delay.fetch_add(1, Ordering::Relaxed),
                        Fault::CorruptByte { .. } => {
                            stats.faults_corrupt.fetch_add(1, Ordering::Relaxed)
                        }
                        Fault::ShortAfter(_) => stats.faults_short.fetch_add(1, Ordering::Relaxed),
                        Fault::None => 0,
                    };
                }
                let server = match TcpStream::connect_timeout(&upstream, Duration::from_secs(2)) {
                    Ok(s) => s,
                    Err(_) => continue, // upstream down: client sees a reset
                };
                spawn_pumps(client, server, c2s, s2c);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn spawn_pumps(client: TcpStream, server: TcpStream, c2s: Fault, s2c: Fault) {
    let io_t = Some(Duration::from_secs(5));
    for s in [&client, &server] {
        let _ = s.set_read_timeout(io_t);
        let _ = s.set_write_timeout(io_t);
        let _ = s.set_nodelay(true);
    }
    let (client_r, server_w) = match (client.try_clone(), server.try_clone()) {
        (Ok(c), Ok(s)) => (c, s),
        _ => return,
    };
    // Detached pump threads: they exit on EOF, socket error, or a
    // ShortAfter cut; socket timeouts bound their lifetime.
    let _ = std::thread::Builder::new()
        .name("chaos-c2s".into())
        .spawn(move || pump(client_r, server_w, c2s));
    let _ = std::thread::Builder::new()
        .name("chaos-s2c".into())
        .spawn(move || pump(server, client, s2c));
}

/// Copies one direction, applying the fault plan. Severs both half-closes
/// on exit so the peer observes EOF/reset rather than a hang.
fn pump(mut from: TcpStream, mut to: TcpStream, fault: Fault) {
    let mut buf = [0u8; 4096];
    let mut offset = 0u64;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let chunk = &mut buf[..n];
        match fault {
            Fault::None => {}
            Fault::Delay(d) => {
                if offset == 0 {
                    std::thread::sleep(d);
                }
            }
            Fault::CorruptByte { at, mask } => {
                if at >= offset && at < offset + n as u64 {
                    chunk[(at - offset) as usize] ^= mask;
                }
            }
            Fault::ShortAfter(cut) => {
                if offset >= cut {
                    break;
                }
                let keep = ((cut - offset) as usize).min(n);
                if keep < n {
                    let _ = to.write_all(&chunk[..keep]);
                    break;
                }
            }
        }
        if to.write_all(chunk).is_err() {
            break;
        }
        offset += n as u64;
    }
    let _ = to.shutdown(Shutdown::Write);
    let _ = from.shutdown(Shutdown::Read);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let cfg = ChaosConfig::default();
        let base = Rng::seed(42);
        for conn in 0..64 {
            let mut a = base.fork(conn);
            let mut b = base.fork(conn);
            assert_eq!(pick_fault(&mut a, &cfg), pick_fault(&mut b, &cfg));
            assert_eq!(pick_fault(&mut a, &cfg), pick_fault(&mut b, &cfg));
        }
    }

    #[test]
    fn passthrough_proxy_forwards_bytes() {
        // fault_prob 0 ⇒ pure forwarder; check bytes survive both ways.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let up_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 5];
            s.read_exact(&mut buf).unwrap();
            s.write_all(&buf).unwrap();
        });
        let proxy = ChaosProxy::start(
            up_addr,
            1,
            ChaosConfig {
                fault_prob: 0.0,
                max_delay_ms: 0,
            },
        )
        .unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"hello").unwrap();
        let mut back = [0u8; 5];
        c.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello");
        echo.join().unwrap();
        assert_eq!(proxy.stats().connections.load(Ordering::Relaxed), 1);
        proxy.stop();
    }
}
