//! Blocking client for the serve protocol: one request per connection.
//!
//! The client is deliberately paranoid — it is the measurement instrument
//! for the torture and loadgen harnesses. Every frame is parsed under a
//! strict decode budget (a chaos-corrupted frame is a typed
//! `ProtocolError`, never a panic), every frame's *arrival* time is checked
//! against the request deadline plus a grace allowance, and a stream that
//! ends without `END` is classified as a deadline cut (valid progressive
//! prefix), not success.

use crate::proto::{
    self, EndFrame, LevelSummary, Op, Request, RespHeader, Status, MAX_RESPONSE_FRAME,
};
use amrviz_codec::DecodeBudget;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Client-side classification of one exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Complete stream, all fabs clean.
    Ok,
    /// Complete stream, served with repaired fabs (`FLAG_DEGRADED`).
    Degraded,
    /// Header arrived but the stream was cut before `END` — the server hit
    /// its deadline mid-response. The received prefix is usable.
    CutShort,
    /// Typed shed (`RetryLater`).
    Shed,
    /// Typed `Timeout`.
    Timeout,
    /// Typed `NotFound`.
    NotFound,
    /// Typed `Corrupt`.
    Corrupt,
    /// Typed `BadRequest` / `ShuttingDown` / `Internal`.
    Refused,
    /// Connect or socket-level failure (includes chaos resets).
    IoError,
    /// A frame failed to parse (chaos corruption on the response path).
    ProtocolError,
}

impl Outcome {
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Degraded => "degraded",
            Outcome::CutShort => "cut_short",
            Outcome::Shed => "shed",
            Outcome::Timeout => "timeout",
            Outcome::NotFound => "not_found",
            Outcome::Corrupt => "corrupt",
            Outcome::Refused => "refused",
            Outcome::IoError => "io_error",
            Outcome::ProtocolError => "protocol_error",
        }
    }

    /// True when backing off and retrying the same request makes sense.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            Outcome::Shed | Outcome::Timeout | Outcome::IoError | Outcome::CutShort
        )
    }

    /// True when the client received *usable* hierarchy data (possibly a
    /// prefix).
    pub fn has_data(self) -> bool {
        matches!(self, Outcome::Ok | Outcome::Degraded | Outcome::CutShort)
    }
}

/// Everything observed during one exchange.
#[derive(Debug)]
pub struct Exchange {
    pub outcome: Outcome,
    pub header: Option<RespHeader>,
    pub levels: Vec<LevelSummary>,
    pub keys: Option<Vec<u64>>,
    /// STATS snapshot JSON (`Op::Stats` responses).
    pub stats: Option<String>,
    pub end: Option<EndFrame>,
    /// Wire bytes received (payloads only).
    pub bytes: u64,
    pub elapsed: Duration,
    /// Frames whose *arrival* was later than `deadline + grace` — the
    /// client-side check of the server's no-response-after-deadline
    /// invariant. Grace absorbs proxy/chaos delay and scheduling noise.
    pub late_frames: u64,
}

/// Client knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Socket connect/read/write timeout.
    pub io_timeout: Duration,
    /// Allowance past the request deadline before an arriving frame counts
    /// as late (network + chaos-delay + scheduling slack).
    pub grace: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            io_timeout: Duration::from_millis(3_000),
            grace: Duration::from_millis(500),
        }
    }
}

/// Performs one request against `addr` and classifies the result. Never
/// panics; every failure mode maps onto an [`Outcome`].
pub fn exchange(addr: SocketAddr, req: &Request, cfg: &ClientConfig) -> Exchange {
    let t0 = Instant::now();
    // Late-frame accounting only applies to ops with a deadline semantic.
    let late_cutoff = if req.op == Op::Get && req.deadline_ms > 0 {
        Some(t0 + Duration::from_millis(req.deadline_ms as u64) + cfg.grace)
    } else {
        None
    };
    let mut ex = Exchange {
        outcome: Outcome::IoError,
        header: None,
        levels: Vec::new(),
        keys: None,
        stats: None,
        end: None,
        bytes: 0,
        elapsed: Duration::ZERO,
        late_frames: 0,
    };
    let finish = |mut ex: Exchange| {
        ex.elapsed = t0.elapsed();
        ex
    };

    let mut stream = match TcpStream::connect_timeout(&addr, cfg.io_timeout) {
        Ok(s) => s,
        Err(_) => return finish(ex),
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(cfg.io_timeout));
    if proto::write_frame(&mut stream, &req.encode()).is_err() {
        return finish(ex);
    }
    let budget = DecodeBudget::permissive();
    loop {
        let payload = match proto::read_frame(&mut stream, MAX_RESPONSE_FRAME) {
            Ok(Some(p)) => p,
            Ok(None) => {
                // Clean close. With a header but no END: deadline cut.
                ex.outcome = match ex.header {
                    Some(h) if ex.end.is_none() && h.status_streams_data() => Outcome::CutShort,
                    Some(_) => ex.outcome,
                    None => Outcome::IoError,
                };
                return finish(ex);
            }
            Err(_) => {
                if ex.header.is_some() && ex.end.is_none() {
                    // Mid-stream socket error after data: treat as a cut.
                    ex.outcome = Outcome::CutShort;
                } else {
                    ex.outcome = Outcome::IoError;
                }
                return finish(ex);
            }
        };
        ex.bytes += payload.len() as u64;
        if let Some(cutoff) = late_cutoff {
            if Instant::now() > cutoff {
                ex.late_frames += 1;
            }
        }
        let Some(&tag) = payload.first() else {
            ex.outcome = Outcome::ProtocolError;
            return finish(ex);
        };
        match tag {
            proto::TAG_HEADER => {
                let h = match RespHeader::decode(&payload) {
                    Ok(h) => h,
                    Err(_) => {
                        ex.outcome = Outcome::ProtocolError;
                        return finish(ex);
                    }
                };
                ex.header = Some(h);
                match h.status {
                    Status::Ok | Status::Degraded => {} // data follows
                    Status::RetryLater => ex.outcome = Outcome::Shed,
                    Status::Timeout => ex.outcome = Outcome::Timeout,
                    Status::NotFound => ex.outcome = Outcome::NotFound,
                    Status::Corrupt => ex.outcome = Outcome::Corrupt,
                    Status::BadRequest | Status::ShuttingDown | Status::Internal => {
                        ex.outcome = Outcome::Refused
                    }
                }
            }
            proto::TAG_LEVEL => match proto::decode_level_frame(&payload, &budget) {
                Ok(s) => ex.levels.push(s),
                Err(_) => {
                    ex.outcome = Outcome::ProtocolError;
                    return finish(ex);
                }
            },
            proto::TAG_KEYS => match proto::decode_keys_frame(&payload, &budget) {
                Ok(k) => ex.keys = Some(k),
                Err(_) => {
                    ex.outcome = Outcome::ProtocolError;
                    return finish(ex);
                }
            },
            proto::TAG_STATS => match proto::decode_stats_frame(&payload, &budget) {
                Ok(s) => ex.stats = Some(s),
                Err(_) => {
                    ex.outcome = Outcome::ProtocolError;
                    return finish(ex);
                }
            },
            proto::TAG_END => {
                let e = match EndFrame::decode(&payload) {
                    Ok(e) => e,
                    Err(_) => {
                        ex.outcome = Outcome::ProtocolError;
                        return finish(ex);
                    }
                };
                ex.end = Some(e);
                if let Some(h) = ex.header {
                    if h.status_streams_data() {
                        ex.outcome = if h.flags & proto::FLAG_DEGRADED != 0 {
                            Outcome::Degraded
                        } else {
                            Outcome::Ok
                        };
                    }
                }
                return finish(ex);
            }
            _ => {
                ex.outcome = Outcome::ProtocolError;
                return finish(ex);
            }
        }
    }
}

impl RespHeader {
    /// True when this header announces a data-bearing stream (LEVEL/KEYS
    /// frames follow before END).
    pub fn status_streams_data(&self) -> bool {
        matches!(self.status, Status::Ok | Status::Degraded)
    }
}
