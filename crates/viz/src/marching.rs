//! Isosurface extraction on a sampled grid.
//!
//! Each cube of the node grid is decomposed into six tetrahedra (the Kuhn
//! triangulation around the main diagonal), and each tetrahedron is
//! triangulated against the iso-value. The decomposition is
//! translation-invariant, so shared cube faces are split along the same
//! diagonal on both sides and the extracted surface is watertight within a
//! level — exactly the property classic marching cubes provides, without a
//! hand-transcribed 256-case table (see DESIGN.md substitution note).
//!
//! Cracks between AMR *levels* (the paper's Fig. 1a) are unaffected by the
//! in-cell triangulator: they come from resolution mismatch at level
//! interfaces and are reproduced faithfully by the level extractors.

use std::collections::HashMap;

use crate::mesh::TriMesh;

/// A node-centered sampled scalar grid in physical space.
///
/// `dims` counts grid *nodes* per axis; cubes (cells) number `dims − 1` per
/// axis. `cell_mask`, when present, selects which cubes are triangulated
/// (used by the AMR extractors to restrict each level to its own region).
#[derive(Debug, Clone)]
pub struct SampledGrid {
    pub dims: [usize; 3],
    pub origin: [f64; 3],
    pub spacing: [f64; 3],
    pub values: Vec<f64>,
    pub cell_mask: Option<Vec<bool>>,
}

impl SampledGrid {
    /// Builds a full (unmasked) grid by evaluating `f` at every node.
    pub fn from_fn(
        dims: [usize; 3],
        origin: [f64; 3],
        spacing: [f64; 3],
        mut f: impl FnMut(f64, f64, f64) -> f64,
    ) -> Self {
        let [nx, ny, nz] = dims;
        let mut values = Vec::with_capacity(nx * ny * nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    values.push(f(
                        origin[0] + i as f64 * spacing[0],
                        origin[1] + j as f64 * spacing[1],
                        origin[2] + k as f64 * spacing[2],
                    ));
                }
            }
        }
        SampledGrid {
            dims,
            origin,
            spacing,
            values,
            cell_mask: None,
        }
    }

    /// Number of cubes along each axis.
    pub fn cell_dims(&self) -> [usize; 3] {
        [
            self.dims[0].saturating_sub(1),
            self.dims[1].saturating_sub(1),
            self.dims[2].saturating_sub(1),
        ]
    }

    #[inline]
    fn node_id(&self, i: usize, j: usize, k: usize) -> u64 {
        (i + self.dims[0] * (j + self.dims[1] * k)) as u64
    }

    #[inline]
    fn node_pos(&self, i: usize, j: usize, k: usize) -> [f64; 3] {
        [
            self.origin[0] + i as f64 * self.spacing[0],
            self.origin[1] + j as f64 * self.spacing[1],
            self.origin[2] + k as f64 * self.spacing[2],
        ]
    }
}

/// The six Kuhn tetrahedra of a cube, as corner indices (`dx + 2dy + 4dz`).
/// All share the main diagonal 0–7; every cube face is split along the same
/// diagonal as its neighbor's matching face.
const TETS: [[usize; 4]; 6] = [
    [0, 1, 3, 7],
    [0, 1, 5, 7],
    [0, 2, 3, 7],
    [0, 2, 6, 7],
    [0, 4, 5, 7],
    [0, 4, 6, 7],
];

/// Interpolation parameter clamp: keeps crossing vertices strictly off grid
/// nodes so no triangle degenerates when a sample equals the iso-value.
const T_EPS: f64 = 1e-6;

struct Extractor {
    iso: f64,
    mesh: TriMesh,
    /// Welding map: edge (lo node id, hi node id) → mesh vertex index.
    edge_vertices: HashMap<(u64, u64), u32>,
}

impl Extractor {
    /// Mesh vertex on the crossing of edge (a, b); created on first use.
    fn edge_vertex(&mut self, a: (u64, [f64; 3], f64), b: (u64, [f64; 3], f64)) -> u32 {
        let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if let Some(&v) = self.edge_vertices.get(&key) {
            return v;
        }
        // Deterministic orientation of the interpolation (lo id → hi id) so
        // both incident cubes compute bit-identical positions.
        let (p, q) = if a.0 < b.0 { (a, b) } else { (b, a) };
        let (va, vb) = (p.2, q.2);
        let t = ((self.iso - va) / (vb - va)).clamp(T_EPS, 1.0 - T_EPS);
        let pos = [
            p.1[0] + t * (q.1[0] - p.1[0]),
            p.1[1] + t * (q.1[1] - p.1[1]),
            p.1[2] + t * (q.1[2] - p.1[2]),
        ];
        let idx = self.mesh.vertices.len() as u32;
        self.mesh.vertices.push(pos);
        self.edge_vertices.insert(key, idx);
        idx
    }

    /// Emits a triangle oriented so its normal points toward *lower* field
    /// values (outward from the `v ≥ iso` region), using the exact gradient
    /// of the linear interpolant over the tetrahedron.
    fn emit(&mut self, tri: [u32; 3], grad: [f64; 3]) {
        let p = self.mesh.vertices[tri[0] as usize];
        let q = self.mesh.vertices[tri[1] as usize];
        let r = self.mesh.vertices[tri[2] as usize];
        let u = [q[0] - p[0], q[1] - p[1], q[2] - p[2]];
        let v = [r[0] - p[0], r[1] - p[1], r[2] - p[2]];
        let n = [
            u[1] * v[2] - u[2] * v[1],
            u[2] * v[0] - u[0] * v[2],
            u[0] * v[1] - u[1] * v[0],
        ];
        let dot = n[0] * grad[0] + n[1] * grad[1] + n[2] * grad[2];
        if dot > 0.0 {
            self.mesh.triangles.push([tri[0], tri[2], tri[1]]);
        } else {
            self.mesh.triangles.push(tri);
        }
    }

    fn march_tet(&mut self, corners: &[(u64, [f64; 3], f64); 4]) {
        let inside: Vec<usize> = (0..4).filter(|&c| corners[c].2 >= self.iso).collect();
        if inside.is_empty() || inside.len() == 4 {
            return;
        }
        // Gradient of the linear interpolant: solve Mᵀ·g = dv with rows
        // (corner_i − corner_0).
        let grad = tet_gradient(corners);

        let outside: Vec<usize> = (0..4).filter(|c| !inside.contains(c)).collect();
        match inside.len() {
            1 => {
                let a = corners[inside[0]];
                let tri = [
                    self.edge_vertex(a, corners[outside[0]]),
                    self.edge_vertex(a, corners[outside[1]]),
                    self.edge_vertex(a, corners[outside[2]]),
                ];
                self.emit(tri, grad);
            }
            3 => {
                let d = corners[outside[0]];
                let tri = [
                    self.edge_vertex(d, corners[inside[0]]),
                    self.edge_vertex(d, corners[inside[1]]),
                    self.edge_vertex(d, corners[inside[2]]),
                ];
                self.emit(tri, grad);
            }
            2 => {
                let (a, b) = (corners[inside[0]], corners[inside[1]]);
                let (c, d) = (corners[outside[0]], corners[outside[1]]);
                // Quad cycle AC → AD → BD → BC (consecutive pairs share a
                // tet face), split into two triangles.
                let ac = self.edge_vertex(a, c);
                let ad = self.edge_vertex(a, d);
                let bd = self.edge_vertex(b, d);
                let bc = self.edge_vertex(b, c);
                self.emit([ac, ad, bd], grad);
                self.emit([ac, bd, bc], grad);
            }
            _ => unreachable!(),
        }
    }
}

/// Gradient of the linear field over a tetrahedron (Cramer's rule on the
/// 3×3 edge-matrix system).
fn tet_gradient(corners: &[(u64, [f64; 3], f64); 4]) -> [f64; 3] {
    let p0 = corners[0].1;
    let v0 = corners[0].2;
    let mut m = [[0.0f64; 3]; 3];
    let mut dv = [0.0f64; 3];
    for r in 0..3 {
        let c = &corners[r + 1];
        for a in 0..3 {
            m[r][a] = c.1[a] - p0[a];
        }
        dv[r] = c.2 - v0;
    }
    let det = |m: &[[f64; 3]; 3]| -> f64 {
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    };
    let d = det(&m);
    if d == 0.0 {
        return [0.0; 3];
    }
    let mut g = [0.0f64; 3];
    for a in 0..3 {
        let mut ma = m;
        for r in 0..3 {
            ma[r][a] = dv[r];
        }
        g[a] = det(&ma) / d;
    }
    g
}

/// Extracts the isosurface `value == iso` from a sampled grid.
///
/// Large grids are processed as parallel z-slabs; duplicated crossing
/// vertices on slab-boundary planes (whose positions are bit-identical by
/// construction — both slabs interpolate the same edge the same way) are
/// merged afterwards, so the result is independent of the slab split.
pub fn marching_tetrahedra(grid: &SampledGrid, iso: f64) -> TriMesh {
    let [cx, cy, cz] = grid.cell_dims();
    if cx == 0 || cy == 0 || cz == 0 {
        return TriMesh::new();
    }
    if let Some(mask) = &grid.cell_mask {
        assert_eq!(mask.len(), cx * cy * cz, "cell mask size mismatch");
    }
    // Fixed slab height keeps the decomposition (and thus the output)
    // independent of thread count.
    const SLAB: usize = 32;
    if cz <= SLAB {
        let mesh = extract_range(grid, iso, 0, cz);
        amrviz_obs::counter!("viz.triangles", mesh.num_triangles());
        return mesh;
    }
    let n_slabs = cz.div_ceil(SLAB);
    let slabs: Vec<TriMesh> = amrviz_par::run(n_slabs, |s| {
        let t0 = amrviz_obs::is_enabled().then(std::time::Instant::now);
        let mesh = extract_range(grid, iso, s * SLAB, ((s + 1) * SLAB).min(cz));
        if let Some(t0) = t0 {
            amrviz_obs::histogram!("extract.slab_us", t0.elapsed().as_micros());
        }
        mesh
    });

    // Merge, de-duplicating vertices that lie exactly on interior boundary
    // planes (z = origin + k·spacing for slab boundaries k).
    let boundary_zs: std::collections::HashSet<u64> = (1..n_slabs)
        .map(|s| (grid.origin[2] + (s * SLAB) as f64 * grid.spacing[2]).to_bits())
        .collect();
    // The first slab seeds the output by move: with the shared map empty, the
    // copy loop below would append every one of its vertices in order anyway,
    // so taking over its buffers is byte-identical — unless the slab itself
    // holds two bit-equal boundary-plane vertices, which the copy loop would
    // have merged. The pre-scan detects that (pathological) case and falls
    // back to copying the first slab too. Remaining slabs are consumed one at
    // a time — each freed as soon as it is merged — with exact reservations,
    // so the merge holds ~one output plus one slab rather than two full
    // meshes.
    let mut slabs = slabs.into_iter();
    let first = slabs.next().expect("cz > SLAB implies at least two slabs");
    let mut shared: HashMap<[u64; 3], u32> = HashMap::new();
    let mut seed_dup = false;
    for (i, p) in first.vertices.iter().enumerate() {
        let key = [p[0].to_bits(), p[1].to_bits(), p[2].to_bits()];
        if boundary_zs.contains(&key[2]) && shared.insert(key, i as u32).is_some() {
            seed_dup = true;
            break;
        }
    }
    let (mut out, fallback) = if seed_dup {
        shared.clear();
        (TriMesh::new(), Some(first))
    } else {
        (first, None)
    };
    let mut remap = Vec::new();
    for slab in fallback.into_iter().chain(slabs) {
        remap.clear();
        remap.reserve(slab.vertices.len());
        out.vertices.reserve_exact(slab.vertices.len());
        out.triangles.reserve_exact(slab.triangles.len());
        for &p in &slab.vertices {
            let key = [p[0].to_bits(), p[1].to_bits(), p[2].to_bits()];
            let id = if boundary_zs.contains(&key[2]) {
                *shared.entry(key).or_insert_with(|| {
                    let id = out.vertices.len() as u32;
                    out.vertices.push(p);
                    id
                })
            } else {
                let id = out.vertices.len() as u32;
                out.vertices.push(p);
                id
            };
            remap.push(id);
        }
        out.triangles.extend(slab.triangles.iter().map(|t| {
            [
                remap[t[0] as usize],
                remap[t[1] as usize],
                remap[t[2] as usize],
            ]
        }));
    }
    amrviz_obs::counter!("viz.triangles", out.num_triangles());
    out
}

/// Sequential extraction of the cube slab `k_begin..k_end`.
fn extract_range(grid: &SampledGrid, iso: f64, k_begin: usize, k_end: usize) -> TriMesh {
    let [cx, cy, _cz] = grid.cell_dims();
    let mut ex = Extractor {
        iso,
        mesh: TriMesh::new(),
        edge_vertices: HashMap::new(),
    };
    let [nx, ny, _] = grid.dims;
    for k in k_begin..k_end {
        for j in 0..cy {
            for i in 0..cx {
                if let Some(mask) = &grid.cell_mask {
                    if !mask[i + cx * (j + cy * k)] {
                        continue;
                    }
                }
                // Quick reject: all 8 corners same side.
                let mut any_in = false;
                let mut any_out = false;
                let mut corners = [(0u64, [0.0f64; 3], 0.0f64); 8];
                for dz in 0..2usize {
                    for dy in 0..2usize {
                        for dx in 0..2usize {
                            let (gi, gj, gk) = (i + dx, j + dy, k + dz);
                            let v = grid.values[gi + nx * (gj + ny * gk)];
                            let c = dx + 2 * dy + 4 * dz;
                            corners[c] = (grid.node_id(gi, gj, gk), grid.node_pos(gi, gj, gk), v);
                            if v >= iso {
                                any_in = true;
                            } else {
                                any_out = true;
                            }
                        }
                    }
                }
                if !(any_in && any_out) {
                    continue;
                }
                for tet in &TETS {
                    let tc = [
                        corners[tet[0]],
                        corners[tet[1]],
                        corners[tet[2]],
                        corners[tet[3]],
                    ];
                    ex.march_tet(&tc);
                }
            }
        }
    }
    // Trim the doubling-growth overshoot: the mesh is retained (and, on the
    // slab path, coexists with its siblings during the merge) long after
    // extraction, so the ~25% capacity slack is pure dead weight.
    ex.mesh.vertices.shrink_to_fit();
    ex.mesh.triangles.shrink_to_fit();
    ex.mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere_grid(n: usize, r: f64) -> SampledGrid {
        // Field = r − |x − c|: positive inside the ball.
        let c = [0.5, 0.5, 0.5];
        SampledGrid::from_fn([n, n, n], [0.0; 3], [1.0 / (n - 1) as f64; 3], |x, y, z| {
            r - ((x - c[0]).powi(2) + (y - c[1]).powi(2) + (z - c[2]).powi(2)).sqrt()
        })
    }

    #[test]
    fn sphere_is_watertight_with_correct_area() {
        let grid = sphere_grid(33, 0.3);
        let mesh = marching_tetrahedra(&grid, 0.0);
        assert!(mesh.num_triangles() > 500);
        assert!(
            mesh.is_watertight(),
            "open edges: {}",
            mesh.boundary_edges().len()
        );
        let area = mesh.total_area();
        let exact = 4.0 * std::f64::consts::PI * 0.3 * 0.3;
        assert!(
            (area - exact).abs() / exact < 0.05,
            "area {area:.4} vs exact {exact:.4}"
        );
    }

    #[test]
    fn sphere_normals_point_outward() {
        let grid = sphere_grid(17, 0.3);
        let mesh = marching_tetrahedra(&grid, 0.0);
        for t in 0..mesh.num_triangles() {
            let n = mesh.face_normal(t);
            let c = mesh.face_centroid(t);
            let radial = [c[0] - 0.5, c[1] - 0.5, c[2] - 0.5];
            let dot = n[0] * radial[0] + n[1] * radial[1] + n[2] * radial[2];
            assert!(dot > 0.0, "inward normal at triangle {t}");
        }
    }

    #[test]
    fn sphere_vertices_lie_near_radius() {
        let grid = sphere_grid(33, 0.3);
        let mesh = marching_tetrahedra(&grid, 0.0);
        let h = 1.0 / 32.0;
        for v in &mesh.vertices {
            let r = ((v[0] - 0.5).powi(2) + (v[1] - 0.5).powi(2) + (v[2] - 0.5).powi(2)).sqrt();
            assert!((r - 0.3).abs() < h, "vertex off surface: r = {r}");
        }
    }

    #[test]
    fn plane_isosurface_is_flat() {
        let grid = SampledGrid::from_fn([9, 9, 9], [0.0; 3], [0.125; 3], |x, _, _| x);
        let mesh = marching_tetrahedra(&grid, 0.5);
        assert!(!mesh.is_empty());
        for v in &mesh.vertices {
            assert!((v[0] - 0.5).abs() < 1e-5, "vertex off plane: {v:?}");
        }
        // The plane cuts the whole unit cross-section.
        assert!((mesh.total_area() - 1.0).abs() < 1e-4);
        // Boundary = the square outline (length 4).
        assert!((mesh.boundary_length() - 4.0).abs() < 1e-4);
    }

    #[test]
    fn empty_when_no_crossing() {
        let grid = SampledGrid::from_fn([5, 5, 5], [0.0; 3], [0.25; 3], |_, _, _| 1.0);
        assert!(marching_tetrahedra(&grid, 2.0).is_empty());
        assert!(marching_tetrahedra(&grid, 0.0).is_empty());
    }

    #[test]
    fn cell_mask_restricts_output() {
        let mut grid = SampledGrid::from_fn([9, 9, 9], [0.0; 3], [0.125; 3], |x, _, _| x);
        let cd = grid.cell_dims();
        // Only march the k < 4 half.
        let mask: Vec<bool> = (0..cd[0] * cd[1] * cd[2])
            .map(|n| (n / (cd[0] * cd[1])) < 4)
            .collect();
        grid.cell_mask = Some(mask);
        let mesh = marching_tetrahedra(&grid, 0.5);
        assert!(!mesh.is_empty());
        for v in &mesh.vertices {
            assert!(v[2] <= 0.5 + 1e-9, "vertex escaped mask: {v:?}");
        }
        // Half the plane → half the area.
        assert!((mesh.total_area() - 0.5).abs() < 1e-4);
    }

    #[test]
    fn values_equal_to_iso_do_not_degenerate() {
        // Many nodes exactly on the iso-value.
        let grid = SampledGrid::from_fn([7, 7, 7], [0.0; 3], [1.0; 3], |x, y, z| {
            ((x + y + z) as i64 % 2) as f64
        });
        let mesh = marching_tetrahedra(&grid, 0.5);
        for t in 0..mesh.num_triangles() {
            assert!(mesh.face_area(t) > 0.0, "degenerate triangle {t}");
        }
    }

    #[test]
    fn degenerate_grid_dims() {
        let grid = SampledGrid::from_fn([1, 5, 5], [0.0; 3], [1.0; 3], |_, _, _| 1.0);
        assert!(marching_tetrahedra(&grid, 0.5).is_empty());
    }

    #[test]
    fn parallel_slab_path_is_watertight_and_seamless() {
        // 80 nodes → 79 cubes > SLAB: exercises the parallel merge. Any
        // missed vertex dedup on slab planes would show up as open edges.
        let grid = sphere_grid(80, 0.35);
        let mesh = marching_tetrahedra(&grid, 0.0);
        assert!(mesh.num_triangles() > 10_000);
        assert!(
            mesh.is_watertight(),
            "open edges across slab boundaries: {}",
            mesh.boundary_edges().len()
        );
        let exact = 4.0 * std::f64::consts::PI * 0.35 * 0.35;
        assert!((mesh.total_area() - exact).abs() / exact < 0.02);
        // No duplicated vertices anywhere (welding with a tiny tolerance
        // must be a no-op). `mesh` is not needed afterwards, so weld in place.
        let mut welded = mesh;
        assert_eq!(welded.weld(1e-12), 0, "duplicate vertices survived merge");
    }

    #[test]
    fn translation_invariance_of_topology() {
        // The same sphere sampled at an offset grid: equal triangle counts
        // aren't guaranteed, but watertightness and area must persist.
        let c = [0.53, 0.47, 0.51];
        let grid = SampledGrid::from_fn([33, 33, 33], [0.0; 3], [1.0 / 32.0; 3], |x, y, z| {
            0.3 - ((x - c[0]).powi(2) + (y - c[1]).powi(2) + (z - c[2]).powi(2)).sqrt()
        });
        let mesh = marching_tetrahedra(&grid, 0.0);
        assert!(mesh.is_watertight());
        let exact = 4.0 * std::f64::consts::PI * 0.09;
        assert!((mesh.total_area() - exact).abs() / exact < 0.05);
    }
}
