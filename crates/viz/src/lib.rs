//! AMR isosurface visualization.
//!
//! Implements both visualization pipelines the paper compares (§2.3–2.4,
//! §3.1), plus the quantitative surface metrics we use in place of its
//! visual figure panels:
//!
//! * [`mesh`] — indexed triangle meshes with welding, areas, normals and
//!   boundary-edge extraction;
//! * [`marching`] — isosurface extraction on a sampled grid via a
//!   translation-invariant 6-tetrahedra decomposition of each cube
//!   (marching-cubes-equivalent; see DESIGN.md for the substitution note);
//! * [`resampling`] — the **basic** method: cell→vertex re-sampling per
//!   level then marching; exhibits cracks between AMR levels;
//! * [`dual`] — the **advanced** method: dual grids connecting cell centers,
//!   optionally extended one coarse ring into the fine region using the
//!   redundant coarse data ("switching cells"), which closes the gaps;
//! * [`pipeline`] — method selection and whole-hierarchy extraction;
//! * [`crack`] — crack/gap quantification at level interfaces;
//! * [`surface_compare`] — mesh↔mesh distance and normal-roughness metrics
//!   (our quantitative stand-in for Figures 9–11);
//! * [`obj`] — OBJ/PLY export for eyeballing results in external viewers.
//!
//! ```
//! use amrviz_viz::{marching_tetrahedra, SampledGrid};
//!
//! // A sphere of radius 0.3 in the unit cube.
//! let grid = SampledGrid::from_fn([17, 17, 17], [0.0; 3], [1.0 / 16.0; 3], |x, y, z| {
//!     0.3 - ((x - 0.5f64).powi(2) + (y - 0.5).powi(2) + (z - 0.5).powi(2)).sqrt()
//! });
//! let mesh = marching_tetrahedra(&grid, 0.0);
//! assert!(mesh.is_watertight());
//! let exact = 4.0 * std::f64::consts::PI * 0.3 * 0.3;
//! assert!((mesh.total_area() - exact).abs() / exact < 0.1);
//! ```

pub mod crack;
pub mod dual;
pub mod marching;
pub mod mesh;
pub mod obj;
pub mod pipeline;
pub mod resampling;
pub mod stitch;
pub mod surface_compare;

pub use crack::{interface_gap, CrackMetrics};
pub use dual::{extract_dual_level, DualMode};
pub use marching::{marching_tetrahedra, SampledGrid};
pub use mesh::TriMesh;
pub use pipeline::{extract_amr_isosurface, AmrIsoResult, IsoMethod};
pub use resampling::extract_resampled_level;
pub use stitch::stitch_rims;
pub use surface_compare::{
    normal_roughness, surface_distance, surface_distance_to, SurfaceDistance, TriLocator,
};
