//! The advanced AMR visualization method: dual-cell extraction
//! (paper §2.4, after Weber et al. 2001).
//!
//! Instead of re-sampling, the dual method builds a grid whose nodes are
//! the *cell centers* and marches the dual cells connecting them, using the
//! original data values unchanged. This avoids the dangling-node conflicts
//! of re-sampling — but the dual grid of each level stops half a cell from
//! the level boundary, producing **gaps** between levels (Fig. 1b / Fig. 8).
//!
//! [`DualMode::SwitchingCells`] closes the gaps using the redundant coarse
//! data of patch-based AMR: coarse dual cells that reach *into* the fine
//! region (but touch at least one uncovered coarse cell) are also marched,
//! overlapping the fine level's surface (Fig. 1c / upper part of Fig. 8).
//!
//! Crucially for the paper's thesis: dual-cell passes raw (decompressed)
//! cell values straight to the triangulator — no interpolation smooths the
//! compression artifacts, which is why this method *amplifies* them (§4.3).

use amrviz_amr::multifab::rasterize_into;
use amrviz_amr::{AmrHierarchy, IntVect, MultiFab};

use crate::marching::{marching_tetrahedra, SampledGrid};
use crate::mesh::TriMesh;

/// Gap handling at coarse/fine interfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DualMode {
    /// Plain dual cells: march only where all 8 cells are unique (valid and
    /// not covered by finer data). Leaves gaps between levels.
    Plain,
    /// Use redundant coarse data ("switching cells"): also march coarse dual
    /// cells extending into the fine region, as long as they touch at least
    /// one uncovered cell. Closes the visual gap.
    SwitchingCells,
}

/// Extracts the `iso` surface of one level using the dual-cell method.
pub fn extract_dual_level(
    hier: &AmrHierarchy,
    level_data: &MultiFab,
    lev: usize,
    iso: f64,
    mode: DualMode,
) -> TriMesh {
    let dom = hier.level_domain(lev);
    let [cx, cy, cz] = dom.size();
    if cx < 2 || cy < 2 || cz < 2 {
        return TriMesh::new();
    }
    let ratio0 = hier.ratio_to_level0(lev);
    let h = hier.geometry().cell_size_at(ratio0);

    let mut cells = vec![0.0f64; dom.num_cells()];
    rasterize_into(level_data, dom, &mut cells);
    let valid = hier.valid_mask(lev);
    let covered = hier.covered_mask(lev);

    // Dual cells connect 2×2×2 neighborhoods of cell centers. Parallel
    // over dual-cell slabs.
    let (dx, dy, dz) = (cx - 1, cy - 1, cz - 1);
    let mut mask = vec![false; dx * dy * dz];
    let sp_mask = amrviz_obs::span!("dual.mask", level = lev);
    amrviz_par::for_each_chunk_mut(&mut mask, dx * dy, |k, slab| {
        for j in 0..dy {
            for i in 0..dx {
                let mut all_valid = true;
                let mut any_unique = false;
                let mut all_unique = true;
                for dk in 0..2i64 {
                    for dj in 0..2i64 {
                        for di in 0..2i64 {
                            let iv = dom.lo()
                                + IntVect::new(i as i64 + di, j as i64 + dj, k as i64 + dk);
                            let v = valid.get_unchecked(iv);
                            let c = covered.get_unchecked(iv);
                            all_valid &= v;
                            let unique = v && !c;
                            any_unique |= unique;
                            all_unique &= unique;
                        }
                    }
                }
                slab[i + dx * j] = match mode {
                    DualMode::Plain => all_unique,
                    DualMode::SwitchingCells => all_valid && any_unique,
                };
            }
        }
    });
    sp_mask.finish();

    // Node grid sits at cell centers: origin shifted by h/2.
    let origin = [
        hier.geometry().prob_lo[0] + (dom.lo()[0] as f64 + 0.5) * h[0],
        hier.geometry().prob_lo[1] + (dom.lo()[1] as f64 + 0.5) * h[1],
        hier.geometry().prob_lo[2] + (dom.lo()[2] as f64 + 0.5) * h[2],
    ];
    let grid = SampledGrid {
        dims: [cx, cy, cz],
        origin,
        spacing: h,
        values: cells,
        cell_mask: Some(mask),
    };
    let _sp = amrviz_obs::span!("dual.march", level = lev);
    marching_tetrahedra(&grid, iso)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_amr::{Box3, BoxArray, Geometry};

    fn sphere_field(g: Geometry, ratio: i64) -> impl Fn(IntVect) -> f64 {
        move |iv| {
            let p = g.cell_center(iv, ratio);
            0.3 - ((p[0] - 0.5).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2)).sqrt()
        }
    }

    fn single_level(n: usize) -> AmrHierarchy {
        let geom = Geometry::unit(Box3::from_dims(n, n, n));
        let mut h = AmrHierarchy::single_level(geom);
        let f = sphere_field(*h.geometry(), 1);
        h.add_field_from_fn("f", move |_, iv| f(iv)).unwrap();
        h
    }

    fn two_level() -> AmrHierarchy {
        let geom = Geometry::unit(Box3::from_dims(16, 16, 16));
        let mut h = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::single(Box3::new(IntVect::new(16, 0, 0), IntVect::new(31, 31, 31))),
            ],
        )
        .unwrap();
        let g = *h.geometry();
        h.add_field_from_fn("f", move |lev, iv| {
            sphere_field(g, if lev == 0 { 1 } else { 2 })(iv)
        })
        .unwrap();
        h
    }

    #[test]
    fn uniform_level_sphere_is_watertight() {
        let h = single_level(24);
        let mesh = extract_dual_level(&h, h.field_level("f", 0).unwrap(), 0, 0.0, DualMode::Plain);
        assert!(mesh.num_triangles() > 200);
        assert!(mesh.is_watertight());
        let exact = 4.0 * std::f64::consts::PI * 0.09;
        assert!((mesh.total_area() - exact).abs() / exact < 0.1);
    }

    #[test]
    fn plain_mode_leaves_a_gap() {
        let h = two_level();
        let coarse =
            extract_dual_level(&h, h.field_level("f", 0).unwrap(), 0, 0.0, DualMode::Plain);
        let fine = extract_dual_level(&h, h.field_level("f", 1).unwrap(), 1, 0.0, DualMode::Plain);
        let hc = 1.0 / 16.0;
        let hf = 1.0 / 32.0;
        // Plain coarse dual stops at least half a coarse cell short of the
        // interface at x = 0.5.
        let coarse_max_x = coarse
            .vertices
            .iter()
            .map(|v| v[0])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            coarse_max_x <= 0.5 - hc / 2.0 + 1e-9,
            "coarse dual reached {coarse_max_x}"
        );
        // Fine dual starts at least half a fine cell past the interface.
        let fine_min_x = fine
            .vertices
            .iter()
            .map(|v| v[0])
            .fold(f64::INFINITY, f64::min);
        assert!(
            fine_min_x >= 0.5 + hf / 2.0 - 1e-9,
            "fine dual reached {fine_min_x}"
        );
        // The gap between the two surfaces is ≈ (h_c + h_f)/2 wide.
        assert!(fine_min_x - coarse_max_x >= 0.5 * (hc + hf) - 1e-9);
    }

    #[test]
    fn switching_cells_close_the_gap() {
        let h = two_level();
        let coarse = extract_dual_level(
            &h,
            h.field_level("f", 0).unwrap(),
            0,
            0.0,
            DualMode::SwitchingCells,
        );
        let fine = extract_dual_level(&h, h.field_level("f", 1).unwrap(), 1, 0.0, DualMode::Plain);
        let hf = 1.0 / 32.0;
        // With redundant coarse data the coarse surface now extends past the
        // interface, overlapping the fine surface region.
        let coarse_max_x = coarse
            .vertices
            .iter()
            .map(|v| v[0])
            .fold(f64::NEG_INFINITY, f64::max);
        let fine_min_x = fine
            .vertices
            .iter()
            .map(|v| v[0])
            .fold(f64::INFINITY, f64::min);
        assert!(
            coarse_max_x >= fine_min_x - 1e-9,
            "no overlap: coarse ends {coarse_max_x}, fine starts {fine_min_x}"
        );
        // But not unboundedly far — only about one coarse dual ring.
        assert!(coarse_max_x <= 0.5 + 2.0 * hf + 1.0 / 16.0 + 1e-9);
    }

    #[test]
    fn dual_uses_raw_cell_values() {
        // A field that is exactly representable at cell centers: the dual
        // surface of f(x) = x − 0.5 must sit exactly at x = 0.5 (linear
        // interpolation between centers is exact for linear fields).
        let geom = Geometry::unit(Box3::from_dims(8, 8, 8));
        let mut h = AmrHierarchy::single_level(geom);
        let g = *h.geometry();
        h.add_field_from_fn("f", move |_, iv| g.cell_center(iv, 1)[0] - 0.5)
            .unwrap();
        let mesh = extract_dual_level(&h, h.field_level("f", 0).unwrap(), 0, 0.0, DualMode::Plain);
        assert!(!mesh.is_empty());
        for v in &mesh.vertices {
            assert!((v[0] - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn tiny_levels_yield_empty_meshes() {
        let geom = Geometry::unit(Box3::from_dims(1, 8, 8));
        let mut h = AmrHierarchy::single_level(geom);
        h.add_field_from_fn("f", |_, _| 1.0).unwrap();
        let mesh = extract_dual_level(&h, h.field_level("f", 0).unwrap(), 0, 0.5, DualMode::Plain);
        assert!(mesh.is_empty());
    }
}
