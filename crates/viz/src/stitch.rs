//! Stitching meshes: filling coarse/fine gaps with an explicit triangle
//! band (the alternative gap fix of Weber et al. 2001, paper §2.4 /
//! Fig. 8 bottom).
//!
//! The dual-cell method leaves a gap between the coarse and fine surfaces.
//! Instead of re-using redundant coarse data ("switching cells"), one can
//! construct an unstructured *stitching* geometry across the gap. We
//! implement mesh-space zippering: every open (rim) edge of the fine
//! surface is connected to its nearest open-rim vertices on the coarse
//! surface, producing a curtain of triangles that closes the visible gap.
//! This is a simplification of the original grid-based stitch cells —
//! documented as such in DESIGN.md — with the same visual effect.

use crate::mesh::TriMesh;

/// Builds the stitching band between `fine` and `coarse`. Rim edges whose
/// nearest coarse rim vertex is farther than `max_dist` are skipped (they
/// are domain-boundary rims, not gap rims). Returns the band as its own
/// mesh (append it to the level surfaces for a closed-looking composite).
pub fn stitch_rims(fine: &TriMesh, coarse: &TriMesh, max_dist: f64) -> TriMesh {
    let fine_rim = fine.boundary_edges();
    let coarse_rim = coarse.boundary_edges();
    if fine_rim.is_empty() || coarse_rim.is_empty() {
        return TriMesh::new();
    }
    // Candidate attachment points: all coarse rim vertices.
    let mut coarse_rim_verts: Vec<u32> = coarse_rim.iter().flat_map(|&(a, b)| [a, b]).collect();
    coarse_rim_verts.sort_unstable();
    coarse_rim_verts.dedup();
    let targets: Vec<[f64; 3]> = coarse_rim_verts
        .iter()
        .map(|&v| coarse.vertices[v as usize])
        .collect();

    let nearest = |p: [f64; 3]| -> Option<(usize, f64)> {
        let mut best = (usize::MAX, f64::INFINITY);
        for (i, t) in targets.iter().enumerate() {
            let d2 = (p[0] - t[0]).powi(2) + (p[1] - t[1]).powi(2) + (p[2] - t[2]).powi(2);
            if d2 < best.1 {
                best = (i, d2);
            }
        }
        (best.0 != usize::MAX).then(|| (best.0, best.1.sqrt()))
    };

    let mut band = TriMesh::new();
    let band_vertex = |p: [f64; 3], band: &mut TriMesh| -> u32 {
        let id = band.vertices.len() as u32;
        band.vertices.push(p);
        id
    };

    for &(a, b) in &fine_rim {
        let pa = fine.vertices[a as usize];
        let pb = fine.vertices[b as usize];
        let (Some((ia, da)), Some((ib, db))) = (nearest(pa), nearest(pb)) else {
            continue;
        };
        if da > max_dist || db > max_dist {
            continue;
        }
        let va = band_vertex(pa, &mut band);
        let vb = band_vertex(pb, &mut band);
        let ca = band_vertex(targets[ia], &mut band);
        if ia == ib {
            band.triangles.push([va, vb, ca]);
        } else {
            let cb = band_vertex(targets[ib], &mut band);
            // Quad (pa, pb, cb, ca) split along the shorter diagonal.
            let d_ac = dist2(pa, targets[ib]);
            let d_bc = dist2(pb, targets[ia]);
            if d_ac <= d_bc {
                band.triangles.push([va, vb, cb]);
                band.triangles.push([va, cb, ca]);
            } else {
                band.triangles.push([va, vb, ca]);
                band.triangles.push([vb, cb, ca]);
            }
        }
    }
    // Merge duplicated attachment vertices so the band is a connected strip.
    band.weld(1e-12);
    band
}

fn dist2(a: [f64; 3], b: [f64; 3]) -> f64 {
    (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::{extract_dual_level, DualMode};
    use crate::pipeline::IsoMethod;
    use amrviz_amr::{AmrHierarchy, Box3, BoxArray, Geometry, IntVect};

    fn two_level_sphere() -> AmrHierarchy {
        let geom = Geometry::unit(Box3::from_dims(16, 16, 16));
        let mut h = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::single(Box3::new(IntVect::new(16, 0, 0), IntVect::new(31, 31, 31))),
            ],
        )
        .unwrap();
        let g = *h.geometry();
        h.add_field_from_fn("f", move |lev, iv| {
            let p = g.cell_center(iv, if lev == 0 { 1 } else { 2 });
            0.3 - ((p[0] - 0.5).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2)).sqrt()
        })
        .unwrap();
        h
    }

    #[test]
    fn band_bridges_the_dual_gap() {
        let h = two_level_sphere();
        let coarse =
            extract_dual_level(&h, h.field_level("f", 0).unwrap(), 0, 0.0, DualMode::Plain);
        let fine = extract_dual_level(&h, h.field_level("f", 1).unwrap(), 1, 0.0, DualMode::Plain);
        // Gap ≈ (h_c + h_f)/2 ≈ 0.047; allow up to 2 coarse cells.
        let band = stitch_rims(&fine, &coarse, 2.0 / 16.0);
        assert!(!band.is_empty(), "no stitching triangles produced");

        // The band spans the gap: its bbox must cover the interface x=0.5.
        let (lo, hi) = band.bbox().unwrap();
        assert!(lo[0] < 0.5 && hi[0] > 0.5, "band does not straddle x=0.5");

        // Zippering consumes the fine rim: every fine rim edge within reach
        // must now also appear in the band (making it interior in the
        // composite).
        let mut composite = TriMesh::new();
        composite.append(&coarse);
        composite.append(&fine);
        composite.append(&band);
        composite.weld(1e-9);
        let before = {
            let mut m = TriMesh::new();
            m.append(&coarse);
            m.append(&fine);
            m.weld(1e-9);
            m.boundary_length()
        };
        let after = composite.boundary_length();
        assert!(
            after < 0.6 * before,
            "stitching should close most of the rim: {after} vs {before}"
        );
    }

    #[test]
    fn empty_inputs_yield_empty_band() {
        let h = two_level_sphere();
        let fine = extract_dual_level(&h, h.field_level("f", 1).unwrap(), 1, 0.0, DualMode::Plain);
        assert!(stitch_rims(&TriMesh::new(), &fine, 1.0).is_empty());
        assert!(stitch_rims(&fine, &TriMesh::new(), 1.0).is_empty());
    }

    #[test]
    fn max_dist_filters_domain_rims() {
        // With a tiny max_dist nothing attaches.
        let h = two_level_sphere();
        let coarse =
            extract_dual_level(&h, h.field_level("f", 0).unwrap(), 0, 0.0, DualMode::Plain);
        let fine = extract_dual_level(&h, h.field_level("f", 1).unwrap(), 1, 0.0, DualMode::Plain);
        let band = stitch_rims(&fine, &coarse, 1e-6);
        assert!(band.is_empty());
    }

    #[test]
    fn stitched_composite_matches_switching_cells_quality() {
        // Both gap fixes should leave a composite whose rim is much shorter
        // than the plain dual rim (the paper: "either … will fix").
        let h = two_level_sphere();
        let plain_coarse =
            extract_dual_level(&h, h.field_level("f", 0).unwrap(), 0, 0.0, DualMode::Plain);
        let fine = extract_dual_level(&h, h.field_level("f", 1).unwrap(), 1, 0.0, DualMode::Plain);
        let band = stitch_rims(&fine, &plain_coarse, 2.0 / 16.0);
        assert!(band.total_area() > 0.0);
        let _ = IsoMethod::DualCellRedundant; // the other fix, tested elsewhere
    }
}
