//! Indexed triangle meshes.

use std::collections::HashMap;

/// An indexed triangle mesh in physical coordinates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TriMesh {
    pub vertices: Vec<[f64; 3]>,
    pub triangles: Vec<[u32; 3]>,
}

impl TriMesh {
    pub fn new() -> Self {
        TriMesh::default()
    }

    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    pub fn num_triangles(&self) -> usize {
        self.triangles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }

    /// Appends another mesh (no welding across the seam).
    pub fn append(&mut self, other: &TriMesh) {
        let off = self.vertices.len() as u32;
        self.vertices.extend_from_slice(&other.vertices);
        self.triangles.extend(
            other
                .triangles
                .iter()
                .map(|t| [t[0] + off, t[1] + off, t[2] + off]),
        );
    }

    /// Axis-aligned bounding box, or `None` when empty.
    pub fn bbox(&self) -> Option<([f64; 3], [f64; 3])> {
        let mut it = self.vertices.iter();
        let first = *it.next()?;
        let mut lo = first;
        let mut hi = first;
        for v in it {
            for a in 0..3 {
                lo[a] = lo[a].min(v[a]);
                hi[a] = hi[a].max(v[a]);
            }
        }
        Some((lo, hi))
    }

    /// Face normal of triangle `t` (not normalized; magnitude = 2·area).
    pub fn face_normal_raw(&self, t: usize) -> [f64; 3] {
        let [a, b, c] = self.triangles[t];
        let p = self.vertices[a as usize];
        let q = self.vertices[b as usize];
        let r = self.vertices[c as usize];
        let u = [q[0] - p[0], q[1] - p[1], q[2] - p[2]];
        let v = [r[0] - p[0], r[1] - p[1], r[2] - p[2]];
        [
            u[1] * v[2] - u[2] * v[1],
            u[2] * v[0] - u[0] * v[2],
            u[0] * v[1] - u[1] * v[0],
        ]
    }

    /// Unit face normal (zero vector for degenerate triangles).
    pub fn face_normal(&self, t: usize) -> [f64; 3] {
        let n = self.face_normal_raw(t);
        let len = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
        if len == 0.0 {
            [0.0; 3]
        } else {
            [n[0] / len, n[1] / len, n[2] / len]
        }
    }

    /// Area of triangle `t`.
    pub fn face_area(&self, t: usize) -> f64 {
        let n = self.face_normal_raw(t);
        0.5 * (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt()
    }

    /// Total surface area.
    pub fn total_area(&self) -> f64 {
        (0..self.triangles.len()).map(|t| self.face_area(t)).sum()
    }

    /// Centroid of triangle `t`.
    pub fn face_centroid(&self, t: usize) -> [f64; 3] {
        let [a, b, c] = self.triangles[t];
        let p = self.vertices[a as usize];
        let q = self.vertices[b as usize];
        let r = self.vertices[c as usize];
        [
            (p[0] + q[0] + r[0]) / 3.0,
            (p[1] + q[1] + r[1]) / 3.0,
            (p[2] + q[2] + r[2]) / 3.0,
        ]
    }

    /// Area-weighted per-vertex normals (normalized; zero for isolated
    /// vertices).
    pub fn vertex_normals(&self) -> Vec<[f64; 3]> {
        let mut normals = vec![[0.0f64; 3]; self.vertices.len()];
        for t in 0..self.triangles.len() {
            let n = self.face_normal_raw(t);
            for &vi in &self.triangles[t] {
                let acc = &mut normals[vi as usize];
                acc[0] += n[0];
                acc[1] += n[1];
                acc[2] += n[2];
            }
        }
        for n in &mut normals {
            let len = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
            if len > 0.0 {
                n[0] /= len;
                n[1] /= len;
                n[2] /= len;
            }
        }
        normals
    }

    /// All edges as packed `(min << 32) | max` keys, one entry per incident
    /// triangle, sorted. Shared by the boundary/adjacency queries; the sort
    /// is parallel, which matters on multi-million-triangle surfaces.
    fn sorted_edge_keys(&self) -> Vec<u64> {
        const CHUNK: usize = 1 << 15;
        let mut keys: Vec<u64> = amrviz_par::reduce_chunked(
            self.triangles.len(),
            CHUNK,
            Vec::new(),
            |r| {
                let mut part = Vec::with_capacity(3 * r.len());
                for t in &self.triangles[r] {
                    for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                        part.push(((a.min(b) as u64) << 32) | a.max(b) as u64);
                    }
                }
                part
            },
            |mut acc, mut part| {
                acc.append(&mut part);
                acc
            },
        );
        keys.sort_unstable();
        keys
    }

    /// Edges incident to exactly one triangle — the open boundary. Each edge
    /// is returned as an ordered vertex-index pair.
    pub fn boundary_edges(&self) -> Vec<(u32, u32)> {
        let keys = self.sorted_edge_keys();
        let mut edges = Vec::new();
        let mut i = 0;
        while i < keys.len() {
            let mut j = i + 1;
            while j < keys.len() && keys[j] == keys[i] {
                j += 1;
            }
            if j - i == 1 {
                edges.push(((keys[i] >> 32) as u32, keys[i] as u32));
            }
            i = j;
        }
        edges
    }

    /// Total length of the open boundary.
    pub fn boundary_length(&self) -> f64 {
        self.boundary_edges()
            .iter()
            .map(|&(a, b)| {
                let p = self.vertices[a as usize];
                let q = self.vertices[b as usize];
                ((p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2) + (p[2] - q[2]).powi(2)).sqrt()
            })
            .sum()
    }

    /// True when the mesh has no open boundary (every edge shared by exactly
    /// two triangles).
    pub fn is_watertight(&self) -> bool {
        !self.is_empty() && self.boundary_edges().is_empty()
    }

    /// Merges vertices closer than `tol` (hash on a `tol`-grid, then checks
    /// the 27 neighbor cells). Returns the number of vertices removed.
    pub fn weld(&mut self, tol: f64) -> usize {
        assert!(tol > 0.0);
        let inv = 1.0 / tol;
        let key = |p: [f64; 3]| -> (i64, i64, i64) {
            (
                (p[0] * inv).floor() as i64,
                (p[1] * inv).floor() as i64,
                (p[2] * inv).floor() as i64,
            )
        };
        let mut grid: HashMap<(i64, i64, i64), Vec<u32>> = HashMap::new();
        let mut remap = vec![u32::MAX; self.vertices.len()];
        let mut new_vertices: Vec<[f64; 3]> = Vec::with_capacity(self.vertices.len());
        let tol2 = tol * tol;
        for (vi, &p) in self.vertices.iter().enumerate() {
            let (kx, ky, kz) = key(p);
            let mut found = None;
            'search: for dz in -1..=1 {
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        if let Some(cands) = grid.get(&(kx + dx, ky + dy, kz + dz)) {
                            for &c in cands {
                                let q = new_vertices[c as usize];
                                let d2 = (p[0] - q[0]).powi(2)
                                    + (p[1] - q[1]).powi(2)
                                    + (p[2] - q[2]).powi(2);
                                if d2 <= tol2 {
                                    found = Some(c);
                                    break 'search;
                                }
                            }
                        }
                    }
                }
            }
            remap[vi] = match found {
                Some(c) => c,
                None => {
                    let id = new_vertices.len() as u32;
                    new_vertices.push(p);
                    grid.entry((kx, ky, kz)).or_default().push(id);
                    id
                }
            };
        }
        let removed = self.vertices.len() - new_vertices.len();
        self.vertices = new_vertices;
        for t in &mut self.triangles {
            for v in t.iter_mut() {
                *v = remap[*v as usize];
            }
        }
        // Drop triangles that collapsed.
        self.triangles
            .retain(|t| t[0] != t[1] && t[1] != t[2] && t[0] != t[2]);
        removed
    }
}

#[cfg(test)]
pub(crate) fn unit_quad() -> TriMesh {
    TriMesh {
        vertices: vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [1.0, 1.0, 0.0],
            [0.0, 1.0, 0.0],
        ],
        triangles: vec![[0, 1, 2], [0, 2, 3]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A closed tetrahedron with outward-facing normals.
    fn tetra() -> TriMesh {
        TriMesh {
            vertices: vec![
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ],
            triangles: vec![[0, 2, 1], [0, 1, 3], [0, 3, 2], [1, 2, 3]],
        }
    }

    #[test]
    fn areas_and_normals() {
        let quad = unit_quad();
        assert!((quad.total_area() - 1.0).abs() < 1e-12);
        assert_eq!(quad.face_normal(0), [0.0, 0.0, 1.0]);
        let c = quad.face_centroid(0);
        assert!((c[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_of_quad_is_perimeter() {
        let quad = unit_quad();
        let edges = quad.boundary_edges();
        assert_eq!(edges.len(), 4);
        assert!((quad.boundary_length() - 4.0).abs() < 1e-12);
        assert!(!quad.is_watertight());
    }

    #[test]
    fn closed_tetra_is_watertight() {
        let t = tetra();
        assert!(t.is_watertight());
        assert_eq!(t.boundary_length(), 0.0);
    }

    #[test]
    fn append_offsets_indices() {
        let mut m = unit_quad();
        let before = m.num_vertices();
        m.append(&tetra());
        assert_eq!(m.num_vertices(), before + 4);
        assert_eq!(m.num_triangles(), 6);
        assert_eq!(m.triangles[2], [4, 6, 5]);
    }

    #[test]
    fn weld_merges_duplicates() {
        // Two triangles sharing an edge but with duplicated vertices.
        let mut m = TriMesh {
            vertices: vec![
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [1.0, 0.0, 1e-12],  // dup of 1
                [0.0, 1.0, -1e-12], // dup of 2
                [1.0, 1.0, 0.0],
            ],
            triangles: vec![[0, 1, 2], [3, 5, 4]],
        };
        let removed = m.weld(1e-9);
        assert_eq!(removed, 2);
        assert_eq!(m.num_vertices(), 4);
        // Shared edge (1,2) now interior → boundary has 4 edges.
        assert_eq!(m.boundary_edges().len(), 4);
    }

    #[test]
    fn weld_drops_degenerate_triangles() {
        let mut m = TriMesh {
            vertices: vec![[0.0; 3], [1e-12, 0.0, 0.0], [1.0, 1.0, 1.0]],
            triangles: vec![[0, 1, 2]],
        };
        m.weld(1e-9);
        assert_eq!(m.num_triangles(), 0);
    }

    #[test]
    fn vertex_normals_point_outward_for_flat_patch() {
        let quad = unit_quad();
        for n in quad.vertex_normals() {
            assert!((n[2] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bbox() {
        let t = tetra();
        let (lo, hi) = t.bbox().unwrap();
        assert_eq!(lo, [0.0, 0.0, 0.0]);
        assert_eq!(hi, [1.0, 1.0, 1.0]);
        assert!(TriMesh::new().bbox().is_none());
    }
}
