//! Whole-hierarchy isosurface extraction with method selection.

use amrviz_amr::{AmrHierarchy, MultiFab};
use amrviz_json::{Json, ToJson};

use crate::dual::{extract_dual_level, DualMode};
use crate::mesh::TriMesh;
use crate::resampling::extract_resampled_level;

/// The three extraction pipelines the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsoMethod {
    /// Basic: cell→vertex re-sampling + marching. Cracks between levels.
    Resampling,
    /// Advanced: dual cells, no gap handling. Gaps between levels.
    DualCell,
    /// Advanced: dual cells + redundant coarse data (switching cells).
    /// Gap-free, the paper's "fixed" configuration (Fig. 1c).
    DualCellRedundant,
}

impl IsoMethod {
    pub fn label(self) -> &'static str {
        match self {
            IsoMethod::Resampling => "re-sampling",
            IsoMethod::DualCell => "dual-cell",
            IsoMethod::DualCellRedundant => "dual-cell+redundant",
        }
    }

    pub const ALL: [IsoMethod; 3] = [
        IsoMethod::Resampling,
        IsoMethod::DualCell,
        IsoMethod::DualCellRedundant,
    ];
}

impl ToJson for IsoMethod {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_string())
    }
}

/// Extraction output: one surface per level.
///
/// Levels are *not* welded together — their concatenation
/// ([`AmrIsoResult::combined`]) shows exactly the cracks/gaps/overlaps each
/// method produces, which is the object of study. The concatenation is built
/// on demand; the result stores each triangle once, not twice.
#[derive(Debug, Clone)]
pub struct AmrIsoResult {
    pub method: IsoMethod,
    pub iso: f64,
    pub level_meshes: Vec<TriMesh>,
}

impl AmrIsoResult {
    /// Total triangle count across all level meshes.
    pub fn total_triangles(&self) -> usize {
        self.level_meshes.iter().map(TriMesh::num_triangles).sum()
    }

    /// Concatenates the level meshes in level order (the crack-preserving
    /// whole-hierarchy surface).
    pub fn combined(&self) -> TriMesh {
        let mut combined = TriMesh::new();
        for m in &self.level_meshes {
            combined.append(m);
        }
        combined
    }

    /// [`AmrIsoResult::combined`], consuming the result: the first level's
    /// mesh storage is reused as the accumulator instead of copied.
    pub fn into_combined(self) -> TriMesh {
        let mut meshes = self.level_meshes.into_iter();
        let mut combined = meshes.next().unwrap_or_default();
        for m in meshes {
            combined.append(&m);
        }
        combined
    }
}

/// Extracts the isosurface of a hierarchy field given per-level data (which
/// may be original or decompressed). `levels.len()` must equal
/// `hier.num_levels()` and each multifab must live on the hierarchy's box
/// arrays.
pub fn extract_amr_isosurface(
    hier: &AmrHierarchy,
    levels: &[MultiFab],
    iso: f64,
    method: IsoMethod,
) -> AmrIsoResult {
    assert_eq!(
        levels.len(),
        hier.num_levels(),
        "level data does not match hierarchy"
    );
    let mut sp = amrviz_obs::span!("extract", method = method.label());
    // Levels fan out across the worker pool; results come back in level
    // order, so the combined mesh is identical at any thread count.
    let level_meshes: Vec<TriMesh> = amrviz_par::run(levels.len(), |lev| {
        let mf = &levels[lev];
        let mut lsp = amrviz_obs::span!("extract.level", level = lev);
        let t0 = amrviz_obs::is_enabled().then(std::time::Instant::now);
        let mesh = match method {
            IsoMethod::Resampling => extract_resampled_level(hier, mf, lev, iso),
            IsoMethod::DualCell => extract_dual_level(hier, mf, lev, iso, DualMode::Plain),
            IsoMethod::DualCellRedundant => {
                extract_dual_level(hier, mf, lev, iso, DualMode::SwitchingCells)
            }
        };
        if let Some(t0) = t0 {
            amrviz_obs::histogram!("extract.level_us", t0.elapsed().as_micros());
        }
        lsp.add_field("triangles", mesh.num_triangles());
        mesh
    });
    let res = AmrIsoResult {
        method,
        iso,
        level_meshes,
    };
    sp.add_field("triangles", res.total_triangles());
    res
}

/// Convenience: extract from a named field stored in the hierarchy.
pub fn extract_field_isosurface(
    hier: &AmrHierarchy,
    field: &str,
    iso: f64,
    method: IsoMethod,
) -> Result<AmrIsoResult, amrviz_amr::AmrError> {
    let f = hier.field(field)?;
    Ok(extract_amr_isosurface(hier, &f.levels, iso, method))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_amr::{Box3, BoxArray, Geometry, IntVect};

    fn two_level() -> AmrHierarchy {
        let geom = Geometry::unit(Box3::from_dims(12, 12, 12));
        let mut h = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::single(Box3::new(IntVect::new(12, 0, 0), IntVect::new(23, 23, 23))),
            ],
        )
        .unwrap();
        let g = *h.geometry();
        h.add_field_from_fn("f", move |lev, iv| {
            let p = g.cell_center(iv, if lev == 0 { 1 } else { 2 });
            0.35 - ((p[0] - 0.5).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2)).sqrt()
        })
        .unwrap();
        h
    }

    #[test]
    fn all_methods_produce_surfaces() {
        let h = two_level();
        for method in IsoMethod::ALL {
            let res = extract_field_isosurface(&h, "f", 0.0, method).unwrap();
            assert_eq!(res.level_meshes.len(), 2);
            assert!(res.total_triangles() > 0, "{method:?} empty");
            assert_eq!(res.combined().num_triangles(), res.total_triangles());
            assert_eq!(res.clone().into_combined(), res.combined());
        }
    }

    #[test]
    fn redundant_mode_adds_coarse_triangles() {
        let h = two_level();
        let plain = extract_field_isosurface(&h, "f", 0.0, IsoMethod::DualCell).unwrap();
        let switching =
            extract_field_isosurface(&h, "f", 0.0, IsoMethod::DualCellRedundant).unwrap();
        assert!(
            switching.level_meshes[0].num_triangles() > plain.level_meshes[0].num_triangles(),
            "switching cells should extend the coarse surface"
        );
        // The fine level is unaffected by the mode.
        assert_eq!(
            switching.level_meshes[1].num_triangles(),
            plain.level_meshes[1].num_triangles()
        );
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = IsoMethod::ALL.iter().map(|m| m.label()).collect();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match hierarchy")]
    fn level_count_checked() {
        let h = two_level();
        let levels = vec![h.field("f").unwrap().levels[0].clone()];
        extract_amr_isosurface(&h, &levels, 0.0, IsoMethod::Resampling);
    }
}
