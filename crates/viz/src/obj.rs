//! Mesh export: Wavefront OBJ and binary-free ASCII PLY.

use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::mesh::TriMesh;

/// Writes a mesh as Wavefront OBJ.
pub fn write_obj(w: &mut impl Write, mesh: &TriMesh) -> io::Result<()> {
    writeln!(
        w,
        "# amrviz isosurface: {} vertices, {} triangles",
        mesh.num_vertices(),
        mesh.num_triangles()
    )?;
    for v in &mesh.vertices {
        writeln!(w, "v {} {} {}", v[0], v[1], v[2])?;
    }
    for t in &mesh.triangles {
        // OBJ indices are 1-based.
        writeln!(w, "f {} {} {}", t[0] + 1, t[1] + 1, t[2] + 1)?;
    }
    Ok(())
}

/// Writes a mesh as OBJ to a file path.
pub fn save_obj(path: &Path, mesh: &TriMesh) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_obj(&mut w, mesh)?;
    w.flush()
}

/// Writes a mesh as ASCII PLY.
pub fn write_ply(w: &mut impl Write, mesh: &TriMesh) -> io::Result<()> {
    writeln!(w, "ply")?;
    writeln!(w, "format ascii 1.0")?;
    writeln!(w, "element vertex {}", mesh.num_vertices())?;
    writeln!(w, "property double x")?;
    writeln!(w, "property double y")?;
    writeln!(w, "property double z")?;
    writeln!(w, "element face {}", mesh.num_triangles())?;
    writeln!(w, "property list uchar int vertex_indices")?;
    writeln!(w, "end_header")?;
    for v in &mesh.vertices {
        writeln!(w, "{} {} {}", v[0], v[1], v[2])?;
    }
    for t in &mesh.triangles {
        writeln!(w, "3 {} {} {}", t[0], t[1], t[2])?;
    }
    Ok(())
}

/// Minimal OBJ reader (vertices + triangular faces) for round-trip tests
/// and tooling.
pub fn parse_obj(text: &str) -> Result<TriMesh, String> {
    let mut mesh = TriMesh::new();
    for (lineno, line) in text.lines().enumerate() {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("v") => {
                let mut coords = [0.0f64; 3];
                for c in &mut coords {
                    *c = parts
                        .next()
                        .ok_or_else(|| format!("line {}: short vertex", lineno + 1))?
                        .parse()
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                }
                mesh.vertices.push(coords);
            }
            Some("f") => {
                let mut ids = Vec::new();
                for p in parts {
                    let first = p.split('/').next().unwrap_or(p);
                    let idx: i64 = first
                        .parse()
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    if idx < 1 || idx as usize > mesh.vertices.len() {
                        return Err(format!("line {}: index {idx} out of range", lineno + 1));
                    }
                    ids.push((idx - 1) as u32);
                }
                if ids.len() < 3 {
                    return Err(format!("line {}: face with <3 vertices", lineno + 1));
                }
                // Fan-triangulate polygons.
                for t in 1..ids.len() - 1 {
                    mesh.triangles.push([ids[0], ids[t], ids[t + 1]]);
                }
            }
            _ => {}
        }
    }
    Ok(mesh)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TriMesh {
        TriMesh {
            vertices: vec![
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ],
            triangles: vec![[0, 1, 2], [0, 1, 3]],
        }
    }

    #[test]
    fn obj_roundtrip() {
        let mesh = sample();
        let mut buf = Vec::new();
        write_obj(&mut buf, &mesh).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back = parse_obj(&text).unwrap();
        assert_eq!(back, mesh);
    }

    #[test]
    fn ply_has_correct_header() {
        let mesh = sample();
        let mut buf = Vec::new();
        write_ply(&mut buf, &mesh).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("ply\n"));
        assert!(text.contains("element vertex 4"));
        assert!(text.contains("element face 2"));
        assert!(text.lines().count() >= 9 + 4 + 2);
    }

    #[test]
    fn parse_rejects_bad_indices() {
        assert!(parse_obj("v 0 0 0\nf 1 2 3\n").is_err());
        assert!(parse_obj("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2\n").is_err());
    }

    #[test]
    fn parse_handles_slash_format_and_quads() {
        let text = "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1/1 2/2 3/3 4/4\n";
        let mesh = parse_obj(text).unwrap();
        assert_eq!(mesh.num_triangles(), 2);
    }
}
