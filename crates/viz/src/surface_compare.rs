//! Surface-to-surface comparison metrics.
//!
//! The paper judges decompressed-data visualizations by eye (Figs. 9–11);
//! we quantify the same effect: how far the isosurface extracted from
//! decompressed data deviates from the surface of the original data, and
//! how "bumpy" it became. Distances are computed with exact point-triangle
//! projections accelerated by a uniform spatial hash.

use std::collections::HashMap;

use amrviz_json::{Json, ToJson};

use crate::mesh::TriMesh;

/// Exact closest point on triangle `(a, b, c)` to `p` (Ericson, *Real-Time
/// Collision Detection*, §5.1.5).
pub fn closest_point_on_triangle(p: [f64; 3], a: [f64; 3], b: [f64; 3], c: [f64; 3]) -> [f64; 3] {
    let sub = |x: [f64; 3], y: [f64; 3]| [x[0] - y[0], x[1] - y[1], x[2] - y[2]];
    let dot = |x: [f64; 3], y: [f64; 3]| x[0] * y[0] + x[1] * y[1] + x[2] * y[2];
    let ab = sub(b, a);
    let ac = sub(c, a);
    let ap = sub(p, a);
    let d1 = dot(ab, ap);
    let d2 = dot(ac, ap);
    if d1 <= 0.0 && d2 <= 0.0 {
        return a;
    }
    let bp = sub(p, b);
    let d3 = dot(ab, bp);
    let d4 = dot(ac, bp);
    if d3 >= 0.0 && d4 <= d3 {
        return b;
    }
    let vc = d1 * d4 - d3 * d2;
    if vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0 {
        let v = d1 / (d1 - d3);
        return [a[0] + v * ab[0], a[1] + v * ab[1], a[2] + v * ab[2]];
    }
    let cp = sub(p, c);
    let d5 = dot(ab, cp);
    let d6 = dot(ac, cp);
    if d6 >= 0.0 && d5 <= d6 {
        return c;
    }
    let vb = d5 * d2 - d1 * d6;
    if vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0 {
        let w = d2 / (d2 - d6);
        return [a[0] + w * ac[0], a[1] + w * ac[1], a[2] + w * ac[2]];
    }
    let va = d3 * d6 - d5 * d4;
    if va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0 {
        let w = (d4 - d3) / ((d4 - d3) + (d5 - d6));
        return [
            b[0] + w * (c[0] - b[0]),
            b[1] + w * (c[1] - b[1]),
            b[2] + w * (c[2] - b[2]),
        ];
    }
    let denom = 1.0 / (va + vb + vc);
    let v = vb * denom;
    let w = vc * denom;
    [
        a[0] + ab[0] * v + ac[0] * w,
        a[1] + ab[1] * v + ac[1] * w,
        a[2] + ab[2] * v + ac[2] * w,
    ]
}

/// Uniform-grid accelerator for point → mesh distance queries.
pub struct TriLocator {
    vertices: Vec<[f64; 3]>,
    triangles: Vec<[u32; 3]>,
    lo: [f64; 3],
    cell: f64,
    dims: [usize; 3],
    /// cell index → triangle indices overlapping that cell.
    buckets: HashMap<usize, Vec<u32>>,
}

impl TriLocator {
    /// Builds the locator. Returns `None` for empty meshes.
    ///
    /// The locator stores its own copy of the geometry so it can outlive
    /// the mesh; when the mesh is no longer needed, [`TriLocator::build_owned`]
    /// reuses its buffers instead of copying them.
    pub fn build(mesh: &TriMesh) -> Option<Self> {
        Self::build_owned(mesh.clone())
    }

    /// [`TriLocator::build`], consuming the mesh: its vertex and triangle
    /// buffers become the locator's storage.
    pub fn build_owned(mesh: TriMesh) -> Option<Self> {
        let (lo, hi) = mesh.bbox()?;
        if mesh.triangles.is_empty() {
            return None;
        }
        let diag = ((hi[0] - lo[0]).powi(2) + (hi[1] - lo[1]).powi(2) + (hi[2] - lo[2]).powi(2))
            .sqrt()
            .max(1e-300);
        // Aim for O(1) triangles per cell.
        let cell = (diag / (mesh.triangles.len() as f64).cbrt().max(1.0)).max(diag * 1e-6);
        let dims = [
            (((hi[0] - lo[0]) / cell).floor() as usize + 1).max(1),
            (((hi[1] - lo[1]) / cell).floor() as usize + 1).max(1),
            (((hi[2] - lo[2]) / cell).floor() as usize + 1).max(1),
        ];
        // (cell, triangle) pairs in parallel, then sort and group — far
        // faster than per-insert hashing for millions of triangles.
        let clampi = |v: f64, n: usize| (v.floor().max(0.0) as usize).min(n - 1);
        let mut pairs: Vec<(usize, u32)> = {
            const CHUNK: usize = 1 << 14;
            let emit = |(t, tri): (usize, &[u32; 3])| {
                let mut tlo = [f64::INFINITY; 3];
                let mut thi = [f64::NEG_INFINITY; 3];
                for &vi in tri {
                    let v = mesh.vertices[vi as usize];
                    for a in 0..3 {
                        tlo[a] = tlo[a].min(v[a]);
                        thi[a] = thi[a].max(v[a]);
                    }
                }
                let c0 = [
                    clampi((tlo[0] - lo[0]) / cell, dims[0]),
                    clampi((tlo[1] - lo[1]) / cell, dims[1]),
                    clampi((tlo[2] - lo[2]) / cell, dims[2]),
                ];
                let c1 = [
                    clampi((thi[0] - lo[0]) / cell, dims[0]),
                    clampi((thi[1] - lo[1]) / cell, dims[1]),
                    clampi((thi[2] - lo[2]) / cell, dims[2]),
                ];
                (c0[2]..=c1[2]).flat_map(move |kz| {
                    (c0[1]..=c1[1]).flat_map(move |ky| {
                        (c0[0]..=c1[0])
                            .map(move |kx| (kx + dims[0] * (ky + dims[1] * kz), t as u32))
                    })
                })
            };
            amrviz_par::reduce_chunked(
                mesh.triangles.len(),
                CHUNK,
                Vec::new(),
                |r| {
                    let mut part = Vec::new();
                    for t in r {
                        part.extend(emit((t, &mesh.triangles[t])));
                    }
                    part
                },
                |mut acc, mut part| {
                    acc.append(&mut part);
                    acc
                },
            )
        };
        pairs.sort_unstable();
        let mut buckets: HashMap<usize, Vec<u32>> = HashMap::with_capacity(pairs.len() / 2 + 1);
        let mut i = 0;
        while i < pairs.len() {
            let key = pairs[i].0;
            let mut j = i;
            while j < pairs.len() && pairs[j].0 == key {
                j += 1;
            }
            buckets.insert(key, pairs[i..j].iter().map(|&(_, t)| t).collect());
            i = j;
        }
        Some(TriLocator {
            vertices: mesh.vertices,
            triangles: mesh.triangles,
            lo,
            cell,
            dims,
            buckets,
        })
    }

    fn tri_distance(&self, p: [f64; 3], t: u32) -> f64 {
        let [a, b, c] = self.triangles[t as usize];
        let q = closest_point_on_triangle(
            p,
            self.vertices[a as usize],
            self.vertices[b as usize],
            self.vertices[c as usize],
        );
        ((p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2) + (p[2] - q[2]).powi(2)).sqrt()
    }

    /// Distance from `p` to the mesh surface.
    pub fn distance(&self, p: [f64; 3]) -> f64 {
        // Distance from p to the grid bbox (0 inside): lower-bounds every
        // unvisited shell.
        let hi = [
            self.lo[0] + self.dims[0] as f64 * self.cell,
            self.lo[1] + self.dims[1] as f64 * self.cell,
            self.lo[2] + self.dims[2] as f64 * self.cell,
        ];
        let mut outside2 = 0.0;
        for a in 0..3 {
            let d = (self.lo[a] - p[a]).max(p[a] - hi[a]).max(0.0);
            outside2 += d * d;
        }
        let outside = outside2.sqrt();

        let start = [
            ((((p[0] - self.lo[0]) / self.cell).floor()).max(0.0) as usize).min(self.dims[0] - 1),
            ((((p[1] - self.lo[1]) / self.cell).floor()).max(0.0) as usize).min(self.dims[1] - 1),
            ((((p[2] - self.lo[2]) / self.cell).floor()).max(0.0) as usize).min(self.dims[2] - 1),
        ];
        let max_shell = self.dims[0].max(self.dims[1]).max(self.dims[2]);
        let mut best = f64::INFINITY;
        for r in 0..=max_shell {
            // All cells in shells > r are at least this far from p.
            let shell_floor = outside + (r as f64 - 1.0).max(0.0) * self.cell;
            if best <= shell_floor {
                break;
            }
            let ri = r as isize;
            for dz in -ri..=ri {
                for dy in -ri..=ri {
                    for dx in -ri..=ri {
                        // Chebyshev shell only.
                        if dx.abs().max(dy.abs()).max(dz.abs()) != ri {
                            continue;
                        }
                        let kx = start[0] as isize + dx;
                        let ky = start[1] as isize + dy;
                        let kz = start[2] as isize + dz;
                        if kx < 0
                            || ky < 0
                            || kz < 0
                            || kx >= self.dims[0] as isize
                            || ky >= self.dims[1] as isize
                            || kz >= self.dims[2] as isize
                        {
                            continue;
                        }
                        let key =
                            kx as usize + self.dims[0] * (ky as usize + self.dims[1] * kz as usize);
                        if let Some(tris) = self.buckets.get(&key) {
                            for &t in tris {
                                best = best.min(self.tri_distance(p, t));
                            }
                        }
                    }
                }
            }
        }
        best
    }
}

/// Summary of one-directional surface deviation (`from` → `to`).
#[derive(Debug, Clone, Copy)]
pub struct SurfaceDistance {
    /// Area-weighted mean distance of `from` samples to `to`.
    pub mean: f64,
    /// Area-weighted RMS distance.
    pub rms: f64,
    /// Maximum sampled distance (≈ one-sided Hausdorff).
    pub max: f64,
    /// Number of sample points used.
    pub n_samples: usize,
}

impl ToJson for SurfaceDistance {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("mean", self.mean)
            .set("rms", self.rms)
            .set("max", self.max)
            .set("n_samples", self.n_samples);
        o
    }
}

/// Measures how far `from`'s surface lies from `to`'s. Samples every vertex
/// and every triangle centroid of `from`; centroid distances are
/// area-weighted for the mean/RMS, vertices contribute to the max.
pub fn surface_distance(from: &TriMesh, to: &TriMesh) -> Option<SurfaceDistance> {
    let locator = TriLocator::build(to)?;
    surface_distance_to(from, &locator)
}

/// [`surface_distance`] against a prebuilt locator — use when comparing
/// several meshes to the same reference surface.
pub fn surface_distance_to(from: &TriMesh, locator: &TriLocator) -> Option<SurfaceDistance> {
    if from.triangles.is_empty() {
        return None;
    }
    let per_tri: Vec<(f64, f64)> = amrviz_par::run(from.num_triangles(), |t| {
        (from.face_area(t), locator.distance(from.face_centroid(t)))
    });
    const CHUNK: usize = 1 << 13;
    let vert_max = amrviz_par::reduce_chunked(
        from.vertices.len(),
        CHUNK,
        0.0f64,
        |r| {
            from.vertices[r]
                .iter()
                .map(|&v| locator.distance(v))
                .fold(0.0, f64::max)
        },
        f64::max,
    );

    let total_area: f64 = per_tri.iter().map(|&(a, _)| a).sum();
    if total_area == 0.0 {
        return None;
    }
    let mean = per_tri.iter().map(|&(a, d)| a * d).sum::<f64>() / total_area;
    let rms = (per_tri.iter().map(|&(a, d)| a * d * d).sum::<f64>() / total_area).sqrt();
    let max = per_tri.iter().map(|&(_, d)| d).fold(vert_max, f64::max);
    Some(SurfaceDistance {
        mean,
        rms,
        max,
        n_samples: per_tri.len() + from.vertices.len(),
    })
}

/// Mean dihedral deviation (radians) across interior edges — a bumpiness
/// measure: flat or smoothly-curved surfaces score low, block-artifact
/// staircases score high.
pub fn normal_roughness(mesh: &TriMesh) -> f64 {
    // (packed edge key, triangle) pairs, sorted by key: manifold edges form
    // runs of exactly two entries. Parallel sort + scan beats a HashMap by
    // a wide margin on multi-million-triangle surfaces.
    let mut pairs: Vec<(u64, u32)> = amrviz_par::reduce_chunked(
        mesh.triangles.len(),
        1 << 15,
        Vec::new(),
        |r| {
            let mut part = Vec::with_capacity(3 * r.len());
            for t in r {
                let tri = &mesh.triangles[t];
                for (a, b) in [(tri[0], tri[1]), (tri[1], tri[2]), (tri[2], tri[0])] {
                    part.push((((a.min(b) as u64) << 32) | a.max(b) as u64, t as u32));
                }
            }
            part
        },
        |mut acc, mut part| {
            acc.append(&mut part);
            acc
        },
    );
    pairs.sort_unstable();

    let mut sum = 0.0;
    let mut count = 0usize;
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i + 1;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        if j - i == 2 {
            let n1 = mesh.face_normal(pairs[i].1 as usize);
            let n2 = mesh.face_normal(pairs[i + 1].1 as usize);
            let dot = (n1[0] * n2[0] + n1[1] * n2[1] + n1[2] * n2[2]).clamp(-1.0, 1.0);
            sum += dot.acos();
            count += 1;
        }
        i = j;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marching::{marching_tetrahedra, SampledGrid};

    fn sphere_mesh(n: usize, r: f64, c: [f64; 3]) -> TriMesh {
        let grid =
            SampledGrid::from_fn([n, n, n], [0.0; 3], [1.0 / (n - 1) as f64; 3], |x, y, z| {
                r - ((x - c[0]).powi(2) + (y - c[1]).powi(2) + (z - c[2]).powi(2)).sqrt()
            });
        marching_tetrahedra(&grid, 0.0)
    }

    fn assert_pt(got: [f64; 3], want: [f64; 3]) {
        for a in 0..3 {
            assert!((got[a] - want[a]).abs() < 1e-12, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn closest_point_cases() {
        let a = [0.0, 0.0, 0.0];
        let b = [1.0, 0.0, 0.0];
        let c = [0.0, 1.0, 0.0];
        // Above the interior → foot of perpendicular.
        assert_pt(
            closest_point_on_triangle([0.2, 0.2, 5.0], a, b, c),
            [0.2, 0.2, 0.0],
        );
        // Beyond vertex A.
        assert_pt(closest_point_on_triangle([-1.0, -1.0, 0.0], a, b, c), a);
        // Beyond edge AB.
        assert_pt(
            closest_point_on_triangle([0.5, -2.0, 0.0], a, b, c),
            [0.5, 0.0, 0.0],
        );
        // Beyond vertex B.
        assert_pt(closest_point_on_triangle([3.0, 0.0, 0.0], a, b, c), b);
        // Beyond edge BC.
        let q = closest_point_on_triangle([1.0, 1.0, 0.0], a, b, c);
        assert!((q[0] - 0.5).abs() < 1e-12 && (q[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn locator_distance_matches_bruteforce() {
        let mesh = sphere_mesh(17, 0.3, [0.5; 3]);
        let loc = TriLocator::build(&mesh).unwrap();
        let probes = [
            [0.5, 0.5, 0.5],
            [0.0, 0.0, 0.0],
            [0.9, 0.5, 0.5],
            [0.5, 0.85, 0.45],
            [2.0, 2.0, 2.0],
        ];
        for p in probes {
            let brute = (0..mesh.num_triangles() as u32)
                .map(|t| loc.tri_distance(p, t))
                .fold(f64::INFINITY, f64::min);
            let fast = loc.distance(p);
            assert!(
                (fast - brute).abs() < 1e-12,
                "at {p:?}: fast {fast} vs brute {brute}"
            );
        }
    }

    #[test]
    fn identical_meshes_have_zero_distance() {
        let mesh = sphere_mesh(17, 0.3, [0.5; 3]);
        let d = surface_distance(&mesh, &mesh).unwrap();
        assert!(d.mean < 1e-12);
        assert!(d.max < 1e-12);
    }

    #[test]
    fn concentric_spheres_distance_is_radius_gap() {
        let inner = sphere_mesh(33, 0.2, [0.5; 3]);
        let outer = sphere_mesh(33, 0.3, [0.5; 3]);
        let d = surface_distance(&inner, &outer).unwrap();
        assert!(
            (d.mean - 0.1).abs() < 0.01,
            "mean {} should be ≈ 0.1",
            d.mean
        );
        assert!(d.max < 0.12);
    }

    #[test]
    fn roughness_flat_vs_staircase() {
        // Flat quad strip: roughness 0.
        let flat = crate::mesh::unit_quad();
        assert!(normal_roughness(&flat) < 1e-12);
        // A 90° fold: mean dihedral deviation π/2 across the fold edge (one
        // of three interior... only the fold edge is shared).
        let folded = TriMesh {
            vertices: vec![
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [1.0, 1.0, 0.0],
                [1.0, 0.0, 1.0],
            ],
            triangles: vec![[0, 1, 2], [1, 3, 2]],
        };
        let r = normal_roughness(&folded);
        assert!((r - std::f64::consts::FRAC_PI_2).abs() < 1e-9, "got {r}");
    }

    #[test]
    fn smoother_sphere_has_lower_roughness() {
        let coarse = sphere_mesh(9, 0.3, [0.5; 3]);
        let fine = sphere_mesh(33, 0.3, [0.5; 3]);
        assert!(normal_roughness(&fine) < normal_roughness(&coarse));
    }

    #[test]
    fn empty_mesh_handled() {
        let empty = TriMesh::new();
        assert!(TriLocator::build(&empty).is_none());
        let sphere = sphere_mesh(9, 0.3, [0.5; 3]);
        assert!(surface_distance(&empty, &sphere).is_none());
        assert!(surface_distance(&sphere, &empty).is_none());
        assert_eq!(normal_roughness(&empty), 0.0);
    }
}
