//! Quantifying cracks and gaps at AMR level interfaces (paper Figs. 1, 5,
//! 6, 8 — turned into numbers).
//!
//! Each level's surface is extracted independently, so cross-level defects
//! show up as *open boundary* on the finer mesh near the interface. We
//! measure (a) how much open rim the fine mesh has away from the physical
//! domain boundary and (b) how far that rim sits from the coarse surface —
//! the visible crack/gap width.

use amrviz_json::{Json, ToJson};

use crate::mesh::TriMesh;
use crate::surface_compare::TriLocator;

/// Crack/gap measurements between one fine-level mesh and the next-coarser
/// mesh.
#[derive(Debug, Clone, Copy)]
pub struct CrackMetrics {
    /// Number of interface rim edges on the fine mesh (excluding rim on the
    /// physical domain boundary).
    pub n_rim_edges: usize,
    /// Total rim length.
    pub rim_length: f64,
    /// Mean distance from rim edge midpoints to the coarse surface.
    pub mean_gap: f64,
    /// 95th-percentile gap.
    pub p95_gap: f64,
    /// Maximum gap.
    pub max_gap: f64,
}

impl ToJson for CrackMetrics {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("n_rim_edges", self.n_rim_edges)
            .set("rim_length", self.rim_length)
            .set("mean_gap", self.mean_gap)
            .set("p95_gap", self.p95_gap)
            .set("max_gap", self.max_gap);
        o
    }
}

/// Measures the interface gap between `fine` and `coarse`.
///
/// `domain_lo`/`domain_hi` bound the physical domain; rim edges lying on
/// those outer faces (within `boundary_tol`) are excluded — they are domain
/// clipping, not level-interface defects.
pub fn interface_gap(
    fine: &TriMesh,
    coarse: &TriMesh,
    domain_lo: [f64; 3],
    domain_hi: [f64; 3],
    boundary_tol: f64,
) -> Option<CrackMetrics> {
    let locator = TriLocator::build(coarse)?;
    let on_domain_face = |p: [f64; 3]| -> bool {
        (0..3).any(|a| {
            (p[a] - domain_lo[a]).abs() <= boundary_tol
                || (p[a] - domain_hi[a]).abs() <= boundary_tol
        })
    };
    let mut gaps: Vec<f64> = Vec::new();
    let mut rim_length = 0.0;
    let mut n_rim = 0usize;
    for (a, b) in fine.boundary_edges() {
        let p = fine.vertices[a as usize];
        let q = fine.vertices[b as usize];
        if on_domain_face(p) && on_domain_face(q) {
            continue;
        }
        let mid = [
            0.5 * (p[0] + q[0]),
            0.5 * (p[1] + q[1]),
            0.5 * (p[2] + q[2]),
        ];
        let len = ((p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2) + (p[2] - q[2]).powi(2)).sqrt();
        rim_length += len;
        n_rim += 1;
        gaps.push(locator.distance(mid));
    }
    if gaps.is_empty() {
        return Some(CrackMetrics {
            n_rim_edges: 0,
            rim_length: 0.0,
            mean_gap: 0.0,
            p95_gap: 0.0,
            max_gap: 0.0,
        });
    }
    amrviz_obs::counter!("viz.crack_rim_edges", n_rim);
    gaps.sort_by(|x, y| x.partial_cmp(y).expect("finite distances"));
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let p95 = gaps[((gaps.len() as f64 * 0.95) as usize).min(gaps.len() - 1)];
    let max = *gaps.last().expect("nonempty");
    Some(CrackMetrics {
        n_rim_edges: n_rim,
        rim_length,
        mean_gap: mean,
        p95_gap: p95,
        max_gap: max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::DualMode;
    use crate::pipeline::{extract_field_isosurface, IsoMethod};
    use amrviz_amr::{AmrHierarchy, Box3, BoxArray, Geometry, IntVect};

    fn two_level_sphere() -> AmrHierarchy {
        let geom = Geometry::unit(Box3::from_dims(16, 16, 16));
        let mut h = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::single(Box3::new(IntVect::new(16, 0, 0), IntVect::new(31, 31, 31))),
            ],
        )
        .unwrap();
        let g = *h.geometry();
        h.add_field_from_fn("f", move |lev, iv| {
            let p = g.cell_center(iv, if lev == 0 { 1 } else { 2 });
            0.3 - ((p[0] - 0.5).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2)).sqrt()
        })
        .unwrap();
        h
    }

    fn gap_for(method: IsoMethod) -> CrackMetrics {
        let h = two_level_sphere();
        let res = extract_field_isosurface(&h, "f", 0.0, method).unwrap();
        interface_gap(
            &res.level_meshes[1],
            &res.level_meshes[0],
            [0.0; 3],
            [1.0; 3],
            1e-9,
        )
        .expect("coarse mesh nonempty")
    }

    #[test]
    fn resampling_has_cracks() {
        let m = gap_for(IsoMethod::Resampling);
        assert!(m.n_rim_edges > 0, "expected an interface rim");
        // Cracks are sub-coarse-cell mismatches: nonzero but smaller than a
        // coarse cell (1/16).
        assert!(
            m.mean_gap > 1e-6,
            "mean gap {} suspiciously small",
            m.mean_gap
        );
        assert!(m.max_gap < 2.0 / 16.0, "max gap {} too large", m.max_gap);
    }

    #[test]
    fn dual_gap_is_about_a_cell_and_larger_than_cracks() {
        let crack = gap_for(IsoMethod::Resampling);
        let gap = gap_for(IsoMethod::DualCell);
        assert!(gap.n_rim_edges > 0);
        // Dual gap ≈ (h_c + h_f)/2 = (1/16 + 1/32)/2 ≈ 0.047 — measured from
        // the rim midpoint to the coarse surface it should be at least the
        // fine half-cell.
        assert!(gap.mean_gap > 1.0 / 64.0, "gap {} too small", gap.mean_gap);
        assert!(
            gap.mean_gap > crack.mean_gap,
            "dual gap ({}) should exceed re-sampling crack ({})",
            gap.mean_gap,
            crack.mean_gap
        );
    }

    #[test]
    fn switching_cells_shrink_the_gap() {
        let plain = gap_for(IsoMethod::DualCell);
        let fixed = gap_for(IsoMethod::DualCellRedundant);
        assert!(
            fixed.mean_gap < 0.5 * plain.mean_gap,
            "redundant data should close the gap: {} vs {}",
            fixed.mean_gap,
            plain.mean_gap
        );
    }

    #[test]
    fn watertight_mesh_reports_zero() {
        // Single-level sphere has no interface at all.
        let geom = Geometry::unit(Box3::from_dims(20, 20, 20));
        let mut h = AmrHierarchy::single_level(geom);
        let g = *h.geometry();
        h.add_field_from_fn("f", move |_, iv| {
            let p = g.cell_center(iv, 1);
            0.3 - ((p[0] - 0.5).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2)).sqrt()
        })
        .unwrap();
        let mesh = crate::dual::extract_dual_level(
            &h,
            h.field_level("f", 0).unwrap(),
            0,
            0.0,
            DualMode::Plain,
        );
        let m = interface_gap(&mesh, &mesh, [0.0; 3], [1.0; 3], 1e-9).unwrap();
        assert_eq!(m.n_rim_edges, 0);
        assert_eq!(m.max_gap, 0.0);
    }
}
