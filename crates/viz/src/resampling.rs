//! The basic AMR visualization method: cell→vertex re-sampling + marching
//! (paper §2.3).
//!
//! Per level, cell-centered data is "diffused" to the cell corners by
//! averaging the adjacent cells (the 2D example of the paper's Fig. 4), and
//! the resulting vertex-centered grid is triangulated. Each level is
//! processed independently at its own resolution; coarse cells covered by a
//! finer level are omitted. Because the levels' vertex grids disagree at
//! the interfaces (dangling nodes), the combined surface exhibits the
//! characteristic **cracks** of Fig. 1a — reproduced here by construction.

use amrviz_amr::multifab::rasterize_into;
use amrviz_amr::{AmrHierarchy, IntVect, MultiFab};

use crate::marching::{marching_tetrahedra, SampledGrid};
use crate::mesh::TriMesh;

/// Extracts the `iso` surface of one level using the re-sampling method.
///
/// `level_data` must live on `hier.box_array(lev)` (it may be original or
/// decompressed data). Coarse cells covered by level `lev + 1` are not
/// triangulated.
pub fn extract_resampled_level(
    hier: &AmrHierarchy,
    level_data: &MultiFab,
    lev: usize,
    iso: f64,
) -> TriMesh {
    let dom = hier.level_domain(lev);
    let [cx, cy, cz] = dom.size();
    let ratio0 = hier.ratio_to_level0(lev);
    let h = hier.geometry().cell_size_at(ratio0);

    // Dense cell values + validity. The cell buffer is rented scratch: it
    // is only needed while the node grid is assembled and goes back to the
    // pool before marching, so it never stacks on top of the mesh build.
    let mut cells = amrviz_par::scratch::take_f64();
    cells.resize(dom.num_cells(), 0.0);
    rasterize_into(level_data, dom, &mut cells);
    let valid = hier.valid_mask(lev);
    let covered = hier.covered_mask(lev);

    // Vertex-centered grid: node (i,j,k) averages the ≤8 adjacent valid
    // cells. At patch boundaries the average is one-sided — the "dangling
    // node" conflict responsible for cracks. Parallel over node slabs.
    let (nnx, nny, nnz) = (cx + 1, cy + 1, cz + 1);
    let mut nodes = vec![0.0f64; nnx * nny * nnz];
    {
        let cells = &cells;
        let cell_at = |i: usize, j: usize, k: usize| cells[i + cx * (j + cy * k)];
        let sp_nodes = amrviz_obs::span!("resample.nodes", level = lev);
        amrviz_par::for_each_chunk_mut(&mut nodes, nnx * nny, |nk, slab| {
            for nj in 0..nny {
                for ni in 0..nnx {
                    let mut sum = 0.0;
                    let mut cnt = 0u32;
                    for dk in 0..2usize {
                        for dj in 0..2usize {
                            for di in 0..2usize {
                                // Cell (ni-1+di, nj-1+dj, nk-1+dk) touches
                                // the node.
                                let (ci, cj, ck) = (
                                    (ni + di).wrapping_sub(1),
                                    (nj + dj).wrapping_sub(1),
                                    (nk + dk).wrapping_sub(1),
                                );
                                if ci < cx && cj < cy && ck < cz {
                                    let iv =
                                        dom.lo() + IntVect::new(ci as i64, cj as i64, ck as i64);
                                    if valid.get_unchecked(iv) {
                                        sum += cell_at(ci, cj, ck);
                                        cnt += 1;
                                    }
                                }
                            }
                        }
                    }
                    if cnt > 0 {
                        slab[ni + nnx * nj] = sum / cnt as f64;
                    }
                }
            }
        });
        sp_nodes.finish();
    }
    amrviz_par::scratch::give_f64(cells);

    // March the level's unique cells only (parallel over cell slabs).
    let mut mask = vec![false; cx * cy * cz];
    amrviz_par::for_each_chunk_mut(&mut mask, cx * cy, |k, slab| {
        for j in 0..cy {
            for i in 0..cx {
                let iv = dom.lo() + IntVect::new(i as i64, j as i64, k as i64);
                slab[i + cx * j] = valid.get_unchecked(iv) && !covered.get_unchecked(iv);
            }
        }
    });

    let origin = hier.geometry().prob_lo;
    let grid = SampledGrid {
        dims: [nnx, nny, nnz],
        origin,
        spacing: h,
        values: nodes,
        cell_mask: Some(mask),
    };
    let _sp = amrviz_obs::span!("resample.march", level = lev);
    marching_tetrahedra(&grid, iso)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_amr::{Box3, BoxArray, Geometry};

    /// Single-level hierarchy holding a sphere SDF-like field.
    fn single_level_sphere(n: usize) -> AmrHierarchy {
        let geom = Geometry::unit(Box3::from_dims(n, n, n));
        let mut h = AmrHierarchy::single_level(geom);
        let g = *h.geometry();
        h.add_field_from_fn("f", move |_, iv| {
            let p = g.cell_center(iv, 1);
            0.3 - ((p[0] - 0.5).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2)).sqrt()
        })
        .unwrap();
        h
    }

    /// Two-level hierarchy with the fine level over the x ≥ 0.5 half and a
    /// sphere field spanning the interface.
    fn two_level_sphere() -> AmrHierarchy {
        let geom = Geometry::unit(Box3::from_dims(16, 16, 16));
        let mut h = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::single(Box3::new(IntVect::new(16, 0, 0), IntVect::new(31, 31, 31))),
            ],
        )
        .unwrap();
        let g = *h.geometry();
        h.add_field_from_fn("f", move |lev, iv| {
            let p = g.cell_center(iv, if lev == 0 { 1 } else { 2 });
            0.3 - ((p[0] - 0.5).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2)).sqrt()
        })
        .unwrap();
        h
    }

    #[test]
    fn uniform_level_sphere_is_watertight() {
        let h = single_level_sphere(24);
        let mf = h.field_level("f", 0).unwrap();
        let mesh = extract_resampled_level(&h, mf, 0, 0.0);
        assert!(mesh.num_triangles() > 200);
        assert!(mesh.is_watertight());
        let exact = 4.0 * std::f64::consts::PI * 0.09;
        assert!((mesh.total_area() - exact).abs() / exact < 0.1);
    }

    #[test]
    fn two_level_meshes_cover_their_halves() {
        let h = two_level_sphere();
        let coarse = extract_resampled_level(&h, h.field_level("f", 0).unwrap(), 0, 0.0);
        let fine = extract_resampled_level(&h, h.field_level("f", 1).unwrap(), 1, 0.0);
        assert!(!coarse.is_empty() && !fine.is_empty());
        // Coarse only keeps the x < 0.5 hemisphere (plus one-cell tolerance).
        for v in &coarse.vertices {
            assert!(v[0] <= 0.5 + 1e-9, "coarse vertex in fine region: {v:?}");
        }
        for v in &fine.vertices {
            assert!(v[0] >= 0.5 - 1e-9, "fine vertex in coarse region: {v:?}");
        }
    }

    #[test]
    fn cracks_appear_at_level_interface() {
        let h = two_level_sphere();
        let coarse = extract_resampled_level(&h, h.field_level("f", 0).unwrap(), 0, 0.0);
        let fine = extract_resampled_level(&h, h.field_level("f", 1).unwrap(), 1, 0.0);
        // Each half-sphere has an open rim at the interface plane.
        let coarse_rim = coarse.boundary_edges();
        let fine_rim = fine.boundary_edges();
        assert!(
            !coarse_rim.is_empty(),
            "coarse surface should end at the interface"
        );
        assert!(
            !fine_rim.is_empty(),
            "fine surface should end at the interface"
        );
        // Rim vertices lie on the interface plane x = 0.5.
        for &(a, b) in &fine_rim {
            for vi in [a, b] {
                let v = fine.vertices[vi as usize];
                assert!(
                    (v[0] - 0.5).abs() < 0.5 / 16.0,
                    "rim vertex off plane: {v:?}"
                );
            }
        }
        // The crack: rims from the two levels do not coincide exactly.
        // (Quantified by crack::interface_gap; here just assert the rims
        // have different vertex sets.)
        let fine_rim_xs: Vec<[f64; 3]> = fine_rim
            .iter()
            .map(|&(a, _)| fine.vertices[a as usize])
            .collect();
        let coarse_has_match = fine_rim_xs.iter().all(|fv| {
            coarse_rim.iter().any(|&(a, _)| {
                let cv = coarse.vertices[a as usize];
                (cv[1] - fv[1]).abs() < 1e-9 && (cv[2] - fv[2]).abs() < 1e-9
            })
        });
        assert!(!coarse_has_match, "expected dangling nodes between levels");
    }

    #[test]
    fn resampling_smooths_constant_field_to_empty() {
        let h = single_level_sphere(8);
        let mf = MultiFab::from_fn(h.box_array(0), |_| 1.0);
        let mesh = extract_resampled_level(&h, &mf, 0, 0.5);
        assert!(mesh.is_empty());
    }
}
