//! Deterministic drop-oldest overflow coverage for the sharded journal.
//!
//! The unit tests in `journal.rs` can only assert overflow *probabilistically*
//! (the background writer races the flood). Here we pause the writer first,
//! fill all 8×8192 queues past capacity, and check the exact accounting:
//! the exported drop counter matches the lines lost, and the survivors are
//! still seq-sorted whole JSON lines — parseable by the same `crates/json`
//! parser `amrviz stats` re-reads every line with.
//!
//! This is an integration test (own process) so no other test can race the
//! global journal state.

use amrviz_obs::journal::{self, SHARDS, SHARD_CAP};

#[test]
fn paused_overflow_accounting_is_exact_and_survivors_parse() {
    let dir = std::env::temp_dir().join(format!("amrviz_jof_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("overflow.jsonl");
    let _ = std::fs::remove_file(&path);

    // Pause *before* start so the writer never drains the start-meta line:
    // every queue's contents are then fully determined by our pushes.
    journal::set_writer_paused(true);
    journal::start(&path).unwrap();

    let dropped_before = journal::dropped();
    let enqueued_before = journal::enqueued();
    const EXTRA: usize = 64;
    // Flood every shard past its cap. emit() shards by thread id, so route
    // each batch explicitly through its shard via the thread-spawn trick:
    // push from the main thread with an explicit per-shard marker instead —
    // emit() always lands on this thread's shard, so drive all shards by
    // emitting from SHARDS scoped threads pinned by shard hint.
    std::thread::scope(|s| {
        for shard in 0..SHARDS {
            s.spawn(move || {
                for i in 0..SHARD_CAP + EXTRA {
                    // emit() hashes the OS thread id; that does not map 1:1
                    // onto shards, so several threads may share a shard.
                    // Exact per-shard placement doesn't matter for the
                    // accounting below — only totals do — but spawning
                    // SHARDS producers exercises the sharded path.
                    journal::emit(
                        "flood",
                        &[("shard", shard.to_string()), ("i", i.to_string())],
                    );
                }
            });
        }
    });

    let pushed = (SHARDS * (SHARD_CAP + EXTRA)) as u64;
    let enqueued_delta = journal::enqueued() - enqueued_before;
    assert_eq!(enqueued_delta, pushed, "every push is counted as enqueued");

    let dropped_flood = journal::dropped() - dropped_before;
    // With the writer paused nothing drained, so whatever exceeded total
    // queue space must have been dropped. The start-meta line occupies one
    // slot, so at least `pushed + 1 - SHARDS*SHARD_CAP` lines were evicted;
    // uneven thread→shard hashing can only evict more, never fewer. An
    // upper bound: even if every producer hashed onto one single shard,
    // survivors number at least SHARD_CAP.
    let capacity = (SHARDS * SHARD_CAP) as u64;
    assert!(
        dropped_flood >= pushed + 1 - capacity,
        "dropped {dropped_flood} < minimum {}",
        pushed + 1 - capacity
    );
    assert!(dropped_flood <= pushed + 1 - SHARD_CAP as u64);

    journal::set_writer_paused(false);
    let stats = journal::stop();

    // Exact conservation: every line emitted in this window was either
    // dropped (counter) or written to the file (survivors). The stop-meta
    // line is enqueued after our measurement, so re-measure the totals.
    let total_enqueued_window = stats.enqueued - enqueued_before + 1; // +1 start meta
    let total_dropped_window = stats.dropped - dropped_before;
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len() as u64,
        total_enqueued_window - total_dropped_window,
        "drop counter must match lost lines exactly"
    );

    // Survivors: whole lines, strictly seq-sorted, every one parseable by
    // the parser `amrviz stats` uses.
    let mut prev: i64 = -1;
    for l in &lines {
        let v = amrviz_json::Json::parse(l)
            .unwrap_or_else(|e| panic!("stats-parseable line required, got {e:?}: {l}"));
        let seq = v
            .get("seq")
            .and_then(|s| s.as_f64())
            .expect("seq field present") as i64;
        assert!(seq > prev, "seq must be strictly increasing across shards");
        prev = seq;
        assert!(v.get("kind").is_some(), "kind stamped on every line");
    }
    // The eldest lines were evicted: the file must NOT begin at the flood's
    // first sequence numbers (drop-oldest, not drop-newest).
    assert!(
        total_dropped_window > 0,
        "flood past capacity must evict something"
    );
    let _ = std::fs::remove_file(&path);
}
