//! Integration tests for `amrviz-obs`: concurrent recording across threads,
//! nested-span parenting, and chrome-trace export validity.
//!
//! Uses raw `std::thread` fan-out (not `amrviz-par`, which depends on this
//! crate) so the concurrency under test is independent of the worker pool.
//!
//! All tests share the process-global recorder, so each takes `lock()`.

use std::sync::Mutex;

use amrviz_json::Json;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f(i)` for every `i in 0..n` across `workers` OS threads (strided
/// assignment) and returns the per-call results in index order.
fn fan_out<T: Send, F: Fn(usize) -> T + Sync>(n: usize, workers: usize, f: F) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let slots: Vec<Mutex<&mut [Option<T>]>> =
        out.chunks_mut(1).map(Mutex::new).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let f = &f;
            let slots = &slots;
            scope.spawn(move || {
                let mut i = w;
                while i < n {
                    slots[i].lock().unwrap()[0] = Some(f(i));
                    i += workers;
                }
            });
        }
    });
    out.into_iter().map(|v| v.expect("every index ran")).collect()
}

#[test]
fn concurrent_spans_lose_nothing() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();

    const N: usize = 512;
    let sum: u64 = fan_out(N, 8, |i| {
        let mut sp = amrviz_obs::span!("work", level = i % 3);
        sp.add_field("item", i);
        amrviz_obs::counter!("items", 1u64);
        amrviz_obs::counter!("weight", i as u64);
        sp.finish();
        i as u64
    })
    .into_iter()
    .sum();
    amrviz_obs::disable();

    assert_eq!(sum, (N as u64 - 1) * N as u64 / 2);
    let events = amrviz_obs::events_snapshot();
    assert_eq!(events.len(), N, "lost or duplicated span events");

    // No torn events: every event is fully formed and ids are unique.
    let mut ids: Vec<u64> = events.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), N, "duplicate span ids");
    let mut items: Vec<i64> = events
        .iter()
        .map(|e| {
            assert_eq!(e.name, "work");
            e.fields
                .iter()
                .find(|(k, _)| *k == "item")
                .and_then(|(_, v)| v.as_int())
                .expect("item field present")
        })
        .collect();
    items.sort_unstable();
    let want: Vec<i64> = (0..N as i64).collect();
    assert_eq!(items, want, "some items were lost or torn");

    let counters = amrviz_obs::counters_snapshot();
    assert_eq!(counters["items"], N as u64);
    assert_eq!(counters["weight"], sum);
}

#[test]
fn nested_spans_are_parented() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    {
        let _outer = amrviz_obs::span!("outer");
        {
            let _mid = amrviz_obs::span!("mid", level = 0usize);
            let _inner = amrviz_obs::span!("inner");
        }
        let _sibling = amrviz_obs::span!("sibling");
    }
    amrviz_obs::disable();

    let events = amrviz_obs::events_snapshot();
    assert_eq!(events.len(), 4);
    let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
    let outer = by_name("outer");
    let mid = by_name("mid");
    let inner = by_name("inner");
    let sibling = by_name("sibling");
    assert_eq!(outer.parent, 0);
    assert_eq!(mid.parent, outer.id);
    assert_eq!(inner.parent, mid.id);
    assert_eq!(sibling.parent, outer.id);

    // The summary tree mirrors the nesting.
    let summary = amrviz_obs::summary::build(&events);
    assert_eq!(summary.roots.len(), 1);
    assert_eq!(summary.roots[0].key, "outer");
    let keys: Vec<&str> = summary.roots[0]
        .children
        .iter()
        .map(|c| c.key.as_str())
        .collect();
    assert!(keys.contains(&"mid [L0]"), "children: {keys:?}");
    assert!(keys.contains(&"sibling"), "children: {keys:?}");
}

#[test]
fn parenting_survives_thread_fan_out() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    {
        let _outer = amrviz_obs::span!("fan");
        fan_out(64, 4, |i| {
            let _sp = amrviz_obs::span!("leaf", level = i % 2);
        });
    }
    amrviz_obs::disable();
    let events = amrviz_obs::events_snapshot();
    assert_eq!(events.len(), 65);
    // Leaves that happened to run on the spawning thread are parented under
    // `fan`; leaves on worker threads are roots. Either way nothing is lost
    // and the summary accounts for all of them.
    let summary = amrviz_obs::summary::build(&events);
    let leaf_count: usize = count_key(&summary.roots, "leaf");
    assert_eq!(leaf_count, 64);
}

#[test]
fn parent_scope_adopts_workers_into_the_submitting_span() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    let fan_id;
    {
        let _outer = amrviz_obs::span!("fan");
        let parent = amrviz_obs::current_span_id();
        fan_id = parent;
        fan_out(16, 4, |i| {
            let _scope = amrviz_obs::parent_scope(parent);
            let _sp = amrviz_obs::span!("leaf", level = i % 2);
        });
    }
    amrviz_obs::disable();
    let events = amrviz_obs::events_snapshot();
    assert_eq!(events.len(), 17);
    for e in events.iter().filter(|e| e.name == "leaf") {
        assert_eq!(e.parent, fan_id, "leaf not adopted under fan");
    }
}

fn count_key(nodes: &[amrviz_obs::summary::SummaryNode], name: &str) -> usize {
    nodes
        .iter()
        .map(|n| {
            let own = if n.key.starts_with(name) { n.count } else { 0 };
            own + count_key(&n.children, name)
        })
        .sum()
}

#[test]
fn chrome_trace_export_is_valid_json_with_matched_events() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    {
        let _outer = amrviz_obs::span!("compress", level = 0usize, eb = 1e-3f64);
        let _inner = amrviz_obs::span!("quantize", codes = 100usize);
        amrviz_obs::counter!("bytes_out", 1234u64);
    }
    {
        let _sp = amrviz_obs::span!("extract", method = "dual-cell");
    }
    amrviz_obs::disable();

    let text = amrviz_obs::chrome::chrome_trace_json();
    let doc = Json::parse(&text).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut n_complete = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph present");
        match ph {
            // Complete events carry their own duration — nothing to match,
            // which is exactly why we emit X instead of B/E pairs.
            "X" => {
                n_complete += 1;
                let get = |k: &str| ev.get(k).cloned().unwrap_or(Json::Null);
                assert!(get("ts").as_f64().is_some(), "X event without ts");
                assert!(get("dur").as_f64().is_some(), "X event without dur");
                assert!(get("name").as_str().is_some());
                assert!(get("tid").as_f64().is_some());
            }
            "M" | "C" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(n_complete, 3, "one X event per span");

    // Span fields surface as args...
    let find = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
    };
    let compress = find("compress").expect("compress span exported");
    let args = compress.get("args").expect("args present");
    assert_eq!(args.get("level").and_then(Json::as_i64), Some(0));
    let extract = find("extract").expect("extract span exported");
    assert_eq!(
        extract
            .get("args")
            .and_then(|a| a.get("method"))
            .and_then(Json::as_str),
        Some("dual-cell")
    );
    // ...and counters as C events.
    let counter = events
        .iter()
        .find(|e| {
            e.get("ph").and_then(Json::as_str) == Some("C")
                && e.get("name").and_then(Json::as_str) == Some("bytes_out")
        })
        .expect("counter exported");
    assert_eq!(
        counter
            .get("args")
            .and_then(|a| a.get("value"))
            .and_then(Json::as_i64),
        Some(1234)
    );
}

#[test]
fn reset_clears_everything() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    {
        let _sp = amrviz_obs::span!("temp");
        amrviz_obs::counter!("temp_counter", 1u64);
        amrviz_obs::gauge_set("temp_gauge", 1.0);
    }
    amrviz_obs::reset();
    amrviz_obs::disable();
    assert!(amrviz_obs::events_snapshot().is_empty());
    assert!(amrviz_obs::counters_snapshot().is_empty());
    assert!(amrviz_obs::gauges_snapshot().is_empty());
}
