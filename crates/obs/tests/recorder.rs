//! Integration tests for `amrviz-obs`: concurrent recording across threads,
//! nested-span parenting, and chrome-trace export validity.
//!
//! Uses raw `std::thread` fan-out (not `amrviz-par`, which depends on this
//! crate) so the concurrency under test is independent of the worker pool.
//!
//! All tests share the process-global recorder, so each takes `lock()`.

use std::sync::Mutex;

use amrviz_json::Json;

// Installed for real in this test binary so the span-level memory
// attribution tests measure actual allocations, exactly as the `amrviz`
// binary does.
#[global_allocator]
static ALLOC: amrviz_obs::mem::CountingAlloc = amrviz_obs::mem::CountingAlloc;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f(i)` for every `i in 0..n` across `workers` OS threads (strided
/// assignment) and returns the per-call results in index order.
fn fan_out<T: Send, F: Fn(usize) -> T + Sync>(n: usize, workers: usize, f: F) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let slots: Vec<Mutex<&mut [Option<T>]>> = out.chunks_mut(1).map(Mutex::new).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let f = &f;
            let slots = &slots;
            scope.spawn(move || {
                let mut i = w;
                while i < n {
                    slots[i].lock().unwrap()[0] = Some(f(i));
                    i += workers;
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("every index ran"))
        .collect()
}

#[test]
fn concurrent_spans_lose_nothing() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();

    const N: usize = 512;
    let sum: u64 = fan_out(N, 8, |i| {
        let mut sp = amrviz_obs::span!("work", level = i % 3);
        sp.add_field("item", i);
        amrviz_obs::counter!("items", 1u64);
        amrviz_obs::counter!("weight", i as u64);
        sp.finish();
        i as u64
    })
    .into_iter()
    .sum();
    amrviz_obs::disable();

    assert_eq!(sum, (N as u64 - 1) * N as u64 / 2);
    let events = amrviz_obs::events_snapshot();
    assert_eq!(events.len(), N, "lost or duplicated span events");

    // No torn events: every event is fully formed and ids are unique.
    let mut ids: Vec<u64> = events.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), N, "duplicate span ids");
    let mut items: Vec<i64> = events
        .iter()
        .map(|e| {
            assert_eq!(e.name, "work");
            e.fields
                .iter()
                .find(|(k, _)| *k == "item")
                .and_then(|(_, v)| v.as_int())
                .expect("item field present")
        })
        .collect();
    items.sort_unstable();
    let want: Vec<i64> = (0..N as i64).collect();
    assert_eq!(items, want, "some items were lost or torn");

    let counters = amrviz_obs::counters_snapshot();
    assert_eq!(counters["items"], N as u64);
    assert_eq!(counters["weight"], sum);
}

#[test]
fn nested_spans_are_parented() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    {
        let _outer = amrviz_obs::span!("outer");
        {
            let _mid = amrviz_obs::span!("mid", level = 0usize);
            let _inner = amrviz_obs::span!("inner");
        }
        let _sibling = amrviz_obs::span!("sibling");
    }
    amrviz_obs::disable();

    let events = amrviz_obs::events_snapshot();
    assert_eq!(events.len(), 4);
    let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
    let outer = by_name("outer");
    let mid = by_name("mid");
    let inner = by_name("inner");
    let sibling = by_name("sibling");
    assert_eq!(outer.parent, 0);
    assert_eq!(mid.parent, outer.id);
    assert_eq!(inner.parent, mid.id);
    assert_eq!(sibling.parent, outer.id);

    // The summary tree mirrors the nesting.
    let summary = amrviz_obs::summary::build(&events);
    assert_eq!(summary.roots.len(), 1);
    assert_eq!(summary.roots[0].key, "outer");
    let keys: Vec<&str> = summary.roots[0]
        .children
        .iter()
        .map(|c| c.key.as_str())
        .collect();
    assert!(keys.contains(&"mid [L0]"), "children: {keys:?}");
    assert!(keys.contains(&"sibling"), "children: {keys:?}");
}

#[test]
fn parenting_survives_thread_fan_out() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    {
        let _outer = amrviz_obs::span!("fan");
        fan_out(64, 4, |i| {
            let _sp = amrviz_obs::span!("leaf", level = i % 2);
        });
    }
    amrviz_obs::disable();
    let events = amrviz_obs::events_snapshot();
    assert_eq!(events.len(), 65);
    // Leaves that happened to run on the spawning thread are parented under
    // `fan`; leaves on worker threads are roots. Either way nothing is lost
    // and the summary accounts for all of them.
    let summary = amrviz_obs::summary::build(&events);
    let leaf_count: usize = count_key(&summary.roots, "leaf");
    assert_eq!(leaf_count, 64);
}

#[test]
fn parent_scope_adopts_workers_into_the_submitting_span() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    let fan_id;
    {
        let _outer = amrviz_obs::span!("fan");
        let parent = amrviz_obs::current_span_id();
        fan_id = parent;
        fan_out(16, 4, |i| {
            let _scope = amrviz_obs::parent_scope(parent);
            let _sp = amrviz_obs::span!("leaf", level = i % 2);
        });
    }
    amrviz_obs::disable();
    let events = amrviz_obs::events_snapshot();
    assert_eq!(events.len(), 17);
    for e in events.iter().filter(|e| e.name == "leaf") {
        assert_eq!(e.parent, fan_id, "leaf not adopted under fan");
    }
}

fn count_key(nodes: &[amrviz_obs::summary::SummaryNode], name: &str) -> usize {
    nodes
        .iter()
        .map(|n| {
            let own = if n.key.starts_with(name) { n.count } else { 0 };
            own + count_key(&n.children, name)
        })
        .sum()
}

#[test]
fn chrome_trace_export_is_valid_json_with_matched_events() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    {
        let _outer = amrviz_obs::span!("compress", level = 0usize, eb = 1e-3f64);
        let _inner = amrviz_obs::span!("quantize", codes = 100usize);
        amrviz_obs::counter!("bytes_out", 1234u64);
    }
    {
        let _sp = amrviz_obs::span!("extract", method = "dual-cell");
    }
    amrviz_obs::disable();

    let text = amrviz_obs::chrome::chrome_trace_json();
    let doc = Json::parse(&text).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut n_complete = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph present");
        match ph {
            // Complete events carry their own duration — nothing to match,
            // which is exactly why we emit X instead of B/E pairs.
            "X" => {
                n_complete += 1;
                let get = |k: &str| ev.get(k).cloned().unwrap_or(Json::Null);
                assert!(get("ts").as_f64().is_some(), "X event without ts");
                assert!(get("dur").as_f64().is_some(), "X event without dur");
                assert!(get("name").as_str().is_some());
                assert!(get("tid").as_f64().is_some());
            }
            "M" | "C" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(n_complete, 3, "one X event per span");

    // Span fields surface as args...
    let find = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
    };
    let compress = find("compress").expect("compress span exported");
    let args = compress.get("args").expect("args present");
    assert_eq!(args.get("level").and_then(Json::as_i64), Some(0));
    let extract = find("extract").expect("extract span exported");
    assert_eq!(
        extract
            .get("args")
            .and_then(|a| a.get("method"))
            .and_then(Json::as_str),
        Some("dual-cell")
    );
    // ...and counters as C events.
    let counter = events
        .iter()
        .find(|e| {
            e.get("ph").and_then(Json::as_str) == Some("C")
                && e.get("name").and_then(Json::as_str) == Some("bytes_out")
        })
        .expect("counter exported");
    assert_eq!(
        counter
            .get("args")
            .and_then(|a| a.get("value"))
            .and_then(Json::as_i64),
        Some(1234)
    );
}

#[test]
fn reset_clears_everything() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    {
        let _sp = amrviz_obs::span!("temp");
        amrviz_obs::counter!("temp_counter", 1u64);
        amrviz_obs::gauge_set("temp_gauge", 1.0);
        amrviz_obs::histogram!("temp_hist", 42u64);
    }
    assert_eq!(amrviz_obs::histograms_snapshot().len(), 1);
    amrviz_obs::reset();
    amrviz_obs::disable();
    assert!(amrviz_obs::events_snapshot().is_empty());
    assert!(amrviz_obs::counters_snapshot().is_empty());
    assert!(amrviz_obs::gauges_snapshot().is_empty());
    assert!(amrviz_obs::histograms_snapshot().is_empty());
    // reset() also collapses the allocator's high-water mark: a fresh
    // baseline taken right after sees no residual peak.
    let base = amrviz_obs::mem::alloc_baseline();
    assert_eq!(amrviz_obs::mem::peak_since(base), 0);
}

#[test]
fn histogram_macro_aggregates_across_threads() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    const N: usize = 1000;
    fan_out(N, 8, |i| {
        amrviz_obs::histogram!("lat_us", (i + 1) as u64);
    });
    amrviz_obs::disable();
    let hists = amrviz_obs::histograms_snapshot();
    let h = &hists["lat_us"];
    assert_eq!(h.count(), N as u64);
    assert_eq!(h.sum(), (N as u64) * (N as u64 + 1) / 2);
    assert_eq!(h.min(), 1);
    assert_eq!(h.max(), N as u64);
    // Log-bucketing bounds the relative error of every percentile.
    let p50 = h.percentile(50.0);
    assert!((p50 - 500.0).abs() / 500.0 < 0.15, "p50={p50}");
    let p99 = h.percentile(99.0);
    assert!((p99 - 990.0).abs() / 990.0 < 0.15, "p99={p99}");
    amrviz_obs::reset();
}

#[test]
fn finish_returns_zero_when_disabled_mid_span() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    let sp = amrviz_obs::span!("cut_short");
    std::thread::sleep(std::time::Duration::from_millis(2));
    amrviz_obs::disable();
    assert_eq!(sp.finish(), 0.0, "disabled mid-span must report 0.0");
    assert!(
        amrviz_obs::events_snapshot().is_empty(),
        "disabled span must not be recorded"
    );
    // Counters and gauges are no-ops while disabled.
    amrviz_obs::counter!("ignored", 7u64);
    amrviz_obs::gauge_set("ignored_gauge", 1.0);
    amrviz_obs::histogram!("ignored_hist", 1u64);
    assert!(amrviz_obs::counters_snapshot().is_empty());
    assert!(amrviz_obs::gauges_snapshot().is_empty());
    assert!(amrviz_obs::histograms_snapshot().is_empty());
}

#[cfg(feature = "mem-profile")]
#[test]
fn spans_attribute_peak_and_net_memory() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    assert!(amrviz_obs::mem::span_profiling_active());
    const BUF: usize = 4 << 20;
    {
        let _sp = amrviz_obs::span!("transient");
        let v = vec![1u8; BUF];
        assert_eq!(v[BUF - 1], 1);
        drop(v);
    }
    amrviz_obs::disable();
    let events = amrviz_obs::events_snapshot();
    let sp = events.iter().find(|e| e.name == "transient").unwrap();
    // The buffer was allocated *and freed* inside the span: the peak saw
    // it, the net did not.
    assert!(
        sp.mem_peak_bytes >= BUF as u64,
        "peak {} < {BUF}",
        sp.mem_peak_bytes
    );
    assert!(
        sp.mem_net_bytes.unsigned_abs() < BUF as u64 / 2,
        "net {} should not retain the dropped buffer",
        sp.mem_net_bytes
    );
    // The chrome exporter surfaces the same numbers as args.
    let text = amrviz_obs::chrome::chrome_trace_json();
    let doc = Json::parse(&text).unwrap();
    let ev = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("transient"))
        .expect("span exported");
    let peak = ev
        .get("args")
        .and_then(|a| a.get("mem.peak_bytes"))
        .and_then(Json::as_f64)
        .expect("mem.peak_bytes arg");
    assert_eq!(peak as u64, sp.mem_peak_bytes);
    amrviz_obs::reset();
}

#[test]
fn flame_roots_match_summary_and_chrome_trace() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    {
        let _a = amrviz_obs::span!("stage_a");
        {
            let _c = amrviz_obs::span!("child", level = 1usize);
        }
    }
    {
        let _b = amrviz_obs::span!("stage_b");
    }
    amrviz_obs::disable();
    let events = amrviz_obs::events_snapshot();

    let tree = amrviz_obs::flame::build_tree(&events);
    let summary = amrviz_obs::summary::build(&events);
    // Same root frames (flame sorts lexicographically, summary by time).
    let flame_roots: Vec<&str> = tree.iter().map(|n| n.key.as_str()).collect();
    let mut summary_roots: Vec<&str> = summary.roots.iter().map(|r| r.key.as_str()).collect();
    summary_roots.sort_unstable();
    assert_eq!(
        flame_roots, summary_roots,
        "flamegraph roots must mirror the summary tree"
    );

    // Every flame root is a span name present in the chrome trace.
    let text = amrviz_obs::chrome::chrome_trace_json();
    let doc = Json::parse(&text).unwrap();
    let names: Vec<String> = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(Json::as_str).map(str::to_string))
        .collect();
    for root in &flame_roots {
        assert!(
            names.iter().any(|n| n == root),
            "flame root {root:?} missing from chrome trace names {names:?}"
        );
    }

    // Collapsed-stack output nests child under parent with a self count.
    let folded = amrviz_obs::flame::collapsed(&events);
    assert!(folded.contains("stage_a;child [L1] "), "{folded}");
    assert!(
        folded.lines().any(|l| l.starts_with("stage_b ")),
        "{folded}"
    );

    // The HTML is self-contained: no external fetches.
    let html = amrviz_obs::flame::html(&events);
    assert!(html.contains("<html"));
    assert!(!html.contains("http://") && !html.contains("https://"));
    amrviz_obs::reset();
}
