//! Integration tests for `amrviz-obs`: concurrent recording under rayon,
//! nested-span parenting, and chrome-trace export validity.
//!
//! All tests share the process-global recorder, so each takes `lock()`.

use std::sync::Mutex;

use rayon::prelude::*;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn concurrent_spans_under_rayon_lose_nothing() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();

    const N: usize = 512;
    let sum: u64 = (0..N)
        .into_par_iter()
        .map(|i| {
            let mut sp = amrviz_obs::span!("work", level = i % 3);
            sp.add_field("item", i);
            amrviz_obs::counter!("items", 1u64);
            amrviz_obs::counter!("weight", i as u64);
            sp.finish();
            i as u64
        })
        .sum();
    amrviz_obs::disable();

    assert_eq!(sum, (N as u64 - 1) * N as u64 / 2);
    let events = amrviz_obs::events_snapshot();
    assert_eq!(events.len(), N, "lost or duplicated span events");

    // No torn events: every event is fully formed and ids are unique.
    let mut ids: Vec<u64> = events.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), N, "duplicate span ids");
    let mut items: Vec<i64> = events
        .iter()
        .map(|e| {
            assert_eq!(e.name, "work");
            e.fields
                .iter()
                .find(|(k, _)| *k == "item")
                .and_then(|(_, v)| v.as_int())
                .expect("item field present")
        })
        .collect();
    items.sort_unstable();
    let want: Vec<i64> = (0..N as i64).collect();
    assert_eq!(items, want, "some items were lost or torn");

    let counters = amrviz_obs::counters_snapshot();
    assert_eq!(counters["items"], N as u64);
    assert_eq!(counters["weight"], sum);
}

#[test]
fn nested_spans_are_parented() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    {
        let _outer = amrviz_obs::span!("outer");
        {
            let _mid = amrviz_obs::span!("mid", level = 0usize);
            let _inner = amrviz_obs::span!("inner");
        }
        let _sibling = amrviz_obs::span!("sibling");
    }
    amrviz_obs::disable();

    let events = amrviz_obs::events_snapshot();
    assert_eq!(events.len(), 4);
    let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
    let outer = by_name("outer");
    let mid = by_name("mid");
    let inner = by_name("inner");
    let sibling = by_name("sibling");
    assert_eq!(outer.parent, 0);
    assert_eq!(mid.parent, outer.id);
    assert_eq!(inner.parent, mid.id);
    assert_eq!(sibling.parent, outer.id);

    // The summary tree mirrors the nesting.
    let summary = amrviz_obs::summary::build(&events);
    assert_eq!(summary.roots.len(), 1);
    assert_eq!(summary.roots[0].key, "outer");
    let keys: Vec<&str> = summary.roots[0]
        .children
        .iter()
        .map(|c| c.key.as_str())
        .collect();
    assert!(keys.contains(&"mid [L0]"), "children: {keys:?}");
    assert!(keys.contains(&"sibling"), "children: {keys:?}");
}

#[test]
fn parenting_survives_rayon_fan_out() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    {
        let _outer = amrviz_obs::span!("fan");
        (0..64).into_par_iter().for_each(|i| {
            let _sp = amrviz_obs::span!("leaf", level = i % 2);
        });
    }
    amrviz_obs::disable();
    let events = amrviz_obs::events_snapshot();
    assert_eq!(events.len(), 65);
    // Leaves that happened to run on the spawning thread are parented under
    // `fan`; leaves on worker threads are roots. Either way nothing is lost
    // and the summary accounts for all of them.
    let summary = amrviz_obs::summary::build(&events);
    let leaf_count: usize = count_key(&summary.roots, "leaf");
    assert_eq!(leaf_count, 64);
}

fn count_key(nodes: &[amrviz_obs::summary::SummaryNode], name: &str) -> usize {
    nodes
        .iter()
        .map(|n| {
            let own = if n.key.starts_with(name) { n.count } else { 0 };
            own + count_key(&n.children, name)
        })
        .sum()
}

#[test]
fn chrome_trace_export_is_valid_json_with_matched_events() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    {
        let _outer = amrviz_obs::span!("compress", level = 0usize, eb = 1e-3f64);
        let _inner = amrviz_obs::span!("quantize", codes = 100usize);
        amrviz_obs::counter!("bytes_out", 1234u64);
    }
    {
        let _sp = amrviz_obs::span!("extract", method = "dual-cell");
    }
    amrviz_obs::disable();

    let text = amrviz_obs::chrome::chrome_trace_json();
    let doc: serde_json::Value = serde_json::from_str(&text).expect("trace must be valid JSON");
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());

    let mut n_complete = 0;
    for ev in events {
        let ph = ev["ph"].as_str().expect("ph present");
        match ph {
            // Complete events carry their own duration — nothing to match,
            // which is exactly why we emit X instead of B/E pairs.
            "X" => {
                n_complete += 1;
                assert!(ev["ts"].as_f64().is_some(), "X event without ts: {ev}");
                assert!(ev["dur"].as_f64().is_some(), "X event without dur: {ev}");
                assert!(ev["name"].as_str().is_some());
                assert!(ev["tid"].is_number());
            }
            "M" | "C" => {}
            other => panic!("unexpected phase {other} in {ev}"),
        }
    }
    assert_eq!(n_complete, 3, "one X event per span");

    // Span fields surface as args...
    let compress = events
        .iter()
        .find(|e| e["name"] == "compress")
        .expect("compress span exported");
    assert_eq!(compress["args"]["level"], 0);
    let extract = events
        .iter()
        .find(|e| e["name"] == "extract")
        .expect("extract span exported");
    assert_eq!(extract["args"]["method"], "dual-cell");
    // ...and counters as C events.
    let counter = events
        .iter()
        .find(|e| e["ph"] == "C" && e["name"] == "bytes_out")
        .expect("counter exported");
    assert_eq!(counter["args"]["value"], 1234);
}

#[test]
fn reset_clears_everything() {
    let _g = lock();
    amrviz_obs::reset();
    amrviz_obs::enable();
    {
        let _sp = amrviz_obs::span!("temp");
        amrviz_obs::counter!("temp_counter", 1u64);
        amrviz_obs::gauge_set("temp_gauge", 1.0);
    }
    amrviz_obs::reset();
    amrviz_obs::disable();
    assert!(amrviz_obs::events_snapshot().is_empty());
    assert!(amrviz_obs::counters_snapshot().is_empty());
    assert!(amrviz_obs::gauges_snapshot().is_empty());
}
