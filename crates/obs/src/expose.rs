//! Metric exposition: point-in-time snapshots of the recorder as JSON and
//! Prometheus-style text, plus a periodic background snapshot writer.
//!
//! Two formats from one snapshot pass:
//!
//! * **JSON** (`amrviz-metrics-v1`) — machine-readable document carrying
//!   both *lifetime* aggregates (since the last [`crate::reset`]) and the
//!   *rolling window* view (trailing [`crate::window::coverage_seconds`]),
//!   plus the recorder's `obs.*` self-accounting meta-metrics. Consumed
//!   by `amrviz stats`.
//! * **Prometheus text exposition** — `amrviz_<name>` families with
//!   counter totals, gauge values, and histogram summaries (quantiles
//!   0.5/0.9/0.99 over the rolling window, `_sum`/`_count` lifetime), for
//!   scraping or eyeballing with standard tooling.
//!
//! [`write_snapshot`] is crash-safe: the JSON document is written to a
//! sibling temp file and atomically renamed over the target, so a reader
//! polling the file mid-run never sees a torn document. The `.prom`
//! sibling is written the same way.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::hist::Histogram;
use crate::{lock_clean, window};

/// Metrics snapshot schema identifier.
pub const METRICS_SCHEMA: &str = "amrviz-metrics-v1";

/// Formats a float as plain decimal (Prometheus- and JSON-safe; integral
/// values render with a trailing `.0`, non-finite values as `0.0`).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Plain decimal keeps Prometheus parsers happy; JSON accepts it too.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        "0.0".to_string()
    }
}

/// Renders a histogram's summary stats (count/sum/min/max/mean + p50/p90/
/// p99) as one JSON object. Shared by the metrics snapshot and the serve
/// STATS endpoint so both report identical shapes.
pub fn hist_stats_json(h: &Histogram) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
         \"p50\":{},\"p90\":{},\"p99\":{}}}",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        fmt_f64(h.mean()),
        fmt_f64(h.percentile(50.0)),
        fmt_f64(h.percentile(90.0)),
        fmt_f64(h.percentile(99.0)),
    )
}

/// Renders the full recorder state as one `amrviz-metrics-v1` JSON
/// document (single line, suitable for atomic replacement). `window_secs`
/// bounds the rolling-window view; pass
/// [`window::coverage_seconds`] for "everything the ring covers".
pub fn snapshot_json(window_secs: f64) -> String {
    let (slot_nanos, slots) = window::config();
    let counters = crate::counters_snapshot();
    let counters_w = crate::counters_window_snapshot(window_secs);
    let gauges = crate::gauges_snapshot();
    let gauges_w = crate::gauges_window_snapshot(window_secs);
    let hists = crate::histograms_snapshot();
    let hists_w = crate::histograms_window_snapshot(window_secs);
    let meta = crate::meta_snapshot();

    let mut out = format!(
        "{{\"schema\":\"{METRICS_SCHEMA}\",\"uptime_ns\":{},\
         \"window\":{{\"slot_ns\":{slot_nanos},\"slots\":{slots},\
         \"view_secs\":{}}}",
        crate::epoch_elapsed_ns(),
        fmt_f64(window_secs),
    );

    out.push_str(",\"counters\":{");
    for (i, (name, lifetime)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let w = counters_w.get(name).copied().unwrap_or(0);
        out.push_str(&format!(
            "\"{}\":{{\"lifetime\":{lifetime},\"window\":{w}}}",
            crate::json_escape(name)
        ));
    }
    out.push('}');

    out.push_str(",\"gauges\":{");
    for (i, (name, last)) in gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"last\":{}",
            crate::json_escape(name),
            fmt_f64(*last)
        ));
        if let Some(w) = gauges_w.get(name) {
            out.push_str(&format!(",\"window\":{}", fmt_f64(*w)));
        }
        out.push('}');
    }
    out.push('}');

    out.push_str(",\"histograms\":{");
    for (i, (name, h)) in hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"lifetime\":{}",
            crate::json_escape(name),
            hist_stats_json(h)
        ));
        if let Some(w) = hists_w.get(name) {
            out.push_str(&format!(",\"window\":{}", hist_stats_json(w)));
        }
        out.push('}');
    }
    out.push('}');

    out.push_str(&format!(
        ",\"meta\":{{\"overhead_us\":{},\"spans_recorded\":{},\
         \"traces_started\":{},\"dropped_events\":{},\"journal_enqueued\":{}}}}}",
        meta.overhead_us,
        meta.spans_recorded,
        meta.traces_started,
        meta.journal_dropped,
        meta.journal_enqueued,
    ));
    out
}

/// Sanitizes a metric name into a Prometheus identifier
/// (`[a-zA-Z_][a-zA-Z0-9_]*`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_';
        let c = if ok { c } else { '_' };
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(c);
    }
    out
}

/// Renders the recorder state as Prometheus text exposition. Counters and
/// `_sum`/`_count` are lifetime totals; histogram quantiles are computed
/// over the trailing `window_secs` rolling window (falling back to the
/// lifetime distribution when the window is empty).
pub fn prometheus_text(window_secs: f64) -> String {
    let mut out = String::new();
    for (name, v) in crate::counters_snapshot() {
        let p = prom_name(name);
        out.push_str(&format!(
            "# TYPE amrviz_{p}_total counter\namrviz_{p}_total {v}\n"
        ));
    }
    for (name, v) in crate::gauges_snapshot() {
        let p = prom_name(name);
        out.push_str(&format!(
            "# TYPE amrviz_{p} gauge\namrviz_{p} {}\n",
            fmt_f64(v)
        ));
    }
    let hists = crate::histograms_snapshot();
    let hists_w = crate::histograms_window_snapshot(window_secs);
    for (name, lifetime) in &hists {
        let p = prom_name(name);
        let q = hists_w.get(name).unwrap_or(lifetime);
        out.push_str(&format!("# TYPE amrviz_{p} summary\n"));
        for (label, pct) in [("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0)] {
            out.push_str(&format!(
                "amrviz_{p}{{quantile=\"{label}\"}} {}\n",
                fmt_f64(q.percentile(pct))
            ));
        }
        out.push_str(&format!("amrviz_{p}_sum {}\n", lifetime.sum()));
        out.push_str(&format!("amrviz_{p}_count {}\n", lifetime.count()));
        // Full distribution as a native Prometheus histogram: cumulative
        // `_bucket{le=...}` counts straight from the log-bucketed storage.
        // A separate `_hist` family — the summary above predates it and
        // the two TYPEs cannot share a name.
        out.push_str(&format!("# TYPE amrviz_{p}_hist histogram\n"));
        let mut cumulative = 0u64;
        for (_lo, hi, count) in lifetime.nonzero_buckets() {
            cumulative += count;
            // Bucket bounds are inclusive [lo, hi], so `le = hi` is exact.
            out.push_str(&format!(
                "amrviz_{p}_hist_bucket{{le=\"{}\"}} {cumulative}\n",
                fmt_f64(hi as f64)
            ));
        }
        out.push_str(&format!(
            "amrviz_{p}_hist_bucket{{le=\"+Inf\"}} {}\n",
            lifetime.count()
        ));
        out.push_str(&format!("amrviz_{p}_hist_sum {}\n", lifetime.sum()));
        out.push_str(&format!("amrviz_{p}_hist_count {}\n", lifetime.count()));
    }
    let meta = crate::meta_snapshot();
    out.push_str(&format!(
        "# TYPE amrviz_obs_overhead_us counter\namrviz_obs_overhead_us {}\n",
        meta.overhead_us
    ));
    out.push_str(&format!(
        "# TYPE amrviz_obs_dropped_events counter\namrviz_obs_dropped_events {}\n",
        meta.journal_dropped
    ));
    out.push_str(&format!(
        "# TYPE amrviz_obs_spans_recorded counter\namrviz_obs_spans_recorded {}\n",
        meta.spans_recorded
    ));
    out
}

fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Writes the JSON snapshot to `path` and the Prometheus exposition to the
/// sibling `path.with_extension("prom")`, each via temp-file + atomic
/// rename so concurrent readers never observe a torn document.
pub fn write_snapshot(path: &Path) -> std::io::Result<()> {
    let window_secs = window::coverage_seconds();
    write_atomic(path, &snapshot_json(window_secs))?;
    write_atomic(&path.with_extension("prom"), &prometheus_text(window_secs))
}

static WRITER_ACTIVE: AtomicBool = AtomicBool::new(false);
static WRITER_STOP: AtomicBool = AtomicBool::new(false);

fn writer_handle() -> &'static Mutex<Option<JoinHandle<()>>> {
    static H: OnceLock<Mutex<Option<JoinHandle<()>>>> = OnceLock::new();
    H.get_or_init(|| Mutex::new(None))
}

/// Starts the periodic snapshot writer: every `interval` the current
/// recorder state is flushed to `path` (+ `.prom` sibling) via
/// [`write_snapshot`]. Errors if a writer is already running.
pub fn writer_start(path: PathBuf, interval: Duration) -> Result<(), String> {
    if WRITER_ACTIVE.swap(true, Ordering::SeqCst) {
        return Err("metrics writer already active".into());
    }
    WRITER_STOP.store(false, Ordering::SeqCst);
    // Fail fast on an unwritable path before detaching the thread.
    write_snapshot(&path).map_err(|e| {
        WRITER_ACTIVE.store(false, Ordering::SeqCst);
        format!("metrics: cannot write {}: {e}", path.display())
    })?;
    let interval = interval.max(Duration::from_millis(10));
    let handle = std::thread::Builder::new()
        .name("amrviz-metrics".into())
        .spawn(move || {
            // Poll the stop flag at a finer grain than the interval so
            // shutdown never blocks for a full period.
            let tick = Duration::from_millis(25).min(interval);
            let mut elapsed = Duration::ZERO;
            loop {
                if WRITER_STOP.load(Ordering::SeqCst) {
                    let _ = write_snapshot(&path);
                    return;
                }
                std::thread::sleep(tick);
                elapsed += tick;
                if elapsed >= interval {
                    elapsed = Duration::ZERO;
                    let _ = write_snapshot(&path);
                }
            }
        })
        .map_err(|e| {
            WRITER_ACTIVE.store(false, Ordering::SeqCst);
            format!("metrics: cannot spawn writer: {e}")
        })?;
    *lock_clean(writer_handle()) = Some(handle);
    Ok(())
}

/// Stops the periodic writer, flushing one final snapshot. No-op when no
/// writer is running.
pub fn writer_stop() {
    if WRITER_ACTIVE.load(Ordering::SeqCst) {
        WRITER_STOP.store(true, Ordering::SeqCst);
        if let Some(h) = lock_clean(writer_handle()).take() {
            let _ = h.join();
        }
        WRITER_ACTIVE.store(false, Ordering::SeqCst);
    }
}

/// Formats a snapshot's histogram map as the human-readable table used by
/// `--timing` output (re-exported convenience over [`crate::hist::render_text`]).
pub fn render_window_text(window_secs: f64) -> String {
    let hists: BTreeMap<&'static str, Histogram> = crate::histograms_window_snapshot(window_secs);
    crate::hist::render_text(&hists)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("compress.blob_bytes"), "compress_blob_bytes");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_name("a-b c"), "a_b_c");
    }

    #[test]
    fn snapshot_shapes_are_stable() {
        let _g = crate::tests::guard();
        crate::reset();
        crate::enable();
        crate::counter_add("exp.bytes", 10);
        crate::gauge_set("exp.eb", 0.5);
        crate::histogram_record("exp.lat", 100);
        crate::disable();
        let j = snapshot_json(window::coverage_seconds());
        assert!(j.starts_with("{\"schema\":\"amrviz-metrics-v1\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
        assert!(j.contains("\"exp.bytes\":{\"lifetime\":10,\"window\":10}"));
        assert!(j.contains("\"exp.eb\""));
        assert!(j.contains("\"p99\""));
        assert!(j.contains("\"meta\""));

        let p = prometheus_text(window::coverage_seconds());
        assert!(p.contains("amrviz_exp_bytes_total 10"));
        assert!(p.contains("amrviz_exp_eb 0.5"));
        assert!(p.contains("amrviz_exp_lat{quantile=\"0.99\"}"));
        assert!(p.contains("amrviz_obs_overhead_us"));
        assert!(p.contains("amrviz_obs_dropped_events"));
    }

    #[test]
    fn prom_histogram_buckets_are_cumulative_and_parse() {
        let _g = crate::tests::guard();
        crate::reset();
        crate::enable();
        // Samples spread across several octaves so multiple buckets fill.
        for v in [1u64, 3, 3, 17, 170, 170, 170, 4096, 100_000] {
            crate::histogram_record("bkt.lat", v);
        }
        crate::disable();
        let p = prometheus_text(window::coverage_seconds());

        // Parse the `_bucket{le=...}` lines back out of the exposition.
        let mut buckets: Vec<(f64, u64)> = Vec::new();
        let mut hist_count = None;
        let mut hist_sum = None;
        for line in p.lines() {
            if let Some(rest) = line.strip_prefix("amrviz_bkt_lat_hist_bucket{le=\"") {
                let (le, count) = rest.split_once("\"} ").expect("bucket line shape");
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>().expect("le bound parses")
                };
                buckets.push((le, count.parse().expect("bucket count parses")));
            } else if let Some(v) = line.strip_prefix("amrviz_bkt_lat_hist_count ") {
                hist_count = Some(v.parse::<u64>().unwrap());
            } else if let Some(v) = line.strip_prefix("amrviz_bkt_lat_hist_sum ") {
                hist_sum = Some(v.parse::<u64>().unwrap());
            }
        }
        assert!(
            buckets.len() >= 6,
            "distinct sample octaves produce distinct buckets: {buckets:?}"
        );
        // le bounds strictly increase and counts are monotone non-decreasing.
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "le bounds must increase: {buckets:?}");
            assert!(w[0].1 <= w[1].1, "cumulative counts must not drop");
        }
        let (last_le, last_count) = *buckets.last().unwrap();
        assert!(last_le.is_infinite(), "terminal bucket is +Inf");
        assert_eq!(last_count, 9, "+Inf bucket equals total count");
        assert_eq!(hist_count, Some(9));
        assert_eq!(hist_sum, Some(1u64 + 3 + 3 + 17 + 170 * 3 + 4096 + 100_000));
        // Every sample is <= its bucket's le (cumulative count at the
        // first bucket whose le >= v must include v).
        for v in [1u64, 3, 17, 170, 4096, 100_000] {
            let covered = buckets
                .iter()
                .find(|(le, _)| *le >= v as f64)
                .map(|(_, c)| *c)
                .unwrap_or(0);
            assert!(covered > 0, "sample {v} falls inside some bucket");
        }
        // The TYPE line declares the family as a histogram.
        assert!(p.contains("# TYPE amrviz_bkt_lat_hist histogram"));
        // The legacy summary family still exists alongside.
        assert!(p.contains("amrviz_bkt_lat{quantile=\"0.99\"}"));
    }

    #[test]
    fn write_snapshot_is_atomic_and_makes_prom_sibling() {
        let _g = crate::tests::guard();
        crate::reset();
        let dir = std::env::temp_dir().join(format!("amrviz_m_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        write_snapshot(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(METRICS_SCHEMA));
        assert!(path.with_extension("prom").exists());
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file must be renamed away"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn periodic_writer_produces_midrun_snapshots() {
        let _g = crate::tests::guard();
        crate::reset();
        crate::enable();
        let dir = std::env::temp_dir().join(format!("amrviz_mw_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live.json");
        writer_start(path.clone(), Duration::from_millis(30)).unwrap();
        assert!(
            writer_start(path.clone(), Duration::from_millis(30)).is_err(),
            "double start must fail"
        );
        crate::counter_add("live.ticks", 1);
        // Wait for at least one periodic flush beyond the initial one.
        std::thread::sleep(Duration::from_millis(120));
        let mid = std::fs::read_to_string(&path).unwrap();
        writer_stop();
        crate::disable();
        assert!(mid.contains(METRICS_SCHEMA), "mid-run snapshot exists");
        let fin = std::fs::read_to_string(&path).unwrap();
        assert!(fin.contains("live.ticks"), "final flush sees the counter");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
