//! Flamegraph export from the recorded span tree.
//!
//! Two renderings of the same aggregation:
//!
//! * [`collapsed`] — Brendan Gregg's collapsed-stack text format
//!   (`root;child;leaf <self-µs>`), one line per stack with non-zero self
//!   time, sorted lexicographically. Pipe into any external
//!   `flamegraph.pl`-compatible tool.
//! * [`html`] — a self-contained icicle-style flamegraph (inline CSS + a
//!   few lines of JS for click-to-zoom; no external assets, opens from
//!   `file://`). Frame tooltips carry total/self time, span count and —
//!   when the `mem-profile` feature recorded them — peak bytes.
//!
//! Aggregation matches [`crate::summary`]: spans group by parent chain and
//! name, with `level = N` fields split into ` [L<n>]` rows, so the
//! flamegraph's root frames are exactly the summary's (and the chrome
//! trace's) root spans. Children are laid out in deterministic
//! (lexicographic) order, so the same recording always renders the same
//! file.

use std::collections::HashMap;

use crate::{events_snapshot, SpanEvent};

/// One aggregated frame of the flamegraph tree.
#[derive(Debug, Clone)]
pub struct FlameNode {
    /// Span name plus ` [L<n>]` when the spans carried a `level` field.
    pub key: String,
    /// Total wall nanoseconds across all spans aggregated into this frame.
    pub total_ns: u64,
    /// `total_ns` minus the children's totals (clamped at 0).
    pub self_ns: u64,
    /// Number of spans aggregated.
    pub count: usize,
    /// Largest `mem_peak_bytes` of any aggregated span.
    pub mem_peak_bytes: u64,
    pub children: Vec<FlameNode>,
}

/// Builds the aggregated frame tree. The returned vector holds the root
/// frames in deterministic (lexicographic) order.
pub fn build_tree(events: &[SpanEvent]) -> Vec<FlameNode> {
    struct Agg {
        key: String,
        total_ns: u64,
        count: usize,
        mem_peak: u64,
        children: Vec<usize>,
        child_by_key: HashMap<String, usize>,
    }
    // Index 0 is a virtual root, as in `summary::build`.
    let mut nodes: Vec<Agg> = vec![Agg {
        key: String::new(),
        total_ns: 0,
        count: 0,
        mem_peak: 0,
        children: Vec::new(),
        child_by_key: HashMap::new(),
    }];
    let mut node_of_event: HashMap<u64, usize> = HashMap::new();

    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.id); // parents have smaller ids

    for e in sorted {
        let parent_idx = if e.parent == 0 {
            0
        } else {
            node_of_event.get(&e.parent).copied().unwrap_or(0)
        };
        let key = match e.level() {
            Some(l) => format!("{} [L{l}]", e.name),
            None => e.name.to_string(),
        };
        let idx = match nodes[parent_idx].child_by_key.get(&key) {
            Some(&i) => i,
            None => {
                let i = nodes.len();
                nodes.push(Agg {
                    key: key.clone(),
                    total_ns: 0,
                    count: 0,
                    mem_peak: 0,
                    children: Vec::new(),
                    child_by_key: HashMap::new(),
                });
                nodes[parent_idx].children.push(i);
                nodes[parent_idx].child_by_key.insert(key, i);
                i
            }
        };
        nodes[idx].total_ns += e.dur_ns;
        nodes[idx].count += 1;
        nodes[idx].mem_peak = nodes[idx].mem_peak.max(e.mem_peak_bytes);
        node_of_event.insert(e.id, idx);
    }

    fn convert(nodes: &[Agg], idx: usize) -> FlameNode {
        let n = &nodes[idx];
        let mut children: Vec<FlameNode> = n.children.iter().map(|&c| convert(nodes, c)).collect();
        children.sort_by(|a, b| a.key.cmp(&b.key));
        let child_total: u64 = children.iter().map(|c| c.total_ns).sum();
        FlameNode {
            key: n.key.clone(),
            total_ns: n.total_ns,
            self_ns: n.total_ns.saturating_sub(child_total),
            count: n.count,
            mem_peak_bytes: n.mem_peak,
            children,
        }
    }

    let mut roots: Vec<FlameNode> = nodes[0]
        .children
        .iter()
        .map(|&i| convert(&nodes, i))
        .collect();
    roots.sort_by(|a, b| a.key.cmp(&b.key));
    roots
}

/// Collapsed-stack text: `a;b;c <self-µs>` per frame with non-zero self
/// time (leaves always emitted), lines sorted.
pub fn collapsed(events: &[SpanEvent]) -> String {
    let roots = build_tree(events);
    let mut lines: Vec<String> = Vec::new();
    fn walk(node: &FlameNode, prefix: &str, lines: &mut Vec<String>) {
        let stack = if prefix.is_empty() {
            node.key.clone()
        } else {
            format!("{prefix};{}", node.key)
        };
        let self_us = node.self_ns / 1_000;
        if self_us > 0 || node.children.is_empty() {
            lines.push(format!("{stack} {self_us}"));
        }
        for c in &node.children {
            walk(c, &stack, lines);
        }
    }
    for r in &roots {
        walk(r, "", &mut lines);
    }
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Deterministic warm color for a frame name (FNV-1a hash → hue).
fn frame_color(name: &str) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let hue = (h % 55) as u32; // 0..55: red → orange → yellow
    let sat = 70 + (h >> 8) % 20; // 70..90 %
    let light = 52 + (h >> 16) % 10; // 52..62 %
    format!("hsl({hue},{sat}%,{light}%)")
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// Self-contained HTML flamegraph (icicle layout, roots on top).
pub fn html(events: &[SpanEvent]) -> String {
    let roots = build_tree(events);
    let total_ns: u64 = roots.iter().map(|r| r.total_ns).sum();
    let denom = if total_ns == 0 { 1.0 } else { total_ns as f64 };

    // Lay frames out server-side: x/width as fractions of the whole graph.
    let mut frames = String::new();
    let mut max_depth = 0usize;
    #[allow(clippy::too_many_arguments)]
    fn walk(
        node: &FlameNode,
        x: f64,
        depth: usize,
        denom: f64,
        frames: &mut String,
        max_depth: &mut usize,
    ) -> f64 {
        let w = node.total_ns as f64 / denom;
        *max_depth = (*max_depth).max(depth);
        let pct = 100.0 * w;
        let mem = if node.mem_peak_bytes > 0 {
            format!(" | peak {}", fmt_bytes(node.mem_peak_bytes))
        } else {
            String::new()
        };
        let title = format!(
            "{} — {} ms total, {} ms self, {} span(s), {:.1}%{}",
            node.key,
            fmt_ms(node.total_ns),
            fmt_ms(node.self_ns),
            node.count,
            pct,
            mem
        );
        frames.push_str(&format!(
            "<div class=\"f\" data-x=\"{x:.6}\" data-w=\"{w:.6}\" \
             style=\"left:{:.4}%;width:{:.4}%;top:{}px;background:{}\" \
             title=\"{}\">{}</div>\n",
            x * 100.0,
            w * 100.0,
            depth * 18,
            frame_color(&node.key),
            html_escape(&title),
            html_escape(&node.key)
        ));
        let mut cx = x;
        for c in &node.children {
            cx = walk(c, cx, depth + 1, denom, frames, max_depth);
        }
        x + w
    }
    let mut x = 0.0;
    for r in &roots {
        x = walk(r, x, 0, denom, &mut frames, &mut max_depth);
    }

    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n\
         <title>amrviz flamegraph</title>\n\
         <style>\n\
         body{{font:12px monospace;margin:16px;background:#1e1e1e;color:#ddd}}\n\
         #g{{position:relative;height:{height}px;margin-top:8px}}\n\
         .f{{position:absolute;height:16px;line-height:16px;overflow:hidden;\
         white-space:nowrap;text-overflow:clip;border:1px solid #1e1e1e;\
         box-sizing:border-box;color:#222;cursor:pointer;font-size:11px;\
         padding-left:2px;border-radius:2px}}\n\
         .f:hover{{filter:brightness(1.2)}}\n\
         #hdr{{display:flex;gap:16px;align-items:baseline}}\n\
         button{{font:inherit;background:#333;color:#ddd;border:1px solid #555;\
         border-radius:3px;cursor:pointer}}\n\
         </style></head><body>\n\
         <div id=\"hdr\"><b>amrviz flamegraph</b>\
         <span>total {total_ms} ms across {nroots} root span(s)</span>\
         <button onclick=\"zoom(0,1)\">reset zoom</button>\
         <span>click a frame to zoom</span></div>\n\
         <div id=\"g\">\n{frames}</div>\n\
         <script>\n\
         function zoom(x0,w0){{\n\
           document.querySelectorAll('.f').forEach(function(d){{\n\
             var x=parseFloat(d.dataset.x),w=parseFloat(d.dataset.w);\n\
             var nx=(x-x0)/w0,nw=w/w0;\n\
             if(nx+nw<=0||nx>=1||nw<1e-6){{d.style.display='none';return;}}\n\
             d.style.display='block';\n\
             d.style.left=(Math.max(nx,0)*100)+'%';\n\
             d.style.width=((Math.min(nx+nw,1)-Math.max(nx,0))*100)+'%';\n\
           }});\n\
         }}\n\
         document.querySelectorAll('.f').forEach(function(d){{\n\
           d.addEventListener('click',function(){{\n\
             zoom(parseFloat(d.dataset.x),parseFloat(d.dataset.w));\n\
           }});\n\
         }});\n\
         </script>\n</body></html>\n",
        height = (max_depth + 1) * 18,
        total_ms = fmt_ms(total_ns),
        nroots = roots.len(),
        frames = frames,
    )
}

fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Writes a flamegraph of everything recorded so far. A `.html` extension
/// selects the self-contained HTML rendering; anything else gets
/// collapsed-stack text.
pub fn write_flamegraph(path: &std::path::Path) -> std::io::Result<()> {
    let events = events_snapshot();
    write_flamegraph_events(path, &events)
}

/// [`write_flamegraph`] over an explicit event list (used by `repro`, which
/// accumulates events across per-experiment recorder resets).
pub fn write_flamegraph_events(
    path: &std::path::Path,
    events: &[SpanEvent],
) -> std::io::Result<()> {
    let is_html = path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("html") || e.eq_ignore_ascii_case("htm"));
    let body = if is_html {
        html(events)
    } else {
        collapsed(events)
    };
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FieldValue;

    fn ev(id: u64, parent: u64, name: &'static str, level: Option<i64>, dur_ns: u64) -> SpanEvent {
        let fields = match level {
            Some(l) => vec![("level", FieldValue::Int(l))],
            None => Vec::new(),
        };
        SpanEvent {
            id,
            parent,
            trace_id: 0xfeed,
            name,
            fields,
            thread: 0,
            start_ns: id * 10,
            dur_ns,
            mem_net_bytes: 0,
            mem_peak_bytes: id * 1000,
        }
    }

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            ev(1, 0, "compress", None, 1_000_000_000),
            ev(2, 1, "compress.level", Some(0), 300_000_000),
            ev(3, 1, "compress.level", Some(1), 600_000_000),
            ev(4, 0, "extract", None, 500_000_000),
        ]
    }

    #[test]
    fn tree_computes_self_time() {
        let roots = build_tree(&sample_events());
        assert_eq!(roots.len(), 2);
        let compress = roots.iter().find(|r| r.key == "compress").unwrap();
        assert_eq!(compress.total_ns, 1_000_000_000);
        assert_eq!(compress.self_ns, 100_000_000);
        assert_eq!(compress.children.len(), 2);
        assert_eq!(compress.mem_peak_bytes, 1000);
        let extract = roots.iter().find(|r| r.key == "extract").unwrap();
        assert_eq!(extract.self_ns, extract.total_ns);
    }

    #[test]
    fn collapsed_lines_are_sorted_stacks() {
        let out = collapsed(&sample_events());
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.contains(&"compress;compress.level [L0] 300000"));
        assert!(lines.contains(&"compress;compress.level [L1] 600000"));
        assert!(lines.contains(&"compress 100000"));
        assert!(lines.contains(&"extract 500000"));
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "collapsed output must be sorted");
    }

    #[test]
    fn html_is_self_contained_and_escaped() {
        let out = html(&sample_events());
        assert!(out.starts_with("<!DOCTYPE html>"));
        assert!(out.contains("compress.level [L1]"));
        assert!(out.contains("function zoom"));
        // No external references — must open from file:// offline.
        assert!(!out.contains("http://") && !out.contains("https://"));
        assert!(out.contains("peak 1000 B") || out.contains("peak"));
    }

    #[test]
    fn empty_recording_renders() {
        assert_eq!(collapsed(&[]), "");
        let out = html(&[]);
        assert!(out.contains("0 root span(s)"));
    }

    #[test]
    fn deterministic_output() {
        let a = html(&sample_events());
        let b = html(&sample_events());
        assert_eq!(a, b);
        assert_eq!(collapsed(&sample_events()), collapsed(&sample_events()));
    }
}
