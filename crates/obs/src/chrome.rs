//! Chrome-trace (`chrome://tracing` / Perfetto) export.
//!
//! Emits the JSON Object Format: `{"traceEvents": [...]}` with one complete
//! (`"ph": "X"`) event per recorded span, metadata (`"M"`) events naming the
//! threads, and one counter (`"C"`) event per recorded counter so totals
//! show up in the trace viewer. Timestamps are microseconds since the
//! recorder epoch.

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

use crate::{counters_snapshot, events_snapshot, json_escape, SpanEvent};

/// Renders the given spans and counters as a chrome-trace JSON document.
pub fn render_chrome_trace(
    events: &[SpanEvent],
    counters: &std::collections::BTreeMap<&'static str, u64>,
) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };

    // Thread metadata so Perfetto shows stable lane names.
    let threads: BTreeSet<u64> = events.iter().map(|e| e.thread).collect();
    for t in &threads {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{t},\
                 \"args\":{{\"name\":\"amrviz-{t}\"}}}}"
            ),
            &mut out,
            &mut first,
        );
    }

    let mut end_us = 0.0f64;
    for e in events {
        let ts = e.start_ns as f64 / 1e3;
        let dur = e.dur_ns as f64 / 1e3;
        end_us = end_us.max(ts + dur);
        let mut args = String::new();
        for (k, v) in &e.fields {
            if !args.is_empty() {
                args.push(',');
            }
            args.push_str(&format!("\"{}\":{}", json_escape(k), v.to_json()));
        }
        if cfg!(feature = "mem-profile") {
            if !args.is_empty() {
                args.push(',');
            }
            args.push_str(&format!(
                "\"mem.peak_bytes\":{},\"mem.net_bytes\":{}",
                e.mem_peak_bytes, e.mem_net_bytes
            ));
        }
        if e.trace_id != 0 {
            if !args.is_empty() {
                args.push(',');
            }
            // Hex string: trace ids are full u64s and JSON tooling
            // (including crates/json) rounds large numerics through f64.
            args.push_str(&format!("\"trace\":\"{:016x}\"", e.trace_id));
        }
        push(
            format!(
                "{{\"name\":\"{}\",\"cat\":\"amrviz\",\"ph\":\"X\",\"ts\":{ts:.3},\
                 \"dur\":{dur:.3},\"pid\":1,\"tid\":{},\"args\":{{{args}}}}}",
                json_escape(e.name),
                e.thread
            ),
            &mut out,
            &mut first,
        );
    }

    for (name, value) in counters {
        push(
            format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{end_us:.3},\"pid\":1,\
                 \"args\":{{\"value\":{value}}}}}",
                json_escape(name)
            ),
            &mut out,
            &mut first,
        );
    }

    out.push_str("]}");
    out
}

/// Chrome-trace JSON for everything recorded so far.
pub fn chrome_trace_json() -> String {
    render_chrome_trace(&events_snapshot(), &counters_snapshot())
}

/// Writes [`chrome_trace_json`] to `path` (open the file in
/// `chrome://tracing` or <https://ui.perfetto.dev>).
pub fn write_chrome_trace(path: &Path) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FieldValue;

    fn ev(id: u64, name: &'static str, thread: u64) -> SpanEvent {
        SpanEvent {
            id,
            parent: 0,
            trace_id: 0xfeed,
            name,
            fields: vec![("level", FieldValue::Int(1))],
            thread,
            start_ns: 1_000 * id,
            dur_ns: 500,
            mem_net_bytes: 64,
            mem_peak_bytes: 128,
        }
    }

    #[test]
    fn render_is_balanced_json() {
        let mut counters = std::collections::BTreeMap::new();
        counters.insert("bytes", 42u64);
        let s = render_chrome_trace(&[ev(1, "compress", 0), ev(2, "extract", 3)], &counters);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert_eq!(
            s.matches('{').count(),
            s.matches('}').count(),
            "unbalanced braces in {s}"
        );
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"C\""));
        assert!(s.contains("\"ph\":\"M\""));
        assert!(s.contains("\"name\":\"compress\""));
        assert!(s.contains("\"level\":1"));
        if cfg!(feature = "mem-profile") {
            assert!(s.contains("\"mem.peak_bytes\":128"));
            assert!(s.contains("\"mem.net_bytes\":64"));
        }
        assert!(s.contains("\"trace\":\"000000000000feed\""));
    }

    #[test]
    fn empty_recording_is_valid() {
        let s = render_chrome_trace(&[], &std::collections::BTreeMap::new());
        assert_eq!(s, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }
}
