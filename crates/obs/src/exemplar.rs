//! Tail-latency exemplars: a bounded reservoir retaining the slowest K
//! requests with their stage breakdown and trace id.
//!
//! A p99 number says *that* the tail is slow; an exemplar says *why*: it
//! carries the per-stage timing of an actual tail request plus its trace
//! id, so the operator can jump from "p99 is 80 ms" to "that request spent
//! 70 ms in decode — here is its span tree in the journal".
//!
//! The reservoir keeps the top K by a **total order** (duration, then
//! trace id as tiebreak), so its final contents depend only on the *set*
//! of offered requests, never on offer order or thread interleaving —
//! which is what makes it deterministic at any `AMRVIZ_THREADS`.

/// One retained tail request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Trace id, resolvable against journal `span`/`serve` lines.
    pub trace: u64,
    /// End-to-end server-side duration in microseconds.
    pub total_us: u64,
    /// Free-form label (status name, key, scenario — caller's choice).
    pub label: String,
    /// Stage breakdown: `(stage name, microseconds)`, insertion order.
    pub stages: Vec<(String, u64)>,
}

impl Exemplar {
    /// The stage that consumed the most time (ties broken by name, so the
    /// answer is deterministic). `None` when no stages were recorded.
    pub fn dominant_stage(&self) -> Option<(&str, u64)> {
        self.stages
            .iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
            .map(|(n, us)| (n.as_str(), *us))
    }

    /// Single-line JSON object (trace as hex string — the journal's own
    /// convention, since crates/json parses numbers as f64).
    pub fn to_json(&self) -> String {
        let mut stages = String::new();
        for (i, (name, us)) in self.stages.iter().enumerate() {
            if i > 0 {
                stages.push(',');
            }
            stages.push_str(&format!("\"{}\":{us}", crate::json_escape(name)));
        }
        format!(
            "{{\"trace\":\"{:x}\",\"total_us\":{},\"label\":\"{}\",\"stages_us\":{{{}}}}}",
            self.trace,
            self.total_us,
            crate::json_escape(&self.label),
            stages
        )
    }
}

/// Total-order sort key: slower first, then higher trace id. Strict total
/// order over (total_us, trace) pairs makes reservoir contents a pure
/// function of the offered set.
fn key(e: &Exemplar) -> (u64, u64) {
    (e.total_us, e.trace)
}

/// Bounded slowest-K reservoir. Not internally synchronized — wrap in a
/// `Mutex` for concurrent offer paths (the serve telemetry does).
#[derive(Debug, Clone)]
pub struct Reservoir {
    cap: usize,
    /// Sorted descending by [`key`]; never exceeds `cap`.
    items: Vec<Exemplar>,
}

/// Default reservoir capacity: enough tail context to diagnose, small
/// enough that a STATS snapshot stays a few KB.
pub const DEFAULT_CAP: usize = 8;

impl Default for Reservoir {
    fn default() -> Self {
        Reservoir::new(DEFAULT_CAP)
    }
}

impl Reservoir {
    /// Reservoir retaining the `cap` slowest exemplars (cap clamped ≥ 1).
    pub fn new(cap: usize) -> Self {
        Reservoir {
            cap: cap.max(1),
            items: Vec::new(),
        }
    }

    /// Offers an exemplar; returns whether it was retained. Duplicate
    /// (total_us, trace) keys are rejected so retries of one trace don't
    /// crowd out distinct requests.
    pub fn offer(&mut self, e: Exemplar) -> bool {
        let k = key(&e);
        if self.items.iter().any(|x| key(x) == k) {
            return false;
        }
        if self.items.len() == self.cap {
            // Full: reject anything not strictly slower than the floor.
            if k <= key(self.items.last().unwrap()) {
                return false;
            }
            self.items.pop();
        }
        let pos = self.items.partition_point(|x| key(x) > k);
        self.items.insert(pos, e);
        true
    }

    /// Retained exemplars, slowest first.
    pub fn snapshot(&self) -> &[Exemplar] {
        &self.items
    }

    /// Number retained.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is retained yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Slowest duration a new offer must beat once the reservoir is full
    /// (0 while it still has room) — cheap pre-filter for hot paths.
    pub fn min_retained_us(&self) -> u64 {
        if self.items.len() < self.cap {
            0
        } else {
            self.items.last().map(|e| e.total_us).unwrap_or(0)
        }
    }

    /// JSON array of the retained exemplars, slowest first.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(trace: u64, total_us: u64) -> Exemplar {
        Exemplar {
            trace,
            total_us,
            label: "ok".into(),
            stages: vec![("decode".into(), total_us / 2), ("write".into(), 1)],
        }
    }

    #[test]
    fn keeps_the_k_slowest() {
        let mut r = Reservoir::new(3);
        for t in 0..10u64 {
            r.offer(ex(t, t * 100));
        }
        let kept: Vec<u64> = r.snapshot().iter().map(|e| e.total_us).collect();
        assert_eq!(kept, vec![900, 800, 700], "slowest first");
        assert_eq!(r.min_retained_us(), 700);
        // A fast request bounces off a full reservoir.
        assert!(!r.offer(ex(99, 50)));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn contents_are_order_independent() {
        let mut offers: Vec<Exemplar> = (0..20u64).map(|t| ex(t, (t * 37) % 1000)).collect();
        let mut fwd = Reservoir::new(4);
        for e in offers.clone() {
            fwd.offer(e);
        }
        offers.reverse();
        let mut rev = Reservoir::new(4);
        for e in offers {
            rev.offer(e);
        }
        assert_eq!(fwd.snapshot(), rev.snapshot(), "pure function of the set");
    }

    #[test]
    fn equal_durations_tiebreak_on_trace() {
        let mut r = Reservoir::new(2);
        r.offer(ex(1, 500));
        r.offer(ex(2, 500));
        r.offer(ex(3, 500));
        let traces: Vec<u64> = r.snapshot().iter().map(|e| e.trace).collect();
        assert_eq!(traces, vec![3, 2], "higher trace wins ties");
        // Exact duplicate key is rejected.
        assert!(!r.offer(ex(3, 500)));
    }

    #[test]
    fn dominant_stage_and_json() {
        let e = Exemplar {
            trace: 0xBEEF,
            total_us: 900,
            label: "ok key=42".into(),
            stages: vec![
                ("queue_wait".into(), 10),
                ("decode".into(), 800),
                ("write".into(), 90),
            ],
        };
        assert_eq!(e.dominant_stage(), Some(("decode", 800)));
        let j = e.to_json();
        assert!(j.contains("\"trace\":\"beef\""), "{j}");
        assert!(j.contains("\"decode\":800"), "{j}");
        amrviz_json::Json::parse(&j).expect("exemplar json parses");
        // Reservoir json is an array.
        let mut r = Reservoir::new(2);
        r.offer(e);
        assert!(r.to_json().starts_with('['));
        amrviz_json::Json::parse(&r.to_json()).expect("reservoir json parses");
    }

    #[test]
    fn no_stages_has_no_dominant() {
        let e = Exemplar {
            trace: 1,
            total_us: 5,
            label: String::new(),
            stages: Vec::new(),
        };
        assert_eq!(e.dominant_stage(), None);
    }
}
