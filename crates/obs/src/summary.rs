//! Hierarchical span summary: cumulative time per stage per AMR level.
//!
//! Spans are grouped by their parent chain and name, with `level = N`
//! fields split into separate rows, so a run prints as e.g.
//!
//! ```text
//! stage                                  time        %   count
//! compress                            1.204 s    54.1%       1
//!   compress.level [L0]              0.310 s    13.9%       1
//!   compress.level [L1]              0.871 s    39.1%       1
//! decompress                          0.514 s    23.1%       1
//! ```
//!
//! Percentages are of the total *root* span time. Spans running
//! concurrently on pool workers accumulate cumulative CPU-side wall time,
//! so sibling percentages can exceed their parent's on parallel stages —
//! that is the per-core cost, which is what a perf PR needs to see.

use std::collections::HashMap;

use crate::{events_snapshot, json_escape, SpanEvent};

/// One aggregated row of the summary tree.
#[derive(Debug, Clone)]
pub struct SummaryNode {
    /// Span name plus ` [L<n>]` when the spans carried a `level` field.
    pub key: String,
    /// Total wall time across all spans aggregated into this node.
    pub seconds: f64,
    /// Percent of the summary's root total.
    pub percent: f64,
    /// Number of spans aggregated.
    pub count: usize,
    pub children: Vec<SummaryNode>,
}

/// The aggregated span tree of one recording.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    pub roots: Vec<SummaryNode>,
    /// Sum of root-span wall time, the denominator of every percentage.
    pub total_seconds: f64,
}

struct Agg {
    key: String,
    total_ns: u64,
    count: usize,
    children: Vec<usize>,
    child_by_key: HashMap<String, usize>,
}

impl Agg {
    fn new(key: String) -> Self {
        Agg {
            key,
            total_ns: 0,
            count: 0,
            children: Vec::new(),
            child_by_key: HashMap::new(),
        }
    }
}

/// Builds a summary from a list of span events.
pub fn build(events: &[SpanEvent]) -> Summary {
    // Index 0 is a virtual root; children of spans with no recorded parent
    // (including spans whose parent ran on another thread) hang off it.
    let mut nodes: Vec<Agg> = vec![Agg::new(String::new())];
    let mut node_of_event: HashMap<u64, usize> = HashMap::new();

    // Parents always have smaller ids than their children.
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.id);

    for e in sorted {
        let parent_idx = if e.parent == 0 {
            0
        } else {
            node_of_event.get(&e.parent).copied().unwrap_or(0)
        };
        let key = match e.level() {
            Some(l) => format!("{} [L{l}]", e.name),
            None => e.name.to_string(),
        };
        let idx = match nodes[parent_idx].child_by_key.get(&key) {
            Some(&i) => i,
            None => {
                let i = nodes.len();
                nodes.push(Agg::new(key.clone()));
                nodes[parent_idx].children.push(i);
                nodes[parent_idx].child_by_key.insert(key, i);
                i
            }
        };
        nodes[idx].total_ns += e.dur_ns;
        nodes[idx].count += 1;
        node_of_event.insert(e.id, idx);
    }

    let total_ns: u64 = nodes[0].children.iter().map(|&i| nodes[i].total_ns).sum();
    let total_seconds = total_ns as f64 / 1e9;
    let denom = if total_ns == 0 { 1.0 } else { total_ns as f64 };

    fn convert(nodes: &[Agg], idx: usize, denom: f64) -> SummaryNode {
        let n = &nodes[idx];
        let mut children: Vec<SummaryNode> = n
            .children
            .iter()
            .map(|&c| convert(nodes, c, denom))
            .collect();
        children.sort_by(|a, b| {
            b.seconds
                .partial_cmp(&a.seconds)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        SummaryNode {
            key: n.key.clone(),
            seconds: n.total_ns as f64 / 1e9,
            percent: 100.0 * n.total_ns as f64 / denom,
            count: n.count,
            children,
        }
    }

    let mut roots: Vec<SummaryNode> = nodes[0]
        .children
        .iter()
        .map(|&i| convert(&nodes, i, denom))
        .collect();
    roots.sort_by(|a, b| {
        b.seconds
            .partial_cmp(&a.seconds)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Summary {
        roots,
        total_seconds,
    }
}

/// Summary of everything recorded so far in the global recorder.
pub fn collect() -> Summary {
    build(&events_snapshot())
}

impl Summary {
    /// Plain-text rendering: indented stages, seconds, percent, count.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<42} {:>11} {:>8} {:>7}\n",
            "stage", "time", "%", "count"
        ));
        fn walk(node: &SummaryNode, depth: usize, out: &mut String) {
            let name = format!("{}{}", "  ".repeat(depth), node.key);
            out.push_str(&format!(
                "{:<42} {:>9.3} s {:>7.1}% {:>7}\n",
                name, node.seconds, node.percent, node.count
            ));
            for c in &node.children {
                walk(c, depth + 1, out);
            }
        }
        for r in &self.roots {
            walk(r, 0, &mut out);
        }
        out.push_str(&format!(
            "{:<42} {:>9.3} s {:>7.1}% {:>7}\n",
            "total (root spans)", self.total_seconds, 100.0, ""
        ));
        out
    }

    /// JSON rendering (hand-assembled; no serde dependency).
    pub fn to_json(&self) -> String {
        fn node_json(n: &SummaryNode) -> String {
            let children: Vec<String> = n.children.iter().map(node_json).collect();
            format!(
                "{{\"stage\":\"{}\",\"seconds\":{:e},\"percent\":{:e},\
                 \"count\":{},\"children\":[{}]}}",
                json_escape(&n.key),
                n.seconds,
                n.percent,
                n.count,
                children.join(",")
            )
        }
        let roots: Vec<String> = self.roots.iter().map(node_json).collect();
        format!(
            "{{\"total_seconds\":{:e},\"spans\":[{}]}}",
            self.total_seconds,
            roots.join(",")
        )
    }

    /// Total seconds recorded for a root stage, if present.
    pub fn root_seconds(&self, name: &str) -> Option<f64> {
        self.roots.iter().find(|r| r.key == name).map(|r| r.seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FieldValue;

    fn ev(id: u64, parent: u64, name: &'static str, level: Option<i64>, dur_ns: u64) -> SpanEvent {
        let fields = match level {
            Some(l) => vec![("level", FieldValue::Int(l))],
            None => Vec::new(),
        };
        SpanEvent {
            id,
            parent,
            trace_id: 0xfeed,
            name,
            fields,
            thread: 0,
            start_ns: id * 10,
            dur_ns,
            mem_net_bytes: 0,
            mem_peak_bytes: 0,
        }
    }

    #[test]
    fn builds_level_split_tree() {
        let events = vec![
            ev(1, 0, "compress", None, 1_000_000_000),
            ev(2, 1, "compress.level", Some(0), 300_000_000),
            ev(3, 1, "compress.level", Some(1), 600_000_000),
            ev(4, 0, "extract", None, 1_000_000_000),
        ];
        let s = build(&events);
        assert_eq!(s.roots.len(), 2);
        assert!((s.total_seconds - 2.0).abs() < 1e-9);
        let compress = s.roots.iter().find(|r| r.key == "compress").unwrap();
        assert_eq!(compress.children.len(), 2);
        assert_eq!(compress.children[0].key, "compress.level [L1]");
        assert!((compress.percent - 50.0).abs() < 1e-9);
        assert!((compress.children[0].percent - 30.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_spans_aggregate() {
        let events = vec![ev(1, 0, "stage", None, 100), ev(2, 0, "stage", None, 300)];
        let s = build(&events);
        assert_eq!(s.roots.len(), 1);
        assert_eq!(s.roots[0].count, 2);
        assert!((s.roots[0].percent - 100.0).abs() < 1e-9);
    }

    #[test]
    fn orphan_parent_falls_back_to_root() {
        // A child whose parent event was never recorded (e.g. pruned) lands
        // at the root rather than being dropped.
        let events = vec![ev(5, 3, "lost", None, 42)];
        let s = build(&events);
        assert_eq!(s.roots.len(), 1);
        assert_eq!(s.roots[0].key, "lost");
    }

    #[test]
    fn text_and_json_render() {
        let events = vec![
            ev(1, 0, "compress", None, 500_000_000),
            ev(2, 1, "compress.level", Some(0), 250_000_000),
        ];
        let s = build(&events);
        let txt = s.to_text();
        assert!(txt.contains("compress"));
        assert!(txt.contains("[L0]"));
        assert!(txt.contains('%'));
        let json = s.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"stage\":\"compress\""));
    }

    #[test]
    fn empty_summary() {
        let s = build(&[]);
        assert!(s.roots.is_empty());
        assert_eq!(s.total_seconds, 0.0);
        assert!(s.to_text().contains("total"));
    }
}
