//! Allocation counting and span-level memory attribution.
//!
//! [`CountingAlloc`] wraps the system allocator and tracks live bytes and
//! the high-water mark with relaxed atomics (the counters are a
//! diagnostic, not a synchronization point). Binaries install it with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: amrviz_obs::mem::CountingAlloc = amrviz_obs::mem::CountingAlloc;
//! ```
//!
//! (`amrviz-fault` re-exports the same type, so existing
//! `amrviz_fault::CountingAlloc` installs keep working.)
//!
//! Two views are maintained:
//!
//! * **Global** — process-wide live/peak bytes, used by the torture runner's
//!   bounded-memory assertions ([`alloc_baseline`] / [`peak_since`]) and by
//!   the bench harness's per-cell peak.
//! * **Per-thread** (behind the `mem-profile` feature, on by default) —
//!   `const`-initialized thread-local counters, safe to touch from inside
//!   `GlobalAlloc` because they never allocate or run destructors. Each
//!   [`crate::SpanGuard`] saves the thread counters on entry and computes
//!   `net`/`peak` deltas on exit via a watermark stack, so every recorded
//!   span carries `mem_net_bytes` (bytes still live at span end that were
//!   allocated inside it — negative when the span freed more than it
//!   allocated) and `mem_peak_bytes` (the span's own allocation high-water
//!   mark above its entry level). Nested spans restore the parent's
//!   watermark with `max`, so a child's peak is also visible to the parent.
//!
//! When the allocator is *not* installed the counters stay at zero and
//! [`counting_alloc_installed`] reports so; all deltas read as 0.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

#[cfg(feature = "mem-profile")]
use std::cell::Cell;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

#[cfg(feature = "mem-profile")]
thread_local! {
    // const-initialized Cells: no lazy init, no destructor, no allocation —
    // the only thread-local shapes that are safe inside a global allocator.
    static T_CUR: Cell<i64> = const { Cell::new(0) };
    static T_PEAK: Cell<i64> = const { Cell::new(0) };
}

/// Global allocator wrapper that counts live and peak bytes.
pub struct CountingAlloc;

#[inline]
fn add(n: usize) {
    let cur = CURRENT.fetch_add(n, Ordering::Relaxed) + n;
    PEAK.fetch_max(cur, Ordering::Relaxed);
    #[cfg(feature = "mem-profile")]
    T_CUR.with(|c| {
        let v = c.get() + n as i64;
        c.set(v);
        T_PEAK.with(|p| {
            if v > p.get() {
                p.set(v);
            }
        });
    });
}

#[inline]
fn sub(n: usize) {
    CURRENT.fetch_sub(n, Ordering::Relaxed);
    // Note: cross-thread frees (allocate on worker A, drop on worker B)
    // make the per-thread counter go negative on B; the i64 domain and the
    // saturating span math below absorb that.
    #[cfg(feature = "mem-profile")]
    T_CUR.with(|c| c.set(c.get() - n as i64));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            add(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        sub(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            add(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            sub(layout.size());
            add(new_size);
        }
        p
    }
}

/// Bytes currently live (0 if the counting allocator is not installed).
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Resets the global high-water mark to the current live count and returns
/// the baseline. Call before the operation under test.
pub fn alloc_baseline() -> usize {
    let cur = CURRENT.load(Ordering::Relaxed);
    PEAK.store(cur, Ordering::Relaxed);
    cur
}

/// Peak bytes allocated *above* `baseline` since [`alloc_baseline`].
pub fn peak_since(baseline: usize) -> usize {
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

/// Whether allocations are actually being counted (i.e. [`CountingAlloc`]
/// is the process's global allocator).
pub fn counting_alloc_installed() -> bool {
    // If anything at all has been counted, the allocator is live. A Rust
    // process that has reached user code has long since allocated.
    CURRENT.load(Ordering::Relaxed) > 0 || PEAK.load(Ordering::Relaxed) > 0
}

/// Whether per-span memory attribution is compiled in *and* live.
pub fn span_profiling_active() -> bool {
    cfg!(feature = "mem-profile") && counting_alloc_installed()
}

/// Collapses the global high-water mark back to the current live count —
/// part of [`crate::reset`], so successive measurements don't inherit a
/// stale peak.
///
/// # Safety under active spans
///
/// This touches **only** the global `PEAK` atomic. The per-thread
/// watermark state (`T_CUR`/`T_PEAK`) and the [`MemFrame`]s saved by
/// in-flight [`crate::SpanGuard`]s are deliberately left alone: each
/// frame's `start_cur`/`saved_peak` live in the guard itself, so a
/// `reset()` racing with active spans can never unbalance a
/// `frame_enter`/`frame_exit` pair or corrupt the watermark stack — the
/// long-running-service requirement. See
/// `reset_peak_during_active_frames_is_safe`.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Saved per-thread state for one span; see [`frame_enter`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct MemFrame {
    #[cfg(feature = "mem-profile")]
    start_cur: i64,
    #[cfg(feature = "mem-profile")]
    saved_peak: i64,
}

/// Opens a watermark frame for a starting span: remembers the thread's live
/// count and outer watermark, then collapses the watermark to "now" so the
/// span measures only its own allocations.
#[inline]
pub(crate) fn frame_enter() -> MemFrame {
    #[cfg(feature = "mem-profile")]
    {
        let cur = T_CUR.with(Cell::get);
        let saved_peak = T_PEAK.with(|p| {
            let saved = p.get();
            p.set(cur);
            saved
        });
        MemFrame {
            start_cur: cur,
            saved_peak,
        }
    }
    #[cfg(not(feature = "mem-profile"))]
    {
        MemFrame {}
    }
}

/// Closes a watermark frame: returns `(net_bytes, peak_bytes)` for the span
/// and restores the enclosing span's watermark (taking the child peak into
/// account, so parents see through their children).
#[inline]
pub(crate) fn frame_exit(frame: MemFrame) -> (i64, u64) {
    #[cfg(feature = "mem-profile")]
    {
        let cur = T_CUR.with(Cell::get);
        let peak = T_PEAK.with(|p| {
            let peak = p.get();
            p.set(peak.max(frame.saved_peak));
            peak
        });
        let net = cur - frame.start_cur;
        let peak_delta = (peak - frame.start_cur).max(0) as u64;
        (net, peak_delta)
    }
    #[cfg(not(feature = "mem-profile"))]
    {
        let _ = frame;
        (0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global alloc counters.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    // Not installed as #[global_allocator] in this test binary, so the
    // counters stay quiet; exercise the raw bookkeeping directly.
    #[test]
    fn bookkeeping_tracks_peak_above_baseline() {
        let _g = guard();
        let base = alloc_baseline();
        add(1000);
        add(500);
        sub(1500);
        assert!(peak_since(base) >= 1500);
        let base2 = alloc_baseline();
        assert_eq!(peak_since(base2), 0);
    }

    #[cfg(feature = "mem-profile")]
    #[test]
    fn frames_attribute_net_and_peak_to_the_span() {
        let _g = guard();
        // Simulate: outer span allocates 100, child allocates 1000 and
        // frees 900, outer then frees 50.
        let outer = frame_enter();
        add(100);
        let child = frame_enter();
        add(1000);
        sub(900);
        let (net_c, peak_c) = frame_exit(child);
        assert_eq!(net_c, 100);
        assert_eq!(peak_c, 1000);
        sub(50);
        let (net_o, peak_o) = frame_exit(outer);
        assert_eq!(net_o, 150);
        // Outer's watermark saw the child's transient 1000 on top of its
        // own 100.
        assert_eq!(peak_o, 1100);
        sub(150); // balance the books for other tests sharing the globals
    }

    #[cfg(feature = "mem-profile")]
    #[test]
    fn reset_peak_during_active_frames_is_safe() {
        let _g = guard();
        // A reset fired while watermark frames are open (the long-running
        // service pattern: obs::reset() between "requests" racing a span
        // that straddles the boundary) must not corrupt per-span
        // attribution — reset_peak touches only the global peak.
        let outer = frame_enter();
        add(100);
        let inner = frame_enter();
        add(1000);
        reset_peak(); // mid-frame reset
        sub(900);
        let (net_i, peak_i) = frame_exit(inner);
        assert_eq!(net_i, 100, "inner net unaffected by reset_peak");
        assert_eq!(peak_i, 1000, "inner peak unaffected by reset_peak");
        sub(50);
        let (net_o, peak_o) = frame_exit(outer);
        assert_eq!(net_o, 150);
        assert_eq!(peak_o, 1100, "parent still sees through the child");
        sub(150); // balance the global books for other tests
    }

    #[cfg(feature = "mem-profile")]
    #[test]
    fn freeing_more_than_allocated_goes_negative() {
        let _g = guard();
        add(500); // pre-existing allocation outside the span
        let f = frame_enter();
        sub(400);
        let (net, peak) = frame_exit(f);
        assert_eq!(net, -400);
        assert_eq!(peak, 0);
        sub(100);
    }
}
