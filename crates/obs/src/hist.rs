//! Log-bucketed, mergeable histograms.
//!
//! The pipeline's distributional questions — p50/p99 per-piece compress
//! latency, blob-size spread, quantizer hit rates — need more than the
//! scalar counters of [`crate::counter!`], but must stay cheap enough to
//! record from inside `amrviz-par` worker closures. The scheme here is the
//! HDR-style log-linear layout used by SZ3/SDRBench-style evaluation
//! harnesses:
//!
//! * values `0..16` map to their own exact bucket (indices `0..16`);
//! * larger values split each power-of-two octave `[2^m, 2^{m+1})` into
//!   [`SUB_BUCKETS`] = 8 equal sub-buckets (≤ 12.5 % relative width),
//!   giving [`NUM_BUCKETS`] = 496 buckets total for the full `u64` range.
//!
//! Buckets are plain `u64` counts, so merging two histograms is a
//! bucket-wise integer sum — **commutative and associative**, which is what
//! makes the recorder's per-shard histograms deterministic: no matter which
//! worker thread recorded which value, the merged snapshot is identical.
//! Percentiles interpolate linearly inside the target bucket and clamp to
//! the exact observed `[min, max]`, so they too are thread-count invariant
//! for a fixed multiset of recorded values.

use std::collections::BTreeMap;

/// Number of low bits used for sub-bucketing: each octave is split into
/// `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 3;

/// Sub-buckets per power-of-two octave (8 → ≤ 12.5 % relative error).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Total number of addressable buckets for the full `u64` domain.
/// Indices `0..16` are exact; the highest value `u64::MAX` lands in
/// bucket `NUM_BUCKETS - 1`.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// Bucket index for a value (see module docs for the layout).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < (2 * SUB_BUCKETS) as u64 {
        // Exact region: 0..16 → indices 0..16.
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS + 1
        let sub = (v >> (msb - SUB_BITS)) & (SUB_BUCKETS as u64 - 1);
        ((msb - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub as usize
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    if i < 2 * SUB_BUCKETS {
        (i as u64, i as u64)
    } else {
        let msb = (i / SUB_BUCKETS) as u32 + SUB_BITS - 1;
        let sub = (i % SUB_BUCKETS) as u64;
        let width = 1u64 << (msb - SUB_BITS);
        let lo = (1u64 << msb) + sub * width;
        // `lo + width` overflows for the very last bucket; add `width - 1`.
        (lo, lo + (width - 1))
    }
}

/// A mergeable log-bucketed histogram of `u64` samples.
///
/// The bucket vector grows lazily to the highest index touched, so an
/// idle histogram is a few words and a latency histogram over microsecond
/// values stays small.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Adds every sample of `other` into `self`. Bucket-wise integer sums,
    /// so merge order never changes the result.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`p` in `[0, 100]`), interpolated linearly
    /// inside the target bucket and clamped to the observed `[min, max]`.
    /// Returns 0.0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the target sample, 1-based.
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let (lo, hi) = bucket_bounds(i);
                let frac = (target - cum) as f64 / c as f64;
                let v = lo as f64 + frac * (hi - lo + 1) as f64;
                return v.clamp(self.min as f64, self.max as f64);
            }
            cum += c;
        }
        self.max as f64
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

/// Renders a snapshot map as an aligned text table (used by `--timing`).
pub fn render_text(hists: &BTreeMap<&'static str, Histogram>) -> String {
    let mut out = String::new();
    if hists.is_empty() {
        return out;
    }
    out.push_str(&format!(
        "{:<28} {:>9} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "histogram", "count", "mean", "p50", "p90", "p99", "max"
    ));
    for (name, h) in hists {
        out.push_str(&format!(
            "{:<28} {:>9} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12}\n",
            name,
            h.count(),
            h.mean(),
            h.percentile(50.0),
            h.percentile(90.0),
            h.percentile(99.0),
            h.max()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn buckets_tile_the_domain() {
        // Bounds are contiguous: each bucket starts right after the last.
        let mut expect_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "bucket {i} lower bound");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(i, NUM_BUCKETS - 1);
                return;
            }
            expect_lo = hi + 1;
        }
        panic!("domain not covered");
    }

    #[test]
    fn index_and_bounds_agree() {
        for v in [
            0,
            1,
            15,
            16,
            17,
            100,
            1023,
            1024,
            4096,
            1 << 20,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} bounds=({lo},{hi})");
        }
    }

    #[test]
    fn relative_error_bounded() {
        // Sub-bucket width is <= 12.5 % of the bucket's lower bound.
        for v in [100u64, 1000, 123_456, 9_999_999] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!((hi - lo + 1) as f64 <= lo as f64 / 8.0 + 1.0, "v={v}");
        }
    }

    #[test]
    fn percentiles_interpolate_and_clamp() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        let p50 = h.percentile(50.0);
        assert!((40.0..=60.0).contains(&p50), "p50={p50}");
        let p99 = h.percentile(99.0);
        assert!((90.0..=100.0).contains(&p99), "p99={p99}");
        assert!(h.percentile(0.0) >= 1.0);
        assert!(h.percentile(100.0) <= 100.0);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_is_order_independent() {
        let samples: Vec<u64> = (0..500u64).map(|i| i * i % 7919 + i).collect();
        // Record sequentially.
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        // Record into 4 shards assigned round-robin, merge in two different
        // orders.
        let mut shards = vec![Histogram::new(); 4];
        for (i, &s) in samples.iter().enumerate() {
            shards[i % 4].record(s);
        }
        let mut fwd = Histogram::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = Histogram::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, whole);
        assert_eq!(rev, whole);
    }

    #[test]
    fn single_sample_percentiles_collapse_to_the_sample() {
        // One sample: every percentile must be exactly that value — the
        // interpolation has nothing to spread over and the [min, max]
        // clamp pins both ends.
        for v in [0u64, 1, 15, 16, 17, 1000, u64::MAX] {
            let mut h = Histogram::new();
            h.record(v);
            for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
                assert_eq!(h.percentile(p), v as f64, "v={v} p={p}");
            }
        }
    }

    #[test]
    fn two_bucket_percentiles_split_at_the_rank_boundary() {
        // 3 samples in the exact bucket for 2, 1 sample in the bucket for
        // 1000: ranks 1-3 resolve inside the low bucket, rank 4 (p99, and
        // anything above 75%) inside the high one.
        let mut h = Histogram::new();
        h.record(2);
        h.record(2);
        h.record(2);
        h.record(1000);
        // Ranks 1-3 resolve in 2's exact bucket: interpolation spreads
        // them across [2, 3), so p50 (rank 2) and p75 (rank 3) stay below
        // the top of that bucket, never jumping toward 1000.
        let p50 = h.percentile(50.0);
        assert!((2.0..=3.0).contains(&p50), "rank 2 of 4: p50={p50}");
        let p75 = h.percentile(75.0);
        assert!((2.0..=3.0).contains(&p75), "rank 3 of 4: p75={p75}");
        let p99 = h.percentile(99.0);
        let (lo, hi) = bucket_bounds(bucket_index(1000));
        assert!(
            (lo as f64..=hi as f64 + 1.0).contains(&p99) && p99 <= 1000.0,
            "p99={p99} must interpolate inside 1000's bucket and clamp to max"
        );
        assert_eq!(h.percentile(100.0), 1000.0);
    }

    #[test]
    fn saturating_sum_keeps_percentiles_sane() {
        // Two u64::MAX samples overflow the sum (which saturates), but
        // counts, min/max and percentiles must stay exact.
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(1);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), u64::MAX);
        // Rank 1 sits in 1's exact bucket (interpolated within [1, 2]).
        let p1 = h.percentile(1.0);
        assert!((1.0..=2.0).contains(&p1), "p1={p1}");
        assert_eq!(h.percentile(99.0), u64::MAX as f64);
        // Merging two saturated histograms must also saturate, not wrap.
        let mut a = h.clone();
        a.merge(&h);
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.count(), 6);
    }

    #[test]
    fn merge_commutes_property() {
        // rng-seeded property: merge(a, b) == merge(b, a) and both equal
        // direct recording of the combined multiset.
        amrviz_rng::check(0x4157_0001, 32, |rng| {
            let mut a = Histogram::new();
            let mut b = Histogram::new();
            let mut whole = Histogram::new();
            for _ in 0..rng.range_usize(0, 300) {
                // Mix magnitudes so both the exact and log regions see
                // traffic, including occasional u64-scale outliers.
                let v = match rng.below(4) {
                    0 => rng.below(16),
                    1 => rng.below(1 << 10),
                    2 => rng.below(1 << 40),
                    _ => u64::MAX - rng.below(1 << 8),
                };
                whole.record(v);
                if rng.chance(0.5) {
                    a.record(v);
                } else {
                    b.record(v);
                }
            }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "merge must be commutative");
            assert_eq!(ab, whole, "merge must equal direct recording");
        });
    }

    #[test]
    fn render_text_lists_each_histogram() {
        let mut m = BTreeMap::new();
        let mut h = Histogram::new();
        h.record(5);
        h.record(500);
        m.insert("a.us", h);
        let t = render_text(&m);
        assert!(t.contains("a.us"));
        assert!(t.contains("p99"));
    }
}
