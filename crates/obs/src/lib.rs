//! `amrviz-obs` — lightweight observability for the compression→viz pipeline.
//!
//! The paper's analysis hinges on *where* time and error appear in the
//! pipeline (compress level-by-level → decompress → extract → score), so
//! every stage of the workspace reports into a single global recorder:
//!
//! * **Spans** — [`span!`] returns a guard that measures wall time and, when
//!   recording is enabled, captures name, key/value fields, thread id, and
//!   parent span (nesting is tracked per thread, safe under worker-pool fan-out).
//! * **Counters / gauges** — [`counter!`] accumulates monotonic totals
//!   (bytes in/out, quantizer outliers, triangles emitted, crack rim edges);
//!   [`gauge_set`] records last-written values (resolved error bounds, iso
//!   values).
//! * **Histograms** — [`histogram!`] records `u64` samples into log-bucketed
//!   [`hist::Histogram`]s (per-piece latencies, blob sizes, hit rates) whose
//!   shard merge is a commutative integer sum, so p50/p90/p99 are identical
//!   at any thread count for the same multiset of samples.
//! * **Memory** — with the default `mem-profile` feature and
//!   [`mem::CountingAlloc`] installed as the global allocator, every span
//!   carries `mem_net_bytes` / `mem_peak_bytes` attribution (see [`mem`]).
//! * **Exporters** — [`chrome::chrome_trace_json`] emits a
//!   `chrome://tracing` / Perfetto `traceEvents` file;
//!   [`summary::collect`] aggregates spans into a hierarchical
//!   stage/level summary with percentages; [`flame::write_flamegraph`]
//!   renders the span tree as collapsed stacks or a self-contained HTML
//!   flamegraph.
//! * **Continuous operation** — counters/gauges/histograms additionally
//!   feed a ring of rolling time windows ([`window`]) so "p99 over the
//!   last minute" is queryable at any instant without [`reset`]; every
//!   root span starts a **trace** (deterministic splitmix-derived
//!   `trace_id`, propagated across `amrviz-par` workers via
//!   [`current_context`] / [`context_scope`]); completed spans can stream
//!   to a JSONL [`journal`]; and [`expose`] writes periodic JSON +
//!   Prometheus-style metric snapshots. The recorder accounts for its own
//!   cost in `obs.overhead_us` / `obs.dropped_events` meta-metrics
//!   ([`meta_snapshot`]).
//!
//! # Overhead
//!
//! Recording is **off by default**. A disabled [`SpanGuard`] is a pair of
//! `Instant` reads with no allocation and no locking, so instrumented code
//! can use `span!(..).finish()` as its only timing source (the reported
//! seconds and the trace can never disagree). Counters are meant to be
//! batched — callers tally per block/fab/mesh and report once — so the
//! per-value fast paths never touch the recorder. When enabled, completed
//! spans are pushed to sharded, per-thread-indexed buffers; the single
//! uncontended lock per *span* (not per value) is negligible next to the
//! work a span wraps.
//!
//! ```
//! amrviz_obs::reset();
//! amrviz_obs::enable();
//! {
//!     let _outer = amrviz_obs::span!("compress", level = 1usize);
//!     amrviz_obs::counter!("bytes_in", 4096usize);
//! }
//! let events = amrviz_obs::events_snapshot();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].name, "compress");
//! assert_eq!(amrviz_obs::counters_snapshot()["bytes_in"], 4096);
//! amrviz_obs::disable();
//! ```

pub mod chrome;
pub mod exemplar;
pub mod expose;
pub mod flame;
pub mod hist;
pub mod journal;
pub mod mem;
pub mod slo;

/// Synchronously drains pending journal lines to disk — see
/// [`journal::flush`]. Exposed at the crate root because serve's graceful
/// drain calls it without caring about the journal's internals.
pub fn journal_flush() {
    journal::flush();
}

pub mod summary;
pub mod window;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of event/counter shards; indexed by thread id so pool workers
/// almost never contend on the same lock.
const SHARDS: usize = 16;

/// A span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    Int(i64),
    Float(f64),
    Str(String),
}

impl FieldValue {
    /// Renders the value as a JSON literal (floats use exponent notation;
    /// non-finite floats become `null`).
    pub fn to_json(&self) -> String {
        match self {
            FieldValue::Int(v) => v.to_string(),
            FieldValue::Float(v) => {
                if v.is_finite() {
                    format!("{v:e}")
                } else {
                    "null".to_string()
                }
            }
            FieldValue::Str(s) => format!("\"{}\"", json_escape(s)),
        }
    }

    /// Integer view, when the value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            FieldValue::Int(v) => Some(*v),
            _ => None,
        }
    }
}

macro_rules! field_from_int {
    ($($t:ty),*) => {
        $(impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::Int(v as i64)
            }
        })*
    };
}

field_from_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Float(v)
    }
}

impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::Float(v as f64)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Unique id (creation order; parents always have smaller ids).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for roots.
    pub parent: u64,
    /// Trace this span belongs to. Every root span starts a trace whose id
    /// is splitmix-derived from the trace seed and the root's creation
    /// ordinal, so for a fixed workload the *k*-th trace has the same id
    /// at any `AMRVIZ_THREADS`. 0 only for spans recorded through the
    /// legacy [`parent_scope`] path with no ambient trace.
    pub trace_id: u64,
    pub name: &'static str,
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Small sequential thread id (not the OS id).
    pub thread: u64,
    /// Start time in nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
    /// Net bytes allocated minus freed on this thread while the span was
    /// active (0 unless the `mem-profile` feature is on and
    /// [`mem::CountingAlloc`] is installed). Negative when the span freed
    /// more than it allocated.
    pub mem_net_bytes: i64,
    /// This thread's allocation high-water mark above the span's entry
    /// level (same availability as `mem_net_bytes`).
    pub mem_peak_bytes: u64,
}

impl SpanEvent {
    /// The `level = N` field, if the span carries one.
    pub fn level(&self) -> Option<i64> {
        self.fields
            .iter()
            .find(|(k, _)| *k == "level")
            .and_then(|(_, v)| v.as_int())
    }
}

struct Recorder {
    enabled: AtomicBool,
    next_id: AtomicU64,
    next_thread: AtomicU64,
    /// Trace creation ordinal (0-based). Roots are created in program
    /// order on the submitting thread, so this sequence — and therefore
    /// the derived trace ids — is thread-count invariant.
    next_trace: AtomicU64,
    epoch: Instant,
    events: [Mutex<Vec<SpanEvent>>; SHARDS],
    counters: [Mutex<BTreeMap<&'static str, window::WindowedCounter>>; SHARDS],
    gauges: Mutex<BTreeMap<&'static str, window::WindowedGauge>>,
    hists: [Mutex<BTreeMap<&'static str, window::WindowedHistogram>>; SHARDS],
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            // 0 means "no parent", so real ids start at 1.
            next_id: AtomicU64::new(1),
            next_thread: AtomicU64::new(0),
            next_trace: AtomicU64::new(0),
            epoch: Instant::now(),
            events: std::array::from_fn(|_| Mutex::new(Vec::new())),
            counters: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
            gauges: Mutex::new(BTreeMap::new()),
            hists: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
        }
    }

    /// Current rolling-window slot under the global [`window::config`].
    fn now_slot(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64 / window::config().0
    }
}

/// Nanoseconds since the recorder epoch (process-global monotonic origin
/// shared by span `start_ns` values and journal `ts_ns` stamps).
pub fn epoch_elapsed_ns() -> u64 {
    recorder().epoch.elapsed().as_nanos() as u64
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();

fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(Recorder::new)
}

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(u64::MAX) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Small sequential id of the calling thread (assigned on first use).
pub fn thread_id() -> u64 {
    THREAD_ID.with(|c| {
        let v = c.get();
        if v != u64::MAX {
            v
        } else {
            let id = recorder().next_thread.fetch_add(1, Ordering::Relaxed);
            c.set(id);
            id
        }
    })
}

/// Id of the innermost span active on this thread (0 when none). Capture
/// this before fanning work out to a pool and re-establish it on the worker
/// with [`parent_scope`], so spans created inside worker tasks nest under
/// the submitting span instead of becoming detached roots.
pub fn current_span_id() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// RAII guard that makes `parent` the ambient parent span for the current
/// thread (see [`current_span_id`]). Used by `amrviz-par` to thread span
/// lanes through its workers; a `parent` of 0 is a no-op.
pub struct ParentScope {
    pushed: bool,
}

/// Enters `parent` as this thread's ambient span.
pub fn parent_scope(parent: u64) -> ParentScope {
    if parent != 0 && is_enabled() {
        SPAN_STACK.with(|s| s.borrow_mut().push(parent));
        ParentScope { pushed: true }
    } else {
        ParentScope { pushed: false }
    }
}

impl Drop for ParentScope {
    fn drop(&mut self) {
        if self.pushed {
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Trace context
// ---------------------------------------------------------------------------

thread_local! {
    /// Ambient `(trace_id, sampled)` for the calling thread. `trace_id`
    /// is 0 outside any trace; `sampled` defaults to true so counters and
    /// ad-hoc journal events are never silently discarded.
    static TRACE_STATE: Cell<(u64, bool)> = const { Cell::new((0, true)) };
}

/// Seed from which trace ids are derived (mixable per run: `repro` feeds
/// its `--seed` here so trace ids are reproducible across reruns).
static TRACE_SEED: AtomicU64 = AtomicU64::new(0xa317);

/// Head-based sampling modulus: trace ordinal `% n == 0` is kept. 1 keeps
/// everything.
static TRACE_SAMPLE: AtomicU64 = AtomicU64::new(1);

/// Sets the seed mixed into every derived trace id. Call before the first
/// root span of a run (typically right after [`enable`]).
pub fn set_trace_seed(seed: u64) {
    TRACE_SEED.store(seed, Ordering::Relaxed);
}

/// Enables head-based trace sampling: only every `n`-th trace (by creation
/// ordinal) records span events and journal lines; counters, gauges and
/// histograms are unaffected. `n <= 1` keeps every trace.
pub fn set_trace_sampling(n: u64) {
    TRACE_SAMPLE.store(n.max(1), Ordering::Relaxed);
}

/// Trace id of the innermost active trace on this thread (0 when none).
pub fn current_trace_id() -> u64 {
    TRACE_STATE.with(|t| t.get().0)
}

/// Everything a pool worker needs to continue the submitter's causal
/// chain: ambient parent span plus trace identity. Capture on the
/// submitting thread with [`current_context`], re-establish on the worker
/// with [`context_scope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Innermost active span id on the capturing thread (0 when none).
    pub parent: u64,
    /// Trace the capturing thread is inside (0 when none).
    pub trace: u64,
    /// Whether that trace passed head-based sampling.
    pub sampled: bool,
}

/// Captures the calling thread's ambient trace context.
pub fn current_context() -> TraceContext {
    let (trace, sampled) = TRACE_STATE.with(|t| t.get());
    TraceContext {
        parent: current_span_id(),
        trace,
        sampled,
    }
}

/// RAII guard holding a restored [`TraceContext`] on a worker thread.
/// Supersedes [`ParentScope`] (which restores only the parent span):
/// spans opened under a `ContextScope` both nest under the submitting
/// span *and* join its trace.
pub struct ContextScope {
    pushed: bool,
    prev: (u64, bool),
}

/// Re-establishes `ctx` as the calling thread's ambient context.
pub fn context_scope(ctx: TraceContext) -> ContextScope {
    let pushed = ctx.parent != 0 && is_enabled();
    if pushed {
        SPAN_STACK.with(|s| s.borrow_mut().push(ctx.parent));
    }
    let prev = TRACE_STATE.with(|t| t.replace((ctx.trace, ctx.sampled)));
    ContextScope { pushed, prev }
}

impl Drop for ContextScope {
    fn drop(&mut self) {
        if self.pushed {
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
        TRACE_STATE.with(|t| t.set(self.prev));
    }
}

// ---------------------------------------------------------------------------
// Self-overhead accounting
// ---------------------------------------------------------------------------

/// Nanoseconds spent inside the recorder itself (span bookkeeping, shard
/// locking, journal serialization) since the last [`reset`].
static OVERHEAD_NS: AtomicU64 = AtomicU64::new(0);

/// Span events pushed since the last [`reset`].
static SPANS_RECORDED: AtomicU64 = AtomicU64::new(0);

#[inline]
fn overhead_add(t0: Instant) {
    OVERHEAD_NS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
}

/// Microseconds the recorder has spent on its own bookkeeping since the
/// last [`reset`] — the numerator of the instrumentation-overhead budget
/// checked by `amrviz bench --obs-overhead`.
pub fn overhead_micros() -> u64 {
    OVERHEAD_NS.load(Ordering::Relaxed) / 1_000
}

/// Recorder meta-metrics, exported as `obs.*` by [`expose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaSnapshot {
    /// See [`overhead_micros`].
    pub overhead_us: u64,
    /// Span events recorded since the last [`reset`].
    pub spans_recorded: u64,
    /// Traces started since process start (never reset — root ordinals
    /// must stay unique so derived trace ids never collide within a run).
    pub traces_started: u64,
    /// Journal lines accepted since process start.
    pub journal_enqueued: u64,
    /// Journal lines evicted by backpressure since process start.
    pub journal_dropped: u64,
}

/// Snapshot of the recorder's self-accounting meta-metrics.
pub fn meta_snapshot() -> MetaSnapshot {
    MetaSnapshot {
        overhead_us: overhead_micros(),
        spans_recorded: SPANS_RECORDED.load(Ordering::Relaxed),
        traces_started: recorder().next_trace.load(Ordering::Relaxed),
        journal_enqueued: journal::enqueued(),
        journal_dropped: journal::dropped(),
    }
}

/// Turns recording on. Span/counter calls before this are free no-ops.
pub fn enable() {
    recorder().enabled.store(true, Ordering::Relaxed);
}

/// Turns recording off (already-recorded data is kept until [`reset`]).
pub fn disable() {
    recorder().enabled.store(false, Ordering::Relaxed);
}

/// Whether spans and counters are currently being recorded.
#[inline]
pub fn is_enabled() -> bool {
    // Cold until `enable()` is called; a relaxed load is the entire cost of
    // a disabled probe.
    RECORDER
        .get()
        .is_some_and(|r| r.enabled.load(Ordering::Relaxed))
}

/// Clears all recorded events, counters, gauges and histograms — lifetime
/// totals *and* their rolling windows — zeroes the self-overhead
/// meta-metrics, and collapses the global allocation high-water mark back
/// to the current live count (enabled state, thread ids, and the trace
/// ordinal counter are kept). Successive measurements therefore never
/// inherit a stale distribution or peak from an earlier experiment.
///
/// # Windows vs. lifetime totals
///
/// This is the **only** operation that clears lifetime totals. Rolling
/// window rotation (see [`window`]) merely recycles ring slots as time
/// advances; `counters_snapshot()` keeps growing monotonically across
/// rotations and only returns to zero after `reset()`.
///
/// # Reset during active spans
///
/// `reset()` is safe to call while spans are in flight on any thread (the
/// long-running / `serve`-shaped use case). It cannot panic and cannot
/// corrupt the per-thread watermark stacks in [`mem`]:
///
/// * Span state lives in each guard and in per-thread stacks; `reset` only
///   clears the *completed*-event shards. An active [`SpanGuard`] keeps
///   its id/parent/start and records normally into the fresh shards when
///   it finishes (its `start_ns` predates the reset — callers slicing by
///   time can drop it; exporters handle it like any orphan).
/// * [`mem::reset_peak`] collapses only the *global* high-water mark.
///   Per-thread watermark frames are owned by the active guards
///   themselves, so `frame_exit` still pairs with its `frame_enter` and
///   thread-local peaks stay internally consistent (see
///   `mem::tests::reset_peak_during_active_frames_is_safe`).
pub fn reset() {
    let r = recorder();
    for shard in &r.events {
        lock_clean(shard).clear();
    }
    for shard in &r.counters {
        lock_clean(shard).clear();
    }
    lock_clean(&r.gauges).clear();
    for shard in &r.hists {
        lock_clean(shard).clear();
    }
    OVERHEAD_NS.store(0, Ordering::Relaxed);
    SPANS_RECORDED.store(0, Ordering::Relaxed);
    mem::reset_peak();
}

/// Locks a mutex, recovering from poisoning (a panicking instrumented
/// thread must not take the whole recorder down).
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Adds `delta` to the named monotonic counter.
///
/// # Disabled behaviour
///
/// This is a **silent no-op whenever recording is disabled** — including
/// when recording is turned off *mid-span*: a counter increment that races
/// with [`disable`] may or may not land, and nothing is buffered for a
/// later [`enable`]. Callers needing exact totals must keep the recorder
/// enabled for the whole measured region (the pattern used by `repro` and
/// `amrviz bench`: `reset` → `enable` → work → snapshot).
pub fn counter_add(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let t0 = Instant::now();
    let r = recorder();
    let slot = r.now_slot();
    let shard = (thread_id() as usize) % SHARDS;
    lock_clean(&r.counters[shard])
        .entry(name)
        .or_default()
        .add(slot, delta);
    overhead_add(t0);
}

/// Sets the named gauge to `value` (last write wins).
///
/// # Disabled behaviour
///
/// Like [`counter_add`], this is a silent no-op whenever recording is
/// disabled, even if a span opened while recording was enabled is still
/// active on this thread.
pub fn gauge_set(name: &'static str, value: f64) {
    if !is_enabled() {
        return;
    }
    let t0 = Instant::now();
    let r = recorder();
    let slot = r.now_slot();
    lock_clean(&r.gauges)
        .entry(name)
        .or_insert_with(|| window::WindowedGauge::new(value))
        .set(slot, value);
    overhead_add(t0);
}

/// Records one `u64` sample into the named histogram. No-op while
/// disabled (same semantics as [`counter_add`]).
pub fn histogram_record(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    let t0 = Instant::now();
    let r = recorder();
    let slot = r.now_slot();
    let shard = (thread_id() as usize) % SHARDS;
    lock_clean(&r.hists[shard])
        .entry(name)
        .or_default()
        .record(slot, value);
    overhead_add(t0);
}

/// Merged *lifetime* snapshot of all histograms (every sample since the
/// last [`reset`]). Shard merge is a bucket-wise integer sum, so the
/// result is independent of which thread recorded which sample.
pub fn histograms_snapshot() -> BTreeMap<&'static str, hist::Histogram> {
    let r = recorder();
    let mut out: BTreeMap<&'static str, hist::Histogram> = BTreeMap::new();
    for shard in &r.hists {
        for (k, h) in lock_clean(shard).iter() {
            out.entry(*k).or_default().merge(&h.lifetime);
        }
    }
    out
}

/// Merged histogram snapshot over the trailing `last_secs` seconds
/// (clamped to the configured window coverage).
pub fn histograms_window_snapshot(last_secs: f64) -> BTreeMap<&'static str, hist::Histogram> {
    let r = recorder();
    let now = r.now_slot();
    let k = window::slots_for_secs(last_secs);
    let mut out: BTreeMap<&'static str, hist::Histogram> = BTreeMap::new();
    for shard in &r.hists {
        for (name, h) in lock_clean(shard).iter() {
            out.entry(*name)
                .or_default()
                .merge(&h.window_merged(now, k));
        }
    }
    // Drop metrics that went quiet before the window opened.
    out.retain(|_, h| h.count() > 0);
    out
}

/// Merged *lifetime* snapshot of all counters (monotonic since the last
/// [`reset`]; window rotation never lowers these).
pub fn counters_snapshot() -> BTreeMap<&'static str, u64> {
    let r = recorder();
    let mut out = BTreeMap::new();
    for shard in &r.counters {
        for (k, v) in lock_clean(shard).iter() {
            *out.entry(*k).or_insert(0) += v.lifetime;
        }
    }
    out
}

/// Counter totals over the trailing `last_secs` seconds (clamped to the
/// configured window coverage). Quiet counters report 0 and are omitted.
pub fn counters_window_snapshot(last_secs: f64) -> BTreeMap<&'static str, u64> {
    let r = recorder();
    let now = r.now_slot();
    let k = window::slots_for_secs(last_secs);
    let mut out = BTreeMap::new();
    for shard in &r.counters {
        for (name, v) in lock_clean(shard).iter() {
            *out.entry(*name).or_insert(0) += v.window_sum(now, k);
        }
    }
    out.retain(|_, v| *v > 0);
    out
}

/// Snapshot of all gauges (last written value, lifetime).
pub fn gauges_snapshot() -> BTreeMap<&'static str, f64> {
    lock_clean(&recorder().gauges)
        .iter()
        .map(|(k, g)| (*k, g.last))
        .collect()
}

/// Gauges written within the trailing `last_secs` seconds (most recent
/// value inside the window; gauges that went quiet earlier are omitted).
pub fn gauges_window_snapshot(last_secs: f64) -> BTreeMap<&'static str, f64> {
    let r = recorder();
    let now = r.now_slot();
    let k = window::slots_for_secs(last_secs);
    lock_clean(&r.gauges)
        .iter()
        .filter_map(|(name, g)| g.window_last(now, k).map(|v| (*name, v)))
        .collect()
}

/// Snapshot of all completed spans, ordered by start time.
pub fn events_snapshot() -> Vec<SpanEvent> {
    let r = recorder();
    let mut out = Vec::new();
    for shard in &r.events {
        out.extend(lock_clean(shard).iter().cloned());
    }
    out.sort_by_key(|e| (e.start_ns, e.id));
    out
}

/// The recorded state of an enabled span (absent when recording is off).
struct ActiveSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    thread: u64,
    start_ns: u64,
    mem: mem::MemFrame,
    /// Trace identity inherited (non-root) or freshly derived (root).
    trace: u64,
    /// Head-based sampling verdict for this span's trace.
    sampled: bool,
    /// For root spans: the thread's previous `TRACE_STATE`, restored when
    /// the root finishes. `None` for non-root spans (they never touch it).
    prev_trace: Option<(u64, bool)>,
}

/// RAII timer for one pipeline stage. Always measures wall time (so
/// [`SpanGuard::finish`] can replace ad-hoc `Instant` pairs); records an
/// event only while the recorder is enabled.
pub struct SpanGuard {
    start: Instant,
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Starts a span. Prefer the [`span!`] macro, which skips building the
    /// field vector while recording is disabled.
    pub fn with_fields(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Self {
        let active = if is_enabled() {
            let t0 = Instant::now();
            let r = recorder();
            let id = r.next_id.fetch_add(1, Ordering::Relaxed);
            let parent = SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                let parent = s.last().copied().unwrap_or(0);
                s.push(id);
                parent
            });
            let (trace, sampled, prev_trace) = if parent == 0 {
                // Root span: start a new trace. The id is derived from the
                // trace seed and the root's creation ordinal, so the k-th
                // trace of a fixed workload has the same id at any thread
                // count; sampling keys off the ordinal for the same reason.
                let ordinal = r.next_trace.fetch_add(1, Ordering::Relaxed);
                let mut sm = TRACE_SEED.load(Ordering::Relaxed) ^ ordinal;
                let trace = amrviz_rng::splitmix64(&mut sm).max(1);
                let sampled = ordinal.is_multiple_of(TRACE_SAMPLE.load(Ordering::Relaxed));
                let prev = TRACE_STATE.with(|t| t.replace((trace, sampled)));
                (trace, sampled, Some(prev))
            } else {
                // Nested span: inherit the ambient trace (set either by an
                // enclosing root on this thread or by a ContextScope on a
                // pool worker).
                let (trace, sampled) = TRACE_STATE.with(|t| t.get());
                (trace, sampled, None)
            };
            let a = ActiveSpan {
                id,
                parent,
                name,
                fields,
                thread: thread_id(),
                start_ns: r.epoch.elapsed().as_nanos() as u64,
                mem: mem::frame_enter(),
                trace,
                sampled,
                prev_trace,
            };
            overhead_add(t0);
            Some(a)
        } else {
            None
        };
        SpanGuard {
            start: Instant::now(),
            active,
        }
    }

    /// Attaches a field after creation (e.g. an output size known only at
    /// the end of the stage). No-op while disabled.
    pub fn add_field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(a) = self.active.as_mut() {
            a.fields.push((key, value.into()));
        }
    }

    /// Ends the span, returning its wall time in seconds — valid whether or
    /// not recording is enabled, so callers can use it as their only timer.
    ///
    /// Exception: if recording was **disabled mid-span** (enabled at span
    /// start, disabled before `finish`), the half-recorded measurement is
    /// discarded — no event is pushed and `finish` returns `0.0` rather
    /// than a duration the recorder never saw. A span started while
    /// disabled still returns its true wall time.
    pub fn finish(mut self) -> f64 {
        self.record()
    }

    fn record(&mut self) -> f64 {
        let dur = self.start.elapsed();
        if let Some(a) = self.active.take() {
            SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                // Guards are scoped, so the top of the stack is this span;
                // be defensive anyway in case of leaked guards.
                if s.last() == Some(&a.id) {
                    s.pop();
                } else {
                    s.retain(|&id| id != a.id);
                }
            });
            // A finishing root ends its trace on this thread regardless of
            // sampling or the enabled flag — ambient state must not leak.
            if let Some(prev) = a.prev_trace {
                TRACE_STATE.with(|t| t.set(prev));
            }
            let (mem_net_bytes, mem_peak_bytes) = mem::frame_exit(a.mem);
            if !is_enabled() {
                // Disabled mid-span: the event would be a torn measurement
                // (its counters and children may be partially dropped), so
                // discard it and report 0.0 instead of a stale duration.
                return 0.0;
            }
            if !a.sampled {
                // Head-based sampling: the whole trace (root and children
                // share the verdict) skips event buffers and the journal;
                // wall time is still returned so timing-driven callers are
                // unaffected.
                return dur.as_secs_f64();
            }
            let t0 = Instant::now();
            let dur_ns = dur.as_nanos() as u64;
            if journal::is_active() {
                let mut body = format!(
                    "\"name\":\"{}\",\"trace\":\"{:016x}\",\"span\":{},\"parent\":{},\
                     \"thread\":{},\"start_ns\":{},\"dur_ns\":{}",
                    json_escape(a.name),
                    a.trace,
                    a.id,
                    a.parent,
                    a.thread,
                    a.start_ns,
                    dur_ns
                );
                if !a.fields.is_empty() {
                    body.push_str(",\"fields\":{");
                    for (i, (k, v)) in a.fields.iter().enumerate() {
                        if i > 0 {
                            body.push(',');
                        }
                        body.push_str(&format!("\"{}\":{}", json_escape(k), v.to_json()));
                    }
                    body.push('}');
                }
                journal::push_raw("span", a.thread, &body);
            }
            let r = recorder();
            let shard = (a.thread as usize) % SHARDS;
            lock_clean(&r.events[shard]).push(SpanEvent {
                id: a.id,
                parent: a.parent,
                trace_id: a.trace,
                name: a.name,
                fields: a.fields,
                thread: a.thread,
                start_ns: a.start_ns,
                dur_ns,
                mem_net_bytes,
                mem_peak_bytes,
            });
            SPANS_RECORDED.fetch_add(1, Ordering::Relaxed);
            overhead_add(t0);
        }
        dur.as_secs_f64()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.record();
    }
}

/// Starts a [`SpanGuard`]: `span!("compress", level = 2, bytes = n)`.
///
/// Field *values* are evaluated only when recording is enabled; keep them
/// side-effect free.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::with_fields($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let fields = if $crate::is_enabled() {
            ::std::vec![$((::core::stringify!($key), $crate::FieldValue::from($value))),+]
        } else {
            ::std::vec::Vec::new()
        };
        $crate::SpanGuard::with_fields($name, fields)
    }};
}

/// Adds to a monotonic counter: `counter!("bytes_out", blob.len())`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {
        $crate::counter_add($name, $delta as u64)
    };
}

/// Records a histogram sample: `histogram!("compress.blob_bytes", blob.len())`.
///
/// The *value* expression is always evaluated (keep it a cheap cast);
/// recording itself is a no-op while disabled.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        $crate::histogram_record($name, $value as u64)
    };
}

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global recorder.
    pub(crate) fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing_but_still_time() {
        let _g = guard();
        disable();
        reset();
        let sp = span!("quiet", level = 3usize);
        let secs = sp.finish();
        assert!(secs >= 0.0);
        counter!("quiet_counter", 7u64);
        assert!(events_snapshot().is_empty());
        assert!(counters_snapshot().is_empty());
    }

    #[test]
    fn enabled_span_records_fields_and_duration() {
        let _g = guard();
        reset();
        enable();
        {
            let mut sp = span!("stage", level = 2usize, eb = 1e-3f64);
            sp.add_field("bytes", 123usize);
            let secs = sp.finish();
            assert!(secs >= 0.0);
        }
        disable();
        let ev = events_snapshot();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].name, "stage");
        assert_eq!(ev[0].level(), Some(2));
        assert_eq!(ev[0].parent, 0);
        assert!(ev[0]
            .fields
            .iter()
            .any(|(k, v)| *k == "bytes" && v.as_int() == Some(123)));
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let _g = guard();
        reset();
        enable();
        counter!("bytes", 10u64);
        counter!("bytes", 32usize);
        gauge_set("eb", 0.5);
        gauge_set("eb", 0.25);
        disable();
        assert_eq!(counters_snapshot()["bytes"], 42);
        assert_eq!(gauges_snapshot()["eb"], 0.25);
    }

    #[test]
    fn root_spans_start_traces_and_children_inherit() {
        let _g = guard();
        reset();
        enable();
        assert_eq!(current_trace_id(), 0, "no ambient trace outside spans");
        {
            let root = span!("root");
            let trace = current_trace_id();
            assert_ne!(trace, 0, "root must start a trace");
            {
                let child = span!("child");
                assert_eq!(current_trace_id(), trace, "children inherit");
                child.finish();
            }
            root.finish();
        }
        assert_eq!(current_trace_id(), 0, "trace ends with its root");
        {
            let _second = span!("root2");
            // Fresh ordinal → distinct trace id.
            assert_ne!(current_trace_id(), 0);
        }
        disable();
        let ev = events_snapshot();
        let root_ev = ev.iter().find(|e| e.name == "root").unwrap();
        let child_ev = ev.iter().find(|e| e.name == "child").unwrap();
        let second_ev = ev.iter().find(|e| e.name == "root2").unwrap();
        assert_eq!(child_ev.trace_id, root_ev.trace_id);
        assert_eq!(child_ev.parent, root_ev.id);
        assert_ne!(second_ev.trace_id, root_ev.trace_id);
    }

    #[test]
    fn context_scope_stitches_worker_spans_into_the_trace() {
        let _g = guard();
        reset();
        enable();
        let root = span!("root");
        let ctx = current_context();
        assert_ne!(ctx.parent, 0);
        assert_ne!(ctx.trace, 0);
        let handle = std::thread::spawn(move || {
            let _scope = context_scope(ctx);
            assert_eq!(current_trace_id(), ctx.trace);
            span!("work").finish();
        });
        handle.join().unwrap();
        root.finish();
        disable();
        let ev = events_snapshot();
        let root_ev = ev.iter().find(|e| e.name == "root").unwrap();
        let work_ev = ev.iter().find(|e| e.name == "work").unwrap();
        assert_eq!(work_ev.parent, root_ev.id, "worker span nests under root");
        assert_eq!(work_ev.trace_id, root_ev.trace_id, "one stitched trace");
        assert_ne!(work_ev.thread, root_ev.thread);
    }

    #[test]
    fn head_sampling_keeps_every_nth_trace() {
        let _g = guard();
        reset();
        enable();
        set_trace_sampling(2);
        for i in 0..4 {
            let mut sp = span!("sampled_root");
            sp.add_field("i", i as u64);
            sp.finish();
        }
        set_trace_sampling(1);
        disable();
        let ev = events_snapshot();
        let kept: Vec<_> = ev.iter().filter(|e| e.name == "sampled_root").collect();
        // Ordinals are global, so the phase is unknown — but exactly 2 of
        // any 4 consecutive ordinals are ≡ 0 (mod 2).
        assert_eq!(kept.len(), 2, "1/2 sampling keeps half of 4 roots");
    }

    #[test]
    fn reset_during_active_span_cannot_corrupt_state() {
        let _g = guard();
        reset();
        enable();
        let outer = span!("outer");
        let ballast: Vec<u8> = vec![7u8; 1 << 16];
        // Reset mid-span: clears completed shards + global peak only. The
        // active guard keeps its frame, so the exit pairs cleanly.
        reset();
        drop(ballast);
        let inner = span!("inner");
        inner.finish();
        let secs = outer.finish();
        assert!(secs >= 0.0);
        disable();
        let ev = events_snapshot();
        assert_eq!(ev.len(), 2, "both spans land in the fresh shards");
        let outer_ev = ev.iter().find(|e| e.name == "outer").unwrap();
        let inner_ev = ev.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(inner_ev.parent, outer_ev.id, "nesting survives the reset");
        assert_eq!(inner_ev.trace_id, outer_ev.trace_id);
    }

    #[test]
    fn window_snapshots_subset_lifetime() {
        let _g = guard();
        reset();
        enable();
        counter!("win.bytes", 100u64);
        gauge_set("win.eb", 0.5);
        histogram!("win.lat", 42u64);
        disable();
        let cover = window::coverage_seconds();
        assert_eq!(counters_snapshot()["win.bytes"], 100);
        assert_eq!(counters_window_snapshot(cover)["win.bytes"], 100);
        assert_eq!(gauges_window_snapshot(cover)["win.eb"], 0.5);
        let wh = &histograms_window_snapshot(cover)["win.lat"];
        assert_eq!(wh.count(), 1);
        assert_eq!(histograms_snapshot()["win.lat"], *wh);
    }

    #[test]
    fn overhead_meta_metrics_accumulate_and_reset() {
        let _g = guard();
        reset();
        enable();
        for _ in 0..10 {
            span!("meta_probe").finish();
            counter!("meta.c", 1u64);
        }
        disable();
        let meta = meta_snapshot();
        assert_eq!(meta.spans_recorded, 10);
        assert!(meta.traces_started >= 10);
        reset();
        let after = meta_snapshot();
        assert_eq!(after.spans_recorded, 0);
        assert_eq!(after.overhead_us, 0);
    }

    #[test]
    fn field_value_json_forms() {
        assert_eq!(FieldValue::from(3usize).to_json(), "3");
        assert_eq!(FieldValue::from(-2i64).to_json(), "-2");
        assert_eq!(FieldValue::from("a\"b").to_json(), "\"a\\\"b\"");
        assert_eq!(FieldValue::from(f64::NAN).to_json(), "null");
        let j = FieldValue::from(1e-3f64).to_json();
        assert!(j.contains('e'), "float json should be exponent form: {j}");
    }

    #[test]
    fn json_escape_control_chars() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape("tab\there"), "tab\\there");
    }
}
