//! Rolling time windows: a lazy slot ring over counters, gauges and
//! histograms.
//!
//! Continuous operation (`amrviz serve`, long repro batches) needs "p99
//! over the last minute" answerable at any instant *without* resetting the
//! recorder. The scheme here is a ring of `N` time slots of `slot_nanos`
//! each (default 12 × 5 s = one minute of coverage):
//!
//! * Every recorded value lands in the slot `elapsed / slot_nanos`
//!   (computed from the recorder epoch), stored at ring index
//!   `slot % N`.
//! * Rotation is **lazy**: nothing ticks in the background. When a write
//!   hits a ring entry whose stored slot id is stale, the entry is simply
//!   overwritten with a fresh value for the current slot — O(1), no
//!   sweeps, no timer thread.
//! * A window query for the last `k` slots merges the ring entries whose
//!   slot id lies in `(now - k, now]`; stale entries (older than the ring
//!   covers) are skipped, so an idle metric naturally decays to empty.
//!
//! The ring itself is time-free: callers pass explicit slot ids, which is
//! what makes the unit tests deterministic. The recorder derives "now"
//! from its epoch; see [`crate::counters_window_snapshot`].
//!
//! **Windows vs. lifetime totals**: every windowed cell also carries a
//! lifetime aggregate that rotation never touches — rotation only
//! recycles ring entries. Only [`crate::reset`] clears lifetime totals.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::hist::Histogram;

/// Slot id marking an empty ring entry (no real slot reaches u64::MAX:
/// that would need ~585 years of uptime at 1 ns slots).
const EMPTY: u64 = u64::MAX;

/// Default slot width: 5 seconds.
pub const DEFAULT_SLOT_NANOS: u64 = 5_000_000_000;

/// Default ring size: 12 slots (one minute of coverage at the default
/// width).
pub const DEFAULT_SLOTS: usize = 12;

static SLOT_NANOS: AtomicU64 = AtomicU64::new(DEFAULT_SLOT_NANOS);
static SLOTS: AtomicUsize = AtomicUsize::new(DEFAULT_SLOTS);

/// Configures the global window scheme: `slot_secs` per slot, `slots`
/// ring entries (coverage = `slot_secs * slots`). Affects rings created
/// *after* the call, so configure before [`crate::enable`]; existing cells
/// keep their old geometry until the next [`crate::reset`].
pub fn set_window(slot_secs: f64, slots: usize) {
    let ns = (slot_secs.max(1e-3) * 1e9) as u64;
    SLOT_NANOS.store(ns.max(1), Ordering::Relaxed);
    SLOTS.store(slots.clamp(1, 4096), Ordering::Relaxed);
}

/// Current global window geometry as `(slot_nanos, slots)`.
pub fn config() -> (u64, usize) {
    (
        SLOT_NANOS.load(Ordering::Relaxed),
        SLOTS.load(Ordering::Relaxed),
    )
}

/// Window coverage in seconds under the current geometry.
pub fn coverage_seconds() -> f64 {
    let (ns, n) = config();
    ns as f64 * n as f64 / 1e9
}

/// Number of slots needed to cover the trailing `secs` seconds, clamped to
/// the ring size.
pub fn slots_for_secs(secs: f64) -> u64 {
    let (ns, n) = config();
    let k = (secs.max(0.0) * 1e9 / ns as f64).ceil() as u64;
    k.clamp(1, n as u64)
}

/// A fixed-size ring of `(slot id, value)` entries with lazy rotation.
/// Pure data structure: callers supply slot ids (the recorder derives them
/// from its epoch), so behaviour is fully deterministic under test.
#[derive(Debug, Clone)]
pub struct SlotRing<T> {
    slots: Vec<(u64, T)>,
}

impl<T: Default> SlotRing<T> {
    /// Ring of `n` slots (clamped to at least 1), all empty.
    pub fn new(n: usize) -> Self {
        SlotRing {
            slots: (0..n.max(1)).map(|_| (EMPTY, T::default())).collect(),
        }
    }

    /// Ring sized by the global [`config`].
    pub fn with_global_config() -> Self {
        SlotRing::new(config().1)
    }

    /// Number of ring entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether every entry is empty (never written or fully recycled).
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|(id, _)| *id == EMPTY)
    }

    /// Mutable access to the value for `slot`, lazily recycling the ring
    /// entry (resetting it to `T::default()`) when it still holds an older
    /// slot's data.
    pub fn slot_mut(&mut self, slot: u64) -> &mut T {
        let idx = (slot % self.slots.len() as u64) as usize;
        let entry = &mut self.slots[idx];
        if entry.0 != slot {
            *entry = (slot, T::default());
        }
        &mut entry.1
    }

    /// Iterates the entries whose slot id lies in the window
    /// `(now_slot - k, now_slot]` (i.e. the current slot and the `k - 1`
    /// before it). `k` is clamped to the ring size by construction — older
    /// entries have been recycled.
    pub fn iter_window(&self, now_slot: u64, k: u64) -> impl Iterator<Item = (u64, &T)> {
        self.slots
            .iter()
            .filter(move |(id, _)| *id != EMPTY && *id <= now_slot && now_slot - *id < k.max(1))
            .map(|(id, v)| (*id, v))
    }
}

/// A counter cell: monotonic lifetime total plus a windowed ring.
/// Rotation recycles ring slots only; `lifetime` survives until
/// [`crate::reset`].
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    pub lifetime: u64,
    pub ring: SlotRing<u64>,
}

impl WindowedCounter {
    pub fn new() -> Self {
        WindowedCounter {
            lifetime: 0,
            ring: SlotRing::with_global_config(),
        }
    }

    /// Counter with an explicit ring size, independent of the global
    /// geometry — for subsystems (e.g. serve telemetry) that need longer
    /// coverage than the recorder's window without reconfiguring it.
    pub fn with_slots(n: usize) -> Self {
        WindowedCounter {
            lifetime: 0,
            ring: SlotRing::new(n),
        }
    }

    /// Adds `delta` at `slot` (and to the lifetime total).
    pub fn add(&mut self, slot: u64, delta: u64) {
        self.lifetime += delta;
        *self.ring.slot_mut(slot) += delta;
    }

    /// Sum over the trailing `k` slots ending at `now_slot`.
    pub fn window_sum(&self, now_slot: u64, k: u64) -> u64 {
        self.ring.iter_window(now_slot, k).map(|(_, v)| *v).sum()
    }
}

impl Default for WindowedCounter {
    fn default() -> Self {
        WindowedCounter::new()
    }
}

/// A gauge cell: last-written value plus a per-slot last-write ring, so a
/// window query reports the most recent value written inside the window
/// (`None` when the gauge went quiet before the window opened).
#[derive(Debug, Clone)]
pub struct WindowedGauge {
    pub last: f64,
    pub ring: SlotRing<Option<f64>>,
}

impl WindowedGauge {
    pub fn new(value: f64) -> Self {
        WindowedGauge {
            last: value,
            ring: SlotRing::with_global_config(),
        }
    }

    /// Records a write at `slot` (last write wins within a slot).
    pub fn set(&mut self, slot: u64, value: f64) {
        self.last = value;
        *self.ring.slot_mut(slot) = Some(value);
    }

    /// Most recent value written within the trailing `k` slots.
    pub fn window_last(&self, now_slot: u64, k: u64) -> Option<f64> {
        self.ring
            .iter_window(now_slot, k)
            .filter_map(|(id, v)| v.map(|x| (id, x)))
            .max_by_key(|(id, _)| *id)
            .map(|(_, v)| v)
    }
}

/// A histogram cell: lifetime histogram plus per-slot histograms. The
/// window view merges slot histograms with the same commutative bucket
/// sum as the shard merge, so windowed percentiles are thread-count
/// invariant for a fixed multiset of samples.
#[derive(Debug, Clone, Default)]
pub struct WindowedHistogram {
    pub lifetime: Histogram,
    pub ring: SlotRing<Histogram>,
}

impl WindowedHistogram {
    pub fn new() -> Self {
        WindowedHistogram {
            lifetime: Histogram::new(),
            ring: SlotRing::with_global_config(),
        }
    }

    /// Histogram with an explicit ring size, independent of the global
    /// geometry (see [`WindowedCounter::with_slots`]).
    pub fn with_slots(n: usize) -> Self {
        WindowedHistogram {
            lifetime: Histogram::new(),
            ring: SlotRing::new(n),
        }
    }

    /// Records one sample at `slot` (and into the lifetime histogram).
    pub fn record(&mut self, slot: u64, value: u64) {
        self.lifetime.record(value);
        self.ring.slot_mut(slot).record(value);
    }

    /// Merged histogram over the trailing `k` slots ending at `now_slot`.
    pub fn window_merged(&self, now_slot: u64, k: u64) -> Histogram {
        let mut out = Histogram::new();
        for (_, h) in self.iter_ordered(now_slot, k) {
            out.merge(h);
        }
        out
    }

    /// Window entries in ascending slot order (merge order never changes
    /// the result — this just makes iteration deterministic for tests).
    fn iter_ordered(&self, now_slot: u64, k: u64) -> Vec<(u64, &Histogram)> {
        let mut v: Vec<(u64, &Histogram)> = self.ring.iter_window(now_slot, k).collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }
}

impl Default for SlotRing<Histogram> {
    fn default() -> Self {
        SlotRing::with_global_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_recycles_stale_slots_lazily() {
        let mut r: SlotRing<u64> = SlotRing::new(4);
        *r.slot_mut(0) += 10;
        *r.slot_mut(1) += 20;
        // Slot 4 maps onto index 0 and must not inherit slot 0's value.
        *r.slot_mut(4) += 1;
        assert_eq!(*r.slot_mut(4), 1);
        // Slot 1 is still live (ring covers slots 1..=4 now).
        assert_eq!(
            r.iter_window(4, 4).map(|(_, v)| *v).sum::<u64>(),
            21,
            "slots 1 and 4 are inside the window; slot 0 was recycled"
        );
    }

    #[test]
    fn window_bounds_are_half_open() {
        let mut r: SlotRing<u64> = SlotRing::new(8);
        for s in 0..8u64 {
            *r.slot_mut(s) += 1;
        }
        // Window (5, 7]: slots 6 and 7 only.
        assert_eq!(r.iter_window(7, 2).count(), 2);
        assert_eq!(r.iter_window(7, 1).count(), 1);
        // k = 8 covers the whole ring.
        assert_eq!(r.iter_window(7, 8).count(), 8);
        // Future slots are never included.
        assert_eq!(r.iter_window(3, 8).count(), 4);
    }

    #[test]
    fn counter_lifetime_survives_rotation() {
        let mut c = WindowedCounter {
            lifetime: 0,
            ring: SlotRing::new(3),
        };
        for slot in 0..100u64 {
            c.add(slot, 2);
        }
        assert_eq!(c.lifetime, 200, "rotation never clears the lifetime");
        // Window only sees the last 3 slots.
        assert_eq!(c.window_sum(99, 3), 6);
        assert_eq!(c.window_sum(99, 1), 2);
    }

    #[test]
    fn gauge_window_reports_latest_in_window() {
        let mut g = WindowedGauge {
            last: 0.0,
            ring: SlotRing::new(4),
        };
        g.set(0, 1.0);
        g.set(1, 2.0);
        g.set(1, 3.0); // last write in the slot wins
        assert_eq!(g.window_last(1, 2), Some(3.0));
        assert_eq!(g.last, 3.0);
        // Window that excludes every write.
        assert_eq!(g.window_last(9, 2), None);
        // Lifetime last survives even when the window is empty.
        assert_eq!(g.last, 3.0);
    }

    #[test]
    fn histogram_window_merges_and_lifetime_survives() {
        let mut h = WindowedHistogram {
            lifetime: Histogram::new(),
            ring: SlotRing::new(3),
        };
        h.record(0, 5);
        h.record(1, 50);
        h.record(2, 500);
        h.record(5, 7); // 5 % 3 == 2: recycles slot 2's ring entry
        assert_eq!(h.lifetime.count(), 4);
        let w = h.window_merged(5, 3);
        assert_eq!(w.count(), 1, "only slot 5 is inside (3, 5]");
        assert_eq!(w.max(), 7);
    }

    #[test]
    fn window_merge_is_commutative_and_matches_whole() {
        // rng-seeded property: samples scattered over slots, window merge
        // in forward/reverse order equals a directly-recorded histogram.
        amrviz_rng::check(0x510_7a1e6, 16, |rng| {
            let n_slots = rng.range_usize(2, 8);
            let now = rng.below(1000) + n_slots as u64;
            let mut wh = WindowedHistogram {
                lifetime: Histogram::new(),
                ring: SlotRing::new(n_slots),
            };
            let mut expect = Histogram::new();
            for _ in 0..rng.range_usize(1, 200) {
                let slot = now - rng.below(n_slots as u64);
                let v = rng.below(1 << 20);
                wh.record(slot, v);
                expect.record(v);
            }
            let fwd = wh.window_merged(now, n_slots as u64);
            // Reverse merge order.
            let mut rev = Histogram::new();
            let mut parts: Vec<&Histogram> = wh
                .ring
                .iter_window(now, n_slots as u64)
                .map(|(_, h)| h)
                .collect();
            parts.reverse();
            for p in parts {
                rev.merge(p);
            }
            assert_eq!(fwd, expect, "window merge must equal direct recording");
            assert_eq!(rev, expect, "merge order must not matter");
        });
    }

    #[test]
    fn global_config_roundtrip() {
        // Mutating the global geometry races with recorder tests that
        // create rings; serialize on the crate-wide test lock.
        let _g = crate::tests::guard();
        let (ns0, n0) = config();
        set_window(0.5, 6);
        assert_eq!(config(), (500_000_000, 6));
        assert!((coverage_seconds() - 3.0).abs() < 1e-9);
        assert_eq!(slots_for_secs(1.2), 3);
        assert_eq!(slots_for_secs(100.0), 6, "clamped to the ring size");
        assert_eq!(slots_for_secs(0.0), 1);
        // Restore for other tests.
        set_window(ns0 as f64 / 1e9, n0);
    }
}
