//! Streaming event journal: bounded, mutex-sharded, drop-oldest queues
//! drained by a background writer thread into a JSONL file.
//!
//! Design constraints, in order:
//!
//! 1. **Bounded memory** — each shard holds at most [`SHARD_CAP`] lines;
//!    overflow evicts the oldest line and bumps a drop counter that is
//!    itself exported (`obs.dropped_events`). A stalled disk can never
//!    balloon the process.
//! 2. **Crash safety** — lines are pre-serialized at emit time and written
//!    with a single `write_all` per line, so a crash mid-run leaves a
//!    prefix of whole lines (line-atomic appends); `amrviz stats` can
//!    always parse what made it to disk.
//! 3. **Ordering** — a global sequence number is stamped at emit; the
//!    writer drains all shards and sorts by `seq` before writing, so the
//!    file is totally ordered even though producers are sharded.
//!
//! Schema (`amrviz-journal-v1`): one JSON object per line with at least
//! `seq`, `ts_ns` (nanoseconds since recorder epoch), and `kind`. `span`
//! lines carry `name`/`trace`/`span`/`parent`/`thread`/`start_ns`/`dur_ns`
//! plus user fields; `meta` lines bracket the stream (`journal_start` /
//! `journal_stop` with schema + drop totals); other kinds (`fault`, ...)
//! are free-form via [`emit`]. Trace ids are hex *strings* — the journal
//! is consumed by `crates/json`, which parses numbers as f64 and would
//! silently round u64 ids.

use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::lock_clean;

/// Journal schema identifier, written in the `journal_start` meta line.
pub const SCHEMA: &str = "amrviz-journal-v1";

/// Maximum buffered lines per shard before drop-oldest kicks in.
pub const SHARD_CAP: usize = 8192;

/// Number of producer shards (power of two; indexed by thread id).
pub const SHARDS: usize = 8;

/// Writer poll interval while the journal is active.
const POLL: Duration = Duration::from_millis(50);

struct Shard {
    queue: Mutex<VecDeque<(u64, String)>>,
}

struct JournalState {
    shards: Vec<Shard>,
    writer: Mutex<Option<JoinHandle<()>>>,
    /// The journal file, shared between the background writer and
    /// synchronous [`flush`] callers. Drain-and-write always happens *under*
    /// this lock, which is what keeps the file totally seq-ordered even when
    /// a flush races the writer's poll.
    file: Mutex<Option<std::fs::File>>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STOPPING: AtomicBool = AtomicBool::new(false);
static WRITER_PAUSED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static ENQUEUED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn state() -> &'static JournalState {
    static STATE: OnceLock<JournalState> = OnceLock::new();
    STATE.get_or_init(|| JournalState {
        shards: (0..SHARDS)
            .map(|_| Shard {
                queue: Mutex::new(VecDeque::new()),
            })
            .collect(),
        writer: Mutex::new(None),
        file: Mutex::new(None),
    })
}

/// Cheap probe: is a journal file attached right now? Producers use this
/// to skip serialization entirely when nobody is listening.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Lines accepted into the journal since process start.
pub fn enqueued() -> u64 {
    ENQUEUED.load(Ordering::Relaxed)
}

/// Lines evicted by drop-oldest backpressure since process start.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Summary returned by [`stop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    pub enqueued: u64,
    pub dropped: u64,
}

/// Enqueues a pre-serialized JSON *object body* (the part between `{` and
/// `}`, without braces) under `kind`, stamping `seq`/`ts_ns`/`kind` and the
/// calling thread. No-op (returning `None`) when the journal is inactive.
pub(crate) fn push_raw(kind: &str, shard_hint: u64, body: &str) -> Option<u64> {
    if !is_active() {
        return None;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let ts_ns = crate::epoch_elapsed_ns();
    let line = if body.is_empty() {
        format!("{{\"seq\":{seq},\"ts_ns\":{ts_ns},\"kind\":\"{kind}\"}}")
    } else {
        format!("{{\"seq\":{seq},\"ts_ns\":{ts_ns},\"kind\":\"{kind}\",{body}}}")
    };
    let s = state();
    let shard = &s.shards[(shard_hint as usize) % SHARDS];
    let mut q = lock_clean(&shard.queue);
    if q.len() >= SHARD_CAP {
        q.pop_front();
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
    q.push_back((seq, line));
    ENQUEUED.fetch_add(1, Ordering::Relaxed);
    Some(seq)
}

/// Emits a free-form journal event of `kind` with the given pre-rendered
/// JSON fields (e.g. `("target", "\"szlr\"")`). Values must already be
/// valid JSON; keys must be plain identifiers. The event is stamped with
/// the calling thread and the current trace id (if any). Returns the
/// assigned sequence number, or `None` when no journal is attached.
pub fn emit(kind: &str, fields: &[(&str, String)]) -> Option<u64> {
    if !is_active() {
        return None;
    }
    let mut body = String::new();
    let trace = crate::current_trace_id();
    if trace != 0 {
        body.push_str(&format!("\"trace\":\"{trace:016x}\""));
    }
    let thread = crate::thread_id();
    body.push_str(&format!(
        "{}\"thread\":{thread}",
        if body.is_empty() { "" } else { "," }
    ));
    for (k, v) in fields {
        body.push_str(&format!(",\"{k}\":{v}"));
    }
    push_raw(kind, thread, &body)
}

fn drain_sorted() -> Vec<(u64, String)> {
    let s = state();
    let mut all: Vec<(u64, String)> = Vec::new();
    for shard in &s.shards {
        let mut q = lock_clean(&shard.queue);
        all.extend(q.drain(..));
    }
    all.sort_by_key(|(seq, _)| *seq);
    all
}

fn write_lines(file: &mut std::fs::File, lines: Vec<(u64, String)>) {
    for (_, mut line) in lines {
        line.push('\n');
        // One write_all per full line: a crash leaves whole lines only.
        let _ = file.write_all(line.as_bytes());
    }
}

/// Drains every shard and writes the sorted batch, all under the file lock
/// so concurrent callers (writer thread vs. [`flush`]) cannot interleave
/// batches out of seq order.
fn drain_and_write() {
    let mut guard = lock_clean(&state().file);
    if let Some(file) = guard.as_mut() {
        let batch = drain_sorted();
        if !batch.is_empty() {
            write_lines(file, batch);
        }
        let _ = file.flush();
    }
}

/// Synchronously drains all pending journal lines to the file and flushes
/// it. Safe to call from any thread at any time; a no-op when no journal is
/// attached. `amrviz serve` calls this during graceful drain, and the CLI
/// teardown path calls it so short runs cannot lose the queued tail between
/// writer polls.
pub fn flush() {
    drain_and_write();
}

/// Test hook: pauses the background writer's polling so queue-overflow
/// behavior can be exercised deterministically. Synchronous [`flush`] and
/// [`stop`] still drain.
#[doc(hidden)]
pub fn set_writer_paused(paused: bool) {
    WRITER_PAUSED.store(paused, Ordering::SeqCst);
}

/// Attaches a journal file (append + create) and starts the background
/// writer. Errors if a journal is already active or the file cannot be
/// opened. Writes a `journal_start` meta line carrying the schema id.
pub fn start(path: &Path) -> Result<(), String> {
    if ACTIVE.swap(true, Ordering::SeqCst) {
        return Err("journal already active".into());
    }
    STOPPING.store(false, Ordering::SeqCst);
    let file = match OpenOptions::new().create(true).append(true).open(path) {
        Ok(f) => f,
        Err(e) => {
            ACTIVE.store(false, Ordering::SeqCst);
            return Err(format!("journal: cannot open {}: {e}", path.display()));
        }
    };
    *lock_clean(&state().file) = Some(file);
    push_raw(
        "meta",
        0,
        &format!("\"event\":\"journal_start\",\"schema\":\"{SCHEMA}\""),
    );
    let handle = std::thread::Builder::new()
        .name("amrviz-journal".into())
        .spawn(move || loop {
            if !WRITER_PAUSED.load(Ordering::SeqCst) {
                drain_and_write();
            }
            if STOPPING.load(Ordering::SeqCst) {
                // Final drain: everything emitted before stop() flipped
                // ACTIVE off is already queued. Runs even when paused —
                // stop always lands the tail.
                drain_and_write();
                return;
            }
            std::thread::sleep(POLL);
        })
        .map_err(|e| format!("journal: cannot spawn writer: {e}"))?;
    *lock_clean(&state().writer) = Some(handle);
    Ok(())
}

/// Stops the journal: emits a `journal_stop` meta line with drop totals,
/// detaches producers, and joins the writer (flushing everything queued).
/// Safe to call when no journal is active (returns current totals).
pub fn stop() -> JournalStats {
    if is_active() {
        push_raw(
            "meta",
            0,
            &format!(
                "\"event\":\"journal_stop\",\"enqueued\":{},\"dropped\":{}",
                enqueued(),
                dropped()
            ),
        );
        ACTIVE.store(false, Ordering::SeqCst);
        STOPPING.store(true, Ordering::SeqCst);
        if let Some(h) = lock_clean(&state().writer).take() {
            let _ = h.join();
        }
        // Close the file so a later start() on a new path gets a fresh one.
        *lock_clean(&state().file) = None;
    }
    JournalStats {
        enqueued: enqueued(),
        dropped: dropped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_journal_is_a_cheap_noop() {
        let _g = crate::tests::guard();
        assert!(!is_active());
        assert_eq!(push_raw("span", 0, "\"name\":\"x\""), None);
        assert_eq!(emit("fault", &[("iter", "1".into())]), None);
    }

    #[test]
    fn journal_roundtrip_writes_ordered_parseable_lines() {
        let _g = crate::tests::guard();
        let dir = std::env::temp_dir().join(format!("amrviz_j_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        start(&path).unwrap();
        assert!(is_active());
        assert!(start(&path).is_err(), "double start must fail");
        for i in 0..50u64 {
            push_raw("test", i, &format!("\"i\":{i}"));
        }
        emit(
            "fault",
            &[("target", "\"szlr\"".into()), ("iter", "3".into())],
        );
        let stats = stop();
        assert!(!is_active());
        assert!(stats.enqueued >= 52, "start meta + 50 + fault + stop meta");
        assert_eq!(stats.dropped, 0);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // start meta, 50 test lines, 1 fault, stop meta.
        assert!(lines.len() >= 53, "got {} lines", lines.len());
        assert!(lines[0].contains("journal_start"));
        assert!(lines[0].contains(SCHEMA));
        assert!(lines.last().unwrap().contains("journal_stop"));
        // Total order by seq despite sharded producers.
        let mut prev = -1i64;
        for l in &lines {
            assert!(l.starts_with("{\"seq\":"), "line must open with seq: {l}");
            let seq: i64 = l["{\"seq\":".len()..]
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(seq > prev, "seq must be strictly increasing");
            prev = seq;
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let _g = crate::tests::guard();
        let dir = std::env::temp_dir().join(format!("amrviz_jo_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("overflow.jsonl");
        let _ = std::fs::remove_file(&path);

        let dropped_before = dropped();
        start(&path).unwrap();
        // Everything lands in one shard (fixed hint); exceed its cap
        // faster than the 50 ms writer poll can drain.
        for i in 0..(SHARD_CAP + 64) as u64 {
            push_raw("flood", 7, &format!("\"i\":{i}"));
        }
        let stats = stop();
        // The writer may have drained mid-flood, so we can only assert the
        // counter moved if the queue truly overflowed; either way totals
        // stay consistent and the file stays parseable.
        assert!(stats.dropped >= dropped_before);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().count() > 0);
        for l in text.lines() {
            assert!(
                l.starts_with('{') && l.ends_with('}'),
                "whole lines only: {l}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
