//! Service-level objectives: declared targets, burn-rate math, and
//! multi-window evaluation.
//!
//! An SLO here is two optional objectives over a request stream:
//!
//! * **Availability** — the fraction of requests with a good outcome must
//!   stay above `target_pct`. The *burn rate* of a window is the observed
//!   bad fraction divided by the error budget:
//!   `burn = (1 - good/total) / (1 - target_pct/100)`. Burn 1.0 means the
//!   budget is being consumed exactly at the sustainable rate; burn 10
//!   means a 30-day budget is gone in 3 days.
//! * **p99 latency** — the 99th-percentile latency of the window must stay
//!   below `p99_target_us`.
//!
//! Evaluation is **multi-window**: a short window (5 m) reacts fast but is
//! noisy, a long window (1 h) is stable but slow. An objective is only
//! *breached* when every window **that has traffic** exceeds it — the
//! standard AND-of-windows rule that suppresses both one-request blips
//! (short window fires, long does not) and stale alarms (long window still
//! remembers an incident the short window shows as resolved). Windows with
//! no traffic are skipped: no data is not an outage.
//!
//! The module is pure math over [`WindowReading`]s; the serve layer owns
//! the rings that produce them (see `amrviz-serve`'s telemetry) and the
//! recorder's slot-ring geometry (`super::window`) supplies the windows.

use crate::hist::Histogram;

/// Burn rate threshold above which a window is flagged. 1.0 would alert on
/// exactly-at-budget; small overshoots are noise, so flag at 2x budget
/// consumption (a common page threshold for mid-length windows).
pub const BURN_ALERT: f64 = 2.0;

/// A declared service-level objective. Both objectives are optional; an
/// empty spec never breaches.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// p99 latency objective in microseconds (`p99<MS` in the spec string,
    /// converted from milliseconds).
    pub p99_target_us: Option<u64>,
    /// Availability objective in percent (`avail>PCT`).
    pub availability_target_pct: Option<f64>,
}

impl Default for SloSpec {
    /// Conservative default used by `amrviz serve` when no `--slo` is
    /// given: 99% availability, p99 under one second.
    fn default() -> Self {
        SloSpec {
            p99_target_us: Some(1_000_000),
            availability_target_pct: Some(99.0),
        }
    }
}

impl SloSpec {
    /// Parses the compact CLI form `"p99<MS,avail>PCT"` — e.g.
    /// `"p99<250,avail>99.5"`. Either clause may be omitted; at least one
    /// must be present. p99 values are milliseconds on the command line
    /// (operator-friendly) and microseconds internally.
    pub fn parse(s: &str) -> Result<SloSpec, String> {
        let mut spec = SloSpec {
            p99_target_us: None,
            availability_target_pct: None,
        };
        for clause in s.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(ms) = clause.strip_prefix("p99<") {
                let ms: f64 = ms
                    .parse()
                    .map_err(|_| format!("bad p99 bound in SLO clause '{clause}'"))?;
                if !ms.is_finite() || ms <= 0.0 {
                    return Err(format!("p99 bound must be positive: '{clause}'"));
                }
                spec.p99_target_us = Some((ms * 1000.0) as u64);
            } else if let Some(pct) = clause.strip_prefix("avail>") {
                let pct: f64 = pct
                    .parse()
                    .map_err(|_| format!("bad availability in SLO clause '{clause}'"))?;
                if !(0.0..100.0).contains(&pct) {
                    return Err(format!(
                        "availability target must be in [0, 100): '{clause}'"
                    ));
                }
                spec.availability_target_pct = Some(pct);
            } else {
                return Err(format!(
                    "unknown SLO clause '{clause}' (expected p99<MS or avail>PCT)"
                ));
            }
        }
        if spec.p99_target_us.is_none() && spec.availability_target_pct.is_none() {
            return Err("empty SLO spec (expected \"p99<MS,avail>PCT\")".into());
        }
        Ok(spec)
    }

    /// The canonical spec string this would parse from.
    pub fn display(&self) -> String {
        fn num(v: f64) -> String {
            if v == v.trunc() {
                format!("{v:.0}")
            } else {
                format!("{v}")
            }
        }
        let mut parts = Vec::new();
        if let Some(us) = self.p99_target_us {
            parts.push(format!("p99<{}", num(us as f64 / 1000.0)));
        }
        if let Some(pct) = self.availability_target_pct {
            parts.push(format!("avail>{}", num(pct)));
        }
        parts.join(",")
    }
}

/// Burn rate of one window: observed bad fraction over the error budget.
/// Zero traffic burns nothing; a zero-width budget (target 100%) is
/// clamped so a single failure reads as a very large, finite burn.
pub fn burn_rate(good: u64, total: u64, target_pct: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let bad_frac = 1.0 - good as f64 / total as f64;
    let budget = (1.0 - target_pct / 100.0).max(1e-9);
    bad_frac / budget
}

/// One evaluation window's worth of request data, produced by whatever
/// ring the caller maintains.
#[derive(Debug, Clone)]
pub struct WindowReading {
    /// Human label for the window ("5m", "1h", "run").
    pub label: &'static str,
    /// Window length in seconds (0 = whole run).
    pub secs: u64,
    /// Requests with a good outcome in the window.
    pub good: u64,
    /// All requests in the window.
    pub total: u64,
    /// p99 latency over the window in microseconds (0 when empty).
    pub p99_us: u64,
}

impl WindowReading {
    /// Builds a reading from a merged window histogram plus good/total
    /// counts.
    pub fn from_histogram(
        label: &'static str,
        secs: u64,
        good: u64,
        total: u64,
        latency: &Histogram,
    ) -> Self {
        WindowReading {
            label,
            secs,
            good,
            total,
            p99_us: latency.percentile(99.0).round() as u64,
        }
    }
}

/// Per-window evaluation result.
#[derive(Debug, Clone)]
pub struct WindowEval {
    pub label: &'static str,
    pub secs: u64,
    pub good: u64,
    pub total: u64,
    pub p99_us: u64,
    /// Availability burn rate (0 when no availability objective declared).
    pub burn: f64,
    /// This window exceeds the availability objective's alert burn.
    pub avail_exceeded: bool,
    /// This window exceeds the latency objective.
    pub latency_exceeded: bool,
}

/// Full multi-window SLO evaluation.
#[derive(Debug, Clone)]
pub struct SloReport {
    pub spec: SloSpec,
    pub windows: Vec<WindowEval>,
    /// Availability objective breached (every window with traffic exceeds).
    pub avail_breach: bool,
    /// Latency objective breached (every window with traffic exceeds).
    pub latency_breach: bool,
}

impl SloReport {
    /// Any declared objective breached.
    pub fn breached(&self) -> bool {
        self.avail_breach || self.latency_breach
    }

    /// Compact single-line JSON for markers and STATS embedding.
    pub fn to_json(&self) -> String {
        let mut windows = String::new();
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                windows.push(',');
            }
            windows.push_str(&format!(
                "{{\"label\":\"{}\",\"secs\":{},\"good\":{},\"total\":{},\"p99_us\":{},\"burn\":{:.2},\"avail_exceeded\":{},\"latency_exceeded\":{}}}",
                w.label, w.secs, w.good, w.total, w.p99_us, w.burn, w.avail_exceeded, w.latency_exceeded
            ));
        }
        format!(
            "{{\"spec\":\"{}\",\"windows\":[{}],\"avail_breach\":{},\"latency_breach\":{},\"breached\":{}}}",
            crate::json_escape(&self.spec.display()),
            windows,
            self.avail_breach,
            self.latency_breach,
            self.breached()
        )
    }
}

/// Evaluates `spec` over the given windows. Breach semantics are
/// AND-of-windows over windows *with traffic*: an objective is breached
/// only when at least one window has traffic and every such window
/// exceeds it.
pub fn evaluate(spec: &SloSpec, readings: &[WindowReading]) -> SloReport {
    let mut windows = Vec::with_capacity(readings.len());
    for r in readings {
        let burn = match spec.availability_target_pct {
            Some(pct) => burn_rate(r.good, r.total, pct),
            None => 0.0,
        };
        let avail_exceeded =
            spec.availability_target_pct.is_some() && r.total > 0 && burn >= BURN_ALERT;
        let latency_exceeded = match spec.p99_target_us {
            Some(t) => r.total > 0 && r.p99_us > t,
            None => false,
        };
        windows.push(WindowEval {
            label: r.label,
            secs: r.secs,
            good: r.good,
            total: r.total,
            p99_us: r.p99_us,
            burn,
            avail_exceeded,
            latency_exceeded,
        });
    }
    let with_traffic: Vec<&WindowEval> = windows.iter().filter(|w| w.total > 0).collect();
    let avail_breach = spec.availability_target_pct.is_some()
        && !with_traffic.is_empty()
        && with_traffic.iter().all(|w| w.avail_exceeded);
    let latency_breach = spec.p99_target_us.is_some()
        && !with_traffic.is_empty()
        && with_traffic.iter().all(|w| w.latency_exceeded);
    SloReport {
        spec: spec.clone(),
        windows,
        avail_breach,
        latency_breach,
    }
}

/// Emits one typed `slo` journal event per window (plus the overall breach
/// verdict on each line, so a single grepped line is self-contained).
/// No-op when no journal is attached.
pub fn emit_journal(report: &SloReport) {
    if !crate::journal::is_active() {
        return;
    }
    for w in &report.windows {
        crate::journal::emit(
            "slo",
            &[
                (
                    "spec",
                    format!("\"{}\"", crate::json_escape(&report.spec.display())),
                ),
                ("window", format!("\"{}\"", w.label)),
                ("secs", w.secs.to_string()),
                ("good", w.good.to_string()),
                ("total", w.total.to_string()),
                ("p99_us", w.p99_us.to_string()),
                ("burn", format!("{:.2}", w.burn)),
                ("avail_exceeded", w.avail_exceeded.to_string()),
                ("latency_exceeded", w.latency_exceeded.to_string()),
                ("breached", report.breached().to_string()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec_roundtrips() {
        let s = SloSpec::parse("p99<250,avail>99.5").unwrap();
        assert_eq!(s.p99_target_us, Some(250_000));
        assert_eq!(s.availability_target_pct, Some(99.5));
        assert_eq!(s.display(), "p99<250,avail>99.5");
        let again = SloSpec::parse(&s.display()).unwrap();
        assert_eq!(again, s);
    }

    #[test]
    fn parse_partial_and_errors() {
        let s = SloSpec::parse("p99<100").unwrap();
        assert_eq!(s.p99_target_us, Some(100_000));
        assert_eq!(s.availability_target_pct, None);
        let s = SloSpec::parse("avail>90").unwrap();
        assert_eq!(s.availability_target_pct, Some(90.0));
        assert!(SloSpec::parse("").is_err());
        assert!(SloSpec::parse("p99<-5").is_err());
        assert!(SloSpec::parse("avail>100").is_err());
        assert!(SloSpec::parse("p50<10").is_err());
        assert!(SloSpec::parse("p99<abc").is_err());
    }

    #[test]
    fn burn_rate_math() {
        // 90 good of 100 at a 99% target: 10% bad over a 1% budget = 10x.
        assert!((burn_rate(90, 100, 99.0) - 10.0).abs() < 1e-9);
        // Exactly at budget burns 1.0.
        assert!((burn_rate(99, 100, 99.0) - 1.0).abs() < 1e-9);
        // Perfect service burns nothing; no traffic burns nothing.
        assert_eq!(burn_rate(100, 100, 99.0), 0.0);
        assert_eq!(burn_rate(0, 0, 99.0), 0.0);
        // 100% target: finite (clamped) burn, not inf/NaN.
        let b = burn_rate(99, 100, 100.0);
        assert!(b.is_finite() && b > 1e6);
    }

    fn reading(label: &'static str, good: u64, total: u64, p99_us: u64) -> WindowReading {
        WindowReading {
            label,
            secs: 300,
            good,
            total,
            p99_us,
        }
    }

    #[test]
    fn breach_requires_every_window_with_traffic() {
        let spec = SloSpec::parse("avail>99").unwrap();
        // Short window burning hot, long window fine: no breach (blip).
        let r = evaluate(
            &spec,
            &[reading("5m", 50, 100, 0), reading("1h", 999, 1000, 0)],
        );
        assert!(r.windows[0].avail_exceeded);
        assert!(!r.windows[1].avail_exceeded);
        assert!(!r.avail_breach);
        // Both windows burning: breach.
        let r = evaluate(
            &spec,
            &[reading("5m", 50, 100, 0), reading("1h", 500, 1000, 0)],
        );
        assert!(r.avail_breach && r.breached());
        // Empty short window is skipped; hot long window alone breaches.
        let r = evaluate(
            &spec,
            &[reading("5m", 0, 0, 0), reading("1h", 500, 1000, 0)],
        );
        assert!(r.avail_breach);
        // No traffic anywhere: no breach.
        let r = evaluate(&spec, &[reading("5m", 0, 0, 0), reading("1h", 0, 0, 0)]);
        assert!(!r.breached());
    }

    #[test]
    fn latency_breach_and_json_shape() {
        let spec = SloSpec::parse("p99<200,avail>99").unwrap();
        let r = evaluate(
            &spec,
            &[
                reading("5m", 100, 100, 250_000),
                reading("1h", 1000, 1000, 300_000),
            ],
        );
        assert!(r.latency_breach);
        assert!(!r.avail_breach);
        let j = r.to_json();
        assert!(j.contains("\"latency_breach\":true"), "{j}");
        assert!(j.contains("\"breached\":true"), "{j}");
        assert!(j.contains("\"label\":\"5m\""), "{j}");
        // The JSON is parseable by the in-tree parser (used by CI asserts).
        amrviz_json::Json::parse(&j).expect("slo report json parses");
    }

    #[test]
    fn from_histogram_reads_p99() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(10_000);
        let r = WindowReading::from_histogram("5m", 300, 100, 100, &h);
        assert_eq!(r.p99_us, h.percentile(99.0).round() as u64);
        assert!(r.p99_us >= 10);
    }
}
