//! `amrviz-json` — the JSON subset the pipeline actually needs, on plain std.
//!
//! Benchmark manifests, `results.json` merging, plotfile headers, and the
//! `SUMMARY` line all speak JSON. This crate provides a [`Json`] value type
//! with an insertion-ordered object (so manifests diff cleanly), a writer
//! whose `f64` formatting is the shortest round-trip representation (Rust's
//! `{:?}` for floats), and a recursive-descent parser for everything the
//! serializer emits plus ordinary interchange JSON.
//!
//! Non-finite floats serialize as `null`, matching what `serde_json` did for
//! the seed's manifests. Equal inputs produce byte-identical output at any
//! thread count — there is nothing scheduling-dependent here, but it matters
//! for the golden-snapshot tests that hash manifest text.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(entries) => {
                let value = value.into();
                if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    entries.push((key.to_string(), value));
                }
                self
            }
            other => panic!("set({key}) on non-object {other:?}"),
        }
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().and_then(|n| {
            if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
                Some(n as u64)
            } else {
                None
            }
        })
    }

    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().and_then(|n| {
            if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&n) {
                Some(n as i64)
            } else {
                None
            }
        })
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact single-line serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation (what the seed's
    /// `serde_json::to_string_pretty` manifests used).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, Some(2), 0);
        out
    }

    /// Parses a JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

/// Types that can render themselves as a [`Json`] value — the stand-in for
/// `serde::Serialize` across the workspace.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

macro_rules! num_to_json {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json { Json::Num(v as f64) }
        }
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::Num(*self as f64) }
        }
    )*};
}
num_to_json!(f64, f32, i64, i32, i16, u64, u32, u16, u8, usize, isize);

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}
impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}
impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}
impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_num(*n, out),
        Json::Str(s) => write_str(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Json::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    if n == n.trunc() && n.abs() < 1e15 {
        // Integral values print without a fractional part or exponent.
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` on f64 is the shortest string that round-trips exactly.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Handle surrogate pairs for completeness.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let c = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-7", "12.5", "1e-3"] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.to_string_compact()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn float_shortest_roundtrip() {
        let v = Json::Num(0.1 + 0.2);
        let text = v.to_string_compact();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.as_f64().unwrap().to_bits(), (0.1 + 0.2f64).to_bits());
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string_compact(), "42");
        assert_eq!(Json::Num(-3.0).to_string_compact(), "-3");
        assert_eq!(Json::Num(2.5).to_string_compact(), "2.5");
    }

    #[test]
    fn non_finite_is_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let mut o = Json::obj();
        o.set("zeta", 1).set("alpha", 2).set("mid", "x");
        assert_eq!(o.to_string_compact(), r#"{"zeta":1,"alpha":2,"mid":"x"}"#);
        // Replacement keeps the original position.
        o.set("zeta", 9);
        assert_eq!(o.get("zeta").unwrap().as_i64(), Some(9));
        assert!(o.to_string_compact().starts_with(r#"{"zeta":9"#));
    }

    #[test]
    fn pretty_output_shape() {
        let mut o = Json::obj();
        o.set("a", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]));
        let text = o.to_string_pretty();
        assert_eq!(text, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
        assert_eq!(Json::parse(&text).unwrap(), o);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\slash\\ unicode: αβγ \u{1}";
        let v = Json::Str(s.to_string());
        let back = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(back.as_str().unwrap(), s);
    }

    #[test]
    fn unicode_escape_parsing() {
        assert_eq!(Json::parse(r#""A""#).unwrap().as_str().unwrap(), "A");
        // Surrogate pair: U+1F600.
        assert_eq!(
            Json::parse(r#""😀""#).unwrap().as_str().unwrap(),
            "\u{1f600}"
        );
    }

    #[test]
    fn nested_document_roundtrip() {
        let text =
            r#"{"runs":[{"cr":12.5,"psnr":38.25,"ok":true},{"cr":3,"psnr":null}],"app":"nyx"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string_compact(), text);
        assert_eq!(
            v.get("runs").unwrap().as_arr().unwrap()[0]
                .get("cr")
                .unwrap()
                .as_f64(),
            Some(12.5)
        );
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a":1,}"#).is_err());
        assert!(Json::parse("[1,2] extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn tojson_impls() {
        assert_eq!(3u32.to_json(), Json::Num(3.0));
        assert_eq!(vec![1i64, 2].to_json().to_string_compact(), "[1,2]");
        assert_eq!([1.5f64; 2].to_json().to_string_compact(), "[1.5,1.5]");
        assert_eq!(Some("x").to_json(), Json::Str("x".into()));
        assert_eq!(None::<String>.to_json(), Json::Null);
    }
}
