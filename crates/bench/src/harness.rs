//! The `amrviz bench` harness: a pinned benchmark matrix with
//! machine-readable output and baseline regression gating.
//!
//! A run executes synthetic Nyx/WarpX scenarios × {szlr, interp, zfp-like}
//! × thread counts (at a fixed seed and error bound), measuring for every
//! cell: compress/decompress/extract wall times, compression ratio,
//! PSNR/SSIM/R-SSIM, peak allocation above the cell baseline, and the
//! p50/p90/p99 of the per-piece latency histograms. Results are written as
//! `BENCH_<gitsha-or-name>.json` (schema `amrviz-bench-v1`, documented in
//! `DESIGN.md`).
//!
//! # Gating
//!
//! [`compare`] matches cells between a new run and a `--baseline` file by
//! `(app, compressor, threads, rel_eb)` and applies, per metric:
//!
//! * **wall times** — a *symmetric* band `[old/(1+f), old·(1+f)]` where
//!   `f = threshold_pct / 100`. Slower is a regression; *much faster* also
//!   fails, because a time outside the band in either direction means the
//!   baseline is not comparable to this machine/build (stale, doctored, or
//!   cross-hardware) and certifying against it would be meaningless.
//!   Cells where both sides are under [`TIME_FLOOR_SECONDS`] are skipped —
//!   micro-times are all scheduler noise.
//! * **quality** (`compression_ratio`, `psnr_db`, `ssim`) — one-sided:
//!   only a *drop* past the band fails. These are bit-deterministic for a
//!   fixed seed, so any change at all is a real code change.
//! * **peak_alloc_bytes** — one-sided: only growth past the band fails;
//!   skipped when either side is 0 (counting allocator not installed).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use amrviz_amr::resample::{flatten_levels_to_finest, Upsample};
use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field, AmrCodecConfig, CompressionStats,
    ErrorBound,
};
use amrviz_core::prelude::*;
use amrviz_json::{Json, ToJson};
use amrviz_metrics::{quality, rssim, ssim3, SsimConfig};

/// Schema tag written into every BENCH file.
pub const SCHEMA: &str = "amrviz-bench-v1";

/// Wall times where both runs are under this floor are not gated — they
/// are dominated by scheduler noise, not by the code under test.
pub const TIME_FLOOR_SECONDS: f64 = 0.05;

/// Default regression threshold (percent): the allowed band is ±200 %,
/// i.e. a 3× change, so only gross regressions fail locally.
pub const DEFAULT_THRESHOLD_PCT: f64 = 200.0;

/// Short cell keys for the compressor matrix (stable across renames of the
/// display labels).
pub fn compressor_key(kind: CompressorKind) -> &'static str {
    match kind {
        CompressorKind::SzLr => "szlr",
        CompressorKind::SzInterp => "interp",
        CompressorKind::ZfpLike => "zfp-like",
    }
}

const MATRIX_COMPRESSORS: [CompressorKind; 3] = [
    CompressorKind::SzLr,
    CompressorKind::SzInterp,
    CompressorKind::ZfpLike,
];

/// Extreme-corner cells from the recipe grammar, stressing the codec far
/// outside the paper's two scenarios: the deepest hierarchy over
/// scattered boxes, and a degenerate single-cell fine box. They ride the
/// matrix under their recipe labels; baselines that predate them just
/// warn as unmatched cells.
const CORNER_RECIPE: &str = "\
(scenario (family (grf -2.0)) (topology scattered) (levels 4))
(scenario (family (grf -2.0)) (topology degenerate) (levels 2))";

/// Configuration of one bench run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Scenario scale for every cell.
    pub scale: Scale,
    /// Worker-pool sizes to sweep.
    pub thread_counts: Vec<usize>,
    /// Relative error bounds to sweep.
    pub rel_ebs: Vec<f64>,
    /// Run label: `BENCH_<name>.json`. Defaults to `git describe`.
    pub name: String,
    /// Directory the BENCH file is written into.
    pub out_dir: PathBuf,
    /// Marks the run as the reduced `--quick` matrix in the output.
    pub quick: bool,
}

impl BenchConfig {
    /// The `--quick` matrix: Tiny scale, 1 thread plus the ambient pool
    /// size (so `AMRVIZ_THREADS` steers the second column), one bound.
    pub fn quick(name: String, out_dir: PathBuf) -> Self {
        let ambient = amrviz_par::threads().clamp(1, 4);
        let mut thread_counts = vec![1];
        if ambient > 1 {
            thread_counts.push(ambient);
        }
        BenchConfig {
            scale: Scale::Tiny,
            thread_counts,
            rel_ebs: vec![1e-3],
            name,
            out_dir,
            quick: true,
        }
    }

    /// The full matrix: Small scale, {1, ambient} threads, one bound.
    pub fn full(name: String, out_dir: PathBuf) -> Self {
        let mut cfg = Self::quick(name, out_dir);
        cfg.scale = Scale::Small;
        cfg.quick = false;
        cfg
    }
}

/// Runs the whole matrix and returns the BENCH document.
///
/// Enables the global recorder for the duration (each cell is measured
/// from a clean `reset`), and restores the worker-pool size afterwards.
pub fn run_bench(cfg: &BenchConfig) -> Json {
    let was_enabled = amrviz_obs::is_enabled();
    let prior_threads = amrviz_par::threads();
    let mut cells = Vec::new();
    for &threads in &cfg.thread_counts {
        amrviz_par::set_threads(threads);
        for app in Application::ALL {
            // One scenario build per (app, threads); generation is outside
            // the measured region.
            let built = crate::bench_scenario(app, cfg.scale);
            for kind in MATRIX_COMPRESSORS {
                for &rel_eb in &cfg.rel_ebs {
                    cells.push(run_cell(&built, kind, threads, rel_eb));
                }
            }
        }
        // Recipe-grammar corners (always tiny scale — they gate crashes
        // and gross regressions in odd topologies, not throughput).
        let corners = amrviz_recipe::expand(CORNER_RECIPE, 42).expect("corner recipe is valid");
        for spec in corners.specs {
            let built = BuiltScenario::from_spec(spec);
            for &rel_eb in &cfg.rel_ebs {
                cells.push(run_cell(&built, CompressorKind::SzLr, threads, rel_eb));
            }
        }
    }
    amrviz_par::set_threads(prior_threads);
    if !was_enabled {
        amrviz_obs::disable();
    }
    amrviz_obs::reset();

    let mut doc = Json::obj();
    doc.set("schema", SCHEMA)
        .set("name", cfg.name.as_str())
        .set("git", git_describe().as_str())
        .set("quick", cfg.quick)
        .set("scale", format!("{:?}", cfg.scale))
        .set("threads_swept", cfg.thread_counts.to_json())
        .set("mem_profile", amrviz_obs::mem::span_profiling_active())
        .set(
            "peak_rss_bytes",
            match peak_rss_bytes() {
                Some(b) => Json::from(b),
                None => Json::Null,
            },
        )
        .set("cells", Json::Arr(cells));
    doc
}

/// Measures one matrix cell. The recorder is reset + enabled around the
/// measured region so the histograms belong to this cell alone.
fn run_cell(built: &BuiltScenario, kind: CompressorKind, threads: usize, rel_eb: f64) -> Json {
    amrviz_obs::reset();
    amrviz_obs::enable();
    let mem_base = amrviz_obs::mem::alloc_baseline();

    let comp = kind.instance();
    let field = built.spec.eval_field();
    let codec_cfg = AmrCodecConfig::default();

    let sp = amrviz_obs::span!("bench.compress", compressor = kind.label());
    let compressed = compress_hierarchy_field(
        &built.hierarchy,
        field,
        comp.as_ref(),
        ErrorBound::Rel(rel_eb),
        &codec_cfg,
    )
    .expect("scenario field exists");
    let compress_seconds = sp.finish();

    let sp = amrviz_obs::span!("bench.decompress", compressor = kind.label());
    let levels =
        decompress_hierarchy_field(&built.hierarchy, &compressed, comp.as_ref(), &codec_cfg)
            .expect("own stream decodes");
    let decompress_seconds = sp.finish();

    let sp = amrviz_obs::span!("bench.extract", compressor = kind.label());
    let iso_res = amrviz_viz::extract_amr_isosurface(
        &built.hierarchy,
        &levels,
        built.iso,
        IsoMethod::Resampling,
    );
    let extract_seconds = sp.finish();

    // Quality against the uniform reference (bit-deterministic per seed).
    // The decompressed levels are flattened in place — no hierarchy clone.
    let recon = flatten_levels_to_finest(&built.hierarchy, &levels, Upsample::PiecewiseConstant)
        .expect("levels match hierarchy")
        .data;
    let stats = CompressionStats::new(compressed.n_values, compressed.compressed_bytes());
    let q = quality(&built.uniform.data, &recon);
    let s = ssim3(
        &built.uniform.data,
        &recon,
        built.uniform.dims(),
        &SsimConfig::default(),
    );

    let peak_alloc = amrviz_obs::mem::peak_since(mem_base);
    let hists = amrviz_obs::histograms_snapshot();

    let mut cell = Json::obj();
    cell.set("app", built.spec.label())
        .set("compressor", compressor_key(kind))
        .set("threads", threads)
        .set("rel_eb", rel_eb)
        .set("compress_seconds", compress_seconds)
        .set("decompress_seconds", decompress_seconds)
        .set("extract_seconds", extract_seconds)
        .set("compression_ratio", stats.ratio())
        .set("bits_per_value", stats.bits_per_value())
        .set("psnr_db", q.psnr)
        .set("ssim", s)
        .set("rssim", rssim(s))
        .set("max_abs_error", q.max_abs_err)
        .set("triangles", iso_res.total_triangles())
        .set("peak_alloc_bytes", peak_alloc);
    let mut hj = Json::obj();
    for (name, h) in &hists {
        let mut o = Json::obj();
        o.set("count", h.count())
            .set("sum", h.sum())
            .set("min", h.min())
            .set("max", h.max())
            .set("mean", h.mean())
            .set("p50", h.percentile(50.0))
            .set("p90", h.percentile(90.0))
            .set("p99", h.percentile(99.0));
        hj.set(name, o);
    }
    cell.set("histograms", hj);
    cell
}

/// Ceiling on instrumentation self-overhead, in percent of wall time: the
/// `amrviz bench --obs-overhead` cell fails (and CI with it) if enabling
/// the recorder *plus* streaming the journal costs more than this over the
/// same workload run dark.
pub const OBS_OVERHEAD_MAX_PCT: f64 = 3.0;

/// Seconds each timed trial should take after rep calibration. Shorter
/// trials are all scheduler noise; longer ones waste CI minutes.
const OBS_OVERHEAD_TRIAL_SECONDS: f64 = 0.3;

/// Paired trials per arm. Min-of-N discards cache-warmup and scheduler
/// outliers, so the comparison is between the two best observed runs.
const OBS_OVERHEAD_TRIALS: usize = 4;

/// Result of one [`run_obs_overhead`] measurement.
#[derive(Debug, Clone)]
pub struct ObsOverheadReport {
    /// Scenario scale the workload ran at.
    pub scale: String,
    /// Workload repetitions per timed trial (calibrated).
    pub reps: usize,
    /// Paired trials per arm.
    pub trials: usize,
    /// Min-of-trials wall seconds with the recorder disabled.
    pub off_seconds: f64,
    /// Min-of-trials wall seconds with the recorder enabled and the
    /// journal streaming to disk.
    pub on_seconds: f64,
    /// `100 * (on - off) / off`; negative (noise) passes trivially.
    pub overhead_pct: f64,
    /// Spans recorded across the instrumented trials.
    pub spans_recorded: u64,
    /// Journal events enqueued / dropped across the instrumented trials.
    pub journal_enqueued: u64,
    pub journal_dropped: u64,
}

impl ObsOverheadReport {
    pub fn passed(&self) -> bool {
        self.overhead_pct <= OBS_OVERHEAD_MAX_PCT
    }

    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.set("schema", "amrviz-obs-overhead-v1")
            .set("scale", self.scale.as_str())
            .set("reps", self.reps)
            .set("trials", self.trials)
            .set("off_seconds", self.off_seconds)
            .set("on_seconds", self.on_seconds)
            .set("overhead_pct", self.overhead_pct)
            .set("max_pct", OBS_OVERHEAD_MAX_PCT)
            .set("spans_recorded", self.spans_recorded)
            .set("journal_enqueued", self.journal_enqueued)
            .set("journal_dropped", self.journal_dropped)
            .set("passed", self.passed());
        doc
    }

    pub fn render(&self) -> String {
        format!(
            "obs overhead: Nyx/szlr @ {} x{} reps, min of {} trials\n\
             \x20 dark        {:.4} s\n\
             \x20 instrumented {:.4} s  ({} spans, {} journal lines, {} dropped)\n\
             \x20 overhead    {:+.2}%  (budget {:.0}%) -> {}\n",
            self.scale,
            self.reps,
            self.trials,
            self.off_seconds,
            self.on_seconds,
            self.spans_recorded,
            self.journal_enqueued,
            self.journal_dropped,
            self.overhead_pct,
            OBS_OVERHEAD_MAX_PCT,
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// Measures instrumentation self-overhead on the Nyx × szlr cell at
/// `rel_eb = 1e-3`: the same compress → decompress → extract workload is
/// timed dark (recorder disabled) and fully instrumented (recorder enabled
/// *and* journal streaming into `out_dir`), with paired, rep-calibrated,
/// min-of-N trials. The journal file is left in `out_dir` for inspection.
pub fn run_obs_overhead(scale: Scale, out_dir: &Path) -> ObsOverheadReport {
    let was_enabled = amrviz_obs::is_enabled();
    let built = crate::bench_scenario(Application::Nyx, scale);

    let workload = |b: &BuiltScenario| {
        let comp = CompressorKind::SzLr.instance();
        let codec_cfg = AmrCodecConfig::default();
        let sp = amrviz_obs::span!("bench.compress", compressor = "sz-lorenzo");
        let compressed = compress_hierarchy_field(
            &b.hierarchy,
            b.spec.eval_field(),
            comp.as_ref(),
            ErrorBound::Rel(1e-3),
            &codec_cfg,
        )
        .expect("scenario field exists");
        sp.finish();
        let sp = amrviz_obs::span!("bench.decompress", compressor = "sz-lorenzo");
        let levels =
            decompress_hierarchy_field(&b.hierarchy, &compressed, comp.as_ref(), &codec_cfg)
                .expect("own stream decodes");
        sp.finish();
        let sp = amrviz_obs::span!("bench.extract", compressor = "sz-lorenzo");
        let iso =
            amrviz_viz::extract_amr_isosurface(&b.hierarchy, &levels, b.iso, IsoMethod::Resampling);
        sp.finish();
        std::hint::black_box(iso.total_triangles());
    };
    let time_trial = |b: &BuiltScenario, reps: usize| {
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            workload(b);
        }
        t0.elapsed().as_secs_f64()
    };

    // Calibrate reps dark so each trial clears the noise floor.
    amrviz_obs::disable();
    amrviz_obs::reset();
    let once = time_trial(&built, 1).max(1e-9);
    let reps = ((OBS_OVERHEAD_TRIAL_SECONDS / once).ceil() as usize).clamp(1, 500);

    // Paired trials, alternating arms so slow drift (thermal, noisy
    // neighbors) hits both sides equally. Journal start/stop happens
    // outside the timed region — we gate the steady-state recording cost,
    // not writer-thread spawn.
    let journal_path = out_dir.join("obs_overhead_journal.jsonl");
    let _ = std::fs::remove_file(&journal_path);
    let mut off_min = f64::INFINITY;
    let mut on_min = f64::INFINITY;
    for _ in 0..OBS_OVERHEAD_TRIALS {
        amrviz_obs::disable();
        off_min = off_min.min(time_trial(&built, reps));
        amrviz_obs::enable();
        amrviz_obs::journal::start(&journal_path).expect("journal opens in out_dir");
        on_min = on_min.min(time_trial(&built, reps));
        amrviz_obs::journal::stop();
    }
    let meta = amrviz_obs::meta_snapshot();

    if !was_enabled {
        amrviz_obs::disable();
    } else {
        amrviz_obs::enable();
    }
    amrviz_obs::reset();

    ObsOverheadReport {
        scale: format!("{scale:?}"),
        reps,
        trials: OBS_OVERHEAD_TRIALS,
        off_seconds: off_min,
        on_seconds: on_min,
        overhead_pct: 100.0 * (on_min - off_min) / off_min.max(1e-12),
        spans_recorded: meta.spans_recorded,
        journal_enqueued: meta.journal_enqueued,
        journal_dropped: meta.journal_dropped,
    }
}

/// Writes `doc` as `BENCH_<name>.json` under `out_dir`, returning the path.
pub fn write_bench(doc: &Json, out_dir: &Path) -> std::io::Result<PathBuf> {
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("local")
        .replace(['/', ' '], "-");
    let path = out_dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, format!("{}\n", doc.to_string_pretty()))?;
    Ok(path)
}

/// One gated discrepancy found by [`compare`].
#[derive(Debug, Clone)]
pub struct Regression {
    pub cell: String,
    pub metric: &'static str,
    pub old: f64,
    pub new: f64,
    /// Human-readable direction (`"slower"`, `"faster than baseline"`,
    /// `"quality drop"`, `"memory growth"`).
    pub kind: &'static str,
}

/// Comparison output: every per-metric delta line plus the subset that
/// breached the threshold.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    pub lines: Vec<String>,
    pub regressions: Vec<Regression>,
    /// Cells present on one side only (warned, never gated).
    pub unmatched: Vec<String>,
}

fn cell_key(cell: &Json) -> String {
    format!(
        "{}/{}/t{}/eb{}",
        cell.get("app").and_then(Json::as_str).unwrap_or("?"),
        cell.get("compressor").and_then(Json::as_str).unwrap_or("?"),
        cell.get("threads").and_then(Json::as_f64).unwrap_or(0.0),
        cell.get("rel_eb").and_then(Json::as_f64).unwrap_or(0.0),
    )
}

fn metric(cell: &Json, name: &str) -> Option<f64> {
    cell.get(name).and_then(Json::as_f64)
}

/// Compares a new BENCH document against a baseline (see module docs for
/// the gating rules). `threshold_pct` is the allowed relative band in
/// percent.
pub fn compare(new_doc: &Json, baseline: &Json, threshold_pct: f64) -> Comparison {
    let f = threshold_pct.max(0.0) / 100.0;
    let mut out = Comparison::default();

    let new_cells = new_doc.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    let old_cells = baseline.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    let old_by_key: BTreeMap<String, &Json> = old_cells.iter().map(|c| (cell_key(c), c)).collect();
    let new_keys: std::collections::BTreeSet<String> = new_cells.iter().map(cell_key).collect();
    for c in old_cells {
        let k = cell_key(c);
        if !new_keys.contains(&k) {
            out.unmatched.push(format!("{k} (baseline only)"));
        }
    }

    const TIME_METRICS: [&str; 3] = ["compress_seconds", "decompress_seconds", "extract_seconds"];
    const QUALITY_METRICS: [&str; 3] = ["compression_ratio", "psnr_db", "ssim"];

    for cell in new_cells {
        let key = cell_key(cell);
        let Some(old) = old_by_key.get(&key) else {
            out.unmatched.push(format!("{key} (new only)"));
            continue;
        };
        for m in TIME_METRICS {
            let (Some(n), Some(o)) = (metric(cell, m), metric(old, m)) else {
                continue;
            };
            let delta_pct = if o > 0.0 { 100.0 * (n - o) / o } else { 0.0 };
            out.lines.push(format!(
                "{key:<36} {m:<20} {o:>12.4} -> {n:>12.4}  ({delta_pct:+8.1}%)"
            ));
            if n.max(o) < TIME_FLOOR_SECONDS {
                continue; // micro-times: noise, not signal
            }
            if n > o * (1.0 + f) {
                out.regressions.push(Regression {
                    cell: key.clone(),
                    metric: m,
                    old: o,
                    new: n,
                    kind: "slower",
                });
            } else if o > n * (1.0 + f) {
                out.regressions.push(Regression {
                    cell: key.clone(),
                    metric: m,
                    old: o,
                    new: n,
                    kind: "faster than baseline (stale or doctored baseline?)",
                });
            }
        }
        for m in QUALITY_METRICS {
            let (Some(n), Some(o)) = (metric(cell, m), metric(old, m)) else {
                continue;
            };
            let delta_pct = if o != 0.0 { 100.0 * (n - o) / o } else { 0.0 };
            out.lines.push(format!(
                "{key:<36} {m:<20} {o:>12.4} -> {n:>12.4}  ({delta_pct:+8.1}%)"
            ));
            if o > n * (1.0 + f) {
                out.regressions.push(Regression {
                    cell: key.clone(),
                    metric: m,
                    old: o,
                    new: n,
                    kind: "quality drop",
                });
            }
        }
        if let (Some(n), Some(o)) = (
            metric(cell, "peak_alloc_bytes"),
            metric(old, "peak_alloc_bytes"),
        ) {
            if n > 0.0 && o > 0.0 {
                let delta_pct = 100.0 * (n - o) / o;
                out.lines.push(format!(
                    "{key:<36} {:<20} {o:>12.0} -> {n:>12.0}  ({delta_pct:+8.1}%)",
                    "peak_alloc_bytes"
                ));
                if n > o * (1.0 + f) {
                    out.regressions.push(Regression {
                        cell: key.clone(),
                        metric: "peak_alloc_bytes",
                        old: o,
                        new: n,
                        kind: "memory growth",
                    });
                }
            }
        }
    }
    out
}

impl Comparison {
    /// Renders the full delta table plus a verdict block.
    pub fn render(&self, threshold_pct: f64) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<36} {:<20} {:>12}    {:>12}  {:>10}\n",
            "cell", "metric", "baseline", "current", "delta"
        ));
        for l in &self.lines {
            s.push_str(l);
            s.push('\n');
        }
        for u in &self.unmatched {
            s.push_str(&format!("WARN unmatched cell: {u}\n"));
        }
        if self.regressions.is_empty() {
            s.push_str(&format!(
                "OK: no metric outside the ±{threshold_pct}% band\n"
            ));
        } else {
            for r in &self.regressions {
                s.push_str(&format!(
                    "FAIL {} {}: {} -> {} [{}]\n",
                    r.cell, r.metric, r.old, r.new, r.kind
                ));
            }
            s.push_str(&format!(
                "{} metric(s) outside the ±{threshold_pct}% band\n",
                self.regressions.len()
            ));
        }
        s
    }
}

/// `git describe --always --dirty` of the working tree, falling back to
/// `GITHUB_SHA` (CI) and then `"unknown"`. Never fails.
pub fn git_describe() -> String {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output();
    if let Ok(o) = out {
        if o.status.success() {
            let s = String::from_utf8_lossy(&o.stdout).trim().to_string();
            if !s.is_empty() {
                return s;
            }
        }
    }
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if sha.len() >= 7 {
            return sha[..7].to_string();
        }
    }
    "unknown".to_string()
}

/// Process peak resident set (`VmHWM`) in bytes, when the platform exposes
/// it (`/proc/self/status`; `None` elsewhere).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_doc(compress_s: f64, cr: f64) -> Json {
        mini_doc_threads(compress_s, cr, 1)
    }

    fn mini_doc_threads(compress_s: f64, cr: f64, threads: usize) -> Json {
        let mut cell = Json::obj();
        cell.set("app", "WarpX")
            .set("compressor", "szlr")
            .set("threads", threads)
            .set("rel_eb", 1e-3)
            .set("compress_seconds", compress_s)
            .set("decompress_seconds", 0.2)
            .set("extract_seconds", 0.1)
            .set("compression_ratio", cr)
            .set("psnr_db", 80.0)
            .set("ssim", 0.999)
            .set("peak_alloc_bytes", 1_000_000usize);
        let mut doc = Json::obj();
        doc.set("schema", SCHEMA)
            .set("name", "t")
            .set("cells", Json::Arr(vec![cell]));
        doc
    }

    #[test]
    fn self_compare_is_clean() {
        let d = mini_doc(0.5, 10.0);
        let c = compare(&d, &d, DEFAULT_THRESHOLD_PCT);
        assert!(c.regressions.is_empty(), "{:?}", c.regressions);
        assert!(c.unmatched.is_empty());
        assert!(!c.lines.is_empty());
    }

    #[test]
    fn slower_run_fails() {
        let old = mini_doc(0.1, 10.0);
        let new = mini_doc(0.9, 10.0);
        let c = compare(&new, &old, 200.0);
        assert!(c.regressions.iter().any(|r| r.kind == "slower"));
    }

    #[test]
    fn inflated_baseline_fails_symmetric_gate() {
        // A doctored baseline with 100× timings must NOT make the current
        // run look like a pass — the symmetric band catches it.
        let old = mini_doc(50.0, 10.0);
        let new = mini_doc(0.5, 10.0);
        let c = compare(&new, &old, 200.0);
        assert!(
            c.regressions
                .iter()
                .any(|r| r.kind.starts_with("faster than baseline")),
            "{:?}",
            c.regressions
        );
    }

    #[test]
    fn quality_drop_fails_one_sided() {
        let old = mini_doc(0.5, 30.0);
        let new = mini_doc(0.5, 5.0);
        let c = compare(&new, &old, 200.0);
        assert!(c
            .regressions
            .iter()
            .any(|r| r.metric == "compression_ratio"));
        // Quality *gain* is never a failure.
        let c2 = compare(&old, &new, 200.0);
        assert!(c2
            .regressions
            .iter()
            .all(|r| r.metric != "compression_ratio"));
    }

    #[test]
    fn micro_times_are_not_gated() {
        let old = mini_doc(0.001, 10.0);
        let new = mini_doc(0.02, 10.0); // 20× but both under the floor
        let c = compare(&new, &old, 200.0);
        assert!(
            c.regressions.iter().all(|r| r.metric != "compress_seconds"),
            "{:?}",
            c.regressions
        );
    }

    #[test]
    fn unmatched_cells_warn_not_fail() {
        let old = mini_doc(0.5, 10.0);
        // Different thread count → the cell key no longer matches.
        let new = mini_doc_threads(0.5, 10.0, 4);
        let c = compare(&new, &old, 200.0);
        assert!(c.regressions.is_empty());
        assert_eq!(c.unmatched.len(), 2);
    }

    #[test]
    fn describe_and_rss_never_panic() {
        let _ = git_describe();
        let _ = peak_rss_bytes();
    }
}
