//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale tiny|small|medium|paper] [--seed N] [--out DIR]
//!                    [--threads N] [--flame FILE] [--journal FILE]
//!                    [--metrics-out FILE] [--metrics-interval SECS]
//!                    [--trace-sample N]
//! repro --suite enumerated[:RECIPE] [--seed N] [--out DIR] [--threads N] …
//!
//! experiments:
//!   table1   dataset structure (grid sizes, per-level densities)
//!   table2   CR / PSNR / SSIM / R-SSIM for SZ-L/R and SZ-Interp
//!   fig1     cracks vs gaps vs redundant-fix on original data (+ renders)
//!   fig2     AMR solver snapshots with adapting grids (+ slice renders)
//!   fig9     WarpX × SZ-L/R × {re-sampling, dual-cell} × eb sweep
//!   fig10    WarpX × SZ-Interp × methods × eb sweep
//!   fig11    Nyx × both compressors × methods at eb 1e-2
//!   fig12    rate-distortion on WarpX "Ez"
//!   fig13    rate-distortion on Nyx "Density"
//!   fig14    1D block-artifact smoothing demonstration
//!   ablation redundant-coarse-data handling (skip/restore) vs ratio
//!   all      everything above
//!
//! `--suite enumerated` replaces the figure experiments with the
//! recipe-enumerated scenario suite (crates/recipe): the built-in recipe
//! expands to 32 scenarios spanning field family × refinement topology ×
//! level count, and every one runs the CR/PSNR/R-SSIM matrix. Append
//! `:@FILE` to expand a recipe file, or `:(scenario …)` for an inline
//! recipe. Every summary.jsonl run row carries its reproducing canonical
//! recipe string.
//! ```
//!
//! Results print as ASCII tables; renders and machine-readable JSON land in
//! `--out` (default `repro_out/`).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use amrviz_bench::{fig14_series, step_roughness, RD_EBS};
use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field, AmrCodecConfig, ErrorBound,
};
use amrviz_core::experiment::{self, standard_camera, CompressorKind};
use amrviz_core::prelude::*;
use amrviz_core::report;
use amrviz_json::{Json, ToJson};
use amrviz_render::{render_slice, Color, RenderOptions, SliceOptions};
use amrviz_sim::solver::{AmrAdvection, FIELD};
use amrviz_viz::extract_amr_isosurface;

struct Args {
    experiment: String,
    /// `--suite enumerated[:RECIPE]` — recipe source for the enumerated
    /// suite (resolved to recipe text; replaces the figure experiments).
    suite: Option<String>,
    scale: Scale,
    seed: u64,
    out: PathBuf,
    flame: Option<PathBuf>,
    journal: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    metrics_interval: f64,
    trace_sample: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut experiment = None;
    let mut suite = None;
    let mut scale = Scale::Medium;
    let mut seed = 42u64;
    let mut out = PathBuf::from("repro_out");
    let mut flame = None;
    let mut journal = None;
    let mut metrics_out = None;
    let mut metrics_interval = 5.0f64;
    let mut trace_sample = 1u64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&v).ok_or(format!("unknown scale: {v}"))?;
            }
            "--seed" => {
                seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--suite" => {
                let v = args.next().ok_or("--suite needs a value")?;
                suite = Some(resolve_suite(&v)?);
            }
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--flame" => {
                flame = Some(PathBuf::from(args.next().ok_or("--flame needs a value")?));
            }
            "--journal" => {
                journal = Some(PathBuf::from(args.next().ok_or("--journal needs a value")?));
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    args.next().ok_or("--metrics-out needs a value")?,
                ));
            }
            "--metrics-interval" => {
                metrics_interval = args
                    .next()
                    .ok_or("--metrics-interval needs a value")?
                    .parse()
                    .map_err(|e| format!("bad metrics interval: {e}"))?;
                if !metrics_interval.is_finite() || metrics_interval <= 0.0 {
                    return Err("--metrics-interval must be a positive number".to_string());
                }
            }
            "--trace-sample" => {
                trace_sample = args
                    .next()
                    .ok_or("--trace-sample needs a value")?
                    .parse()
                    .map_err(|e| format!("bad trace sample: {e}"))?;
                if trace_sample == 0 {
                    return Err("--trace-sample must be at least 1 (keep every Nth trace)".into());
                }
            }
            "--threads" => {
                let n: usize = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                amrviz_par::set_threads(n);
            }
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if suite.is_some() && experiment.is_some() {
        return Err("--suite replaces the experiment name; pass one or the other".into());
    }
    let experiment = match (&suite, experiment) {
        (Some(_), None) => "enumerated".to_string(),
        (None, e) => e.ok_or("missing experiment name (try `all`)")?,
        _ => unreachable!(),
    };
    Ok(Args {
        experiment,
        suite,
        scale,
        seed,
        out,
        flame,
        journal,
        metrics_out,
        metrics_interval,
        trace_sample,
    })
}

/// Resolves a `--suite` value to recipe text: `enumerated` is the
/// built-in suite, `enumerated:@FILE` reads a recipe file, and
/// `enumerated:(scenario …)` is an inline recipe.
fn resolve_suite(v: &str) -> Result<String, String> {
    let rest = v
        .strip_prefix("enumerated")
        .ok_or_else(|| format!("unknown suite `{v}` (try `enumerated[:RECIPE]`)"))?;
    match rest.strip_prefix(':') {
        None if rest.is_empty() => Ok(amrviz_recipe::ENUMERATED_SUITE.to_string()),
        None => Err(format!("unknown suite `{v}` (try `enumerated[:RECIPE]`)")),
        Some(recipe) => match recipe.strip_prefix('@') {
            Some(path) => std::fs::read_to_string(path)
                .map_err(|e| format!("reading recipe file {path}: {e}")),
            None if recipe.is_empty() => Err("empty recipe after `enumerated:`".into()),
            None => Ok(recipe.to_string()),
        },
    }
}

/// Cache of built scenarios (generation is the expensive part).
struct Ctx {
    scale: Scale,
    seed: u64,
    out: PathBuf,
    built: BTreeMap<&'static str, BuiltScenario>,
    json: Json,
    /// Compression runs observed during this invocation (Table 2 rows),
    /// reported in the final `SUMMARY` line.
    runs: Vec<experiment::CompressionRun>,
    /// Wall seconds per top-level obs stage, accumulated across experiments.
    stage_seconds: BTreeMap<String, f64>,
    /// Per-experiment status records (`{name, status, error?}`) for the
    /// `SUMMARY` line; failed experiments don't abort the batch.
    experiments: Vec<Json>,
    /// (ok, degraded, failed) fab decode totals across all experiments.
    decode_fabs: (u64, u64, u64),
    /// When `--flame` is given, span events accumulated across experiments
    /// (each experiment resets the recorder, so they're drained here).
    flame: Option<PathBuf>,
    flame_events: Vec<amrviz_obs::SpanEvent>,
}

impl Ctx {
    fn scenario(&mut self, app: Application) -> &BuiltScenario {
        let key = app.label();
        if !self.built.contains_key(key) {
            eprintln!(
                "[repro] generating {key} scenario at {:?} scale…",
                self.scale
            );
            self.built
                .insert(key, Scenario::new(app, self.scale, self.seed).build());
        }
        &self.built[key]
    }

    fn record(&mut self, key: &str, value: impl ToJson) {
        self.json.set(key, value.to_json());
    }

    /// Drains the obs recorder into `manifest_<name>.json` and folds the
    /// top-level stage times into the invocation-wide totals.
    fn finish_experiment(&mut self, name: &str) {
        if self.flame.is_some() {
            self.flame_events.extend(amrviz_obs::events_snapshot());
        }
        let summary = amrviz_obs::summary::collect();
        for r in &summary.roots {
            *self.stage_seconds.entry(r.key.clone()).or_insert(0.0) += r.seconds;
        }
        let mut counters = Json::obj();
        for (k, v) in amrviz_obs::counters_snapshot() {
            match k {
                "decode.fabs_ok" => self.decode_fabs.0 += v,
                "decode.fabs_degraded" => self.decode_fabs.1 += v,
                "decode.fabs_failed" => self.decode_fabs.2 += v,
                _ => {}
            }
            counters.set(k, v);
        }
        let mut gauges = Json::obj();
        for (k, v) in amrviz_obs::gauges_snapshot() {
            gauges.set(k, v);
        }
        let mut m = Json::obj();
        m.set("experiment", name)
            .set("scale", format!("{:?}", self.scale).to_lowercase())
            .set("seed", self.seed)
            .set("counters", counters)
            .set("gauges", gauges)
            .set(
                "span_summary",
                Json::parse(&summary.to_json()).unwrap_or(Json::Null),
            );
        let path = self.out.join(format!("manifest_{name}.json"));
        if std::fs::write(&path, m.to_string_pretty()).is_ok() {
            println!("  manifest: {}", path.display());
        }
    }

    fn save_mesh_render(
        &self,
        built: &BuiltScenario,
        levels: &[amrviz_amr::MultiFab],
        method: IsoMethod,
        name: &str,
    ) {
        let res = extract_amr_isosurface(&built.hierarchy, levels, built.iso, method);
        // Frame the surface itself (the paper's panels zoom to the refined
        // region), falling back to the whole domain for empty meshes. The
        // bbox is the union of the per-level boxes — no combined-mesh copy.
        let bbox =
            res.level_meshes
                .iter()
                .filter_map(|m| m.bbox())
                .reduce(|(alo, ahi), (blo, bhi)| {
                    (
                        [alo[0].min(blo[0]), alo[1].min(blo[1]), alo[2].min(blo[2])],
                        [ahi[0].max(bhi[0]), ahi[1].max(bhi[1]), ahi[2].max(bhi[2])],
                    )
                });
        let cam = match bbox {
            Some((lo, hi)) => {
                let center = [
                    0.5 * (lo[0] + hi[0]),
                    0.5 * (lo[1] + hi[1]),
                    0.5 * (lo[2] + hi[2]),
                ];
                let extent = (hi[0] - lo[0])
                    .max(hi[1] - lo[1])
                    .max(hi[2] - lo[2])
                    .max(1e-6);
                let eye = [
                    center[0] - 2.0 * extent,
                    center[1] - 1.2 * extent,
                    center[2] + 1.0 * extent,
                ];
                amrviz_render::Camera::orthographic(eye, center, 0.65 * extent)
            }
            None => standard_camera(built),
        };
        let opts = RenderOptions {
            width: 960,
            height: 720,
            ..Default::default()
        };
        // Color the levels differently so cracks/gaps/overlaps stand out,
        // like the paper's red fine-level box.
        let img = amrviz_render::raster::render_meshes(
            &[
                (&res.level_meshes[0], Color::new(205, 205, 210)),
                (&res.level_meshes[1], Color::new(235, 120, 90)),
            ],
            &cam,
            &opts,
        );
        let path = self.out.join(format!("{name}.png"));
        if let Err(e) = img.save_png(&path) {
            eprintln!("[repro] failed to write {}: {e}", path.display());
        } else {
            println!("  wrote {}", path.display());
        }
    }
}

fn table1(ctx: &mut Ctx) {
    println!("\n=== Table 1: dataset structure ===");
    ctx.scenario(Application::Warpx);
    ctx.scenario(Application::Nyx);
    let rows = experiment::run_table1(&[
        &ctx.built[Application::Warpx.label()],
        &ctx.built[Application::Nyx.label()],
    ]);
    println!("{}", report::format_table1(&rows));
    println!(
        "paper: WarpX 128x128x1024 + 256x256x2048 (91.4% / 8.6%), \
         Nyx 256^3 + 512^3 (59.3% / 40.7%)"
    );
    ctx.record("table1", &rows);
}

fn table2(ctx: &mut Ctx) {
    println!("\n=== Table 2: compression quality ===");
    let mut all = Vec::new();
    for app in Application::ALL {
        let built = ctx.scenario(app);
        let rows = experiment::run_table2(built).expect("table2 runs");
        all.extend(rows);
    }
    println!("{}", report::format_table2(&all));
    ctx.runs.extend(all.iter().cloned());
    ctx.record("table2", &all);
}

fn fig1(ctx: &mut Ctx) {
    println!("\n=== Fig. 1: cracks (re-sampling) vs gaps (dual) vs redundant fix ===");
    let built = ctx.scenario(Application::Warpx);
    let rows = experiment::run_crack_analysis(built);
    println!("{}", report::format_cracks(&rows));
    let field = built.spec.eval_field();
    let levels = built
        .hierarchy
        .field(field)
        .expect("eval field")
        .levels
        .clone();
    let built = &ctx.built[Application::Warpx.label()];
    for (method, name) in [
        (IsoMethod::Resampling, "fig1a_resampling"),
        (IsoMethod::DualCell, "fig1b_dualcell"),
        (IsoMethod::DualCellRedundant, "fig1c_dualcell_redundant"),
    ] {
        ctx.save_mesh_render(built, &levels, method, name);
    }
    ctx.record("fig1", &rows);
}

fn fig2(ctx: &mut Ctx) {
    println!("\n=== Fig. 2: AMR grid adapts across timesteps ===");
    let n = match ctx.scale {
        Scale::Tiny => 16,
        Scale::Small => 32,
        _ => 64,
    };
    let mut sim = AmrAdvection::new(n, [1.0, 0.35, 0.0], 0.02, |p| {
        let r2 = (p[0] - 0.25).powi(2) + (p[1] - 0.35).powi(2) + (p[2] - 0.5).powi(2);
        (-r2 / (2.0 * 0.07f64.powi(2))).exp()
    });
    let mut snapshots: Vec<Json> = Vec::new();
    for snap in 0..3 {
        if snap > 0 {
            sim.run(8);
        }
        let h = sim.hierarchy();
        let bb = h.box_array(1).bounding_box();
        println!(
            "  step {:>3}  t={:.4}  fine boxes: {:>2}  fine cells: {:>8}  bbox: {}",
            h.step,
            sim.time(),
            h.box_array(1).len(),
            h.box_array(1).num_cells(),
            bb.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
        );
        let img = render_slice(h, FIELD, &SliceOptions::default()).expect("field exists");
        let path = ctx.out.join(format!("fig2_step{}.png", h.step));
        img.save_png(&path).ok();
        println!("  wrote {}", path.display());
        let mut snap_json = Json::obj();
        snap_json
            .set("step", h.step)
            .set("time", sim.time())
            .set("fine_cells", h.box_array(1).num_cells());
        snapshots.push(snap_json);
    }
    ctx.record("fig2", &snapshots);
}

fn figs_9_10(ctx: &mut Ctx, kind: CompressorKind, figname: &str) {
    println!(
        "\n=== {}: WarpX × {} × methods × error bounds ===",
        figname,
        kind.label()
    );
    let built = ctx.scenario(Application::Warpx);
    let rows = experiment::run_viz_quality(
        built,
        kind,
        &[1e-4, 1e-3, 1e-2],
        &[IsoMethod::Resampling, IsoMethod::DualCellRedundant],
    )
    .expect("viz-quality runs");
    println!("{}", report::format_viz_quality(&rows));

    // Render the eb=1e-2 panels (the paper's most visible case).
    let comp = kind.instance();
    let field = built.spec.eval_field();
    let cfg = AmrCodecConfig::default();
    let compressed = compress_hierarchy_field(
        &built.hierarchy,
        field,
        comp.as_ref(),
        ErrorBound::Rel(1e-2),
        &cfg,
    )
    .expect("field exists");
    let levels = decompress_hierarchy_field(&built.hierarchy, &compressed, comp.as_ref(), &cfg)
        .expect("own stream");
    let built = &ctx.built[Application::Warpx.label()];
    let tag = kind.label().replace(['/', '-'], "").to_lowercase();
    ctx.save_mesh_render(
        built,
        &levels,
        IsoMethod::Resampling,
        &format!("{figname}_{tag}_eb1e-2_resampling"),
    );
    ctx.save_mesh_render(
        built,
        &levels,
        IsoMethod::DualCellRedundant,
        &format!("{figname}_{tag}_eb1e-2_dualcell"),
    );
    ctx.record(figname, &rows);
}

fn fig11(ctx: &mut Ctx) {
    println!("\n=== Fig. 11: Nyx × both compressors × methods at eb 1e-2 ===");
    let built = ctx.scenario(Application::Nyx);
    let mut all = Vec::new();
    for kind in CompressorKind::PAPER {
        let rows = experiment::run_viz_quality(
            built,
            kind,
            &[1e-2],
            &[IsoMethod::Resampling, IsoMethod::DualCellRedundant],
        )
        .expect("viz-quality runs");
        all.extend(rows);
    }
    println!("{}", report::format_viz_quality(&all));
    // Original-data render for reference.
    let field = built.spec.eval_field();
    let levels = built
        .hierarchy
        .field(field)
        .expect("eval field")
        .levels
        .clone();
    let built = &ctx.built[Application::Nyx.label()];
    ctx.save_mesh_render(
        built,
        &levels,
        IsoMethod::Resampling,
        "fig11_original_resampling",
    );
    ctx.record("fig11", &all);
}

fn rate_distortion(ctx: &mut Ctx, app: Application, figname: &str) {
    println!(
        "\n=== {}: rate-distortion on {} \"{}\" ===",
        figname,
        app.label(),
        app.eval_field()
    );
    let built = ctx.scenario(app);
    let pts = experiment::run_rate_distortion(built, &RD_EBS).expect("rate-distortion runs");
    println!("{}", report::format_rate_distortion(&pts));
    ctx.record(figname, &pts);
}

fn fig14(ctx: &mut Ctx) {
    println!("\n=== Fig. 14: 1D block-artifact smoothing by re-sampling ===");
    let (orig, blocky, resampled) = fig14_series(16, 1.4);
    let fmt = |s: &[f64]| {
        s.iter()
            .map(|v| format!("{v:>5.2}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("  original (cell):   {}", fmt(&orig));
    println!("  decompressed:      {}", fmt(&blocky));
    println!("  re-sampled (node): {}", fmt(&resampled));
    println!(
        "  step roughness: original {:.2}, decompressed {:.2}, re-sampled {:.2}",
        step_roughness(&orig),
        step_roughness(&blocky),
        step_roughness(&resampled)
    );
    let mut series = Json::obj();
    series
        .set("original", orig.to_json())
        .set("decompressed", blocky.to_json())
        .set("resampled", resampled.to_json());
    ctx.record("fig14", series);
}

fn ablation(ctx: &mut Ctx) {
    println!("\n=== Ablation: redundant coarse data during compression (§2.2) ===");
    let mut rows = Vec::new();
    for app in Application::ALL {
        let built = ctx.scenario(app);
        let field = built.spec.eval_field();
        for kind in CompressorKind::PAPER {
            let comp = kind.instance();
            for (label, cfg) in [
                ("keep", AmrCodecConfig::default()),
                (
                    "skip",
                    AmrCodecConfig {
                        skip_redundant: true,
                        restore_redundant: false,
                    },
                ),
            ] {
                let c = compress_hierarchy_field(
                    &built.hierarchy,
                    field,
                    comp.as_ref(),
                    ErrorBound::Rel(1e-3),
                    &cfg,
                )
                .expect("field exists");
                rows.push(vec![
                    app.label().to_string(),
                    kind.label().to_string(),
                    label.to_string(),
                    format!(
                        "{:.1}",
                        (c.n_values * 8) as f64 / c.compressed_bytes() as f64
                    ),
                ]);
            }
        }
    }
    println!(
        "{}",
        report::ascii_table(&["App", "Compressor", "Redundant data", "CR (f64)"], &rows)
    );
    ctx.record("ablation_redundant", &rows);

    // zMesh-style cross-level 1D baseline (the related work the paper's
    // intro discusses) and the SZ-L/R predictor ablation.
    println!("--- related-work baseline + predictor ablation (rel eb 1e-3) ---");
    let mut rows = Vec::new();
    for app in Application::ALL {
        let built = ctx.scenario(app);
        let field = built.spec.eval_field();
        let n = built.hierarchy.total_cells();
        let z = amrviz_compress::compress_zmesh(&built.hierarchy, field, ErrorBound::Rel(1e-3))
            .expect("field exists");
        rows.push(vec![
            app.label().to_string(),
            "zMesh-1D".to_string(),
            format!("{:.1}", (n * 8) as f64 / z.len() as f64),
        ]);
        for (label, comp) in [
            ("SZ-L/R hybrid", amrviz_compress::SzLr::default()),
            ("SZ-L/R lorenzo-only", amrviz_compress::SzLr::lorenzo_only()),
            (
                "SZ-L/R regression-only",
                amrviz_compress::SzLr::regression_only(),
            ),
        ] {
            let c = compress_hierarchy_field(
                &built.hierarchy,
                field,
                &comp,
                ErrorBound::Rel(1e-3),
                &AmrCodecConfig::default(),
            )
            .expect("field exists");
            rows.push(vec![
                app.label().to_string(),
                label.to_string(),
                format!(
                    "{:.1}",
                    (c.n_values * 8) as f64 / c.compressed_bytes() as f64
                ),
            ]);
        }
    }
    println!(
        "{}",
        report::ascii_table(&["App", "Variant", "CR (f64)"], &rows)
    );
    ctx.record("ablation_predictors", &rows);
}

/// `--suite enumerated`: expand a recipe into concrete scenarios and run
/// the compression-quality matrix over every one of them. Each run row
/// (table and summary.jsonl) carries the scenario's canonical recipe
/// string, so any row reproduces with
/// `repro --suite "enumerated:<recipe>" --seed <seed>`.
fn enumerated(ctx: &mut Ctx, recipe_src: &str) {
    println!("\n=== Enumerated suite: recipe-expanded scenario matrix ===");
    let exp = match amrviz_recipe::expand(recipe_src, ctx.seed) {
        Ok(e) => e,
        Err(e) => panic!("recipe error: {e}"),
    };
    println!(
        "recipe expands to {} scenario(s), {} excluded",
        exp.specs.len(),
        exp.excluded.len()
    );
    for (recipe, reason) in &exp.excluded {
        println!("  excluded ({reason}): {recipe}");
    }
    let mut all = Vec::new();
    for spec in exp.specs {
        eprintln!("[repro] generating {}…", spec.label());
        let built = BuiltScenario::from_spec(spec);
        for kind in CompressorKind::PAPER {
            for eb in [1e-3, 1e-2] {
                all.push(experiment::run_compression(&built, kind, eb).expect("suite run"));
            }
        }
    }
    println!("{}", report::format_table2(&all));
    ctx.runs.extend(all.iter().cloned());
    ctx.record("enumerated", &all);
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: repro <experiment> [--scale S] [--seed N] [--out DIR] \
                 [--threads N] [--flame FILE] [--journal FILE] [--metrics-out FILE] \
                 [--metrics-interval SECS] [--trace-sample N]\n\
                 or:    repro --suite enumerated[:RECIPE] [--seed N] [--out DIR] [--threads N]"
            );
            return ExitCode::FAILURE;
        }
    };
    std::fs::create_dir_all(&args.out).ok();
    // Merge into any existing results.json so partial re-runs (e.g.
    // `repro fig9` after `repro all`) keep the other experiments' records.
    let existing = std::fs::read_to_string(args.out.join("results.json"))
        .ok()
        .and_then(|s| Json::parse(&s).ok())
        .filter(|v| matches!(v, Json::Obj(_)))
        .unwrap_or_else(Json::obj);
    let mut ctx = Ctx {
        scale: args.scale,
        seed: args.seed,
        out: args.out.clone(),
        built: BTreeMap::new(),
        json: existing,
        runs: Vec::new(),
        stage_seconds: BTreeMap::new(),
        experiments: Vec::new(),
        decode_fabs: (0, 0, 0),
        flame: args.flame.clone(),
        flame_events: Vec::new(),
    };
    amrviz_obs::enable();
    // Trace ids are derived from the run seed, so the same seed reproduces
    // the same ids (and the same sampling verdicts) at any thread count.
    amrviz_obs::set_trace_seed(args.seed);
    amrviz_obs::set_trace_sampling(args.trace_sample);
    if let Some(jpath) = &args.journal {
        if let Err(e) = amrviz_obs::journal::start(jpath) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(mpath) = &args.metrics_out {
        if let Err(e) = amrviz_obs::expose::writer_start(
            mpath.clone(),
            std::time::Duration::from_secs_f64(args.metrics_interval),
        ) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let exp = args.experiment.as_str();
    let known = [
        "table1", "table2", "fig1", "fig2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
        "ablation", "all",
    ];
    if args.suite.is_none() && !known.contains(&exp) {
        eprintln!("unknown experiment `{exp}`; known: {known:?} (or --suite enumerated)");
        return ExitCode::FAILURE;
    }
    let run = |name: &str| args.suite.is_none() && (exp == name || exp == "all");
    // Each experiment records into a fresh obs recorder so its manifest only
    // covers its own spans and counters. A panicking experiment is recorded
    // as `"status":"failed"` and the batch continues — one broken figure
    // must not cost the rest of an `all` run.
    let instrumented = |ctx: &mut Ctx, name: &str, f: &dyn Fn(&mut Ctx)| {
        amrviz_obs::reset();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(ctx)));
        ctx.finish_experiment(name);
        let mut rec = Json::obj();
        rec.set("name", name);
        match outcome {
            Ok(()) => {
                rec.set("status", "ok");
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".into());
                eprintln!("[repro] experiment {name} FAILED: {msg} — continuing batch");
                rec.set("status", "failed").set("error", msg);
            }
        }
        ctx.experiments.push(rec);
    };
    if run("table1") {
        instrumented(&mut ctx, "table1", &table1);
    }
    if run("table2") {
        instrumented(&mut ctx, "table2", &table2);
    }
    if run("fig1") {
        instrumented(&mut ctx, "fig1", &fig1);
    }
    if run("fig2") {
        instrumented(&mut ctx, "fig2", &fig2);
    }
    if run("fig9") {
        instrumented(&mut ctx, "fig9", &|c| {
            figs_9_10(c, CompressorKind::SzLr, "fig9")
        });
    }
    if run("fig10") {
        instrumented(&mut ctx, "fig10", &|c| {
            figs_9_10(c, CompressorKind::SzInterp, "fig10")
        });
    }
    if run("fig11") {
        instrumented(&mut ctx, "fig11", &fig11);
    }
    if run("fig12") {
        instrumented(&mut ctx, "fig12", &|c| {
            rate_distortion(c, Application::Warpx, "fig12")
        });
    }
    if run("fig13") {
        instrumented(&mut ctx, "fig13", &|c| {
            rate_distortion(c, Application::Nyx, "fig13")
        });
    }
    if run("fig14") {
        instrumented(&mut ctx, "fig14", &fig14);
    }
    if run("ablation") {
        instrumented(&mut ctx, "ablation", &ablation);
    }
    if let Some(recipe_src) = args.suite.clone() {
        instrumented(&mut ctx, "enumerated", &|c| enumerated(c, &recipe_src));
    }

    let json_path: &Path = &ctx.out.join("results.json");
    if std::fs::write(json_path, ctx.json.to_string_pretty()).is_ok() {
        println!("\nresults recorded in {}", json_path.display());
    }

    if let Some(flame_path) = &ctx.flame {
        match amrviz_obs::flame::write_flamegraph_events(flame_path, &ctx.flame_events) {
            Ok(()) => println!("flamegraph written to {}", flame_path.display()),
            Err(e) => eprintln!(
                "[repro] writing flamegraph to {}: {e}",
                flame_path.display()
            ),
        }
    }

    // Tear streaming down before the SUMMARY line so its journal totals
    // are final (the writer threads flush everything on stop).
    if args.metrics_out.is_some() {
        amrviz_obs::expose::writer_stop();
    }
    let journal_stats = args.journal.as_ref().map(|jpath| {
        let stats = amrviz_obs::journal::stop();
        eprintln!(
            "[repro] journal written to {} ({} lines, {} dropped)",
            jpath.display(),
            stats.enqueued,
            stats.dropped
        );
        stats
    });

    // Final machine-readable one-liner: what ran, how well it compressed,
    // and where the wall time went. Also appended to summary.jsonl so
    // successive invocations accumulate a log.
    let runs: Vec<Json> = ctx
        .runs
        .iter()
        .map(|r| {
            let mut o = Json::obj();
            o.set("scenario", r.scenario.as_str())
                .set("recipe", r.recipe.as_str())
                .set("compressor", r.compressor)
                .set("rel_eb", r.rel_error_bound)
                .set("compression_ratio", r.compression_ratio)
                .set("psnr_db", r.psnr_db)
                .set("ssim", r.ssim)
                .set("compress_seconds", r.compress_seconds)
                .set("decompress_seconds", r.decompress_seconds);
            if r.trace_id != 0 {
                o.set("trace", format!("{:016x}", r.trace_id));
            }
            o
        })
        .collect();
    let any_failed = ctx
        .experiments
        .iter()
        .any(|e| e.get("status").and_then(Json::as_str) == Some("failed"));
    let mut decode_fabs = Json::obj();
    decode_fabs
        .set("ok", ctx.decode_fabs.0)
        .set("degraded", ctx.decode_fabs.1)
        .set("failed", ctx.decode_fabs.2);
    let mut summary = Json::obj();
    summary
        .set("experiment", exp)
        .set("scale", format!("{:?}", ctx.scale).to_lowercase())
        .set("seed", ctx.seed)
        .set("git", amrviz_bench::harness::git_describe())
        .set("threads", amrviz_par::threads() as u64)
        .set("experiments", Json::Arr(ctx.experiments.clone()))
        .set("decode_fabs", decode_fabs)
        .set("runs", Json::Arr(runs))
        .set("stage_seconds", ctx.stage_seconds.to_json());
    if let Some(stats) = journal_stats {
        let mut j = Json::obj();
        j.set("enqueued", stats.enqueued)
            .set("dropped", stats.dropped);
        summary.set("journal", j);
    }
    let line = summary.to_string_compact();
    println!("SUMMARY {line}");
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(ctx.out.join("summary.jsonl"))
    {
        let _ = writeln!(f, "{line}");
    }
    if any_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
