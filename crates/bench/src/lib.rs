//! Shared helpers for the benchmark harness.
//!
//! The interesting artifacts are produced by the `repro` binary
//! (`cargo run --release -p amrviz-bench --bin repro -- all`), which prints
//! the paper's tables/series and writes rendered figures. The criterion
//! benches in `benches/` time the computational kernels behind each
//! experiment at a small, fixed scale.

use amrviz_core::prelude::*;

pub mod harness;

/// The error bounds Table 2 sweeps.
pub const TABLE2_EBS: [f64; 3] = [1e-4, 1e-3, 1e-2];

/// The error bounds the rate-distortion figures sweep.
pub const RD_EBS: [f64; 6] = [1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2];

/// Builds the benchmark scenario for an application at a scale (fixed
/// seed so runs are comparable).
pub fn bench_scenario(app: Application, scale: Scale) -> BuiltScenario {
    Scenario::new(app, scale, 42).build()
}

/// The one-dimensional Fig. 14 demonstration: a linear ramp, its blocky
/// reconstruction under a coarse quantizer, and the re-sampled
/// (vertex-averaged + midpoint-interpolated) version that smooths the
/// blocks. Returns `(original, blocky, resampled)`; the resampled series
/// has `n + 1` vertex samples.
pub fn fig14_series(n: usize, eb: f64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    use amrviz_compress::quantizer::{Quantized, Quantizer};
    let original: Vec<f64> = (0..n).map(|i| i as f64).collect();
    // A large absolute bound makes the quantizer's staircase visible — the
    // 1D stand-in for SZ-L/R's block artifacts (the paper's "111//444//777"
    // sketch). Prediction is held at 0 so the raw quantization staircase
    // shows (the real block compressor would predict the ramp exactly).
    let q = Quantizer::new(eb);
    let blocky: Vec<f64> = original
        .iter()
        .map(|&v| match q.quantize(0.0, v) {
            Quantized::Code { recon, .. } => recon,
            Quantized::Outlier => v,
        })
        .collect();
    // Re-sampling: cell → vertex averaging (paper §2.3, 1D version).
    let mut resampled = Vec::with_capacity(n + 1);
    resampled.push(blocky[0]);
    for i in 1..n {
        resampled.push(0.5 * (blocky[i - 1] + blocky[i]));
    }
    resampled.push(blocky[n - 1]);
    (original, blocky, resampled)
}

/// Total variation of a series — the Fig. 14 smoothing effect in one
/// number (lower = smoother).
pub fn step_roughness(series: &[f64]) -> f64 {
    series
        .windows(3)
        .map(|w| (w[2] - 2.0 * w[1] + w[0]).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_resampling_smooths_blocks() {
        let (orig, blocky, resampled) = fig14_series(24, 1.4);
        assert_eq!(orig.len(), 24);
        assert_eq!(resampled.len(), 25);
        // The quantizer staircases the ramp…
        assert!(step_roughness(&blocky) > 2.0 * step_roughness(&orig));
        // …and re-sampling smooths it back down (the paper's Fig. 14 point).
        assert!(
            step_roughness(&resampled) < step_roughness(&blocky),
            "resampled {} !< blocky {}",
            step_roughness(&resampled),
            step_roughness(&blocky)
        );
    }

    #[test]
    fn scenarios_build() {
        let b = bench_scenario(Application::Warpx, Scale::Tiny);
        assert_eq!(b.hierarchy.num_levels(), 2);
    }
}
