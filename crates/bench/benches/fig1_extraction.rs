//! Times the Fig. 1 workload: isosurface extraction of original AMR data
//! with all three methods.

use amrviz_bench::bench_scenario;
use amrviz_core::prelude::*;
use amrviz_viz::extract_amr_isosurface;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_extraction");
    g.sample_size(10);
    let built = bench_scenario(Application::Warpx, Scale::Tiny);
    let levels = built
        .hierarchy
        .field(built.spec.eval_field())
        .unwrap()
        .levels
        .clone();
    for method in IsoMethod::ALL {
        g.bench_function(method.label(), |b| {
            b.iter(|| {
                black_box(extract_amr_isosurface(
                    &built.hierarchy,
                    &levels,
                    built.iso,
                    method,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
