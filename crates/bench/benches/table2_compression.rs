//! Times the Table 2 workload: hierarchy compression and decompression
//! with both paper compressors on both applications.

use amrviz_bench::bench_scenario;
use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field, AmrCodecConfig, ErrorBound,
};
use amrviz_core::experiment::CompressorKind;
use amrviz_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_compression");
    g.sample_size(10);
    for app in Application::ALL {
        let built = bench_scenario(app, Scale::Tiny);
        let field = app.eval_field();
        let bytes = built.hierarchy.total_cells() as u64 * 8;
        g.throughput(Throughput::Bytes(bytes));
        for kind in CompressorKind::PAPER {
            let comp = kind.instance();
            let cfg = AmrCodecConfig::default();
            let tag = kind.label().replace('/', "");
            g.bench_function(format!("compress_{}_{}", app.label(), tag), |b| {
                b.iter(|| {
                    black_box(
                        compress_hierarchy_field(
                            &built.hierarchy,
                            field,
                            comp.as_ref(),
                            ErrorBound::Rel(1e-3),
                            &cfg,
                        )
                        .unwrap(),
                    )
                })
            });
            let compressed = compress_hierarchy_field(
                &built.hierarchy,
                field,
                comp.as_ref(),
                ErrorBound::Rel(1e-3),
                &cfg,
            )
            .unwrap();
            g.bench_function(format!("decompress_{}_{}", app.label(), tag), |b| {
                b.iter(|| {
                    black_box(
                        decompress_hierarchy_field(
                            &built.hierarchy,
                            &compressed,
                            comp.as_ref(),
                            &cfg,
                        )
                        .unwrap(),
                    )
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
