//! Micro-benchmarks of the hot kernels underlying every experiment:
//! predictors, entropy coding, marching, SSIM, surface distance.

use amrviz_codec::{huffman_decode, huffman_encode, lzss_compress, lzss_decompress};
use amrviz_compress::{Compressor, ErrorBound, Field3, SzInterp, SzLr, ZfpLike};
use amrviz_metrics::{ssim3, SsimConfig};
use amrviz_viz::{marching_tetrahedra, surface_distance, SampledGrid};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn smooth_field(n: usize) -> Field3 {
    Field3::from_fn([n, n, n], |i, j, k| {
        (i as f64 * 0.12).sin() * (j as f64 * 0.1).cos() + 0.03 * k as f64
    })
}

fn bench(c: &mut Criterion) {
    let n = 48;
    let field = smooth_field(n);
    let bytes = field.nbytes() as u64;

    let mut g = c.benchmark_group("kernels/compressors");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    let compressors: [(&str, Box<dyn Compressor>); 3] = [
        ("szlr", Box::new(SzLr::default())),
        ("szinterp", Box::new(SzInterp)),
        ("zfp_like", Box::new(ZfpLike)),
    ];
    for (name, comp) in &compressors {
        g.bench_function(format!("compress_{name}_48cube"), |b| {
            b.iter(|| black_box(comp.compress(&field, ErrorBound::Rel(1e-3))))
        });
        let blob = comp.compress(&field, ErrorBound::Rel(1e-3));
        g.bench_function(format!("decompress_{name}_48cube"), |b| {
            b.iter(|| black_box(comp.decompress(&blob).unwrap()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("kernels/codec");
    let symbols: Vec<u32> = (0..200_000u32).map(|i| (i * i) % 50).collect();
    g.throughput(Throughput::Elements(symbols.len() as u64));
    g.bench_function("huffman_encode", |b| {
        b.iter(|| black_box(huffman_encode(&symbols)))
    });
    let enc = huffman_encode(&symbols);
    g.bench_function("huffman_decode", |b| {
        b.iter(|| black_box(huffman_decode(&enc).unwrap()))
    });
    let raw: Vec<u8> = (0..200_000u32).map(|i| ((i / 7) % 251) as u8).collect();
    g.throughput(Throughput::Bytes(raw.len() as u64));
    g.bench_function("lzss_compress", |b| b.iter(|| black_box(lzss_compress(&raw))));
    let lz = lzss_compress(&raw);
    g.bench_function("lzss_decompress", |b| {
        b.iter(|| black_box(lzss_decompress(&lz).unwrap()))
    });
    g.finish();

    let mut g = c.benchmark_group("kernels/viz");
    g.sample_size(10);
    let grid = SampledGrid::from_fn([49, 49, 49], [0.0; 3], [1.0 / 48.0; 3], |x, y, z| {
        0.3 - ((x - 0.5).powi(2) + (y - 0.5).powi(2) + (z - 0.5).powi(2)).sqrt()
    });
    g.bench_function("marching_tetrahedra_sphere_48cube", |b| {
        b.iter(|| black_box(marching_tetrahedra(&grid, 0.0)))
    });
    let mesh = marching_tetrahedra(&grid, 0.0);
    g.bench_function("surface_distance_self", |b| {
        b.iter(|| black_box(surface_distance(&mesh, &mesh)))
    });
    let a = smooth_field(n);
    let noisy = Field3::new(a.dims, a.data.iter().map(|v| v + 1e-3).collect());
    g.bench_function("ssim3_48cube", |b| {
        b.iter(|| black_box(ssim3(&a.data, &noisy.data, a.dims, &SsimConfig::default())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
