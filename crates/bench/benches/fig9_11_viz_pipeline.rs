//! Times the Figs. 9–11 workload: decompress → extract → compare for one
//! (compressor, bound, method) cell of the grid.

use amrviz_bench::bench_scenario;
use amrviz_core::experiment::{run_viz_quality, CompressorKind};
use amrviz_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_11_viz_pipeline");
    g.sample_size(10);
    let warpx = bench_scenario(Application::Warpx, Scale::Tiny);
    g.bench_function("warpx_szlr_1e-2_both_methods", |b| {
        b.iter(|| {
            black_box(run_viz_quality(
                &warpx,
                CompressorKind::SzLr,
                &[1e-2],
                &[IsoMethod::Resampling, IsoMethod::DualCellRedundant],
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
