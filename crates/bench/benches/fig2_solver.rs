//! Times the Fig. 2 workload: AMR advection steps and regridding.

use amrviz_sim::AmrAdvection;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn blob(p: [f64; 3]) -> f64 {
    let r2 = (p[0] - 0.3).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2);
    (-r2 / (2.0 * 0.07f64.powi(2))).exp()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_solver");
    g.sample_size(10);
    g.bench_function("construct_and_initial_regrid_32", |b| {
        b.iter(|| black_box(AmrAdvection::new(32, [1.0, 0.0, 0.0], 0.02, blob)))
    });
    g.bench_function("advance_8_steps_32", |b| {
        b.iter_with_setup(
            || AmrAdvection::new(32, [1.0, 0.0, 0.0], 0.02, blob),
            |mut sim| {
                sim.run(8);
                black_box(sim.hierarchy().total_cells())
            },
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
