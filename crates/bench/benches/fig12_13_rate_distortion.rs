//! Times the Figs. 12–13 workload: one rate-distortion point (compress +
//! decompress + PSNR/SSIM) per compressor per application.

use amrviz_bench::bench_scenario;
use amrviz_core::experiment::{run_compression, CompressorKind};
use amrviz_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_13_rate_distortion");
    g.sample_size(10);
    for (app, fig) in [(Application::Warpx, "fig12"), (Application::Nyx, "fig13")] {
        let built = bench_scenario(app, Scale::Tiny);
        for kind in CompressorKind::PAPER {
            let tag = kind.label().replace('/', "");
            g.bench_function(format!("{fig}_point_{tag}"), |b| {
                b.iter(|| black_box(run_compression(&built, kind, 1e-3)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
