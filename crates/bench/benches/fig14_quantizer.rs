//! Times the Fig. 14 demonstration path (1D compression + re-sampling).

use amrviz_bench::{fig14_series, step_roughness};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_quantizer");
    g.bench_function("series_1024", |b| {
        b.iter(|| {
            let (o, d, r) = fig14_series(1024, 1.4);
            black_box(step_roughness(&o) + step_roughness(&d) + step_roughness(&r))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
