//! Times the Table 1 workload: generating the two AMR scenarios
//! (spectral synthesis + clustering + hierarchy assembly).

use amrviz_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_generation");
    g.sample_size(10);
    g.bench_function("generate_warpx_tiny", |b| {
        b.iter(|| black_box(Scenario::new(Application::Warpx, Scale::Tiny, 42).build()))
    });
    g.bench_function("generate_nyx_tiny", |b| {
        b.iter(|| black_box(Scenario::new(Application::Nyx, Scale::Tiny, 42).build()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
