//! `amrviz-par` — a deterministic fork–join worker pool on plain `std`.
//!
//! The compress→viz pipeline is embarrassingly parallel across AMR boxes,
//! levels, slabs, and SSIM windows, but the ROADMAP demands *bit-identical*
//! output at any thread count: compressed byte streams, meshes, and metrics
//! must not depend on scheduling. The pool guarantees that by construction:
//!
//! * **Index-ordered merge** — [`run`] evaluates a pure-per-index closure
//!   with dynamic (work-stealing-style) scheduling, but results are always
//!   collected into their index slot, so the output `Vec` is the same as a
//!   serial loop's.
//! * **No scheduling-ordered float reductions** — reductions go through
//!   [`run`] on *fixed* chunk boundaries and are combined sequentially in
//!   chunk order (see `amrviz-metrics`), never via first-come-first-served
//!   atomics, so `a + (b + c)` groupings cannot vary between runs.
//! * **Bounded nesting** — a task that itself calls into the pool runs its
//!   inner region serially; thread count stays `threads()` regardless of
//!   call depth, and nested regions stay deterministic trivially.
//! * **Per-thread scratch** — the [`scratch`] module pools reusable working
//!   buffers per thread for the zero-copy hot path; see its docs for why
//!   pooling cannot perturb bit-identical outputs.
//!
//! Thread count resolution (first match wins): [`set_threads`] (the CLI's
//! `--threads N`), the `AMRVIZ_THREADS` environment variable, then
//! `std::thread::available_parallelism()`. `threads() == 1` runs everything
//! inline on the caller with zero synchronization.
//!
//! Workers re-enter the submitting thread's full `amrviz-obs` trace
//! context (open span *and* trace id, via `current_context` /
//! `context_scope`), so spans created inside tasks nest correctly and the
//! whole fan-out stitches into one causal tree per root; each worker's
//! busy wall time is accumulated for the `--timing` utilization report
//! ([`utilization`]).

pub mod scratch;

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard cap, matching the utilization table size.
pub const MAX_THREADS: usize = 256;

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while a worker executes pool tasks; nested regions run serially.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Forces the pool width (the `--threads N` flag). Clamped to
/// `1..=MAX_THREADS`; takes precedence over `AMRVIZ_THREADS`.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Resolved pool width: override → `AMRVIZ_THREADS` → available parallelism.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    static FROM_ENV: OnceLock<usize> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        std::env::var("AMRVIZ_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .map(|n| n.min(MAX_THREADS))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get().min(MAX_THREADS))
                    .unwrap_or(1)
            })
    })
}

// ---------------------------------------------------------------------------
// Utilization accounting
// ---------------------------------------------------------------------------

struct Utilization {
    /// Busy seconds per worker slot (slot 0 is the submitting thread).
    busy: Vec<f64>,
    /// Wall seconds spent inside parallel regions (outermost only).
    region_wall: f64,
    /// Number of outermost parallel regions entered.
    regions: u64,
}

fn util() -> &'static Mutex<Utilization> {
    static U: OnceLock<Mutex<Utilization>> = OnceLock::new();
    U.get_or_init(|| {
        Mutex::new(Utilization {
            busy: Vec::new(),
            region_wall: 0.0,
            regions: 0,
        })
    })
}

fn lock_util() -> std::sync::MutexGuard<'static, Utilization> {
    util().lock().unwrap_or_else(|e| e.into_inner())
}

fn record_region(busy_per_slot: &[f64], wall: f64) {
    let mut u = lock_util();
    if u.busy.len() < busy_per_slot.len() {
        u.busy.resize(busy_per_slot.len(), 0.0);
    }
    for (slot, &b) in busy_per_slot.iter().enumerate() {
        u.busy[slot] += b;
    }
    u.region_wall += wall;
    u.regions += 1;
}

/// Per-worker utilization snapshot.
#[derive(Debug, Clone, Default)]
pub struct UtilizationReport {
    /// Busy seconds per worker slot (slot 0 = submitting thread).
    pub busy_seconds: Vec<f64>,
    /// Wall seconds spent inside outermost parallel regions.
    pub region_wall_seconds: f64,
    /// Outermost parallel regions entered since the last reset.
    pub regions: u64,
}

impl UtilizationReport {
    /// Pool efficiency in `[0, 1]`: mean busy fraction across slots while
    /// inside parallel regions. 1.0 means every worker was busy the whole
    /// time; `None` before any region ran.
    pub fn efficiency(&self) -> Option<f64> {
        if self.region_wall_seconds <= 0.0 || self.busy_seconds.is_empty() {
            return None;
        }
        let total_busy: f64 = self.busy_seconds.iter().sum();
        Some(
            (total_busy / (self.region_wall_seconds * self.busy_seconds.len() as f64))
                .clamp(0.0, 1.0),
        )
    }

    /// One-line rendering for the `--timing` summary.
    pub fn to_text(&self) -> String {
        if self.regions == 0 {
            return "pool: no parallel regions recorded\n".to_string();
        }
        let mut s = format!(
            "pool: {} region(s), {:.3}s inside regions, {} worker slot(s)\n",
            self.regions,
            self.region_wall_seconds,
            self.busy_seconds.len()
        );
        for (slot, b) in self.busy_seconds.iter().enumerate() {
            let pct = if self.region_wall_seconds > 0.0 {
                100.0 * b / self.region_wall_seconds
            } else {
                0.0
            };
            s.push_str(&format!("  worker {slot}: busy {b:.3}s ({pct:.0}%)\n"));
        }
        s
    }
}

/// Snapshot of the accumulated per-worker busy time.
pub fn utilization() -> UtilizationReport {
    let u = lock_util();
    UtilizationReport {
        busy_seconds: u.busy.clone(),
        region_wall_seconds: u.region_wall,
        regions: u.regions,
    }
}

/// Clears the utilization accumulators.
pub fn reset_utilization() {
    let mut u = lock_util();
    u.busy.clear();
    u.region_wall = 0.0;
    u.regions = 0;
}

// ---------------------------------------------------------------------------
// Fork–join primitives
// ---------------------------------------------------------------------------

/// Evaluates `f(0), f(1), …, f(n-1)` across the pool and returns the results
/// **in index order** — bit-identical to the serial loop at any thread
/// count. `f` must be pure per index (it may accumulate into `amrviz-obs`
/// counters, which are order-independent sums).
///
/// Scheduling is dynamic (an atomic cursor), so unevenly-sized tasks (e.g.
/// AMR boxes of different volumes) balance automatically; determinism comes
/// from merging by index, not from the schedule.
pub fn run<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let width = threads().min(n.max(1));
    if width <= 1 || IN_POOL.with(Cell::get) {
        return (0..n).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let ctx = amrviz_obs::current_context();
    let t_region = Instant::now();
    let mut busy = vec![0.0f64; width];

    let worker = |slot: usize| -> (usize, f64, Vec<(usize, T)>) {
        let _scope = amrviz_obs::context_scope(ctx);
        IN_POOL.with(|c| c.set(true));
        let t0 = Instant::now();
        let mut local = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            local.push((i, f(i)));
        }
        let secs = t0.elapsed().as_secs_f64();
        IN_POOL.with(|c| c.set(false));
        (slot, secs, local)
    };

    let mut parts: Vec<Vec<(usize, T)>> = Vec::with_capacity(width);
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..width)
            .map(|slot| s.spawn(move || worker(slot)))
            .collect();
        // The submitting thread is worker slot 0.
        let (slot0, secs0, local0) = worker(0);
        busy[slot0] = secs0;
        parts.push(local0);
        for h in handles {
            let (slot, secs, local) = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            busy[slot] = secs;
            parts.push(local);
        }
    });
    record_region(&busy, t_region.elapsed().as_secs_f64());

    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, v) in part {
            debug_assert!(out[i].is_none(), "index {i} produced twice");
            out[i] = Some(v);
        }
    }
    out.into_iter()
        .map(|o| o.expect("every index produced exactly once"))
        .collect()
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the last
/// may be shorter) and calls `f(chunk_index, chunk)` for each across the
/// pool. The decomposition depends only on `chunk_len`, never on the thread
/// count, so any output written through the chunks is deterministic.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len.max(1)).max(1);
    let width = threads().min(n_chunks);
    if data.is_empty() {
        return;
    }
    if width <= 1 || IN_POOL.with(Cell::get) {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, chunk);
        }
        return;
    }

    // Round-robin chunks over worker slots: static, deterministic, and
    // contiguous slabs stay cache-friendly within a worker.
    let mut buckets: Vec<Vec<(usize, &mut [T])>> = (0..width).map(|_| Vec::new()).collect();
    for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
        buckets[ci % width].push((ci, chunk));
    }

    let ctx = amrviz_obs::current_context();
    let t_region = Instant::now();
    let mut busy = vec![0.0f64; width];

    let worker = |bucket: Vec<(usize, &mut [T])>| -> f64 {
        let _scope = amrviz_obs::context_scope(ctx);
        IN_POOL.with(|c| c.set(true));
        let t0 = Instant::now();
        for (ci, chunk) in bucket {
            f(ci, chunk);
        }
        let secs = t0.elapsed().as_secs_f64();
        IN_POOL.with(|c| c.set(false));
        secs
    };

    let mut iter = buckets.into_iter();
    let bucket0 = iter.next().expect("width >= 1");
    std::thread::scope(|s| {
        let handles: Vec<_> = iter.map(|b| s.spawn(|| worker(b))).collect();
        busy[0] = worker(bucket0);
        for (slot, h) in handles.into_iter().enumerate() {
            busy[slot + 1] = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
        }
    });
    record_region(&busy, t_region.elapsed().as_secs_f64());
}

/// Deterministic parallel reduction: maps fixed `chunk_len`-sized index
/// ranges of `0..n` through `f(range)` with [`run`], then folds the partial
/// results **in chunk order** with `combine`. The grouping is a function of
/// `chunk_len` alone, so float accumulation is bit-stable at any thread
/// count.
pub fn reduce_chunked<A, F, C>(n: usize, chunk_len: usize, identity: A, f: F, combine: C) -> A
where
    A: Send,
    F: Fn(std::ops::Range<usize>) -> A + Sync,
    C: Fn(A, A) -> A,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if n == 0 {
        return identity;
    }
    let n_chunks = n.div_ceil(chunk_len);
    let parts = run(n_chunks, |ci| {
        let lo = ci * chunk_len;
        f(lo..(lo + chunk_len).min(n))
    });
    parts.into_iter().fold(identity, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the global thread override.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn run_preserves_index_order() {
        let _g = guard();
        for nt in [1, 2, 8] {
            set_threads(nt);
            let out = run(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "nt={nt}");
        }
        set_threads(1);
    }

    #[test]
    fn run_handles_empty_and_single() {
        let _g = guard();
        set_threads(4);
        assert!(run(0, |i| i).is_empty());
        assert_eq!(run(1, |i| i + 7), vec![7]);
        set_threads(1);
    }

    #[test]
    fn chunked_mutation_is_thread_count_invariant() {
        let _g = guard();
        let reference: Vec<usize> = {
            set_threads(1);
            let mut v = vec![0usize; 103];
            for_each_chunk_mut(&mut v, 10, |ci, chunk| {
                for (off, x) in chunk.iter_mut().enumerate() {
                    *x = ci * 1000 + off;
                }
            });
            v
        };
        for nt in [2, 3, 8] {
            set_threads(nt);
            let mut v = vec![0usize; 103];
            for_each_chunk_mut(&mut v, 10, |ci, chunk| {
                for (off, x) in chunk.iter_mut().enumerate() {
                    *x = ci * 1000 + off;
                }
            });
            assert_eq!(v, reference, "nt={nt}");
        }
        set_threads(1);
    }

    #[test]
    fn reduce_chunked_is_bit_stable_for_floats() {
        let _g = guard();
        // A sum whose grouping matters in f64: many tiny values plus a few
        // huge ones. The chunked reduction must give the same bits at any
        // thread count.
        let values: Vec<f64> = (0..10_000)
            .map(|i| {
                if i % 997 == 0 {
                    1e18
                } else {
                    1e-3 + i as f64 * 1e-9
                }
            })
            .collect();
        let sum_at = |nt: usize| -> u64 {
            set_threads(nt);
            reduce_chunked(
                values.len(),
                256,
                0.0f64,
                |r| r.map(|i| values[i]).sum::<f64>(),
                |a, b| a + b,
            )
            .to_bits()
        };
        let s1 = sum_at(1);
        assert_eq!(s1, sum_at(2));
        assert_eq!(s1, sum_at(8));
        set_threads(1);
    }

    #[test]
    fn nested_regions_run_serially_and_correctly() {
        let _g = guard();
        set_threads(4);
        let out = run(8, |i| {
            // Inner region must not deadlock or oversubscribe.
            let inner = run(5, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let want: Vec<usize> = (0..8).map(|i| (0..5).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, want);
        set_threads(1);
    }

    #[test]
    fn worker_panic_propagates() {
        let _g = guard();
        set_threads(2);
        let caught = std::panic::catch_unwind(|| {
            run(16, |i| {
                if i == 7 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
        set_threads(1);
    }

    #[test]
    fn utilization_accumulates() {
        let _g = guard();
        set_threads(2);
        reset_utilization();
        let _ = run(64, |i| {
            // Do a little real work so busy time is nonzero.
            (0..200).fold(i as u64, |a, b| a.wrapping_mul(31).wrapping_add(b))
        });
        let u = utilization();
        assert_eq!(u.regions, 1);
        assert!(u.region_wall_seconds >= 0.0);
        assert!(!u.busy_seconds.is_empty());
        assert!(u.to_text().contains("worker 0"));
        set_threads(1);
    }

    #[test]
    fn threads_resolution_override_wins() {
        let _g = guard();
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(1);
        assert_eq!(threads(), 1);
    }
}
