//! Per-thread scratch buffer pools for the zero-copy hot path.
//!
//! The compress→viz pipeline runs thousands of per-box tasks, each of which
//! used to allocate (and immediately drop) the same handful of working
//! buffers: reconstruction volumes, quantization codes, entropy-coder
//! intermediates, hash chains. The pool here lets a task *rent* those
//! buffers instead: [`take_f64`]/[`give_f64`] (and the `u32`/`u8`/`usize`
//! siblings) pop and push capacity-retaining `Vec`s on a thread-local
//! free list, so steady-state per-box work touches the allocator only while
//! a buffer still needs to grow.
//!
//! # Determinism
//!
//! Pooling cannot change any output byte, by construction:
//!
//! * every `take_*` returns a **cleared** vector (`len == 0`; only the
//!   capacity is recycled), so no stale element is ever observable;
//! * the pools are `thread_local!`, so there is no cross-thread state, no
//!   locking, and no scheduling-dependent behavior — a worker's rentals are
//!   invisible to every other worker;
//! * [`run`](crate::run) spawns fresh scoped workers per parallel region,
//!   so worker-thread pools live exactly as long as one region (rentals are
//!   reused across the many tasks *within* a region — the hot per-box
//!   loops), while the submitting thread's pool persists across regions.
//!
//! `mem-profile` span watermarks keep working unchanged: rentals are real
//! allocations the first time a buffer grows, and simply stop showing up
//! once the pool reaches steady state — which is exactly the signal the
//! `mem_peak_bytes` metric is supposed to report.
//!
//! # Discipline
//!
//! Give back what you take (ideally in LIFO order, though any order works).
//! Forgetting to `give_*` is safe — the buffer is simply dropped and the
//! pool refills on the next take — so early-return/`?` paths need no guard
//! objects. A panic between take and give likewise only loses capacity.

use std::cell::RefCell;

/// Per-type cap on pooled buffers; anything beyond this is dropped on
/// `give_*`. Deep enough for the worst nesting on the hot path (a
/// compressor renting several buffers while the codec layer rents its own),
/// shallow enough that an idle thread never retains more than a handful of
/// high-water-mark buffers.
const MAX_POOLED: usize = 16;

#[derive(Default)]
struct Pools {
    f64s: Vec<Vec<f64>>,
    u32s: Vec<Vec<u32>>,
    bytes: Vec<Vec<u8>>,
    usizes: Vec<Vec<usize>>,
}

thread_local! {
    static POOLS: RefCell<Pools> = RefCell::new(Pools::default());
}

macro_rules! pool_fns {
    ($take:ident, $give:ident, $field:ident, $ty:ty, $what:literal) => {
        #[doc = concat!("Rents a cleared `Vec<", $what, ">` from this thread's pool.")]
        ///
        /// The vector is empty; only capacity is recycled. Return it with
        /// the matching `give_*` when done so the next task can reuse it.
        pub fn $take() -> Vec<$ty> {
            POOLS
                .with(|p| p.borrow_mut().$field.pop())
                .unwrap_or_default()
        }

        #[doc = concat!("Returns a `Vec<", $what, ">` to this thread's pool.")]
        ///
        /// The contents are cleared here (capacity kept), so a pooled buffer
        /// can never leak values into a later task.
        pub fn $give(mut v: Vec<$ty>) {
            v.clear();
            POOLS.with(|p| {
                let mut pools = p.borrow_mut();
                if pools.$field.len() < MAX_POOLED {
                    pools.$field.push(v);
                }
            });
        }
    };
}

pool_fns!(take_f64, give_f64, f64s, f64, "f64");
pool_fns!(take_u32, give_u32, u32s, u32, "u32");
pool_fns!(take_bytes, give_bytes, bytes, u8, "u8");
pool_fns!(take_usize, give_usize, usizes, usize, "usize");

/// Number of buffers currently pooled on this thread, per type
/// `(f64, u32, u8, usize)`. Test/diagnostic hook.
pub fn pooled_counts() -> (usize, usize, usize, usize) {
    POOLS.with(|p| {
        let pools = p.borrow();
        (
            pools.f64s.len(),
            pools.u32s.len(),
            pools.bytes.len(),
            pools.usizes.len(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_cleared_buffer_with_recycled_capacity() {
        let mut v = take_f64();
        v.extend_from_slice(&[1.0, 2.0, 3.0]);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        give_f64(v);
        let v2 = take_f64();
        assert!(v2.is_empty(), "rented buffer must be cleared");
        assert_eq!(v2.capacity(), cap);
        assert_eq!(
            v2.as_ptr(),
            ptr,
            "capacity should be recycled, not reallocated"
        );
        give_f64(v2);
    }

    #[test]
    fn pool_depth_is_capped() {
        // Drain whatever earlier tests left behind.
        let mut drained = Vec::new();
        loop {
            let (n, _, _, _) = pooled_counts();
            if n == 0 {
                break;
            }
            drained.push(take_f64());
            drop(drained.pop());
            if pooled_counts().0 == 0 {
                break;
            }
        }
        while pooled_counts().0 > 0 {
            let _ = take_f64();
        }
        for _ in 0..(MAX_POOLED + 10) {
            give_f64(Vec::with_capacity(8));
        }
        assert_eq!(pooled_counts().0, MAX_POOLED);
    }

    #[test]
    fn all_types_roundtrip() {
        give_u32(vec![1, 2]);
        give_bytes(vec![3, 4]);
        give_usize(vec![5, 6]);
        assert!(take_u32().is_empty());
        assert!(take_bytes().is_empty());
        assert!(take_usize().is_empty());
    }

    #[test]
    fn pools_are_thread_local() {
        give_f64(Vec::with_capacity(1024));
        let before = pooled_counts().0;
        std::thread::spawn(|| {
            // A fresh thread sees an empty pool.
            let v = take_f64();
            assert_eq!(v.capacity(), 0);
        })
        .join()
        .unwrap();
        assert_eq!(
            pooled_counts().0,
            before,
            "other threads cannot drain this pool"
        );
    }
}
