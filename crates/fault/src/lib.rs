//! Deterministic fault injection for the compression → visualization
//! pipeline.
//!
//! Decoders in this workspace promise: **any** byte stream either decodes
//! or returns an `Err` — no panics, no unbounded allocation, under a
//! [`amrviz_codec::DecodeBudget`]. This crate is the enforcement arm of
//! that promise:
//!
//! * [`Mutation`] / [`mutate_stream`] — seeded corruption of byte streams
//!   (bit flips, truncation, byte swaps, section duplication, varint
//!   length inflation), reproducible from a single `u64` seed;
//! * [`CountingAlloc`] — a system-allocator wrapper counting live/peak
//!   bytes so a run can assert bounded memory;
//! * [`run_torture`] — feeds mutated streams to every public decoder
//!   (varint, bitio, huffman, RLE, LZSS, the three field compressors,
//!   zMesh, the hierarchy container, and degraded-mode hierarchy decode)
//!   and tallies outcomes. Exposed to users as `amrviz torture`.
//!
//! Everything here is `std`-only and deterministic: the same
//! (seed, iters) pair replays the exact same corruption sequence, so a
//! violation found in CI reproduces locally byte-for-byte.

pub mod alloc;
pub mod mutate;
pub mod torture;

pub use alloc::{
    alloc_baseline, counting_alloc_installed, current_bytes, peak_since, CountingAlloc,
};
pub use mutate::{mutate_stream, Mutation};
pub use torture::{run_torture, TargetTally, TortureConfig, TortureReport};
