//! The torture runner: feed deterministically corrupted streams to every
//! public decoder and assert the robustness contract — `Err`, never a
//! panic, never an allocation blow-up.
//!
//! Each iteration forks a child RNG from `(seed, iteration)`, picks a
//! decode target, corrupts that target's known-good corpus stream with
//! 1–3 [`Mutation`]s, and decodes under [`DecodeBudget::strict`] inside
//! `catch_unwind`. Peak allocation above the pre-decode baseline is
//! checked against a cap when [`CountingAlloc`](crate::CountingAlloc) is
//! installed as the global allocator (the `amrviz torture` subcommand
//! installs it; plain `cargo test` does not, and the memory assertion is
//! skipped there rather than reporting fake peaks).

use std::panic::{catch_unwind, AssertUnwindSafe};

use amrviz_amr::{AmrHierarchy, Box3, BoxArray, Geometry, IntVect, MultiFab};
use amrviz_codec::{
    huffman_decode_budgeted, huffman_encode, lzss_compress, lzss_decompress_budgeted, read_uvarint,
    rle_decode_zeros_budgeted, rle_encode_zeros, write_uvarint, BitReader, BitWriter, DecodeBudget,
};
use amrviz_compress::{
    compress_hierarchy_field, compress_zmesh, decompress_hierarchy_field_into,
    decompress_hierarchy_field_policy, zmesh::decompress_zmesh_budgeted, AmrCodecConfig,
    CompressedHierarchyField, Compressor, DecodePolicy, ErrorBound, Field3, SzInterp, SzLr,
    ZfpLike,
};
use amrviz_recipe::ScenarioSpec;
use amrviz_rng::Rng;

use crate::alloc::{alloc_baseline, counting_alloc_installed, peak_since};
use crate::mutate::{mutate_stream, Mutation};

/// Torture-run parameters.
#[derive(Debug, Clone, Copy)]
pub struct TortureConfig {
    /// Master seed; every iteration's RNG is forked from it.
    pub seed: u64,
    /// Number of (target, mutation) iterations.
    pub iters: u32,
    /// Peak-allocation cap per decode, in bytes (checked only when the
    /// counting allocator is installed).
    pub max_peak_bytes: usize,
    /// Number of recipe-sampled hierarchy targets appended to the corpus
    /// (0 = paper corpus only). Each is a scenario drawn from the recipe
    /// space ([`ScenarioSpec::sample`]) whose compressed container is
    /// corrupted like any other target; violations print the reproducing
    /// recipe string.
    pub recipes: u32,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            seed: 7,
            iters: 500,
            max_peak_bytes: 128 << 20,
            recipes: 0,
        }
    }
}

/// A typed decode failure: the codec-taxonomy class (`corrupt` /
/// `truncated` / `budget`) plus the rendered message. The torture loop
/// matches on the class so the report shows *which kind* of graceful error
/// each target produced — the same split serve uses for retryable-vs-fatal.
pub struct DecodeFailure {
    /// Stable class name from [`amrviz_codec::CodecError::class`].
    pub class: &'static str,
    /// Human-readable message (kept for violation triage only).
    pub msg: String,
}

/// Errors that carry a taxonomy class.
trait ClassifiedError: std::fmt::Display {
    fn class(&self) -> &'static str;
}

impl ClassifiedError for amrviz_codec::CodecError {
    fn class(&self) -> &'static str {
        amrviz_codec::CodecError::class(self)
    }
}

impl ClassifiedError for amrviz_compress::CompressError {
    fn class(&self) -> &'static str {
        amrviz_compress::CompressError::class(self)
    }
}

fn fail<E: ClassifiedError>(e: E) -> DecodeFailure {
    DecodeFailure {
        class: e.class(),
        msg: e.to_string(),
    }
}

type DecodeFn = Box<dyn Fn(&[u8], &DecodeBudget) -> Result<(), DecodeFailure> + Sync>;

/// A named decoder plus a known-good stream to corrupt.
struct Target {
    name: String,
    /// Reproducing recipe string for recipe-sampled targets (empty for
    /// the fixed corpus); appended to violation reports.
    repro: String,
    stream: Vec<u8>,
    decode: DecodeFn,
}

impl Target {
    fn fixed(name: &str, stream: Vec<u8>, decode: DecodeFn) -> Target {
        Target {
            name: name.to_string(),
            repro: String::new(),
            stream,
            decode,
        }
    }
}

/// Per-target tallies.
#[derive(Debug, Clone, Default)]
pub struct TargetTally {
    /// Target name.
    pub name: String,
    /// Iterations that hit this target.
    pub runs: u64,
    /// Decodes that returned `Err` (the expected outcome).
    pub errors: u64,
    /// `Err` outcomes classified [`CodecError::Corrupt`]-like.
    ///
    /// [`CodecError::Corrupt`]: amrviz_codec::CodecError::Corrupt
    pub errors_corrupt: u64,
    /// `Err` outcomes classified truncation.
    pub errors_truncated: u64,
    /// `Err` outcomes where a [`DecodeBudget`] cap (size or deadline)
    /// tripped.
    pub errors_budget: u64,
    /// Decodes that returned `Ok` (mutation landed somewhere harmless).
    pub oks: u64,
    /// Decodes that panicked — contract violations.
    pub panics: u64,
    /// Decodes whose peak allocation broke the cap — contract violations.
    pub over_budget: u64,
}

/// Aggregate result of a torture run.
#[derive(Debug, Clone)]
pub struct TortureReport {
    /// Config echo.
    pub seed: u64,
    /// Config echo.
    pub iters: u32,
    /// Config echo: recipe-sampled targets appended to the corpus.
    pub recipes: u32,
    /// Total graceful `Err` outcomes.
    pub graceful_errors: u64,
    /// Total harmless `Ok` outcomes.
    pub harmless_ok: u64,
    /// Total panics (must be 0).
    pub panics: u64,
    /// Total peak-allocation violations (must be 0).
    pub over_budget: u64,
    /// Whether peak allocation was actually measured.
    pub mem_checked: bool,
    /// Per-target breakdown.
    pub per_target: Vec<TargetTally>,
    /// Up to 8 descriptions of contract violations, for triage.
    pub violations: Vec<String>,
}

impl TortureReport {
    /// The robustness contract: no panics, no allocation blow-ups.
    pub fn passed(&self) -> bool {
        self.panics == 0 && self.over_budget == 0
    }

    /// Single-line machine-readable JSON summary.
    pub fn to_json(&self) -> String {
        let mut targets = String::new();
        for (i, t) in self.per_target.iter().enumerate() {
            if i > 0 {
                targets.push(',');
            }
            targets.push_str(&format!(
                "{{\"name\":\"{}\",\"runs\":{},\"errors\":{},\"corrupt\":{},\"truncated\":{},\"budget\":{},\"oks\":{},\"panics\":{},\"over_budget\":{}}}",
                t.name,
                t.runs,
                t.errors,
                t.errors_corrupt,
                t.errors_truncated,
                t.errors_budget,
                t.oks,
                t.panics,
                t.over_budget
            ));
        }
        format!(
            "{{\"seed\":{},\"iters\":{},\"recipes\":{},\"graceful_errors\":{},\"harmless_ok\":{},\"panics\":{},\"over_budget\":{},\"mem_checked\":{},\"passed\":{},\"targets\":[{}]}}",
            self.seed,
            self.iters,
            self.recipes,
            self.graceful_errors,
            self.harmless_ok,
            self.panics,
            self.over_budget,
            self.mem_checked,
            self.passed(),
            targets
        )
    }
}

/// Small two-level hierarchy used to build compressed corpus streams.
fn corpus_hierarchy() -> AmrHierarchy {
    let geom = Geometry::new(Box3::from_dims(8, 8, 8), [0.0; 3], [1.0; 3]);
    let mut h = AmrHierarchy::new(
        geom,
        vec![2],
        vec![
            BoxArray::single(geom.domain),
            BoxArray::new(vec![
                Box3::new(IntVect::new(0, 0, 0), IntVect::new(7, 7, 7)),
                Box3::new(IntVect::new(8, 8, 8), IntVect::new(15, 15, 15)),
            ]),
        ],
    )
    .expect("corpus hierarchy is valid");
    h.add_field_from_fn("density", |lev, iv| {
        (iv[0] as f64 * 0.3).sin()
            + (iv[1] as f64 * 0.2).cos()
            + 0.1 * lev as f64
            + 0.01 * iv[2] as f64
    })
    .expect("field fits hierarchy");
    h
}

fn corpus_field() -> Field3 {
    Field3::from_fn([12, 10, 8], |i, j, k| {
        (i as f64 * 0.4).sin() * (j as f64 * 0.3).cos() + 0.05 * k as f64
    })
}

fn compressor_target<C: Compressor + 'static>(name: &'static str, c: C) -> Target {
    let stream = c.compress(&corpus_field(), ErrorBound::Rel(1e-3));
    Target::fixed(
        name,
        stream,
        Box::new(move |bytes, budget| {
            c.decompress_budgeted(bytes, budget)
                .map(|_| ())
                .map_err(fail)
        }),
    )
}

/// Like [`compressor_target`] but via `decompress_into`, reusing one dirty
/// output buffer across iterations — the zero-copy path must uphold the
/// same no-panic contract regardless of what a previous decode left behind.
fn compressor_into_target<C: Compressor + 'static>(name: &'static str, c: C) -> Target {
    let stream = c.compress(&corpus_field(), ErrorBound::Rel(1e-3));
    let reused: std::sync::Mutex<Vec<f64>> = std::sync::Mutex::new(Vec::new());
    Target::fixed(
        name,
        stream,
        Box::new(move |bytes, budget| {
            let mut out = reused.lock().unwrap_or_else(|p| p.into_inner());
            c.decompress_into(bytes, budget, &mut out)
                .map(|_| ())
                .map_err(fail)
        }),
    )
}

/// Builds the full decoder corpus: every public decode entry point, each
/// with a valid stream produced by its own encoder.
fn build_targets() -> Vec<Target> {
    let mut targets = Vec::new();

    // --- codec layer ---
    let mut varint_stream = Vec::new();
    for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
        write_uvarint(&mut varint_stream, v);
    }
    targets.push(Target::fixed(
        "varint",
        varint_stream,
        Box::new(|bytes, _| {
            let mut pos = 0;
            while pos < bytes.len() {
                read_uvarint(bytes, &mut pos).map_err(fail)?;
            }
            Ok(())
        }),
    ));

    let mut bw = BitWriter::new();
    for i in 0..200u64 {
        bw.write_bits(i, 1 + (i % 13) as u32);
    }
    targets.push(Target::fixed(
        "bitio",
        bw.finish(),
        Box::new(|bytes, _| {
            let mut r = BitReader::new(bytes);
            loop {
                if r.read_bits(7).is_err() {
                    return Ok(()); // clean EOF is the only exit
                }
            }
        }),
    ));

    let symbols: Vec<u32> = (0..2000u32).map(|i| (i * i) % 37).collect();
    targets.push(Target::fixed(
        "huffman",
        huffman_encode(&symbols),
        Box::new(|bytes, budget| {
            huffman_decode_budgeted(bytes, budget)
                .map(|_| ())
                .map_err(fail)
        }),
    ));

    let mut rle_input = vec![0u32; 500];
    for i in (0..500).step_by(17) {
        rle_input[i] = i as u32;
    }
    targets.push(Target::fixed(
        "rle",
        rle_encode_zeros(&rle_input),
        Box::new(|bytes, budget| {
            rle_decode_zeros_budgeted(bytes, budget)
                .map(|_| ())
                .map_err(fail)
        }),
    ));

    let text: Vec<u8> = (0..3000).map(|i| ((i * 7) % 251) as u8).collect();
    targets.push(Target::fixed(
        "lzss",
        lzss_compress(&text),
        Box::new(|bytes, budget| {
            lzss_decompress_budgeted(bytes, budget)
                .map(|_| ())
                .map_err(fail)
        }),
    ));

    // --- compressor layer ---
    targets.push(compressor_target("szlr", SzLr::default()));
    targets.push(compressor_target("szinterp", SzInterp));
    targets.push(compressor_target("zfp_like", ZfpLike));
    targets.push(compressor_into_target("szlr_into", SzLr::default()));
    targets.push(compressor_into_target("szinterp_into", SzInterp));
    targets.push(compressor_into_target("zfp_like_into", ZfpLike));

    // --- hierarchy layer ---
    let hier = corpus_hierarchy();
    let zmesh_stream =
        compress_zmesh(&hier, "density", ErrorBound::Rel(1e-3)).expect("zmesh corpus compresses");
    {
        let hier = corpus_hierarchy();
        targets.push(Target::fixed(
            "zmesh",
            zmesh_stream,
            Box::new(move |bytes, budget| {
                decompress_zmesh_budgeted(&hier, bytes, budget)
                    .map(|_| ())
                    .map_err(fail)
            }),
        ));
    }

    let cfg = AmrCodecConfig {
        skip_redundant: true,
        restore_redundant: true,
    };
    let compressed = compress_hierarchy_field(
        &hier,
        "density",
        &SzLr::default(),
        ErrorBound::Rel(1e-3),
        &cfg,
    )
    .expect("corpus hierarchy compresses");
    let container = compressed.to_bytes();

    targets.push(Target::fixed(
        "container_from_bytes",
        container.clone(),
        Box::new(|bytes, budget| {
            CompressedHierarchyField::from_bytes_budgeted(bytes, budget)
                .map(|_| ())
                .map_err(fail)
        }),
    ));

    targets.push(Target::fixed(
        "hierarchy_degrade",
        container.clone(),
        Box::new({
            let hier = hier.clone();
            move |bytes, budget| {
                let parsed =
                    CompressedHierarchyField::from_bytes_budgeted(bytes, budget).map_err(fail)?;
                decompress_hierarchy_field_policy(
                    &hier,
                    &parsed,
                    &SzLr::default(),
                    &cfg,
                    DecodePolicy::Degrade,
                    budget,
                )
                .map(|_| ())
                .map_err(fail)
            }
        }),
    ));

    // The storage-reusing decode path: one `levels` buffer survives across
    // iterations, so every corrupted stream lands on fabs dirtied (or left
    // partially decoded) by the previous one.
    let reused_levels: std::sync::Mutex<Vec<MultiFab>> = std::sync::Mutex::new(Vec::new());
    targets.push(Target::fixed(
        "hierarchy_degrade_into",
        container,
        Box::new(move |bytes, budget| {
            let parsed =
                CompressedHierarchyField::from_bytes_budgeted(bytes, budget).map_err(fail)?;
            let mut levels = reused_levels.lock().unwrap_or_else(|p| p.into_inner());
            decompress_hierarchy_field_into(
                &hier,
                &parsed,
                &SzLr::default(),
                &cfg,
                DecodePolicy::Degrade,
                budget,
                &mut levels,
            )
            .map(|_| ())
            .map_err(fail)
        }),
    ));

    targets
}

/// Builds `count` recipe-sampled hierarchy targets: each draws a
/// [`ScenarioSpec`] from the recipe space, compresses its evaluation
/// field (skip+restore config — the structurally hardest decode path),
/// and corrupts the container bytes under the `Degrade` policy. The
/// spec's canonical recipe string rides along so any violation names the
/// exact scenario to regenerate.
fn recipe_targets(seed: u64, count: u32) -> Vec<Target> {
    let mut rng = Rng::seed(seed).fork(0x7EC1FE5);
    let cfg = AmrCodecConfig {
        skip_redundant: true,
        restore_redundant: true,
    };
    let mut out = Vec::new();
    for _ in 0..count {
        let spec = ScenarioSpec::sample(&mut rng);
        let hier = spec.generate();
        let compressed = compress_hierarchy_field(
            &hier,
            spec.eval_field(),
            &SzLr::default(),
            ErrorBound::Rel(1e-3),
            &cfg,
        )
        .expect("sampled scenario compresses");
        out.push(Target {
            name: format!("recipe:{}", spec.label()),
            repro: spec.recipe.clone(),
            stream: compressed.to_bytes(),
            decode: Box::new(move |bytes, budget| {
                let parsed =
                    CompressedHierarchyField::from_bytes_budgeted(bytes, budget).map_err(fail)?;
                decompress_hierarchy_field_policy(
                    &hier,
                    &parsed,
                    &SzLr::default(),
                    &cfg,
                    DecodePolicy::Degrade,
                    budget,
                )
                .map(|_| ())
                .map_err(fail)
            }),
        });
    }
    out
}

/// The ` recipe="…"` suffix a violation carries when its target came from
/// the recipe sampler — the quoted string regenerates the exact scenario.
fn repro_suffix(target: &Target) -> String {
    if target.repro.is_empty() {
        String::new()
    } else {
        format!(" recipe={:?}", target.repro)
    }
}

/// Records a contract violation into the streaming journal (kind `fault`),
/// when one is attached. The trace id is the iteration's deterministic id,
/// rendered the same way span lines render theirs, so `amrviz stats` and
/// plain grep both land on the matching violation string.
fn fault_event(what: &str, target: &str, iter: u32, seed: u64, trace: u64, kinds: &[&str]) {
    if !amrviz_obs::journal::is_active() {
        return;
    }
    let muts = kinds
        .iter()
        .map(|k| format!("\"{k}\""))
        .collect::<Vec<_>>()
        .join(",");
    amrviz_obs::journal::emit(
        "fault",
        &[
            ("what", format!("\"{what}\"")),
            ("target", format!("\"{target}\"")),
            ("iter", iter.to_string()),
            ("seed", seed.to_string()),
            ("fault_trace", format!("\"{trace:016x}\"")),
            ("mutations", format!("[{muts}]")),
        ],
    );
}

/// Runs the torture loop and returns the tally.
pub fn run_torture(cfg: &TortureConfig) -> TortureReport {
    let mut targets = build_targets();
    targets.extend(recipe_targets(cfg.seed, cfg.recipes));
    let budget = DecodeBudget::strict();
    let mem_checked = counting_alloc_installed();

    let mut tallies: Vec<TargetTally> = targets
        .iter()
        .map(|t| TargetTally {
            name: t.name.clone(),
            ..TargetTally::default()
        })
        .collect();
    let (mut graceful, mut harmless, mut panics, mut over) = (0u64, 0u64, 0u64, 0u64);
    let mut violations = Vec::new();

    // Expected-failure decodes would spam stderr with panic backtraces if
    // one slipped through; silence the hook for the duration of the run.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let master = Rng::seed(cfg.seed);
    for iter in 0..cfg.iters {
        let mut rng = master.fork(iter as u64 + 1);
        // Deterministic per-iteration trace id (seed + iteration only), so
        // a violation printed from any run names the exact iteration to
        // replay — and matches the journal's `fault` events.
        let mut tstate = cfg.seed ^ ((iter as u64 + 1) << 32);
        let trace = amrviz_rng::splitmix64(&mut tstate).max(1);
        let ti = rng.below(targets.len() as u64) as usize;
        let target = &targets[ti];
        let (mutated, muts) = mutate_stream(&mut rng, &target.stream);
        let kinds: Vec<&str> = muts.iter().map(Mutation::kind).collect();

        let base = alloc_baseline();
        let outcome = catch_unwind(AssertUnwindSafe(|| (target.decode)(&mutated, &budget)));
        let peak = peak_since(base);

        tallies[ti].runs += 1;
        match outcome {
            Ok(Ok(())) => {
                harmless += 1;
                tallies[ti].oks += 1;
            }
            Ok(Err(failure)) => {
                graceful += 1;
                tallies[ti].errors += 1;
                match failure.class {
                    "corrupt" => tallies[ti].errors_corrupt += 1,
                    "truncated" => tallies[ti].errors_truncated += 1,
                    _ => tallies[ti].errors_budget += 1,
                }
            }
            Err(payload) => {
                panics += 1;
                tallies[ti].panics += 1;
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".into());
                if violations.len() < 8 {
                    violations.push(format!(
                        "panic: target={} iter={iter} seed={} trace={trace:016x} \
                         mutations={kinds:?}{}: {msg}",
                        target.name,
                        cfg.seed,
                        repro_suffix(target)
                    ));
                }
                fault_event("panic", &target.name, iter, cfg.seed, trace, &kinds);
            }
        }
        if mem_checked && peak > cfg.max_peak_bytes {
            over += 1;
            tallies[ti].over_budget += 1;
            if violations.len() < 8 {
                violations.push(format!(
                    "over_budget: target={} iter={iter} seed={} trace={trace:016x} \
                     mutations={kinds:?} peak={peak}{}",
                    target.name,
                    cfg.seed,
                    repro_suffix(target)
                ));
            }
            fault_event("over_budget", &target.name, iter, cfg.seed, trace, &kinds);
        }
    }

    std::panic::set_hook(prev_hook);

    TortureReport {
        seed: cfg.seed,
        iters: cfg.iters,
        recipes: cfg.recipes,
        graceful_errors: graceful,
        harmless_ok: harmless,
        panics,
        over_budget: over,
        mem_checked,
        per_target: tallies,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_streams_decode_cleanly_unmutated() {
        let budget = DecodeBudget::strict();
        for t in build_targets() {
            assert!(
                (t.decode)(&t.stream, &budget).is_ok(),
                "valid {} corpus stream must decode under the strict budget",
                t.name
            );
        }
    }

    #[test]
    fn torture_run_is_deterministic_and_panic_free() {
        let cfg = TortureConfig {
            seed: 11,
            iters: 120,
            ..Default::default()
        };
        let a = run_torture(&cfg);
        let b = run_torture(&cfg);
        assert_eq!(a.panics, 0, "violations: {:?}", a.violations);
        assert_eq!(a.over_budget, 0, "violations: {:?}", a.violations);
        assert_eq!(a.graceful_errors, b.graceful_errors);
        assert_eq!(a.harmless_ok, b.harmless_ok);
        assert_eq!(a.to_json(), b.to_json());
        assert!(
            a.graceful_errors > 0,
            "mutations should usually break decodes"
        );
        assert!(a.passed());
    }

    #[test]
    fn violations_name_reproducing_trace_ids_and_journal_faults() {
        // The per-iteration trace id depends only on (seed, iter): any two
        // runs (any thread count, any machine) derive the same id, so a
        // violation string is a complete repro pointer.
        let derive = |seed: u64, iter: u32| {
            let mut s = seed ^ ((iter as u64 + 1) << 32);
            amrviz_rng::splitmix64(&mut s).max(1)
        };
        assert_eq!(derive(7, 3), derive(7, 3));
        assert_ne!(derive(7, 3), derive(7, 4));
        assert_ne!(derive(7, 3), derive(8, 3));

        // With a journal attached, a violation lands as a `fault` line.
        let dir = std::env::temp_dir().join(format!("amrviz_fault_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faults.jsonl");
        let _ = std::fs::remove_file(&path);
        amrviz_obs::journal::start(&path).unwrap();
        let trace = derive(7, 3);
        fault_event("panic", "szlr", 3, 7, trace, &["bitflip", "truncate"]);
        amrviz_obs::journal::stop();
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text
            .lines()
            .find(|l| l.contains("\"kind\":\"fault\""))
            .expect("fault line in journal");
        assert!(line.contains("\"what\":\"panic\""), "{line}");
        assert!(line.contains("\"target\":\"szlr\""), "{line}");
        assert!(
            line.contains(&format!("\"fault_trace\":\"{trace:016x}\"")),
            "{line}"
        );
        assert!(
            line.contains("\"mutations\":[\"bitflip\",\"truncate\"]"),
            "{line}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recipe_targets_decode_cleanly_and_torture_stays_green() {
        let budget = DecodeBudget::strict();
        for t in recipe_targets(5, 3) {
            assert!(t.name.starts_with("recipe:"), "{}", t.name);
            assert!(t.repro.starts_with("(scenario"), "{}", t.repro);
            assert!(
                (t.decode)(&t.stream, &budget).is_ok(),
                "valid {} corpus stream must decode under the strict budget",
                t.name
            );
        }
        let cfg = TortureConfig {
            seed: 5,
            iters: 80,
            recipes: 3,
            ..Default::default()
        };
        let a = run_torture(&cfg);
        let b = run_torture(&cfg);
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.per_target.iter().any(|t| t.name.starts_with("recipe:")));
    }

    #[test]
    fn different_seeds_explore_different_corruptions() {
        let a = run_torture(&TortureConfig {
            seed: 1,
            iters: 60,
            ..Default::default()
        });
        let b = run_torture(&TortureConfig {
            seed: 2,
            iters: 60,
            ..Default::default()
        });
        // Same decoders, different corruption paths: tallies rarely align.
        assert!(
            a.graceful_errors != b.graceful_errors || a.harmless_ok != b.harmless_ok,
            "seeds 1 and 2 produced identical tallies — RNG not threaded through?"
        );
    }
}
