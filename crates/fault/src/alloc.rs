//! Allocation counting for bounded-memory assertions.
//!
//! The counting allocator now lives in [`amrviz_obs::mem`] so the
//! observability layer can attribute allocations to spans; this module
//! re-exports it under the original `amrviz_fault` names, so existing
//! installs keep working unchanged:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: amrviz_fault::CountingAlloc = amrviz_fault::CountingAlloc;
//! ```
//!
//! Bracket a decode with [`alloc_baseline`] / [`peak_since`] to check that
//! a corrupted stream never drove allocation past a budget. When the
//! allocator is *not* installed the counters just stay at zero, and
//! [`counting_alloc_installed`] reports so — the torture runner downgrades
//! its memory assertion to a no-op rather than reporting false peaks.

pub use amrviz_obs::mem::{
    alloc_baseline, counting_alloc_installed, current_bytes, peak_since, CountingAlloc,
};
