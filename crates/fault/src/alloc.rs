//! A counting global allocator for bounded-memory assertions.
//!
//! [`CountingAlloc`] wraps the system allocator and tracks live bytes and
//! the high-water mark with relaxed atomics (the counters are a
//! diagnostic, not a synchronization point). Install it with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: amrviz_fault::CountingAlloc = amrviz_fault::CountingAlloc;
//! ```
//!
//! then bracket a decode with [`alloc_baseline`] / [`peak_since`] to check
//! that a corrupted stream never drove allocation past a budget. When the
//! allocator is *not* installed the counters just stay at zero, and
//! [`counting_alloc_installed`] reports so — the torture runner downgrades
//! its memory assertion to a no-op rather than reporting false peaks.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Global allocator wrapper that counts live and peak bytes.
pub struct CountingAlloc;

fn add(n: usize) {
    let cur = CURRENT.fetch_add(n, Ordering::Relaxed) + n;
    PEAK.fetch_max(cur, Ordering::Relaxed);
}

fn sub(n: usize) {
    CURRENT.fetch_sub(n, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            add(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        sub(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            add(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            sub(layout.size());
            add(new_size);
        }
        p
    }
}

/// Bytes currently live (0 if the counting allocator is not installed).
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live count and returns the
/// baseline. Call before the operation under test.
pub fn alloc_baseline() -> usize {
    let cur = CURRENT.load(Ordering::Relaxed);
    PEAK.store(cur, Ordering::Relaxed);
    cur
}

/// Peak bytes allocated *above* `baseline` since [`alloc_baseline`].
pub fn peak_since(baseline: usize) -> usize {
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

/// Whether allocations are actually being counted (i.e. [`CountingAlloc`]
/// is the process's global allocator).
pub fn counting_alloc_installed() -> bool {
    // If anything at all has been counted, the allocator is live. A Rust
    // process that has reached user code has long since allocated.
    CURRENT.load(Ordering::Relaxed) > 0 || PEAK.load(Ordering::Relaxed) > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as #[global_allocator] in this test binary, so the
    // counters stay quiet; exercise the raw bookkeeping directly.
    #[test]
    fn bookkeeping_tracks_peak_above_baseline() {
        let base = alloc_baseline();
        add(1000);
        add(500);
        sub(1500);
        assert!(peak_since(base) >= 1500);
        let base2 = alloc_baseline();
        assert_eq!(peak_since(base2), 0);
    }
}
