//! Seeded, deterministic byte-stream mutations.
//!
//! Each [`Mutation`] is a pure function of (input bytes, mutation
//! parameters); parameters are drawn from an [`amrviz_rng::Rng`], so a
//! (seed, iteration) pair always produces the same corrupted stream. The
//! mutation families target the failure modes a decoder actually meets:
//! single-event bit flips, short reads (truncation), reordered bytes,
//! duplicated regions, and — the nastiest — inflated varint length
//! prefixes that try to talk the decoder into absurd allocations.

use amrviz_rng::Rng;

/// One deterministic corruption applied to a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Flip bit `bit` (0–7) of the byte at `offset`.
    BitFlip { offset: usize, bit: u8 },
    /// Keep only the first `len` bytes.
    Truncate { len: usize },
    /// Swap the bytes at `a` and `b`.
    ByteSwap { a: usize, b: usize },
    /// Re-insert `len` bytes starting at `start` immediately after
    /// themselves (models a repeated section / double write).
    SectionDuplicate { start: usize, len: usize },
    /// Splice a maximal multi-byte varint (`0xFF … 0x7F`) in at `offset`,
    /// so any length prefix read there decodes to a huge value.
    LengthInflate { offset: usize, width: usize },
    /// Overwrite the byte at `offset` with `value`.
    ByteSet { offset: usize, value: u8 },
    /// Append `n` copies of `fill` (trailing garbage).
    Extend { n: usize, fill: u8 },
}

impl Mutation {
    /// Applies the mutation, returning the corrupted stream. Offsets are
    /// clamped to the input length, so any `Mutation` is valid for any
    /// input (including empty).
    pub fn apply(&self, bytes: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        let len = out.len();
        match *self {
            Mutation::BitFlip { offset, bit } => {
                if len > 0 {
                    out[offset % len] ^= 1 << (bit & 7);
                }
            }
            Mutation::Truncate { len: keep } => {
                out.truncate(keep.min(len));
            }
            Mutation::ByteSwap { a, b } => {
                if len > 0 {
                    out.swap(a % len, b % len);
                }
            }
            Mutation::SectionDuplicate { start, len: dlen } => {
                if len > 0 {
                    let s = start % len;
                    let e = (s + dlen.max(1)).min(len);
                    let dup = out[s..e].to_vec();
                    let at = e;
                    out.splice(at..at, dup);
                }
            }
            Mutation::LengthInflate { offset, width } => {
                let at = if len == 0 { 0 } else { offset % len };
                let w = width.clamp(2, 9);
                let mut splice = vec![0xFFu8; w - 1];
                splice.push(0x7F);
                out.splice(at..at, splice);
            }
            Mutation::ByteSet { offset, value } => {
                if len > 0 {
                    out[offset % len] = value;
                }
            }
            Mutation::Extend { n, fill } => {
                out.extend(std::iter::repeat_n(fill, n.min(1 << 16)));
            }
        }
        out
    }

    /// Draws a random mutation suitable for a stream of `len` bytes.
    pub fn random(rng: &mut Rng, len: usize) -> Mutation {
        let n = len.max(1);
        match rng.below(7) {
            0 => Mutation::BitFlip {
                offset: rng.below(n as u64) as usize,
                bit: rng.below(8) as u8,
            },
            1 => Mutation::Truncate {
                len: rng.below(n as u64) as usize,
            },
            2 => Mutation::ByteSwap {
                a: rng.below(n as u64) as usize,
                b: rng.below(n as u64) as usize,
            },
            3 => Mutation::SectionDuplicate {
                start: rng.below(n as u64) as usize,
                len: rng.range_usize(1, 64.min(n)),
            },
            4 => Mutation::LengthInflate {
                offset: rng.below(n as u64) as usize,
                width: rng.range_usize(2, 9),
            },
            5 => Mutation::ByteSet {
                offset: rng.below(n as u64) as usize,
                value: rng.below(256) as u8,
            },
            _ => Mutation::Extend {
                n: rng.range_usize(1, 256),
                fill: rng.below(256) as u8,
            },
        }
    }

    /// Short machine-readable tag for tallies ("bit_flip", "truncate", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Mutation::BitFlip { .. } => "bit_flip",
            Mutation::Truncate { .. } => "truncate",
            Mutation::ByteSwap { .. } => "byte_swap",
            Mutation::SectionDuplicate { .. } => "section_duplicate",
            Mutation::LengthInflate { .. } => "length_inflate",
            Mutation::ByteSet { .. } => "byte_set",
            Mutation::Extend { .. } => "extend",
        }
    }
}

/// Applies 1–3 random mutations (most corruption in the wild is a single
/// event, but compound damage must not escalate either).
pub fn mutate_stream(rng: &mut Rng, bytes: &[u8]) -> (Vec<u8>, Vec<Mutation>) {
    let rounds = rng.range_usize(1, 4);
    let mut out = bytes.to_vec();
    let mut applied = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let m = Mutation::random(rng, out.len());
        out = m.apply(&out);
        applied.push(m);
    }
    (out, applied)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutations_are_deterministic() {
        let input: Vec<u8> = (0..128).map(|i| i as u8).collect();
        let (a, ma) = mutate_stream(&mut Rng::seed(42), &input);
        let (b, mb) = mutate_stream(&mut Rng::seed(42), &input);
        assert_eq!(a, b);
        assert_eq!(ma, mb);
        let (c, _) = mutate_stream(&mut Rng::seed(43), &input);
        assert_ne!(a, c, "different seeds should diverge on a 128-byte input");
    }

    #[test]
    fn apply_handles_empty_and_tiny_inputs() {
        let mut rng = Rng::seed(7);
        for len in [0usize, 1, 2] {
            let input = vec![0xAB; len];
            for _ in 0..200 {
                let m = Mutation::random(&mut rng, input.len());
                let _ = m.apply(&input); // must not panic
            }
        }
    }

    #[test]
    fn truncate_and_extend_change_length() {
        let input = vec![1u8; 10];
        assert_eq!(Mutation::Truncate { len: 3 }.apply(&input).len(), 3);
        assert_eq!(Mutation::Extend { n: 5, fill: 0 }.apply(&input).len(), 15);
        let dup = Mutation::SectionDuplicate { start: 2, len: 4 }.apply(&input);
        assert_eq!(dup.len(), 14);
    }
}
