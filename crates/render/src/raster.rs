//! Z-buffer triangle rasterization with Lambertian shading.

use amrviz_viz::TriMesh;

use crate::camera::Camera;
use crate::color::Color;
use crate::image::Image;

/// Shading mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shading {
    /// Per-face normals: faceting (and compression artifacts) stay visible.
    Flat,
    /// Area-weighted per-vertex normals, interpolated.
    Smooth,
}

/// Rendering parameters.
#[derive(Debug, Clone, Copy)]
pub struct RenderOptions {
    pub width: usize,
    pub height: usize,
    pub background: Color,
    pub surface: Color,
    pub shading: Shading,
    /// Ambient light floor (0..1).
    pub ambient: f64,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 640,
            height: 480,
            background: Color::new(20, 24, 30),
            surface: Color::new(208, 208, 214),
            shading: Shading::Flat,
            ambient: 0.25,
        }
    }
}

/// Renders a mesh with a headlight (light from the camera). Double-sided:
/// the absolute value of `normal · light` shades both faces.
pub fn render_mesh(mesh: &TriMesh, camera: &Camera, opts: &RenderOptions) -> Image {
    let mut img = Image::new(opts.width, opts.height, opts.background);
    let mut zbuf = vec![f64::INFINITY; opts.width * opts.height];
    render_mesh_into(mesh, camera, opts, opts.surface, &mut img, &mut zbuf);
    img
}

/// Renders several meshes into one frame, each with its own color (used to
/// visualize the per-level surfaces of an AMR extraction).
pub fn render_meshes(meshes: &[(&TriMesh, Color)], camera: &Camera, opts: &RenderOptions) -> Image {
    let mut img = Image::new(opts.width, opts.height, opts.background);
    let mut zbuf = vec![f64::INFINITY; opts.width * opts.height];
    for (mesh, color) in meshes {
        render_mesh_into(mesh, camera, opts, *color, &mut img, &mut zbuf);
    }
    img
}

fn render_mesh_into(
    mesh: &TriMesh,
    camera: &Camera,
    opts: &RenderOptions,
    surface: Color,
    img: &mut Image,
    zbuf: &mut [f64],
) {
    let light = camera.view_dir();
    let vertex_normals = match opts.shading {
        Shading::Smooth => Some(mesh.vertex_normals()),
        Shading::Flat => None,
    };
    let (w, h) = (opts.width, opts.height);

    for t in 0..mesh.num_triangles() {
        let [ia, ib, ic] = mesh.triangles[t];
        let pa = mesh.vertices[ia as usize];
        let pb = mesh.vertices[ib as usize];
        let pc = mesh.vertices[ic as usize];
        let (Some((sa, za)), Some((sb, zb)), Some((sc, zc))) = (
            camera.project(pa, w, h),
            camera.project(pb, w, h),
            camera.project(pc, w, h),
        ) else {
            continue;
        };
        // Screen-space bounding box.
        let min_x = sa[0].min(sb[0]).min(sc[0]).floor().max(0.0) as usize;
        let max_x = (sa[0].max(sb[0]).max(sc[0]).ceil() as usize).min(w.saturating_sub(1));
        let min_y = sa[1].min(sb[1]).min(sc[1]).floor().max(0.0) as usize;
        let max_y = (sa[1].max(sb[1]).max(sc[1]).ceil() as usize).min(h.saturating_sub(1));
        if min_x > max_x || min_y > max_y {
            continue;
        }
        let area = edge(sa, sb, sc);
        if area.abs() < 1e-12 {
            continue;
        }
        let face_normal = mesh.face_normal(t);
        for py in min_y..=max_y {
            for px in min_x..=max_x {
                let p = [px as f64 + 0.5, py as f64 + 0.5];
                let w0 = edge(sb, sc, p) / area;
                let w1 = edge(sc, sa, p) / area;
                let w2 = edge(sa, sb, p) / area;
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                let z = w0 * za + w1 * zb + w2 * zc;
                let zi = px + py * w;
                if z >= zbuf[zi] {
                    continue;
                }
                zbuf[zi] = z;
                let n = match &vertex_normals {
                    None => face_normal,
                    Some(vn) => {
                        let (na, nb, nc) = (vn[ia as usize], vn[ib as usize], vn[ic as usize]);
                        let raw = [
                            w0 * na[0] + w1 * nb[0] + w2 * nc[0],
                            w0 * na[1] + w1 * nb[1] + w2 * nc[1],
                            w0 * na[2] + w1 * nb[2] + w2 * nc[2],
                        ];
                        let l = (raw[0] * raw[0] + raw[1] * raw[1] + raw[2] * raw[2])
                            .sqrt()
                            .max(1e-12);
                        [raw[0] / l, raw[1] / l, raw[2] / l]
                    }
                };
                let lambert = (n[0] * light[0] + n[1] * light[1] + n[2] * light[2]).abs();
                let intensity = opts.ambient + (1.0 - opts.ambient) * lambert;
                img.set(px, py, surface.dim(intensity));
            }
        }
    }
}

/// Signed doubled area of triangle `(a, b, c)` — the edge function. The
/// rasterizer accepts either winding because barycentric signs are checked
/// against the triangle's own orientation.
#[inline]
fn edge(a: [f64; 2], b: [f64; 2], c: [f64; 2]) -> f64 {
    (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single large triangle facing the camera.
    fn facing_triangle() -> TriMesh {
        TriMesh {
            vertices: vec![[-0.5, 0.0, -0.5], [0.5, 0.0, -0.5], [0.0, 0.0, 0.5]],
            triangles: vec![[0, 1, 2]],
        }
    }

    fn count_non_background(img: &Image, bg: Color) -> usize {
        let mut n = 0;
        for y in 0..img.height {
            for x in 0..img.width {
                if img.get(x, y) != bg {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn triangle_covers_expected_fraction() {
        let cam = Camera::orthographic([0.0, -3.0, 0.0], [0.0, 0.0, 0.0], 1.0);
        let opts = RenderOptions {
            width: 100,
            height: 100,
            ..Default::default()
        };
        let img = render_mesh(&facing_triangle(), &cam, &opts);
        let lit = count_non_background(&img, opts.background);
        // Triangle area 0.5 in a 2×2 view → 1/8 of 10 000 pixels = 1250.
        assert!((1100..1400).contains(&lit), "lit pixels: {lit}");
    }

    #[test]
    fn nearer_surface_wins_depth_test() {
        // Two overlapping triangles at different depths; front one darker?
        // Give them distinguishable colors via two meshes.
        let near = facing_triangle();
        let mut far_mesh = facing_triangle();
        for v in &mut far_mesh.vertices {
            v[1] += 1.0; // move away from the camera at y=-3
        }
        let cam = Camera::orthographic([0.0, -3.0, 0.0], [0.0, 0.0, 0.0], 1.0);
        let opts = RenderOptions {
            width: 64,
            height: 64,
            ..Default::default()
        };
        let red = Color::new(255, 0, 0);
        let blue = Color::new(0, 0, 255);
        let img = render_meshes(&[(&far_mesh, blue), (&near, red)], &cam, &opts);
        // Center pixel must come from the near (red) triangle regardless of
        // draw order.
        let c = img.get(32, 40);
        assert!(c.r > 0 && c.b == 0, "depth test failed: {c:?}");
        let img2 = render_meshes(&[(&near, red), (&far_mesh, blue)], &cam, &opts);
        let c2 = img2.get(32, 40);
        assert!(c2.r > 0 && c2.b == 0, "order-dependent result: {c2:?}");
    }

    #[test]
    fn headlight_brightens_facing_surfaces() {
        // A triangle perpendicular to the view is brighter than a grazing one.
        let cam = Camera::orthographic([0.0, -3.0, 0.0], [0.0, 0.0, 0.0], 1.0);
        let opts = RenderOptions {
            width: 64,
            height: 64,
            ..Default::default()
        };
        let img_facing = render_mesh(&facing_triangle(), &cam, &opts);
        let mut grazing = facing_triangle();
        // Tilt nearly edge-on (rotate about z by ~85°: y ← x·sin).
        for v in &mut grazing.vertices {
            let x = v[0];
            v[0] = x * 0.1;
            v[1] = x * 0.995;
        }
        let img_grazing = render_mesh(&grazing, &cam, &opts);
        let bright = |img: &Image| -> f64 {
            let lum = img.luminance();
            lum.iter().cloned().fold(0.0, f64::max)
        };
        assert!(bright(&img_facing) > bright(&img_grazing) + 20.0);
    }

    #[test]
    fn empty_mesh_renders_background() {
        let cam = Camera::orthographic([0.0, -3.0, 0.0], [0.0, 0.0, 0.0], 1.0);
        let opts = RenderOptions {
            width: 16,
            height: 16,
            ..Default::default()
        };
        let img = render_mesh(&TriMesh::new(), &cam, &opts);
        assert_eq!(count_non_background(&img, opts.background), 0);
    }

    #[test]
    fn smooth_and_flat_shading_both_work() {
        let cam = Camera::orthographic([0.0, -3.0, 0.0], [0.0, 0.0, 0.0], 1.0);
        for shading in [Shading::Flat, Shading::Smooth] {
            let opts = RenderOptions {
                width: 32,
                height: 32,
                shading,
                ..Default::default()
            };
            let img = render_mesh(&facing_triangle(), &cam, &opts);
            assert!(count_non_background(&img, opts.background) > 50);
        }
    }
}
