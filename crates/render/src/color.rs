//! Colors and colormaps.

/// 8-bit RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Color {
    pub r: u8,
    pub g: u8,
    pub b: u8,
}

impl Color {
    pub const BLACK: Color = Color { r: 0, g: 0, b: 0 };
    pub const WHITE: Color = Color {
        r: 255,
        g: 255,
        b: 255,
    };

    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Color { r, g, b }
    }

    /// Linear blend `self·(1−t) + other·t`.
    pub fn lerp(self, other: Color, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| (a as f64 + (b as f64 - a as f64) * t).round() as u8;
        Color::new(
            mix(self.r, other.r),
            mix(self.g, other.g),
            mix(self.b, other.b),
        )
    }

    /// Scales brightness by `f ∈ [0, 1]`.
    pub fn dim(self, f: f64) -> Color {
        let f = f.clamp(0.0, 1.0);
        Color::new(
            (self.r as f64 * f).round() as u8,
            (self.g as f64 * f).round() as u8,
            (self.b as f64 * f).round() as u8,
        )
    }
}

/// Available colormaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Colormap {
    /// Perceptually-uniform dark-blue → green → yellow (viridis-like).
    Viridis,
    /// Diverging blue → white → red.
    CoolWarm,
    /// Plain grayscale.
    Gray,
}

/// Anchor points of the viridis-like map.
const VIRIDIS: [(f64, [u8; 3]); 7] = [
    (0.00, [68, 1, 84]),
    (0.17, [72, 40, 120]),
    (0.33, [62, 74, 137]),
    (0.50, [49, 104, 142]),
    (0.67, [38, 144, 140]),
    (0.83, [83, 183, 121]),
    (1.00, [253, 231, 37]),
];

/// Maps `t ∈ [0,1]` through a colormap (values are clamped).
pub fn colormap(map: Colormap, t: f64) -> Color {
    let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
    match map {
        Colormap::Gray => {
            let v = (t * 255.0).round() as u8;
            Color::new(v, v, v)
        }
        Colormap::CoolWarm => {
            let blue = Color::new(59, 76, 192);
            let white = Color::new(242, 242, 242);
            let red = Color::new(180, 4, 38);
            if t < 0.5 {
                blue.lerp(white, t * 2.0)
            } else {
                white.lerp(red, (t - 0.5) * 2.0)
            }
        }
        Colormap::Viridis => {
            for w in VIRIDIS.windows(2) {
                let (t0, c0) = w[0];
                let (t1, c1) = w[1];
                if t <= t1 {
                    let f = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
                    return Color::new(c0[0], c0[1], c0[2])
                        .lerp(Color::new(c1[0], c1[1], c1[2]), f);
                }
            }
            let last = VIRIDIS[VIRIDIS.len() - 1].1;
            Color::new(last[0], last[1], last[2])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        let a = Color::new(0, 0, 0);
        let b = Color::new(100, 200, 50);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Color::new(50, 100, 25));
        assert_eq!(a.lerp(b, 2.0), b); // clamped
    }

    #[test]
    fn colormaps_cover_range() {
        for map in [Colormap::Viridis, Colormap::CoolWarm, Colormap::Gray] {
            let lo = colormap(map, 0.0);
            let hi = colormap(map, 1.0);
            assert_ne!(lo, hi, "{map:?} endpoints identical");
            // Values outside [0,1] are clamped; NaN maps to the low end.
            assert_eq!(colormap(map, -5.0), lo);
            assert_eq!(colormap(map, 7.0), hi);
            assert_eq!(colormap(map, f64::NAN), lo);
        }
    }

    #[test]
    fn viridis_known_anchors() {
        assert_eq!(colormap(Colormap::Viridis, 0.0), Color::new(68, 1, 84));
        assert_eq!(colormap(Colormap::Viridis, 1.0), Color::new(253, 231, 37));
    }

    #[test]
    fn gray_is_monotone() {
        let mut prev = -1i32;
        for n in 0..=10 {
            let c = colormap(Colormap::Gray, n as f64 / 10.0);
            assert_eq!(c.r, c.g);
            assert_eq!(c.g, c.b);
            assert!(c.r as i32 >= prev);
            prev = c.r as i32;
        }
    }

    #[test]
    fn dim_scales() {
        let c = Color::new(100, 200, 50);
        assert_eq!(c.dim(0.5), Color::new(50, 100, 25));
        assert_eq!(c.dim(0.0), Color::BLACK);
        assert_eq!(c.dim(1.0), c);
    }
}
