//! Ray-marched volume rendering (emission–absorption).
//!
//! The paper focuses on isosurfaces because they are most sensitive to
//! compression error, but cites volume rendering as the other standard
//! modality (its ref. [31] studies compression × volume rendering on
//! non-AMR cosmology data). This renderer closes that loop: orthographic
//! rays march through a uniform-resolution field with trilinear sampling
//! and front-to-back compositing under a simple colormap transfer function.

use amrviz_amr::UniformField;

use crate::camera::Camera;
use crate::color::{colormap, Color, Colormap};
use crate::image::Image;

/// Volume rendering parameters.
#[derive(Debug, Clone, Copy)]
pub struct VolumeOptions {
    pub width: usize,
    pub height: usize,
    pub background: Color,
    pub colormap: Colormap,
    /// Step length in units of one cell.
    pub step_cells: f64,
    /// Opacity multiplier per unit (cell) of path length at full intensity.
    pub opacity: f64,
    /// Map values through log10 before the transfer function.
    pub log_scale: bool,
    /// Normalized values below this are fully transparent.
    pub threshold: f64,
}

impl Default for VolumeOptions {
    fn default() -> Self {
        VolumeOptions {
            width: 640,
            height: 480,
            background: Color::new(12, 14, 18),
            colormap: Colormap::Viridis,
            step_cells: 0.7,
            opacity: 0.08,
            log_scale: false,
            threshold: 0.05,
        }
    }
}

/// Renders a uniform-resolution field occupying the physical box
/// `[prob_lo, prob_hi]`.
pub fn render_volume(
    field: &UniformField,
    prob_lo: [f64; 3],
    prob_hi: [f64; 3],
    camera: &Camera,
    opts: &VolumeOptions,
) -> Image {
    let [nx, ny, nz] = field.dims();
    let mut img = Image::new(opts.width, opts.height, opts.background);
    if nx == 0 || ny == 0 || nz == 0 {
        return img;
    }
    let transform = |v: f64| {
        if opts.log_scale {
            v.max(1e-300).log10()
        } else {
            v
        }
    };
    let (mut lo_v, mut hi_v) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &field.data {
        let t = transform(v);
        lo_v = lo_v.min(t);
        hi_v = hi_v.max(t);
    }
    let range = (hi_v - lo_v).max(1e-300);

    let h = [
        (prob_hi[0] - prob_lo[0]) / nx as f64,
        (prob_hi[1] - prob_lo[1]) / ny as f64,
        (prob_hi[2] - prob_lo[2]) / nz as f64,
    ];
    let step_len = opts.step_cells * h[0].min(h[1]).min(h[2]);

    // Trilinear sample at a physical point (clamped cell-centered lookup).
    let sample = |p: [f64; 3]| -> f64 {
        let cx = ((p[0] - prob_lo[0]) / h[0] - 0.5).clamp(0.0, nx as f64 - 1.0);
        let cy = ((p[1] - prob_lo[1]) / h[1] - 0.5).clamp(0.0, ny as f64 - 1.0);
        let cz = ((p[2] - prob_lo[2]) / h[2] - 0.5).clamp(0.0, nz as f64 - 1.0);
        let (i0, j0, k0) = (
            cx.floor() as usize,
            cy.floor() as usize,
            cz.floor() as usize,
        );
        let (fx, fy, fz) = (cx - i0 as f64, cy - j0 as f64, cz - k0 as f64);
        let i1 = (i0 + 1).min(nx - 1);
        let j1 = (j0 + 1).min(ny - 1);
        let k1 = (k0 + 1).min(nz - 1);
        let at = |i: usize, j: usize, k: usize| field.at(i, j, k);
        let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
        let c00 = lerp(at(i0, j0, k0), at(i1, j0, k0), fx);
        let c10 = lerp(at(i0, j1, k0), at(i1, j1, k0), fx);
        let c01 = lerp(at(i0, j0, k1), at(i1, j0, k1), fx);
        let c11 = lerp(at(i0, j1, k1), at(i1, j1, k1), fx);
        lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz)
    };

    let (right, up, forward) = camera.basis();
    let aspect = opts.width as f64 / opts.height as f64;
    use crate::camera::Projection;
    for py in 0..opts.height {
        for px in 0..opts.width {
            // Ray for this pixel.
            let sx = (px as f64 + 0.5) / opts.width as f64 * 2.0 - 1.0;
            let sy = 1.0 - (py as f64 + 0.5) / opts.height as f64 * 2.0;
            let (origin, dir) = match camera.projection {
                Projection::Orthographic { half_height } => {
                    let o = [
                        camera.eye[0]
                            + right[0] * sx * half_height * aspect
                            + up[0] * sy * half_height,
                        camera.eye[1]
                            + right[1] * sx * half_height * aspect
                            + up[1] * sy * half_height,
                        camera.eye[2]
                            + right[2] * sx * half_height * aspect
                            + up[2] * sy * half_height,
                    ];
                    (o, forward)
                }
                Projection::Perspective { fov_y } => {
                    let t = (fov_y / 2.0).tan();
                    let d = [
                        forward[0] + right[0] * sx * t * aspect + up[0] * sy * t,
                        forward[1] + right[1] * sx * t * aspect + up[1] * sy * t,
                        forward[2] + right[2] * sx * t * aspect + up[2] * sy * t,
                    ];
                    let len = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                    (camera.eye, [d[0] / len, d[1] / len, d[2] / len])
                }
            };
            // Slab intersection with the physical box.
            let (mut t0, mut t1) = (0.0f64, f64::INFINITY);
            let mut miss = false;
            for a in 0..3 {
                if dir[a].abs() < 1e-15 {
                    if origin[a] < prob_lo[a] || origin[a] > prob_hi[a] {
                        miss = true;
                        break;
                    }
                } else {
                    let ta = (prob_lo[a] - origin[a]) / dir[a];
                    let tb = (prob_hi[a] - origin[a]) / dir[a];
                    t0 = t0.max(ta.min(tb));
                    t1 = t1.min(ta.max(tb));
                }
            }
            if miss || t1 <= t0 {
                continue;
            }
            // Front-to-back compositing.
            let mut acc = [0.0f64; 3];
            let mut transparency = 1.0f64;
            let mut t = t0 + 0.5 * step_len;
            while t < t1 && transparency > 0.005 {
                let p = [
                    origin[0] + dir[0] * t,
                    origin[1] + dir[1] * t,
                    origin[2] + dir[2] * t,
                ];
                let norm = ((transform(sample(p)) - lo_v) / range).clamp(0.0, 1.0);
                if norm > opts.threshold {
                    let c = colormap(opts.colormap, norm);
                    let alpha = (opts.opacity * norm * opts.step_cells).clamp(0.0, 1.0);
                    let w = transparency * alpha;
                    acc[0] += w * c.r as f64;
                    acc[1] += w * c.g as f64;
                    acc[2] += w * c.b as f64;
                    transparency *= 1.0 - alpha;
                }
                t += step_len;
            }
            let bg = opts.background;
            let final_c = Color::new(
                (acc[0] + transparency * bg.r as f64)
                    .round()
                    .clamp(0.0, 255.0) as u8,
                (acc[1] + transparency * bg.g as f64)
                    .round()
                    .clamp(0.0, 255.0) as u8,
                (acc[2] + transparency * bg.b as f64)
                    .round()
                    .clamp(0.0, 255.0) as u8,
            );
            img.set(px, py, final_c);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_amr::Box3;

    fn blob_field(n: usize, center: [f64; 3]) -> UniformField {
        let mut data = Vec::with_capacity(n * n * n);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let p = [
                        (i as f64 + 0.5) / n as f64,
                        (j as f64 + 0.5) / n as f64,
                        (k as f64 + 0.5) / n as f64,
                    ];
                    let r2 = (p[0] - center[0]).powi(2)
                        + (p[1] - center[1]).powi(2)
                        + (p[2] - center[2]).powi(2);
                    data.push((-r2 / 0.02).exp());
                }
            }
        }
        UniformField::new(Box3::from_dims(n, n, n), data)
    }

    fn cam() -> Camera {
        Camera::orthographic([0.5, -3.0, 0.5], [0.5, 0.5, 0.5], 0.7)
    }

    fn brightness_centroid(img: &Image) -> (f64, f64) {
        // Weight by luminance *above the background* so the dark backdrop
        // doesn't drag the centroid to the frame center.
        let bg = VolumeOptions::default().background;
        let bg_lum = 0.299 * bg.r as f64 + 0.587 * bg.g as f64 + 0.114 * bg.b as f64;
        let lum = img.luminance();
        let (mut sx, mut sy, mut total) = (0.0, 0.0, 0.0);
        for y in 0..img.height {
            for x in 0..img.width {
                let l = (lum[x + y * img.width] - bg_lum).max(0.0);
                sx += l * x as f64;
                sy += l * y as f64;
                total += l;
            }
        }
        (sx / total, sy / total)
    }

    #[test]
    fn blob_position_shows_in_image() {
        let opts = VolumeOptions {
            width: 80,
            height: 80,
            ..Default::default()
        };
        let left = render_volume(
            &blob_field(24, [0.25, 0.5, 0.5]),
            [0.0; 3],
            [1.0; 3],
            &cam(),
            &opts,
        );
        let right = render_volume(
            &blob_field(24, [0.75, 0.5, 0.5]),
            [0.0; 3],
            [1.0; 3],
            &cam(),
            &opts,
        );
        let (cx_l, _) = brightness_centroid(&left);
        let (cx_r, _) = brightness_centroid(&right);
        assert!(
            cx_r > cx_l + 10.0,
            "blob offset not visible: {cx_l} vs {cx_r}"
        );
    }

    #[test]
    fn rays_missing_the_box_keep_background() {
        // Zoomed-out camera: corners of the frame miss the unit box.
        let cam = Camera::orthographic([0.5, -3.0, 0.5], [0.5, 0.5, 0.5], 3.0);
        let opts = VolumeOptions {
            width: 40,
            height: 40,
            ..Default::default()
        };
        let img = render_volume(&blob_field(8, [0.5; 3]), [0.0; 3], [1.0; 3], &cam, &opts);
        assert_eq!(img.get(0, 0), opts.background);
        assert_eq!(img.get(39, 39), opts.background);
    }

    #[test]
    fn opacity_monotonicity() {
        let f = blob_field(16, [0.5; 3]);
        let mean_lum = |opacity: f64| {
            let opts = VolumeOptions {
                width: 48,
                height: 48,
                opacity,
                ..Default::default()
            };
            let img = render_volume(&f, [0.0; 3], [1.0; 3], &cam(), &opts);
            img.luminance().iter().sum::<f64>() / (48.0 * 48.0)
        };
        // Denser medium → image departs further from the dark background.
        assert!(mean_lum(0.2) > mean_lum(0.02));
    }

    #[test]
    fn perspective_camera_supported() {
        let f = blob_field(16, [0.5; 3]);
        let cam = Camera::perspective([0.5, -2.5, 0.5], [0.5, 0.5, 0.5], 0.6);
        let opts = VolumeOptions {
            width: 32,
            height: 32,
            ..Default::default()
        };
        let img = render_volume(&f, [0.0; 3], [1.0; 3], &cam, &opts);
        let lum: f64 = img.luminance().iter().sum();
        assert!(lum > 0.0);
    }

    #[test]
    fn log_scale_handles_huge_dynamic_range() {
        let n = 12;
        let mut f = blob_field(n, [0.5; 3]);
        for v in &mut f.data {
            *v = (*v * 1e10).max(1e-5);
        }
        let opts = VolumeOptions {
            width: 32,
            height: 32,
            log_scale: true,
            ..Default::default()
        };
        let img = render_volume(&f, [0.0; 3], [1.0; 3], &cam(), &opts);
        let lum: f64 = img.luminance().iter().sum();
        assert!(lum.is_finite() && lum > 0.0);
    }
}
