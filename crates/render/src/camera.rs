//! Look-at cameras (orthographic and perspective).

/// A camera defined by eye position, look-at target, and up hint.
#[derive(Debug, Clone, Copy)]
pub struct Camera {
    pub eye: [f64; 3],
    pub target: [f64; 3],
    pub up: [f64; 3],
    pub projection: Projection,
}

#[derive(Debug, Clone, Copy)]
pub enum Projection {
    /// `half_height` is the world-space half-extent visible vertically.
    Orthographic { half_height: f64 },
    /// `fov_y` in radians.
    Perspective { fov_y: f64 },
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn normalize(v: [f64; 3]) -> [f64; 3] {
    let l = dot(v, v).sqrt();
    if l == 0.0 {
        v
    } else {
        [v[0] / l, v[1] / l, v[2] / l]
    }
}

impl Camera {
    /// Orthographic camera looking at `target` from `eye`.
    pub fn orthographic(eye: [f64; 3], target: [f64; 3], half_height: f64) -> Self {
        Camera {
            eye,
            target,
            up: [0.0, 0.0, 1.0],
            projection: Projection::Orthographic { half_height },
        }
    }

    /// Perspective camera with vertical field of view `fov_y` (radians).
    pub fn perspective(eye: [f64; 3], target: [f64; 3], fov_y: f64) -> Self {
        Camera {
            eye,
            target,
            up: [0.0, 0.0, 1.0],
            projection: Projection::Perspective { fov_y },
        }
    }

    /// Orthonormal view basis `(right, up, forward)`.
    pub fn basis(&self) -> ([f64; 3], [f64; 3], [f64; 3]) {
        let forward = normalize(sub(self.target, self.eye));
        let mut right = cross(forward, self.up);
        if dot(right, right) < 1e-24 {
            // Up was parallel to the view direction; pick another up.
            right = cross(forward, [0.0, 1.0, 0.0]);
        }
        let right = normalize(right);
        let up = cross(right, forward);
        (right, up, forward)
    }

    /// Projects a world point to pixel coordinates and camera-space depth.
    /// Returns `None` for points behind a perspective camera.
    pub fn project(&self, p: [f64; 3], width: usize, height: usize) -> Option<([f64; 2], f64)> {
        let (right, up, forward) = self.basis();
        let rel = sub(p, self.eye);
        let x = dot(rel, right);
        let y = dot(rel, up);
        let z = dot(rel, forward);
        let aspect = width as f64 / height as f64;
        let (sx, sy) = match self.projection {
            Projection::Orthographic { half_height } => {
                (x / (half_height * aspect), y / half_height)
            }
            Projection::Perspective { fov_y } => {
                if z <= 1e-9 {
                    return None;
                }
                let t = (fov_y / 2.0).tan();
                (x / (z * t * aspect), y / (z * t))
            }
        };
        // NDC [−1,1] → pixels, y flipped (screen origin top-left).
        let px = (sx + 1.0) * 0.5 * width as f64;
        let py = (1.0 - (sy + 1.0) * 0.5) * height as f64;
        Some(([px, py], z))
    }

    /// Unit vector from the eye toward the target — handy as a light
    /// direction for headlight shading.
    pub fn view_dir(&self) -> [f64; 3] {
        normalize(sub(self.target, self.eye))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ortho_center_maps_to_image_center() {
        let cam = Camera::orthographic([0.0, -5.0, 0.0], [0.0, 0.0, 0.0], 1.0);
        let ([px, py], z) = cam.project([0.0, 0.0, 0.0], 200, 100).unwrap();
        assert!((px - 100.0).abs() < 1e-9);
        assert!((py - 50.0).abs() < 1e-9);
        assert!((z - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ortho_up_is_screen_up() {
        let cam = Camera::orthographic([0.0, -5.0, 0.0], [0.0, 0.0, 0.0], 1.0);
        // +z world is "up" → smaller py.
        let ([_, py_hi], _) = cam.project([0.0, 0.0, 0.5], 100, 100).unwrap();
        let ([_, py_lo], _) = cam.project([0.0, 0.0, -0.5], 100, 100).unwrap();
        assert!(py_hi < py_lo);
    }

    #[test]
    fn perspective_shrinks_with_distance() {
        let cam = Camera::perspective([0.0, -5.0, 0.0], [0.0, 0.0, 0.0], 1.0);
        let ([px_near, _], _) = cam.project([0.5, 0.0, 0.0], 100, 100).unwrap();
        let ([px_far, _], _) = cam.project([0.5, 5.0, 0.0], 100, 100).unwrap();
        let center = 50.0;
        assert!((px_far - center).abs() < (px_near - center).abs());
    }

    #[test]
    fn behind_perspective_camera_is_culled() {
        let cam = Camera::perspective([0.0, -5.0, 0.0], [0.0, 0.0, 0.0], 1.0);
        assert!(cam.project([0.0, -10.0, 0.0], 100, 100).is_none());
    }

    #[test]
    fn degenerate_up_is_fixed() {
        // Looking straight down the up vector.
        let cam = Camera::orthographic([0.0, 0.0, 5.0], [0.0, 0.0, 0.0], 1.0);
        let (right, up, forward) = cam.basis();
        for v in [right, up, forward] {
            let len = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
            assert!((len - 1.0).abs() < 1e-12, "non-unit basis vector {v:?}");
        }
    }
}
