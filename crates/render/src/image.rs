//! RGB raster images with PPM (P6) and PNG writers.
//!
//! The PNG writer emits valid, universally-readable files using *stored*
//! (uncompressed) deflate blocks — no zlib dependency needed; the files are
//! larger but bit-exact.

use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::color::Color;

/// A simple RGB image, row-major, origin at the top-left.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    pub width: usize,
    pub height: usize,
    pixels: Vec<Color>,
}

impl Image {
    pub fn new(width: usize, height: usize, fill: Color) -> Self {
        Image {
            width,
            height,
            pixels: vec![fill; width * height],
        }
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Color {
        self.pixels[x + y * self.width]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, c: Color) {
        if x < self.width && y < self.height {
            self.pixels[x + y * self.width] = c;
        }
    }

    /// Luminance (Rec. 601) of every pixel, for image-quality metrics.
    pub fn luminance(&self) -> Vec<f64> {
        self.pixels
            .iter()
            .map(|c| 0.299 * c.r as f64 + 0.587 * c.g as f64 + 0.114 * c.b as f64)
            .collect()
    }

    /// Writes binary PPM (P6).
    pub fn write_ppm(&self, w: &mut impl Write) -> io::Result<()> {
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        let mut row = Vec::with_capacity(self.width * 3);
        for y in 0..self.height {
            row.clear();
            for x in 0..self.width {
                let c = self.get(x, y);
                row.extend_from_slice(&[c.r, c.g, c.b]);
            }
            w.write_all(&row)?;
        }
        Ok(())
    }

    pub fn save_ppm(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        self.write_ppm(&mut w)?;
        w.flush()
    }

    /// Writes a PNG (8-bit RGB, stored deflate blocks).
    pub fn write_png(&self, w: &mut impl Write) -> io::Result<()> {
        // Raw scanlines with filter byte 0.
        let mut raw = Vec::with_capacity(self.height * (1 + self.width * 3));
        for y in 0..self.height {
            raw.push(0u8);
            for x in 0..self.width {
                let c = self.get(x, y);
                raw.extend_from_slice(&[c.r, c.g, c.b]);
            }
        }
        w.write_all(b"\x89PNG\r\n\x1a\n")?;
        // IHDR
        let mut ihdr = Vec::with_capacity(13);
        ihdr.extend_from_slice(&(self.width as u32).to_be_bytes());
        ihdr.extend_from_slice(&(self.height as u32).to_be_bytes());
        ihdr.extend_from_slice(&[8, 2, 0, 0, 0]); // depth 8, color RGB
        write_chunk(w, b"IHDR", &ihdr)?;
        // IDAT: zlib header + stored deflate blocks + adler32.
        let mut idat = vec![0x78, 0x01];
        let mut off = 0;
        while off < raw.len() {
            let len = (raw.len() - off).min(65535);
            let last = off + len == raw.len();
            idat.push(if last { 1 } else { 0 });
            idat.extend_from_slice(&(len as u16).to_le_bytes());
            idat.extend_from_slice(&(!(len as u16)).to_le_bytes());
            idat.extend_from_slice(&raw[off..off + len]);
            off += len;
        }
        if raw.is_empty() {
            idat.extend_from_slice(&[1, 0, 0, 0xFF, 0xFF]);
        }
        idat.extend_from_slice(&adler32(&raw).to_be_bytes());
        write_chunk(w, b"IDAT", &idat)?;
        write_chunk(w, b"IEND", &[])?;
        Ok(())
    }

    pub fn save_png(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        self.write_png(&mut w)?;
        w.flush()
    }
}

fn write_chunk(w: &mut impl Write, kind: &[u8; 4], data: &[u8]) -> io::Result<()> {
    w.write_all(&(data.len() as u32).to_be_bytes())?;
    w.write_all(kind)?;
    w.write_all(data)?;
    let mut crc_input = Vec::with_capacity(4 + data.len());
    crc_input.extend_from_slice(kind);
    crc_input.extend_from_slice(data);
    w.write_all(&crc32(&crc_input).to_be_bytes())?;
    Ok(())
}

/// CRC-32 (IEEE 802.3), bitwise implementation.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Adler-32 checksum (zlib).
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65521;
    let (mut a, mut b) = (1u32, 0u32);
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"IEND"), 0xAE42_6082);
    }

    #[test]
    fn adler32_known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn ppm_layout() {
        let mut img = Image::new(2, 2, Color::BLACK);
        img.set(1, 0, Color::new(255, 0, 0));
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).unwrap();
        let text_end = buf.iter().filter(|&&b| b == b'\n').count();
        assert!(text_end >= 3);
        assert!(buf.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(buf.len(), 11 + 12);
        assert_eq!(&buf[11..17], &[0, 0, 0, 255, 0, 0]);
    }

    #[test]
    fn png_structure_is_valid() {
        let mut img = Image::new(3, 2, Color::WHITE);
        img.set(0, 0, Color::new(10, 20, 30));
        let mut buf = Vec::new();
        img.write_png(&mut buf).unwrap();
        assert!(buf.starts_with(b"\x89PNG\r\n\x1a\n"));
        // IHDR at offset 8: length 13.
        assert_eq!(&buf[8..12], &13u32.to_be_bytes());
        assert_eq!(&buf[12..16], b"IHDR");
        assert_eq!(&buf[16..20], &3u32.to_be_bytes()); // width
        assert_eq!(&buf[20..24], &2u32.to_be_bytes()); // height
                                                       // Ends with a valid IEND chunk.
        let tail = &buf[buf.len() - 12..];
        assert_eq!(&tail[0..4], &0u32.to_be_bytes());
        assert_eq!(&tail[4..8], b"IEND");
        assert_eq!(&tail[8..12], &crc32(b"IEND").to_be_bytes());
    }

    #[test]
    fn set_out_of_bounds_is_ignored() {
        let mut img = Image::new(2, 2, Color::BLACK);
        img.set(5, 5, Color::WHITE);
        assert!(img.luminance().iter().all(|&l| l == 0.0));
    }

    #[test]
    fn luminance_weights() {
        let img = Image::new(1, 1, Color::WHITE);
        assert!((img.luminance()[0] - 255.0).abs() < 1e-9);
    }
}
