//! Volume slice rendering with AMR grid overlays — the Fig. 2 analogue
//! ("visualization of a zoom-in 2D slice … the grid structure adjusts").

use amrviz_amr::resample::{flatten_to_finest, Upsample};
use amrviz_amr::{AmrError, AmrHierarchy};

use crate::color::{colormap, Color, Colormap};
use crate::image::Image;

/// Slicing axis (the image shows the two remaining axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceAxis {
    X,
    Y,
    Z,
}

/// Slice rendering options.
#[derive(Debug, Clone, Copy)]
pub struct SliceOptions {
    pub axis: SliceAxis,
    /// Slice position as a fraction of the domain (0..1).
    pub frac: f64,
    pub colormap: Colormap,
    /// Log-scale the values before mapping (useful for density fields).
    pub log_scale: bool,
    /// Draw the fine-level box outlines (the paper's dashed boxes).
    pub draw_boxes: bool,
    /// Pixels per finest-level cell.
    pub pixels_per_cell: usize,
}

impl Default for SliceOptions {
    fn default() -> Self {
        SliceOptions {
            axis: SliceAxis::Z,
            frac: 0.5,
            colormap: Colormap::Viridis,
            log_scale: false,
            draw_boxes: true,
            pixels_per_cell: 2,
        }
    }
}

/// Renders a 2D slice of a hierarchy field at the finest resolution, with
/// optional fine-level box outlines.
pub fn render_slice(
    hier: &AmrHierarchy,
    field: &str,
    opts: &SliceOptions,
) -> Result<Image, AmrError> {
    let uniform = flatten_to_finest(hier, field, Upsample::PiecewiseConstant)?;
    let [nx, ny, nz] = uniform.dims();

    // In-plane dims (u, v) and the fixed index.
    let (nu, nv) = match opts.axis {
        SliceAxis::X => (ny, nz),
        SliceAxis::Y => (nx, nz),
        SliceAxis::Z => (nx, ny),
    };
    let fixed_n = match opts.axis {
        SliceAxis::X => nx,
        SliceAxis::Y => ny,
        SliceAxis::Z => nz,
    };
    let fixed = ((opts.frac.clamp(0.0, 1.0) * fixed_n as f64) as usize).min(fixed_n - 1);

    let value = |u: usize, v: usize| -> f64 {
        match opts.axis {
            SliceAxis::X => uniform.at(fixed, u, v),
            SliceAxis::Y => uniform.at(u, fixed, v),
            SliceAxis::Z => uniform.at(u, v, fixed),
        }
    };

    // Value range over the slice.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in 0..nv {
        for u in 0..nu {
            let val = transform(value(u, v), opts.log_scale);
            lo = lo.min(val);
            hi = hi.max(val);
        }
    }
    let range = (hi - lo).max(1e-300);

    let pc = opts.pixels_per_cell.max(1);
    let mut img = Image::new(nu * pc, nv * pc, Color::BLACK);
    for v in 0..nv {
        for u in 0..nu {
            let t = (transform(value(u, v), opts.log_scale) - lo) / range;
            let c = colormap(opts.colormap, t);
            for dy in 0..pc {
                for dx in 0..pc {
                    // Image y runs downward; flip v so "up" is up.
                    img.set(u * pc + dx, (nv - 1 - v) * pc + dy, c);
                }
            }
        }
    }

    if opts.draw_boxes && hier.num_levels() > 1 {
        let outline = Color::new(255, 60, 60);
        for bx in hier.box_array(hier.num_levels() - 1).iter() {
            // Project the box to slice coordinates if the slice plane cuts it.
            let (alo, ahi) = (bx.lo(), bx.hi());
            let (fix_lo, fix_hi, ulo, uhi, vlo, vhi) = match opts.axis {
                SliceAxis::X => (alo[0], ahi[0], alo[1], ahi[1], alo[2], ahi[2]),
                SliceAxis::Y => (alo[1], ahi[1], alo[0], ahi[0], alo[2], ahi[2]),
                SliceAxis::Z => (alo[2], ahi[2], alo[0], ahi[0], alo[1], ahi[1]),
            };
            if (fixed as i64) < fix_lo || (fixed as i64) > fix_hi {
                continue;
            }
            let (u0, u1) = (ulo as usize * pc, (uhi as usize + 1) * pc - 1);
            let (v0, v1) = (vlo as usize * pc, (vhi as usize + 1) * pc - 1);
            let flip = |v: usize| nv * pc - 1 - v;
            for u in u0..=u1.min(nu * pc - 1) {
                img.set(u, flip(v0), outline);
                img.set(u, flip(v1.min(nv * pc - 1)), outline);
            }
            for v in v0..=v1.min(nv * pc - 1) {
                img.set(u0, flip(v), outline);
                img.set(u1.min(nu * pc - 1), flip(v), outline);
            }
        }
    }
    Ok(img)
}

fn transform(v: f64, log_scale: bool) -> f64 {
    if log_scale {
        v.max(1e-300).log10()
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_amr::{Box3, BoxArray, Geometry, IntVect};

    fn two_level() -> AmrHierarchy {
        let geom = Geometry::unit(Box3::from_dims(8, 8, 8));
        let mut h = AmrHierarchy::new(
            geom,
            vec![2],
            vec![
                BoxArray::single(geom.domain),
                BoxArray::single(Box3::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11))),
            ],
        )
        .unwrap();
        h.add_field_from_fn("f", |lev, iv| {
            (iv[0] + iv[1]) as f64 / if lev == 0 { 1.0 } else { 2.0 }
        })
        .unwrap();
        h
    }

    #[test]
    fn slice_dimensions() {
        let h = two_level();
        let img = render_slice(
            &h,
            "f",
            &SliceOptions {
                pixels_per_cell: 3,
                ..Default::default()
            },
        )
        .unwrap();
        // Finest res 16×16, 3 px/cell.
        assert_eq!(img.width, 48);
        assert_eq!(img.height, 48);
    }

    #[test]
    fn gradient_appears_in_image() {
        let h = two_level();
        let img = render_slice(
            &h,
            "f",
            &SliceOptions {
                draw_boxes: false,
                ..Default::default()
            },
        )
        .unwrap();
        // f grows along +x → left and right edges differ.
        let left = img.get(0, img.height / 2);
        let right = img.get(img.width - 1, img.height / 2);
        assert_ne!(left, right);
    }

    #[test]
    fn box_outline_drawn_when_slice_cuts_it() {
        let h = two_level();
        let with = render_slice(
            &h,
            "f",
            &SliceOptions {
                frac: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let without = render_slice(
            &h,
            "f",
            &SliceOptions {
                frac: 0.5,
                draw_boxes: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(with, without, "outline had no effect");
        // Outline color appears.
        let mut found = false;
        for y in 0..with.height {
            for x in 0..with.width {
                if with.get(x, y) == Color::new(255, 60, 60) {
                    found = true;
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn slice_missing_the_fine_box_has_no_outline() {
        let h = two_level();
        // Fine box covers z ∈ [4,11] of 16 → frac 0.1 (z=1) misses it.
        let img = render_slice(
            &h,
            "f",
            &SliceOptions {
                frac: 0.05,
                ..Default::default()
            },
        )
        .unwrap();
        for y in 0..img.height {
            for x in 0..img.width {
                assert_ne!(img.get(x, y), Color::new(255, 60, 60));
            }
        }
    }

    #[test]
    fn all_axes_work() {
        let h = two_level();
        for axis in [SliceAxis::X, SliceAxis::Y, SliceAxis::Z] {
            let img = render_slice(
                &h,
                "f",
                &SliceOptions {
                    axis,
                    log_scale: true,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(img.width > 0 && img.height > 0);
        }
    }

    #[test]
    fn unknown_field_errors() {
        let h = two_level();
        assert!(render_slice(&h, "nope", &SliceOptions::default()).is_err());
    }
}
