//! Software rendering for the paper's figure analogues.
//!
//! The paper's evidence is largely visual (Figs. 1, 2, 9–11). This crate
//! renders the same artifacts without any GPU or windowing dependency:
//!
//! * [`image`] — RGB raster images with PPM and (uncompressed) PNG writers;
//! * [`color`] — colormaps (viridis-like, coolwarm, grayscale);
//! * [`camera`] — orthographic/perspective look-at cameras;
//! * [`raster`] — a z-buffer triangle rasterizer with flat or smooth
//!   Lambertian shading (flat shading makes compression bump/block
//!   artifacts pop, which is the point);
//! * [`slice`] — volume slice rendering with AMR box-outline overlays
//!   (the Fig. 2 "grid adapts with the universe" analogue).

pub mod camera;
pub mod color;
pub mod image;
pub mod raster;
pub mod slice;
pub mod volume;

pub use camera::Camera;
pub use color::{colormap, Color, Colormap};
pub use image::Image;
pub use raster::{render_mesh, RenderOptions, Shading};
pub use slice::{render_slice, SliceAxis, SliceOptions};
pub use volume::{render_volume, VolumeOptions};
