//! Separable 3D FFT over a dense complex grid.
//!
//! Layout is x-fastest (`idx = i + nx*(j + ny*k)`), matching the rest of the
//! workspace. Each axis is transformed with a shared [`Fft1dPlan`]; lines
//! are processed in parallel on the deterministic `amrviz-par` pool.

use crate::complex::Complex;
use crate::fft1d::Fft1dPlan;

/// Dense 3D complex grid with x-fastest layout.
pub struct Grid3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub data: Vec<Complex>,
}

impl Grid3 {
    /// Zero-filled grid.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        Grid3 {
            nx,
            ny,
            nz,
            data: vec![Complex::ZERO; nx * ny * nz],
        }
    }

    /// Grid built from a real scalar field.
    pub fn from_real(nx: usize, ny: usize, nz: usize, real: &[f64]) -> Self {
        assert_eq!(real.len(), nx * ny * nz);
        Grid3 {
            nx,
            ny,
            nz,
            data: real.iter().map(|&r| Complex::real(r)).collect(),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> Complex {
        self.data[self.idx(i, j, k)]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: Complex) {
        let idx = self.idx(i, j, k);
        self.data[idx] = v;
    }

    /// Real parts of all samples.
    pub fn real_part(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.re).collect()
    }
}

enum Direction {
    Forward,
    Inverse,
}

fn transform_axis(grid: &mut Grid3, axis: usize, dir: &Direction) {
    let (nx, ny, nz) = (grid.nx, grid.ny, grid.nz);
    let n = [nx, ny, nz][axis];
    let plan = Fft1dPlan::new(n);

    match axis {
        0 => {
            // x lines are contiguous: transform each row in place.
            amrviz_par::for_each_chunk_mut(&mut grid.data, nx, |_, row| match dir {
                Direction::Forward => plan.forward(row),
                Direction::Inverse => plan.inverse(row),
            });
        }
        1 => {
            // y lines live within one z-slab; parallelize over slabs.
            amrviz_par::for_each_chunk_mut(&mut grid.data, nx * ny, |_, slab| {
                let mut line = vec![Complex::ZERO; ny];
                for i in 0..nx {
                    for j in 0..ny {
                        line[j] = slab[i + nx * j];
                    }
                    match dir {
                        Direction::Forward => plan.forward(&mut line),
                        Direction::Inverse => plan.inverse(&mut line),
                    }
                    for j in 0..ny {
                        slab[i + nx * j] = line[j];
                    }
                }
            });
        }
        2 => {
            // z lines stride across slabs; parallelize over (i, j) pencils by
            // chunking flattened pencil indices.
            let stride = nx * ny;
            let data_ptr = SyncPtr(grid.data.as_mut_ptr());
            amrviz_par::run(stride, |p| {
                let ptr = data_ptr; // copy the Sync wrapper into the closure
                let mut line = vec![Complex::ZERO; nz];
                // SAFETY: each pencil index `p` touches the disjoint index
                // set {p + stride*k}, so parallel pencils never alias.
                unsafe {
                    for (k, item) in line.iter_mut().enumerate() {
                        *item = *ptr.0.add(p + stride * k);
                    }
                    match dir {
                        Direction::Forward => plan.forward(&mut line),
                        Direction::Inverse => plan.inverse(&mut line),
                    }
                    for (k, item) in line.iter().enumerate() {
                        *ptr.0.add(p + stride * k) = *item;
                    }
                }
            });
        }
        _ => unreachable!("axis must be 0, 1, or 2"),
    }
}

#[derive(Clone, Copy)]
struct SyncPtr(*mut Complex);
// SAFETY: used only with provably disjoint index sets (see transform_axis).
unsafe impl Send for SyncPtr {}
unsafe impl Sync for SyncPtr {}

/// In-place forward 3D FFT.
pub fn fft3(grid: &mut Grid3) {
    transform_axis(grid, 0, &Direction::Forward);
    transform_axis(grid, 1, &Direction::Forward);
    transform_axis(grid, 2, &Direction::Forward);
}

/// In-place inverse 3D FFT (normalized by the total number of samples).
pub fn ifft3(grid: &mut Grid3) {
    transform_axis(grid, 0, &Direction::Inverse);
    transform_axis(grid, 1, &Direction::Inverse);
    transform_axis(grid, 2, &Direction::Inverse);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_3d() {
        let (nx, ny, nz) = (8, 4, 16);
        let real: Vec<f64> = (0..nx * ny * nz).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut g = Grid3::from_real(nx, ny, nz, &real);
        fft3(&mut g);
        ifft3(&mut g);
        for (a, b) in g.real_part().iter().zip(&real) {
            assert!((a - b).abs() < 1e-10);
        }
        for z in &g.data {
            assert!(z.im.abs() < 1e-10);
        }
    }

    #[test]
    fn constant_field_concentrates_at_dc() {
        let (nx, ny, nz) = (4, 4, 4);
        let mut g = Grid3::from_real(nx, ny, nz, &vec![2.5; 64]);
        fft3(&mut g);
        assert!((g.at(0, 0, 0).re - 2.5 * 64.0).abs() < 1e-9);
        for (idx, z) in g.data.iter().enumerate() {
            if idx != 0 {
                assert!(z.abs() < 1e-9, "non-DC energy at {idx}");
            }
        }
    }

    #[test]
    fn plane_wave_hits_expected_bin() {
        let (nx, ny, nz) = (8, 8, 8);
        let (kx, ky, kz) = (2usize, 3usize, 1usize);
        let mut g = Grid3::zeros(nx, ny, nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let phase = 2.0 * std::f64::consts::PI * (kx * i) as f64 / nx as f64
                        + 2.0 * std::f64::consts::PI * (ky * j) as f64 / ny as f64
                        + 2.0 * std::f64::consts::PI * (kz * k) as f64 / nz as f64;
                    g.set(i, j, k, Complex::cis(phase));
                }
            }
        }
        fft3(&mut g);
        let total = (nx * ny * nz) as f64;
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let z = g.at(i, j, k);
                    if (i, j, k) == (kx, ky, kz) {
                        assert!((z.re - total).abs() < 1e-8);
                    } else {
                        assert!(z.abs() < 1e-8);
                    }
                }
            }
        }
    }

    #[test]
    fn anisotropic_dims_supported() {
        let (nx, ny, nz) = (16, 2, 4);
        let real: Vec<f64> = (0..nx * ny * nz).map(|i| (i % 7) as f64).collect();
        let mut g = Grid3::from_real(nx, ny, nz, &real);
        fft3(&mut g);
        ifft3(&mut g);
        for (a, b) in g.real_part().iter().zip(&real) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
