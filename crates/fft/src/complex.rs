//! A small complex-number type.
//!
//! We avoid pulling in `num-complex` because the FFT only needs a handful of
//! operations and keeping the type local lets us guarantee a `#[repr(C)]`
//! layout for cheap reinterpretation of interleaved buffers.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `exp(i·theta)` — a unit phasor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn cis_is_unit_phasor() {
        let z = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!(close(z, Complex::I));
        assert!((Complex::cis(1.234).abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!(close(z * z.conj(), Complex::real(25.0)));
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(1.0, -2.0);
        assert_eq!(z * 2.0, Complex::new(2.0, -4.0));
        assert_eq!(z / 2.0, Complex::new(0.5, -1.0));
    }
}
