//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! A [`Fft1dPlan`] precomputes the bit-reversal permutation and twiddle
//! factors for a fixed power-of-two length so that repeated transforms of
//! the same size (the common case when transforming the rows of a 3D grid)
//! do no trigonometry in the hot loop.

use crate::complex::Complex;
use crate::is_pow2;

/// Precomputed plan for transforms of one fixed length.
pub struct Fft1dPlan {
    n: usize,
    /// Bit-reversal permutation: `rev[i]` is `i` with its `log2(n)` low bits
    /// reversed.
    rev: Vec<u32>,
    /// Twiddles for the forward transform, concatenated per stage: stage `s`
    /// (half-size `m = 2^s`) contributes `m` factors `exp(-iπj/m)`.
    twiddles: Vec<Complex>,
}

impl Fft1dPlan {
    /// Builds a plan for length `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(is_pow2(n), "FFT length must be a power of two, got {n}");
        let bits = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for i in 0..n {
            rev[i] = (rev[i >> 1] >> 1) | (((i & 1) as u32) << (bits.saturating_sub(1)));
        }
        // Per-stage twiddles. Total size n-1 for n >= 1.
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut m = 1usize;
        while m < n {
            let step = -std::f64::consts::PI / m as f64;
            for j in 0..m {
                twiddles.push(Complex::cis(step * j as f64));
            }
            m <<= 1;
        }
        Fft1dPlan { n, rev, twiddles }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward transform.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Complex]) {
        self.transform(data, false);
    }

    /// In-place inverse transform (conjugate kernel, divides by `n`).
    pub fn inverse(&self, data: &mut [Complex]) {
        self.transform(data, true);
        let inv = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }

    fn transform(&self, data: &mut [Complex], invert: bool) {
        let n = self.n;
        assert_eq!(data.len(), n, "buffer length mismatch");
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies. Twiddles for stage with half-size m start at offset
        // m-1 (1 + 2 + ... + m/2 = m - 1).
        let mut m = 1usize;
        while m < n {
            let tw = &self.twiddles[m - 1..2 * m - 1];
            let mut k = 0;
            while k < n {
                for j in 0..m {
                    let w = if invert { tw[j].conj() } else { tw[j] };
                    let t = w * data[k + j + m];
                    let u = data[k + j];
                    data[k + j] = u + t;
                    data[k + j + m] = u - t;
                }
                k += 2 * m;
            }
            m <<= 1;
        }
    }
}

/// One-shot forward FFT (allocates a plan). Prefer [`Fft1dPlan`] in loops.
pub fn fft(data: &mut [Complex]) {
    Fft1dPlan::new(data.len()).forward(data);
}

/// One-shot inverse FFT.
pub fn ifft(data: &mut [Complex]) {
    Fft1dPlan::new(data.len()).inverse(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch: {x:?} vs {y:?} (tol {tol})"
            );
        }
    }

    /// Direct O(n²) DFT used as ground truth.
    fn dft_naive(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc += v * Complex::cis(ang);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[1usize, 2, 4, 8, 16, 64] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin() + 0.3, (i as f64 * 0.7).cos()))
                .collect();
            let want = dft_naive(&x);
            let mut got = x.clone();
            fft(&mut got);
            assert_close(&got, &want, 1e-9 * n as f64);
        }
    }

    #[test]
    fn roundtrip() {
        let n = 256;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.29).cos()))
            .collect();
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        assert_close(&y, &x, 1e-10);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 32;
        let mut x = vec![Complex::ZERO; n];
        x[0] = Complex::ONE;
        fft(&mut x);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_has_one_bin() {
        let n = 64;
        let k0 = 5;
        let mut x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * std::f64::consts::PI * (k0 * i) as f64 / n as f64))
            .collect();
        fft(&mut x);
        for (k, z) in x.iter().enumerate() {
            if k == k0 {
                assert!((z.re - n as f64).abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leakage at bin {k}: {z:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        Fft1dPlan::new(12);
    }

    #[test]
    fn parsevals_theorem_holds() {
        let n = 128;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 1.7).sin(), (i as f64 * 0.31).tanh()))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x;
        fft(&mut y);
        let freq_energy: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }
}
