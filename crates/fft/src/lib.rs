//! Minimal complex FFT library.
//!
//! Provides an iterative radix-2 Cooley–Tukey transform in one dimension and
//! a separable three-dimensional transform built on top of it. The library
//! exists to support spectral synthesis of Gaussian random fields in
//! `amrviz-sim`; it is deliberately small and only supports power-of-two
//! lengths, which is all the synthetic generators need.
//!
//! Conventions: the forward transform computes
//! `X[k] = Σ_n x[n]·exp(-2πi·k·n/N)` (no normalization); the inverse applies
//! the conjugate kernel and divides by `N`, so `ifft(fft(x)) == x` up to
//! floating-point rounding.

mod complex;
mod fft1d;
mod fft3d;

pub use complex::Complex;
pub use fft1d::{fft, ifft, Fft1dPlan};
pub use fft3d::{fft3, ifft3, Grid3};

/// Returns `true` if `n` is a power of two (and nonzero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `>= n`.
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_checks() {
        assert!(is_pow2(1));
        assert!(is_pow2(2));
        assert!(is_pow2(1024));
        assert!(!is_pow2(0));
        assert!(!is_pow2(3));
        assert!(!is_pow2(1023));
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 4);
        assert_eq!(next_pow2(1000), 1024);
    }
}
