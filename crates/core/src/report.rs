//! Plain-text table rendering for the `repro` harness.

use crate::experiment::{CompressionRun, CrackRun, RateDistortionPoint, Table1Row, VizQualityRun};

/// Renders a list of rows as an aligned ASCII table.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut width: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "ragged table row");
        for (c, cell) in row.iter().enumerate() {
            width[c] = width[c].max(cell.len());
        }
    }
    let sep = |w: &[usize]| -> String {
        let mut s = String::from("+");
        for &wc in w {
            s.push_str(&"-".repeat(wc + 2));
            s.push('+');
        }
        s.push('\n');
        s
    };
    let fmt_row = |cells: &[String]| -> String {
        let mut s = String::from("|");
        for (c, cell) in cells.iter().enumerate() {
            s.push_str(&format!(" {:<w$} |", cell, w = width[c]));
        }
        s.push('\n');
        s
    };
    let mut out = sep(&width);
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push_str(&sep(&width));
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out.push_str(&sep(&width));
    out
}

fn sig(v: f64, digits: usize) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    if !v.is_finite() {
        return format!("{v}");
    }
    let mag = v.abs().log10().floor() as i32;
    if (-3..6).contains(&mag) {
        let decimals = (digits as i32 - 1 - mag).max(0) as usize;
        format!("{v:.decimals$}")
    } else {
        format!("{v:.prec$e}", prec = digits - 1)
    }
}

/// Table 1 in the paper's layout.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.levels.to_string(),
                r.grid_sizes
                    .iter()
                    .map(|d| format!("{}x{}x{}", d[0], d[1], d[2]))
                    .collect::<Vec<_>>()
                    .join(", "),
                r.densities
                    .iter()
                    .map(|d| format!("{:.1}%", d * 100.0))
                    .collect::<Vec<_>>()
                    .join(", "),
                r.total_cells.to_string(),
            ]
        })
        .collect();
    ascii_table(
        &[
            "Runs",
            "#AMR Levels",
            "Grid size of each level",
            "Density of each level",
            "Cells",
        ],
        &body,
    )
}

/// Table 2 in the paper's layout (CR here is the f32-baseline ratio, the
/// representation the paper's datasets use; CR(f64) also shown).
pub fn format_table2(rows: &[CompressionRun]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.compressor.to_string(),
                format!("{:.0e}", r.rel_error_bound),
                format!("{:.1}", r.compression_ratio_f32),
                format!("{:.1}", r.compression_ratio),
                format!("{:.2}", r.psnr_db),
                format!("{:.7}", r.ssim),
                sig(r.rssim, 3),
                sig(r.bits_per_value, 3),
            ]
        })
        .collect();
    ascii_table(
        &[
            "App",
            "Compressor",
            "Err bound",
            "CR (f32)",
            "CR (f64)",
            "PSNR",
            "SSIM",
            "R-SSIM",
            "bits/val",
        ],
        &body,
    )
}

/// Rate-distortion series (Figs. 12–13).
pub fn format_rate_distortion(pts: &[RateDistortionPoint]) -> String {
    let body: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.compressor.to_string(),
                format!("{:.0e}", p.rel_error_bound),
                format!("{:.3}", p.bits_per_value),
                format!("{:.2}", p.psnr_db),
                sig(p.rssim, 3),
            ]
        })
        .collect();
    ascii_table(
        &["Compressor", "Err bound", "bits/val", "PSNR (dB)", "R-SSIM"],
        &body,
    )
}

/// Crack/gap structure table (Fig. 1).
pub fn format_cracks(rows: &[CrackRun]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.method.to_string(),
                r.coarse_triangles.to_string(),
                r.fine_triangles.to_string(),
                r.rim_edges.to_string(),
                sig(r.mean_gap, 3),
                sig(r.max_gap, 3),
            ]
        })
        .collect();
    ascii_table(
        &[
            "App",
            "Method",
            "Coarse tris",
            "Fine tris",
            "Rim edges",
            "Mean gap",
            "Max gap",
        ],
        &body,
    )
}

/// Visualization-quality table (Figs. 9–11).
pub fn format_viz_quality(rows: &[VizQualityRun]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.compressor.to_string(),
                format!("{:.0e}", r.rel_error_bound),
                r.method.to_string(),
                sig(r.surface_error_cells, 3),
                sig(r.surface_error_max_cells, 3),
                sig(r.roughness_increase, 3),
                sig(r.image_rssim, 3),
                r.triangles.to_string(),
            ]
        })
        .collect();
    ascii_table(
        &[
            "App",
            "Compressor",
            "Err bound",
            "Method",
            "Surf err (cells)",
            "Max err (cells)",
            "Roughness Δ",
            "Image R-SSIM",
            "Triangles",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_table_alignment() {
        let t = ascii_table(
            &["a", "long header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        // 3 separators + header + 2 rows.
        assert_eq!(lines.len(), 6);
        let len = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == len), "ragged table:\n{t}");
        assert!(t.contains("| yyyy |"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        ascii_table(&["a", "b"], &[vec!["only one".into()]]);
    }

    #[test]
    fn sig_formatting() {
        assert_eq!(sig(0.0, 3), "0");
        assert_eq!(sig(123.456, 3), "123");
        assert_eq!(sig(0.000123456, 3), "1.23e-4");
        assert_eq!(sig(1.23e-7, 3), "1.23e-7");
        assert_eq!(sig(0.5, 3), "0.500");
    }
}
