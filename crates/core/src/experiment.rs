//! Experiment runners — one per table/figure of the paper.
//!
//! All timing is measured through `amrviz-obs` spans: the seconds recorded
//! in result rows (e.g. [`CompressionRun::compress_seconds`]) are the same
//! wall-clock durations the trace exporters see, so a `--trace` file and
//! the tabulated timings can never disagree.

use amrviz_amr::resample::{flatten_levels_to_finest, Upsample};
use amrviz_amr::MultiFab;
use amrviz_compress::{
    compress_hierarchy_field, decompress_hierarchy_field, AmrCodecConfig, CompressError,
    CompressionStats, Compressor, ErrorBound, SzInterp, SzLr, ZfpLike,
};
use amrviz_json::{Json, ToJson};
use amrviz_metrics::{quality, rssim, ssim2, ssim3, SsimConfig};
use amrviz_render::{render_mesh, Camera, RenderOptions};
use amrviz_viz::{
    extract_amr_isosurface, interface_gap, normal_roughness, surface_distance_to, IsoMethod,
    TriLocator,
};

use crate::scenario::BuiltScenario;

/// The compressors under evaluation (paper §3.3 plus the ZFP-like
/// extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressorKind {
    SzLr,
    SzInterp,
    ZfpLike,
}

impl CompressorKind {
    pub fn label(self) -> &'static str {
        match self {
            CompressorKind::SzLr => "SZ-L/R",
            CompressorKind::SzInterp => "SZ-Itp",
            CompressorKind::ZfpLike => "ZFP-like",
        }
    }

    /// The two the paper evaluates.
    pub const PAPER: [CompressorKind; 2] = [CompressorKind::SzLr, CompressorKind::SzInterp];

    pub fn instance(self) -> Box<dyn Compressor> {
        match self {
            CompressorKind::SzLr => Box::new(SzLr::default()),
            CompressorKind::SzInterp => Box::new(SzInterp),
            CompressorKind::ZfpLike => Box::new(ZfpLike),
        }
    }
}

/// One compression run: Table 2's columns (plus timings and bitrate).
#[derive(Debug, Clone)]
pub struct CompressionRun {
    /// Scenario label ("Nyx", "WarpX", or a recipe-derived label).
    pub scenario: String,
    /// Canonical recipe string reproducing the scenario (provenance).
    pub recipe: String,
    pub compressor: &'static str,
    pub rel_error_bound: f64,
    pub abs_error_bound: f64,
    /// CR against the stored f64 representation.
    pub compression_ratio: f64,
    /// CR against an f32 baseline — comparable to the paper's Table 2
    /// (Nyx/WarpX dumps are single precision).
    pub compression_ratio_f32: f64,
    pub bits_per_value: f64,
    pub psnr_db: f64,
    pub ssim: f64,
    pub rssim: f64,
    pub max_abs_error: f64,
    pub compress_seconds: f64,
    pub decompress_seconds: f64,
    /// Trace id the run's spans were recorded under (0 when the recorder
    /// is disabled). Lets a reader jump from a Table 2 row straight to the
    /// matching span tree in a `--journal` file.
    pub trace_id: u64,
}

/// Compresses and decompresses a built scenario's evaluation field, then
/// scores the reconstruction on the uniform-resolution merge. Errors
/// (unknown field, a stream that fails to decode) propagate instead of
/// panicking, so callers decide how a failed run is reported.
pub fn run_compression(
    built: &BuiltScenario,
    kind: CompressorKind,
    rel_eb: f64,
) -> Result<CompressionRun, CompressError> {
    let comp = kind.instance();
    let field = built.spec.eval_field();
    let cfg = AmrCodecConfig::default();

    let sp = amrviz_obs::span!("compress", compressor = kind.label(), rel_eb = rel_eb);
    // Captured while the root span is live: all of this run's spans share it.
    let trace_id = amrviz_obs::current_trace_id();
    let compressed = compress_hierarchy_field(
        &built.hierarchy,
        field,
        comp.as_ref(),
        ErrorBound::Rel(rel_eb),
        &cfg,
    )?;
    let compress_seconds = sp.finish();

    let sp = amrviz_obs::span!("decompress", compressor = kind.label());
    let levels = decompress_hierarchy_field(&built.hierarchy, &compressed, comp.as_ref(), &cfg)?;
    let decompress_seconds = sp.finish();

    let sp_score = amrviz_obs::span!("score", compressor = kind.label());
    let recon_uniform = flatten_levels(built, &levels)?;
    let stats = CompressionStats::new(compressed.n_values, compressed.compressed_bytes());
    let q = quality(&built.uniform.data, &recon_uniform);
    let dims = built.uniform.dims();
    let s = ssim3(
        &built.uniform.data,
        &recon_uniform,
        dims,
        &SsimConfig::default(),
    );
    sp_score.finish();
    Ok(CompressionRun {
        scenario: built.spec.label(),
        recipe: built.spec.recipe.clone(),
        compressor: kind.label(),
        rel_error_bound: rel_eb,
        abs_error_bound: compressed.abs_eb,
        compression_ratio: stats.ratio(),
        compression_ratio_f32: stats.ratio_vs_f32(),
        bits_per_value: stats.bits_per_value(),
        psnr_db: q.psnr,
        ssim: s,
        rssim: rssim(s),
        max_abs_error: q.max_abs_err,
        compress_seconds,
        decompress_seconds,
        trace_id,
    })
}

/// Merges decompressed level data to the finest uniform resolution. The
/// level multifabs are borrowed directly — no hierarchy clone and no
/// temporary field attachment.
fn flatten_levels(built: &BuiltScenario, levels: &[MultiFab]) -> Result<Vec<f64>, CompressError> {
    let _sp = amrviz_obs::span!("flatten_levels");
    flatten_levels_to_finest(&built.hierarchy, levels, Upsample::PiecewiseConstant)
        .map(|u| u.data)
        .map_err(|e| CompressError::Malformed(e.to_string()))
}

/// Table 1 row: dataset structure.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub scenario: String,
    pub levels: usize,
    pub grid_sizes: Vec<[usize; 3]>,
    /// Per-level fraction of the domain whose finest data is that level.
    pub densities: Vec<f64>,
    pub total_cells: usize,
}

/// Regenerates Table 1 from built scenarios.
pub fn run_table1(built: &[&BuiltScenario]) -> Vec<Table1Row> {
    let _sp = amrviz_obs::span!("run.table1", scenarios = built.len());
    built
        .iter()
        .map(|b| {
            let h = &b.hierarchy;
            Table1Row {
                scenario: b.spec.label(),
                levels: h.num_levels(),
                grid_sizes: (0..h.num_levels())
                    .map(|l| h.level_domain(l).size())
                    .collect(),
                densities: (0..h.num_levels()).map(|l| h.level_density(l)).collect(),
                total_cells: h.total_cells(),
            }
        })
        .collect()
}

/// Regenerates Table 2: both compressors × three error bounds per app.
pub fn run_table2(built: &BuiltScenario) -> Result<Vec<CompressionRun>, CompressError> {
    let _sp = amrviz_obs::span!("run.table2");
    let mut rows = Vec::new();
    for kind in CompressorKind::PAPER {
        for eb in [1e-4, 1e-3, 1e-2] {
            rows.push(run_compression(built, kind, eb)?);
        }
    }
    Ok(rows)
}

/// One point of a rate-distortion curve (Figs. 12–13).
#[derive(Debug, Clone)]
pub struct RateDistortionPoint {
    pub compressor: &'static str,
    pub rel_error_bound: f64,
    pub bits_per_value: f64,
    pub psnr_db: f64,
    pub rssim: f64,
}

/// Sweeps error bounds for both compressors (Fig. 12 for WarpX "Ez",
/// Fig. 13 for Nyx "Density").
pub fn run_rate_distortion(
    built: &BuiltScenario,
    ebs: &[f64],
) -> Result<Vec<RateDistortionPoint>, CompressError> {
    let _sp = amrviz_obs::span!("run.rate_distortion", bounds = ebs.len());
    let mut pts = Vec::new();
    for kind in CompressorKind::PAPER {
        for &eb in ebs {
            let run = run_compression(built, kind, eb)?;
            pts.push(RateDistortionPoint {
                compressor: kind.label(),
                rel_error_bound: eb,
                bits_per_value: run.bits_per_value,
                psnr_db: run.psnr_db,
                rssim: run.rssim,
            });
        }
    }
    Ok(pts)
}

/// Crack/gap structure of the *original* data under each method (Fig. 1).
#[derive(Debug, Clone)]
pub struct CrackRun {
    pub scenario: String,
    pub method: &'static str,
    pub coarse_triangles: usize,
    pub fine_triangles: usize,
    pub rim_edges: usize,
    pub rim_length: f64,
    pub mean_gap: f64,
    pub max_gap: f64,
}

/// Extracts the original-data surface with every method and measures the
/// level-interface defects.
pub fn run_crack_analysis(built: &BuiltScenario) -> Vec<CrackRun> {
    let _sp = amrviz_obs::span!("run.crack_analysis");
    let field = built.spec.eval_field();
    let levels = &built.hierarchy.field(field).expect("eval field").levels;
    let geom = built.hierarchy.geometry();
    let mut rows = Vec::new();
    for method in IsoMethod::ALL {
        let res = extract_amr_isosurface(&built.hierarchy, levels, built.iso, method);
        let gap = interface_gap(
            &res.level_meshes[1],
            &res.level_meshes[0],
            geom.prob_lo,
            geom.prob_hi,
            1e-9,
        );
        let gap = gap.unwrap_or(amrviz_viz::CrackMetrics {
            n_rim_edges: 0,
            rim_length: 0.0,
            mean_gap: 0.0,
            p95_gap: 0.0,
            max_gap: 0.0,
        });
        rows.push(CrackRun {
            scenario: built.spec.label(),
            method: method.label(),
            coarse_triangles: res.level_meshes[0].num_triangles(),
            fine_triangles: res.level_meshes[1].num_triangles(),
            rim_edges: gap.n_rim_edges,
            rim_length: gap.rim_length,
            mean_gap: gap.mean_gap,
            max_gap: gap.max_gap,
        });
    }
    rows
}

/// Visualization-quality comparison of decompressed data (Figs. 9–11,
/// quantified): how far the decompressed-data surface deviates from the
/// original-data surface under the same method, and how much rougher it
/// got.
#[derive(Debug, Clone)]
pub struct VizQualityRun {
    pub scenario: String,
    pub compressor: &'static str,
    pub rel_error_bound: f64,
    pub method: &'static str,
    /// Mean distance from the decompressed surface to the original one, in
    /// units of a fine cell (scale-free).
    pub surface_error_cells: f64,
    /// Max (Hausdorff-ish) distance in fine cells.
    pub surface_error_max_cells: f64,
    /// Roughness (mean dihedral deviation, radians) of the decompressed
    /// surface minus the original's — positive = bumpier.
    pub roughness_increase: f64,
    /// R-SSIM between renderings of the original-data surface and the
    /// decompressed-data surface under the same method and camera — the
    /// quantified version of the paper's visual judgment in Figs. 9–11.
    pub image_rssim: f64,
    pub triangles: usize,
}

/// A standard camera looking diagonally at the scenario's domain.
pub fn standard_camera(built: &BuiltScenario) -> Camera {
    let geom = built.hierarchy.geometry();
    let center = [
        0.5 * (geom.prob_lo[0] + geom.prob_hi[0]),
        0.5 * (geom.prob_lo[1] + geom.prob_hi[1]),
        0.5 * (geom.prob_lo[2] + geom.prob_hi[2]),
    ];
    let diag = (0..3)
        .map(|a| (geom.prob_hi[a] - geom.prob_lo[a]).powi(2))
        .sum::<f64>()
        .sqrt();
    let eye = [
        center[0] - diag,
        center[1] - 0.6 * diag,
        center[2] + 0.5 * diag,
    ];
    Camera::orthographic(eye, center, 0.55 * diag)
}

/// Runs the decompress → extract → compare pipeline for one compressor at
/// several bounds under both extraction methods.
pub fn run_viz_quality(
    built: &BuiltScenario,
    kind: CompressorKind,
    ebs: &[f64],
    methods: &[IsoMethod],
) -> Result<Vec<VizQualityRun>, CompressError> {
    let _sp = amrviz_obs::span!("run.viz_quality", compressor = kind.label());
    let comp = kind.instance();
    let field = built.spec.eval_field();
    let orig_levels = &built
        .hierarchy
        .field(field)
        .map_err(|e| CompressError::Malformed(e.to_string()))?
        .levels;
    let fine_cell = built.hierarchy.geometry().cell_size_at(
        built
            .hierarchy
            .ratio_to_level0(built.hierarchy.num_levels() - 1),
    )[0];

    // Reference surfaces and renders from the original data, computed once
    // per method (they do not depend on the error bound).
    let cam = standard_camera(built);
    let opts = RenderOptions {
        width: 480,
        height: 360,
        ..Default::default()
    };
    struct Reference {
        method: IsoMethod,
        locator: Option<TriLocator>,
        roughness: f64,
        lum: Vec<f64>,
    }
    let references: Vec<Reference> = methods
        .iter()
        .map(|&method| {
            let orig = extract_amr_isosurface(&built.hierarchy, orig_levels, built.iso, method)
                .into_combined();
            let lum = render_mesh(&orig, &cam, &opts).luminance();
            let roughness = normal_roughness(&orig);
            Reference {
                method,
                // `orig` is done with borrows here; the locator takes over
                // its buffers rather than copying them.
                locator: TriLocator::build_owned(orig),
                roughness,
                lum,
            }
        })
        .collect();

    let mut rows = Vec::new();
    for &eb in ebs {
        let cfg = AmrCodecConfig::default();
        let compressed = compress_hierarchy_field(
            &built.hierarchy,
            field,
            comp.as_ref(),
            ErrorBound::Rel(eb),
            &cfg,
        )?;
        let levels =
            decompress_hierarchy_field(&built.hierarchy, &compressed, comp.as_ref(), &cfg)?;
        for r in &references {
            let recon = extract_amr_isosurface(&built.hierarchy, &levels, built.iso, r.method)
                .into_combined();
            let dist = r
                .locator
                .as_ref()
                .and_then(|loc| surface_distance_to(&recon, loc));
            let (mean_c, max_c) = match dist {
                Some(d) => (d.mean / fine_cell, d.max / fine_cell),
                None => (f64::NAN, f64::NAN),
            };
            let img_r = render_mesh(&recon, &cam, &opts);
            let image_ssim = ssim2(
                &r.lum,
                &img_r.luminance(),
                [opts.width, opts.height],
                &SsimConfig::default(),
            );
            rows.push(VizQualityRun {
                scenario: built.spec.label(),
                compressor: kind.label(),
                rel_error_bound: eb,
                method: r.method.label(),
                surface_error_cells: mean_c,
                surface_error_max_cells: max_c,
                roughness_increase: normal_roughness(&recon) - r.roughness,
                image_rssim: rssim(image_ssim),
                triangles: recon.num_triangles(),
            });
        }
    }
    Ok(rows)
}

impl ToJson for CompressorKind {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_string())
    }
}

impl ToJson for CompressionRun {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        // Key stays "app" for continuity with pre-recipe summary.jsonl.
        o.set("app", self.scenario.as_str())
            .set("recipe", self.recipe.as_str())
            .set("compressor", self.compressor)
            .set("rel_error_bound", self.rel_error_bound)
            .set("abs_error_bound", self.abs_error_bound)
            .set("compression_ratio", self.compression_ratio)
            .set("compression_ratio_f32", self.compression_ratio_f32)
            .set("bits_per_value", self.bits_per_value)
            .set("psnr_db", self.psnr_db)
            .set("ssim", self.ssim)
            .set("rssim", self.rssim)
            .set("max_abs_error", self.max_abs_error)
            .set("compress_seconds", self.compress_seconds)
            .set("decompress_seconds", self.decompress_seconds);
        if self.trace_id != 0 {
            // Hex string, matching the journal: `crates/json` numbers are
            // f64 and would round a raw u64 id.
            o.set("trace", format!("{:016x}", self.trace_id));
        }
        o
    }
}

impl ToJson for Table1Row {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("app", self.scenario.as_str())
            .set("levels", self.levels)
            .set("grid_sizes", self.grid_sizes.to_json())
            .set("densities", self.densities.to_json())
            .set("total_cells", self.total_cells);
        o
    }
}

impl ToJson for RateDistortionPoint {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("compressor", self.compressor)
            .set("rel_error_bound", self.rel_error_bound)
            .set("bits_per_value", self.bits_per_value)
            .set("psnr_db", self.psnr_db)
            .set("rssim", self.rssim);
        o
    }
}

impl ToJson for CrackRun {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("app", self.scenario.as_str())
            .set("method", self.method)
            .set("coarse_triangles", self.coarse_triangles)
            .set("fine_triangles", self.fine_triangles)
            .set("rim_edges", self.rim_edges)
            .set("rim_length", self.rim_length)
            .set("mean_gap", self.mean_gap)
            .set("max_gap", self.max_gap);
        o
    }
}

impl ToJson for VizQualityRun {
    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("app", self.scenario.as_str())
            .set("compressor", self.compressor)
            .set("rel_error_bound", self.rel_error_bound)
            .set("method", self.method)
            .set("surface_error_cells", self.surface_error_cells)
            .set("surface_error_max_cells", self.surface_error_max_cells)
            .set("roughness_increase", self.roughness_increase)
            .set("image_rssim", self.image_rssim)
            .set("triangles", self.triangles);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Application, Scenario};
    use amrviz_sim::Scale;

    fn nyx() -> BuiltScenario {
        Scenario::new(Application::Nyx, Scale::Tiny, 42).build()
    }

    fn warpx() -> BuiltScenario {
        Scenario::new(Application::Warpx, Scale::Tiny, 42).build()
    }

    #[test]
    fn compression_run_is_sane() {
        let b = warpx();
        let run = run_compression(&b, CompressorKind::SzInterp, 1e-3).unwrap();
        assert!(run.compression_ratio > 4.0, "CR {}", run.compression_ratio);
        assert!(run.psnr_db > 50.0, "PSNR {}", run.psnr_db);
        assert!(run.ssim > 0.99);
        assert!((run.rssim - (1.0 - run.ssim)).abs() < 1e-12);
        assert!(run.max_abs_error <= run.abs_error_bound * (1.0 + 1e-9));
        assert!(run.bits_per_value < 16.0);
    }

    #[test]
    fn table1_structure() {
        let bn = nyx();
        let bw = warpx();
        let rows = run_table1(&[&bw, &bn]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.levels, 2);
            let sum: f64 = row.densities.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        // WarpX refines far less than Nyx.
        assert!(rows[0].densities[1] < rows[1].densities[1]);
    }

    #[test]
    fn table2_has_12_rows_and_monotone_cr() {
        let b = warpx();
        let rows = run_table2(&b).unwrap();
        assert_eq!(rows.len(), 6); // per app: 2 compressors × 3 bounds
        for w in rows.chunks(3) {
            assert!(
                w[0].compression_ratio < w[2].compression_ratio,
                "CR should grow with eb: {} vs {}",
                w[0].compression_ratio,
                w[2].compression_ratio
            );
            assert!(w[0].psnr_db > w[2].psnr_db, "PSNR should fall with eb");
            assert!(w[0].rssim < w[2].rssim, "R-SSIM should grow with eb");
        }
    }

    #[test]
    fn interp_beats_lr_on_warpx_rate_distortion() {
        // The headline of Fig. 12: on smooth data SZ-Interp compresses
        // harder at the same bound.
        let b = warpx();
        let lr = run_compression(&b, CompressorKind::SzLr, 1e-3).unwrap();
        let itp = run_compression(&b, CompressorKind::SzInterp, 1e-3).unwrap();
        assert!(
            itp.compression_ratio > lr.compression_ratio,
            "Interp {} !> L/R {}",
            itp.compression_ratio,
            lr.compression_ratio
        );
    }

    #[test]
    fn crack_analysis_shape() {
        let b = warpx();
        let rows = run_crack_analysis(&b);
        assert_eq!(rows.len(), 3);
        let by = |m: &str| rows.iter().find(|r| r.method == m).unwrap();
        let resample = by("re-sampling");
        let dual = by("dual-cell");
        let fixed = by("dual-cell+redundant");
        // Fig. 1 ordering: dual gap > re-sampling crack > redundant gap.
        assert!(dual.mean_gap > resample.mean_gap);
        assert!(fixed.mean_gap < dual.mean_gap);
    }

    #[test]
    fn dual_cell_amplifies_compression_artifacts() {
        // The paper's central claim (Figs. 9–10, §4.3): at a large bound the
        // dual-cell surface of decompressed WarpX data deviates more from
        // the original surface (and renders worse) than re-sampling's.
        let b = warpx();
        let rows = run_viz_quality(
            &b,
            CompressorKind::SzLr,
            &[1e-2],
            &[IsoMethod::Resampling, IsoMethod::DualCellRedundant],
        )
        .unwrap();
        let resample = rows.iter().find(|r| r.method == "re-sampling").unwrap();
        let dual = rows
            .iter()
            .find(|r| r.method == "dual-cell+redundant")
            .unwrap();
        assert!(
            dual.surface_error_cells > resample.surface_error_cells,
            "dual {} !> re-sampling {}",
            dual.surface_error_cells,
            resample.surface_error_cells
        );
        assert!(
            dual.image_rssim > resample.image_rssim,
            "rendered dual {} !> re-sampling {}",
            dual.image_rssim,
            resample.image_rssim
        );
    }

    #[test]
    fn zfp_like_also_runs() {
        let b = warpx();
        let run = run_compression(&b, CompressorKind::ZfpLike, 1e-3).unwrap();
        assert!(run.compression_ratio > 2.0);
        assert!(run.max_abs_error <= run.abs_error_bound * (1.0 + 1e-9));
    }
}
