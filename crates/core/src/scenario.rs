//! The two evaluation scenarios (paper §3.2, Table 1).

use amrviz_amr::resample::{flatten_to_finest, Upsample};
use amrviz_amr::{AmrHierarchy, UniformField};
use amrviz_json::{Json, ToJson};
use amrviz_sim::{NyxScenario, Scale, WarpxScenario};

/// Which AMR application's data to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Application {
    /// Nyx cosmology — irregular, spiky density field.
    Nyx,
    /// WarpX PIC — smooth electromagnetic field.
    Warpx,
}

impl Application {
    pub fn label(self) -> &'static str {
        match self {
            Application::Nyx => "Nyx",
            Application::Warpx => "WarpX",
        }
    }

    /// The field the paper evaluates (Table 2, Figs. 12–13).
    pub fn eval_field(self) -> &'static str {
        match self {
            Application::Nyx => "baryon_density",
            Application::Warpx => "Ez",
        }
    }

    pub const ALL: [Application; 2] = [Application::Warpx, Application::Nyx];
}

impl ToJson for Application {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_string())
    }
}

/// A scenario specification.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    pub app: Application,
    pub scale: Scale,
    pub seed: u64,
}

/// A generated scenario: the hierarchy plus evaluation conveniences.
pub struct BuiltScenario {
    pub spec: Scenario,
    pub hierarchy: AmrHierarchy,
    /// The evaluation field, merged to finest uniform resolution (redundant
    /// coarse data omitted — the standard post-analysis form, Fig. 3).
    pub uniform: UniformField,
    /// Iso-value for surface extraction, chosen as a fixed quantile of the
    /// uniform data so it is meaningful at every scale and crosses the
    /// coarse/fine interface.
    pub iso: f64,
}

impl Scenario {
    pub fn new(app: Application, scale: Scale, seed: u64) -> Self {
        Scenario { app, scale, seed }
    }

    /// Generates the snapshot and evaluation context.
    pub fn build(&self) -> BuiltScenario {
        let hierarchy = match self.app {
            Application::Nyx => NyxScenario::new(self.scale, self.seed).generate(),
            Application::Warpx => WarpxScenario::new(self.scale, self.seed).generate(),
        };
        let field = self.app.eval_field();
        let uniform = flatten_to_finest(&hierarchy, field, Upsample::PiecewiseConstant)
            .expect("scenario always carries its evaluation field");
        let iso = match self.app {
            // Over-density surface spanning refined and unrefined regions.
            Application::Nyx => quantile_of(&uniform.data, 0.75),
            // Low positive Ez level: wraps the pulse (fine) and the decaying
            // wake (coarse), so the surface crosses the interface.
            Application::Warpx => quantile_of(&uniform.data, 0.97),
        };
        BuiltScenario {
            spec: *self,
            hierarchy,
            uniform,
            iso,
        }
    }
}

fn quantile_of(values: &[f64], p: f64) -> f64 {
    let mut v = values.to_vec();
    let k = ((v.len() - 1) as f64 * p).round() as usize;
    let (_, val, _) = v.select_nth_unstable_by(k, |a, b| a.partial_cmp(b).expect("no NaNs"));
    *val
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_viz::{extract_amr_isosurface, IsoMethod};

    #[test]
    fn both_apps_build_at_tiny_scale() {
        for app in Application::ALL {
            let built = Scenario::new(app, Scale::Tiny, 1).build();
            assert_eq!(built.hierarchy.num_levels(), 2);
            assert!(!built.uniform.data.is_empty());
            let (lo, hi) = built.uniform.min_max();
            assert!(
                lo < built.iso && built.iso < hi,
                "{app:?} iso outside range"
            );
        }
    }

    #[test]
    fn iso_surface_crosses_the_level_interface() {
        // The crack/gap analysis is only meaningful if both levels produce
        // triangles at the chosen iso-value.
        for app in Application::ALL {
            let built = Scenario::new(app, Scale::Tiny, 1).build();
            let field = built.spec.app.eval_field();
            let levels = &built.hierarchy.field(field).unwrap().levels;
            let res =
                extract_amr_isosurface(&built.hierarchy, levels, built.iso, IsoMethod::Resampling);
            assert!(
                res.level_meshes[0].num_triangles() > 0,
                "{app:?}: no coarse surface"
            );
            assert!(
                res.level_meshes[1].num_triangles() > 0,
                "{app:?}: no fine surface"
            );
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Application::Nyx.label(), "Nyx");
        assert_eq!(Application::Warpx.eval_field(), "Ez");
    }
}
