//! Scenario construction: the general [`ScenarioSpec`] (from
//! `amrviz-recipe`) is the unit of experiment; the paper's two
//! applications (§3.2, Table 1) are its canonical instances.

use amrviz_amr::resample::{flatten_to_finest, Upsample};
use amrviz_amr::{AmrHierarchy, UniformField};
use amrviz_json::{Json, ToJson};
use amrviz_recipe::Family;
pub use amrviz_recipe::ScenarioSpec;
use amrviz_sim::Scale;

/// Which AMR application's data to emulate — the paper's original
/// two-point workload sample, kept as a convenience constructor over
/// [`ScenarioSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Application {
    /// Nyx cosmology — irregular, spiky density field.
    Nyx,
    /// WarpX PIC — smooth electromagnetic field.
    Warpx,
}

impl Application {
    pub fn label(self) -> &'static str {
        match self {
            Application::Nyx => "Nyx",
            Application::Warpx => "WarpX",
        }
    }

    /// The field the paper evaluates (Table 2, Figs. 12–13).
    pub fn eval_field(self) -> &'static str {
        match self {
            Application::Nyx => "baryon_density",
            Application::Warpx => "Ez",
        }
    }

    /// The canonical [`ScenarioSpec`] for this application.
    pub fn spec(self, scale: Scale, seed: u64) -> ScenarioSpec {
        let family = match self {
            Application::Nyx => Family::Nyx,
            Application::Warpx => Family::Warpx,
        };
        ScenarioSpec::paper(family, scale, seed)
    }

    pub const ALL: [Application; 2] = [Application::Warpx, Application::Nyx];
}

impl ToJson for Application {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_string())
    }
}

/// A paper-application scenario specification (thin wrapper retaining the
/// original two-app API; recipes construct [`ScenarioSpec`]s directly).
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    pub app: Application,
    pub scale: Scale,
    pub seed: u64,
}

/// A generated scenario: the hierarchy plus evaluation conveniences.
pub struct BuiltScenario {
    pub spec: ScenarioSpec,
    pub hierarchy: AmrHierarchy,
    /// The evaluation field, merged to finest uniform resolution (redundant
    /// coarse data omitted — the standard post-analysis form, Fig. 3).
    pub uniform: UniformField,
    /// Iso-value for surface extraction, chosen as a fixed quantile of the
    /// uniform data so it is meaningful at every scale and crosses the
    /// coarse/fine interface.
    pub iso: f64,
}

impl Scenario {
    pub fn new(app: Application, scale: Scale, seed: u64) -> Self {
        Scenario { app, scale, seed }
    }

    /// Generates the snapshot and evaluation context.
    pub fn build(&self) -> BuiltScenario {
        BuiltScenario::from_spec(self.app.spec(self.scale, self.seed))
    }
}

impl BuiltScenario {
    /// Generates any spec — paper app or recipe-expanded — into its
    /// evaluation context.
    pub fn from_spec(spec: ScenarioSpec) -> BuiltScenario {
        let hierarchy = spec.generate();
        let field = spec.eval_field();
        let uniform = flatten_to_finest(&hierarchy, field, Upsample::PiecewiseConstant)
            .expect("scenario always carries its evaluation field");
        // Nyx-like: over-density surface spanning refined and unrefined
        // regions. WarpX-like: low positive Ez level wrapping the pulse
        // (fine) and decaying wake (coarse), crossing the interface.
        let iso = quantile_of(&uniform.data, spec.iso_quantile());
        BuiltScenario {
            spec,
            hierarchy,
            uniform,
            iso,
        }
    }
}

fn quantile_of(values: &[f64], p: f64) -> f64 {
    let mut v = values.to_vec();
    let k = ((v.len() - 1) as f64 * p).round() as usize;
    let (_, val, _) = v.select_nth_unstable_by(k, |a, b| a.partial_cmp(b).expect("no NaNs"));
    *val
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_viz::{extract_amr_isosurface, IsoMethod};

    #[test]
    fn both_apps_build_at_tiny_scale() {
        for app in Application::ALL {
            let built = Scenario::new(app, Scale::Tiny, 1).build();
            assert_eq!(built.hierarchy.num_levels(), 2);
            assert!(!built.uniform.data.is_empty());
            let (lo, hi) = built.uniform.min_max();
            assert!(
                lo < built.iso && built.iso < hi,
                "{app:?} iso outside range"
            );
        }
    }

    #[test]
    fn iso_surface_crosses_the_level_interface() {
        // The crack/gap analysis is only meaningful if both levels produce
        // triangles at the chosen iso-value.
        for app in Application::ALL {
            let built = Scenario::new(app, Scale::Tiny, 1).build();
            let field = built.spec.eval_field();
            let levels = &built.hierarchy.field(field).unwrap().levels;
            let res =
                extract_amr_isosurface(&built.hierarchy, levels, built.iso, IsoMethod::Resampling);
            assert!(
                res.level_meshes[0].num_triangles() > 0,
                "{app:?}: no coarse surface"
            );
            assert!(
                res.level_meshes[1].num_triangles() > 0,
                "{app:?}: no fine surface"
            );
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Application::Nyx.label(), "Nyx");
        assert_eq!(Application::Warpx.eval_field(), "Ez");
        assert_eq!(Application::Nyx.spec(Scale::Tiny, 1).label(), "Nyx");
    }

    #[test]
    fn recipe_specs_build_too() {
        let exp = amrviz_recipe::expand(
            "(scenario (family (grf -2.0)) (topology scattered) (levels 3))",
            42,
        )
        .unwrap();
        let built = BuiltScenario::from_spec(exp.specs[0].clone());
        assert_eq!(built.hierarchy.num_levels(), 3);
        let (lo, hi) = built.uniform.min_max();
        assert!(lo < built.iso && built.iso < hi);
        assert!(built.spec.recipe.contains("(seed "));
    }
}
