//! `amrviz-core` — the paper's analysis pipeline.
//!
//! Everything the study does is expressed as one flow:
//!
//! ```text
//! generate AMR snapshot (amrviz-sim)
//!   → compress level-by-level (amrviz-compress)
//!   → decompress
//!   → merge to uniform resolution / extract isosurfaces (amrviz-viz)
//!   → quality metrics: CR, PSNR, SSIM, R-SSIM, surface deviation
//! ```
//!
//! * [`scenario`] — the two applications (Nyx-like, WarpX-like) with their
//!   evaluation fields and iso-values;
//! * [`experiment`] — runners for each table/figure of the paper;
//! * [`report`] — plain-text table formatting for the `repro` harness.
//!
//! # Quickstart
//!
//! ```
//! use amrviz_core::prelude::*;
//!
//! // A tiny Nyx-like snapshot, SZ-Interp at rel. eb 1e-3:
//! let scenario = Scenario::new(Application::Nyx, Scale::Tiny, 42);
//! let built = scenario.build();
//! let run = run_compression(&built, CompressorKind::SzInterp, 1e-3).unwrap();
//! assert!(run.compression_ratio > 1.0);
//! assert!(run.psnr_db > 40.0);
//! ```

pub mod experiment;
pub mod report;
pub mod scenario;

pub use experiment::{
    run_compression, run_crack_analysis, run_rate_distortion, run_table1, run_table2,
    run_viz_quality, CompressionRun, CompressorKind, CrackRun, RateDistortionPoint, Table1Row,
    VizQualityRun,
};
pub use scenario::{Application, BuiltScenario, Scenario, ScenarioSpec};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::experiment::{
        run_compression, run_crack_analysis, run_rate_distortion, run_table1, run_table2,
        run_viz_quality, CompressionRun, CompressorKind, CrackRun, RateDistortionPoint,
        VizQualityRun,
    };
    pub use crate::scenario::{Application, BuiltScenario, Scenario, ScenarioSpec};
    pub use amrviz_sim::Scale;
    pub use amrviz_viz::IsoMethod;
}
