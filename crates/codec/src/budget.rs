//! Decode budgets: caps on what a stream may *declare* before we allocate.
//!
//! Every decoder in this workspace reads length prefixes (symbol counts,
//! section lengths, box dims) from untrusted bytes. A flipped bit can turn a
//! small count into 2^60, and `Vec::with_capacity(2^60)` aborts the whole
//! process — no `Result`, no `catch_unwind`. The [`DecodeBudget`] is the
//! contract that stops that: decoders validate every declared quantity
//! against the budget (and, where the format allows, against the remaining
//! input) *before* reserving memory.
//!
//! The default budget is deliberately generous — it never binds data this
//! workspace can actually produce — while [`DecodeBudget::strict`] is sized
//! for fuzzing/torture runs where streams are small and an over-allocation
//! should trip immediately.

use crate::CodecError;
use std::time::Instant;

/// Caps on declared sizes, enforced before allocation, plus an optional
/// cooperative deadline checked inside decode loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeBudget {
    /// Maximum number of decoded values/symbols one stream may declare
    /// (huffman/RLE symbol counts, per-fab cell counts).
    pub max_values: usize,
    /// Maximum byte length of any one section, blob, or decompressed byte
    /// payload.
    pub max_section_bytes: usize,
    /// Maximum extent along a single declared box/domain dimension.
    pub max_dim: usize,
    /// Optional wall-clock deadline. Decode loops call
    /// [`DecodeBudget::check_deadline`] every [`DecodeBudget::DEADLINE_STRIDE`]
    /// iterations; past the deadline they bail with
    /// [`CodecError::deadline`] instead of holding the worker. `None`
    /// (the default) never trips.
    pub deadline: Option<Instant>,
}

impl DecodeBudget {
    /// The default budget: roomy enough for any legitimate stream (up to
    /// ~10^9 values per blob), tight enough that a corrupted length prefix
    /// cannot request an absurd allocation.
    pub const fn permissive() -> Self {
        DecodeBudget {
            max_values: 1 << 30,
            max_section_bytes: 1 << 31,
            max_dim: 1 << 20,
            deadline: None,
        }
    }

    /// A tight budget for fuzz/torture runs over small corpora: any declared
    /// size beyond a few MiB is already evidence of corruption.
    pub const fn strict() -> Self {
        DecodeBudget {
            max_values: 1 << 22,
            max_section_bytes: 1 << 24,
            max_dim: 1 << 12,
            deadline: None,
        }
    }

    /// Iterations between deadline probes inside tight decode loops:
    /// frequent enough that one stride is far below any useful deadline,
    /// rare enough that `Instant::now()` stays off the profile.
    pub const DEADLINE_STRIDE: usize = 16 * 1024;

    /// Returns a copy of this budget with a wall-clock deadline attached.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Cooperative cancellation probe: errors with [`CodecError::deadline`]
    /// once the wall clock passes the attached deadline. Cheap no-op when
    /// no deadline is set.
    #[inline]
    pub fn check_deadline(&self) -> Result<(), CodecError> {
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(CodecError::deadline()),
            _ => Ok(()),
        }
    }

    /// Stride-gated deadline probe for per-item loops: probes the clock only
    /// when `i` is a multiple of [`DecodeBudget::DEADLINE_STRIDE`].
    #[inline]
    pub fn check_deadline_every(&self, i: usize) -> Result<(), CodecError> {
        if self.deadline.is_some() && i.is_multiple_of(Self::DEADLINE_STRIDE) {
            self.check_deadline()
        } else {
            Ok(())
        }
    }

    /// Validates a declared value/symbol count.
    pub fn check_values(&self, declared: usize) -> Result<usize, CodecError> {
        if declared > self.max_values {
            return Err(CodecError::BudgetExceeded(
                "declared value count exceeds budget",
            ));
        }
        Ok(declared)
    }

    /// Validates a declared section byte length, also requiring it to fit in
    /// the `remaining` input bytes.
    pub fn check_section(&self, declared: usize, remaining: usize) -> Result<usize, CodecError> {
        if declared > remaining {
            return Err(CodecError::Truncated);
        }
        if declared > self.max_section_bytes {
            return Err(CodecError::BudgetExceeded(
                "declared section length exceeds budget",
            ));
        }
        Ok(declared)
    }

    /// Validates a declared payload byte length that may legitimately exceed
    /// the remaining *compressed* input (decompressed sizes), capping it at
    /// the budget only.
    pub fn check_payload(&self, declared: usize) -> Result<usize, CodecError> {
        if declared > self.max_section_bytes {
            return Err(CodecError::BudgetExceeded(
                "declared payload length exceeds budget",
            ));
        }
        Ok(declared)
    }

    /// Validates one declared box/domain dimension (must be nonzero).
    pub fn check_dim(&self, declared: usize) -> Result<usize, CodecError> {
        if declared == 0 {
            return Err(CodecError::Corrupt("zero dimension"));
        }
        if declared > self.max_dim {
            return Err(CodecError::BudgetExceeded(
                "declared dimension exceeds budget",
            ));
        }
        Ok(declared)
    }
}

impl Default for DecodeBudget {
    fn default() -> Self {
        DecodeBudget::permissive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissive_accepts_normal_sizes() {
        let b = DecodeBudget::default();
        assert_eq!(b.check_values(1_000_000).unwrap(), 1_000_000);
        assert_eq!(b.check_section(4096, 8192).unwrap(), 4096);
        assert_eq!(b.check_dim(512).unwrap(), 512);
    }

    #[test]
    fn oversized_declarations_rejected() {
        let b = DecodeBudget::strict();
        assert!(b.check_values(usize::MAX).is_err());
        assert!(b.check_payload(usize::MAX).is_err());
        assert!(b.check_dim(usize::MAX).is_err());
        assert!(b.check_dim(0).is_err());
    }

    #[test]
    fn section_longer_than_remaining_is_eof() {
        let b = DecodeBudget::default();
        assert_eq!(b.check_section(100, 50), Err(CodecError::Truncated));
    }

    #[test]
    fn budget_breaches_are_typed() {
        let b = DecodeBudget::strict();
        assert!(matches!(
            b.check_values(usize::MAX),
            Err(CodecError::BudgetExceeded(_))
        ));
        assert!(matches!(
            b.check_payload(usize::MAX),
            Err(CodecError::BudgetExceeded(_))
        ));
        assert!(matches!(b.check_dim(0), Err(CodecError::Corrupt(_))));
        assert!(matches!(
            b.check_dim(usize::MAX),
            Err(CodecError::BudgetExceeded(_))
        ));
    }

    #[test]
    fn deadline_budget_trips_and_is_retryable() {
        let b = DecodeBudget::default();
        assert!(b.check_deadline().is_ok());
        let past = Instant::now() - std::time::Duration::from_millis(10);
        let b = DecodeBudget::default().with_deadline(past);
        let err = b.check_deadline().unwrap_err();
        assert!(err.is_deadline());
        assert_eq!(err.class(), "budget");
        // A stride-gated probe at i=0 still fires.
        assert!(b.check_deadline_every(0).is_err());
        // Off-stride indices never touch the clock.
        assert!(b.check_deadline_every(1).is_ok());
        let future = Instant::now() + std::time::Duration::from_secs(3600);
        assert!(DecodeBudget::default()
            .with_deadline(future)
            .check_deadline()
            .is_ok());
    }
}
