//! Decode budgets: caps on what a stream may *declare* before we allocate.
//!
//! Every decoder in this workspace reads length prefixes (symbol counts,
//! section lengths, box dims) from untrusted bytes. A flipped bit can turn a
//! small count into 2^60, and `Vec::with_capacity(2^60)` aborts the whole
//! process — no `Result`, no `catch_unwind`. The [`DecodeBudget`] is the
//! contract that stops that: decoders validate every declared quantity
//! against the budget (and, where the format allows, against the remaining
//! input) *before* reserving memory.
//!
//! The default budget is deliberately generous — it never binds data this
//! workspace can actually produce — while [`DecodeBudget::strict`] is sized
//! for fuzzing/torture runs where streams are small and an over-allocation
//! should trip immediately.

use crate::CodecError;

/// Caps on declared sizes, enforced before allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeBudget {
    /// Maximum number of decoded values/symbols one stream may declare
    /// (huffman/RLE symbol counts, per-fab cell counts).
    pub max_values: usize,
    /// Maximum byte length of any one section, blob, or decompressed byte
    /// payload.
    pub max_section_bytes: usize,
    /// Maximum extent along a single declared box/domain dimension.
    pub max_dim: usize,
}

impl DecodeBudget {
    /// The default budget: roomy enough for any legitimate stream (up to
    /// ~10^9 values per blob), tight enough that a corrupted length prefix
    /// cannot request an absurd allocation.
    pub const fn permissive() -> Self {
        DecodeBudget {
            max_values: 1 << 30,
            max_section_bytes: 1 << 31,
            max_dim: 1 << 20,
        }
    }

    /// A tight budget for fuzz/torture runs over small corpora: any declared
    /// size beyond a few MiB is already evidence of corruption.
    pub const fn strict() -> Self {
        DecodeBudget {
            max_values: 1 << 22,
            max_section_bytes: 1 << 24,
            max_dim: 1 << 12,
        }
    }

    /// Validates a declared value/symbol count.
    pub fn check_values(&self, declared: usize) -> Result<usize, CodecError> {
        if declared > self.max_values {
            return Err(CodecError::Malformed("declared value count exceeds budget"));
        }
        Ok(declared)
    }

    /// Validates a declared section byte length, also requiring it to fit in
    /// the `remaining` input bytes.
    pub fn check_section(&self, declared: usize, remaining: usize) -> Result<usize, CodecError> {
        if declared > remaining {
            return Err(CodecError::UnexpectedEof);
        }
        if declared > self.max_section_bytes {
            return Err(CodecError::Malformed(
                "declared section length exceeds budget",
            ));
        }
        Ok(declared)
    }

    /// Validates a declared payload byte length that may legitimately exceed
    /// the remaining *compressed* input (decompressed sizes), capping it at
    /// the budget only.
    pub fn check_payload(&self, declared: usize) -> Result<usize, CodecError> {
        if declared > self.max_section_bytes {
            return Err(CodecError::Malformed(
                "declared payload length exceeds budget",
            ));
        }
        Ok(declared)
    }

    /// Validates one declared box/domain dimension (must be nonzero).
    pub fn check_dim(&self, declared: usize) -> Result<usize, CodecError> {
        if declared == 0 {
            return Err(CodecError::Malformed("zero dimension"));
        }
        if declared > self.max_dim {
            return Err(CodecError::Malformed("declared dimension exceeds budget"));
        }
        Ok(declared)
    }
}

impl Default for DecodeBudget {
    fn default() -> Self {
        DecodeBudget::permissive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissive_accepts_normal_sizes() {
        let b = DecodeBudget::default();
        assert_eq!(b.check_values(1_000_000).unwrap(), 1_000_000);
        assert_eq!(b.check_section(4096, 8192).unwrap(), 4096);
        assert_eq!(b.check_dim(512).unwrap(), 512);
    }

    #[test]
    fn oversized_declarations_rejected() {
        let b = DecodeBudget::strict();
        assert!(b.check_values(usize::MAX).is_err());
        assert!(b.check_payload(usize::MAX).is_err());
        assert!(b.check_dim(usize::MAX).is_err());
        assert!(b.check_dim(0).is_err());
    }

    #[test]
    fn section_longer_than_remaining_is_eof() {
        let b = DecodeBudget::default();
        assert_eq!(b.check_section(100, 50), Err(CodecError::UnexpectedEof));
    }
}
