//! Byte-oriented LZ77/LZSS compressor with hash-chain match finding.
//!
//! Serves as the final lossless stage of the compression pipelines (the
//! role zstd plays in SZ). The format is LZ4-flavored:
//!
//! ```text
//! uvarint decompressed_len
//! repeat:
//!   uvarint literal_len, literal bytes
//!   (if output incomplete) uvarint match_len - MIN_MATCH, uvarint distance
//! ```
//!
//! Matches may overlap their own output (run-length-like copies), distances
//! are limited to a 64 KiB window, and the match finder walks bounded hash
//! chains, trading a little ratio for predictable throughput.

use crate::budget::DecodeBudget;
use crate::varint::{read_uvarint, write_uvarint};
use crate::CodecError;

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 1 << 16;
const WINDOW: usize = 1 << 16;
const HASH_BITS: u32 = 15;
const MAX_CHAIN: usize = 64;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    // Multiplicative hash of 4 bytes (Fibonacci constant).
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`.
pub fn lzss_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    lzss_compress_into(input, &mut out);
    out
}

/// Appends the compression of `input` to `out` (same format as
/// [`lzss_compress`]). The hash-chain match-finder state is rented from the
/// per-thread scratch pool, so per-box callers pay for it once per worker
/// instead of once per call.
pub fn lzss_compress_into(input: &[u8], out: &mut Vec<u8>) {
    write_uvarint(out, input.len() as u64);
    if input.is_empty() {
        return;
    }

    let mut head = amrviz_par::scratch::take_usize();
    head.resize(1 << HASH_BITS, usize::MAX);
    let mut prev = amrviz_par::scratch::take_usize();
    prev.resize(input.len(), usize::MAX);

    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash4(&input[i..]);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < MAX_CHAIN {
                // Candidate must at least beat the current best.
                if best_len == 0 || input.get(i + best_len) == input.get(cand + best_len) {
                    let limit = (input.len() - i).min(MAX_MATCH);
                    let mut l = 0;
                    while l < limit && input[cand + l] == input[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                        if l >= limit {
                            break;
                        }
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
        }

        if best_len >= MIN_MATCH {
            // Emit pending literals, then the match.
            write_uvarint(out, (i - lit_start) as u64);
            out.extend_from_slice(&input[lit_start..i]);
            write_uvarint(out, (best_len - MIN_MATCH) as u64);
            write_uvarint(out, best_dist as u64);
            // Insert hash entries for every position the match covers.
            let end = i + best_len;
            while i < end && i + MIN_MATCH <= input.len() {
                let h = hash4(&input[i..]);
                prev[i] = head[h];
                head[h] = i;
                i += 1;
            }
            i = end;
            lit_start = i;
        } else {
            if i + MIN_MATCH <= input.len() {
                let h = hash4(&input[i..]);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    // Trailing literals.
    write_uvarint(out, (input.len() - lit_start) as u64);
    out.extend_from_slice(&input[lit_start..]);
    amrviz_par::scratch::give_usize(prev);
    amrviz_par::scratch::give_usize(head);
}

/// Decompresses a buffer produced by [`lzss_compress`] under the default
/// (permissive) [`DecodeBudget`].
pub fn lzss_decompress(bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    lzss_decompress_budgeted(bytes, &DecodeBudget::default())
}

/// Decompresses a buffer produced by [`lzss_compress`], validating the
/// declared output length against `budget` and against the maximum
/// expansion the remaining input could possibly produce — before the output
/// buffer is allocated.
pub fn lzss_decompress_budgeted(
    bytes: &[u8],
    budget: &DecodeBudget,
) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    lzss_decompress_into(bytes, budget, &mut out)?;
    Ok(out)
}

/// Decompresses into `out` (cleared first, capacity reused) with the same
/// validation as [`lzss_decompress_budgeted`]. On error `out` may hold a
/// partial prefix; its contents are unspecified.
pub fn lzss_decompress_into(
    bytes: &[u8],
    budget: &DecodeBudget,
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    out.clear();
    let mut pos = 0usize;
    let total = budget.check_payload(read_uvarint(bytes, &mut pos)? as usize)?;
    // Each token (literal byte, or match pair) consumes at least one input
    // byte and emits at most MAX_MATCH output bytes, so a stream of
    // `remaining` bytes can never legitimately decode to more than
    // `remaining * MAX_MATCH`.
    if total > (bytes.len() - pos).saturating_mul(MAX_MATCH) {
        return Err(CodecError::Truncated);
    }
    out.reserve(total);
    let mut tokens = 0usize;
    while out.len() < total {
        budget.check_deadline_every(tokens)?;
        tokens += 1;
        let lit_len = read_uvarint(bytes, &mut pos)? as usize;
        if lit_len > bytes.len() - pos || out.len() + lit_len > total {
            return Err(CodecError::Corrupt("literal run out of bounds"));
        }
        out.extend_from_slice(&bytes[pos..pos + lit_len]);
        pos += lit_len;
        if out.len() == total {
            break;
        }
        let match_len = (read_uvarint(bytes, &mut pos)? as usize)
            .checked_add(MIN_MATCH)
            .ok_or(CodecError::Corrupt("match length overflow"))?;
        let dist = read_uvarint(bytes, &mut pos)? as usize;
        if dist == 0 || dist > out.len() || out.len() + match_len > total {
            return Err(CodecError::Corrupt("bad match"));
        }
        // Overlap-safe byte-by-byte copy.
        let start = out.len() - dist;
        for j in 0..match_len {
            let b = out[start + j];
            out.push(b);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrviz_rng::check;

    #[test]
    fn empty() {
        let enc = lzss_compress(&[]);
        assert_eq!(lzss_decompress(&enc).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn short_inputs() {
        for len in 1..=8 {
            let data: Vec<u8> = (0..len as u8).collect();
            let enc = lzss_compress(&data);
            assert_eq!(lzss_decompress(&enc).unwrap(), data);
        }
    }

    #[test]
    fn repetitive_input_compresses_hard() {
        let data = b"abcabcabcabcabcabcabcabcabcabcabc".repeat(100);
        let enc = lzss_compress(&data);
        assert!(
            enc.len() < data.len() / 10,
            "{} vs {}",
            enc.len(),
            data.len()
        );
        assert_eq!(lzss_decompress(&enc).unwrap(), data);
    }

    #[test]
    fn constant_input_uses_overlapping_match() {
        let data = vec![7u8; 100_000];
        let enc = lzss_compress(&data);
        assert!(enc.len() < 64, "got {} bytes", enc.len());
        assert_eq!(lzss_decompress(&enc).unwrap(), data);
    }

    #[test]
    fn random_input_expands_only_slightly() {
        let mut rng = amrviz_rng::Rng::seed(42);
        let data: Vec<u8> = (0..50_000).map(|_| rng.next_u64() as u8).collect();
        let enc = lzss_compress(&data);
        assert!(enc.len() < data.len() + data.len() / 16 + 32);
        assert_eq!(lzss_decompress(&enc).unwrap(), data);
    }

    #[test]
    fn structured_float_bytes() {
        // Byte patterns like Huffman output of smooth data: long zero-ish
        // stretches with periodic structure.
        let data: Vec<u8> = (0..80_000u32)
            .map(|i| if i % 97 < 90 { 0 } else { (i % 251) as u8 })
            .collect();
        let enc = lzss_compress(&data);
        assert!(enc.len() < data.len() / 4);
        assert_eq!(lzss_decompress(&enc).unwrap(), data);
    }

    #[test]
    fn truncated_stream_errors() {
        let data = b"hello hello hello hello".repeat(20);
        let enc = lzss_compress(&data);
        assert!(lzss_decompress(&enc[..enc.len() / 2]).is_err());
    }

    #[test]
    fn corrupt_distance_rejected() {
        // Handcraft: total=10, literal run 1 byte, then match dist beyond output.
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 10);
        write_uvarint(&mut buf, 1);
        buf.push(b'x');
        write_uvarint(&mut buf, 0); // match_len = MIN_MATCH
        write_uvarint(&mut buf, 5); // dist 5 > out.len()=1
        assert!(lzss_decompress(&buf).is_err());
    }

    #[test]
    fn absurd_declared_length_fails_before_allocation() {
        // Claims ~2^60 output bytes from a 10-byte stream: both the budget
        // and the expansion bound must reject it up front.
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 1u64 << 60);
        assert!(lzss_decompress(&buf).is_err());
    }

    #[test]
    fn budget_caps_declared_length() {
        let data = vec![9u8; 4096];
        let enc = lzss_compress(&data);
        let tiny = DecodeBudget {
            max_section_bytes: 64,
            ..DecodeBudget::strict()
        };
        assert!(lzss_decompress_budgeted(&enc, &tiny).is_err());
        assert_eq!(
            lzss_decompress_budgeted(&enc, &DecodeBudget::strict()).unwrap(),
            data
        );
    }

    #[test]
    fn roundtrip_arbitrary() {
        check(0x5A1, 48, |rng| {
            let data: Vec<u8> = (0..rng.range_usize(0, 4999))
                .map(|_| rng.next_u64() as u8)
                .collect();
            let enc = lzss_compress(&data);
            assert_eq!(lzss_decompress(&enc).unwrap(), data);
        });
    }

    #[test]
    fn roundtrip_low_entropy() {
        check(0x5A2, 48, |rng| {
            let data: Vec<u8> = (0..rng.range_usize(0, 4999))
                .map(|_| rng.below(4) as u8)
                .collect();
            let enc = lzss_compress(&data);
            assert_eq!(lzss_decompress(&enc).unwrap(), data);
        });
    }
}
